"""100x [28] baseline: kernel-fused, polynomial-level CKKS on GPU.

100x pioneered kernel fusion for CKKS but designs kernels at the
*polynomial* level: KeySwitch decomposes into per-digit ModUp/NTT/MAC
launches plus per-polynomial output pipelines, giving the kernel counts of
Table IX (~59-109 versus WarpDrive's fixed 11) and the utilization profile
of Table III. The original runs 64-bit words on a V100; the paper also
builds **100x_opt**, which swaps in WarpDrive's NTT and 32-bit modular
arithmetic while keeping the polynomial-level kernel structure — exposing
the PE-kernel contribution in isolation. Both variants are built here.
"""

from __future__ import annotations

from typing import Dict, List

from ..ckks.params import CkksParams
from ..core import costs
from ..core import kernels as K
from ..core.kernels import DEFAULT_GEOMETRY, GeometryConfig, WORD_BYTES
from ..core.ntt_engine import WarpDriveNtt
from ..gpusim import (
    A100_PCIE_80G,
    ExecutionResult,
    GpuSpec,
    KernelSpec,
    V100,
    run_serial,
)

_EFFICIENCY = 0.5
#: 64-bit modular arithmetic on 32-bit integer lanes costs ~3x the
#: instructions of the 32-bit form (128-bit products via four 32x32
#: halves plus carries).
_WORD64_OP_FACTOR = 3.0


class HundredXOps:
    """100x homomorphic operations (kernel-fused, polynomial-level).

    Parameters
    ----------
    optimized:
        False — original 100x: 64-bit words, CUDA-core radix NTT, V100 by
        default. True — 100x_opt: WarpDrive NTT kernels and 32-bit
        arithmetic on the A100, keeping the polynomial-level launch
        structure.
    """

    def __init__(self, params: CkksParams, *, optimized: bool = False,
                 device: GpuSpec = None,
                 geometry: GeometryConfig = DEFAULT_GEOMETRY):
        self.params = params
        self.optimized = optimized
        if device is None:
            device = A100_PCIE_80G if optimized else V100
        self.device = device
        self.geometry = geometry
        self.word_bytes = WORD_BYTES if optimized else 8
        self.op_factor = 1.0 if optimized else _WORD64_OP_FACTOR
        self._wd_ntt = (
            WarpDriveNtt(params.n, device=device, geometry=geometry)
            if optimized else None
        )

    # -- NTT kernels (per polynomial!) -------------------------------------------------

    def ntt_kernels(self, name: str, transforms: int, *,
                    inverse: bool = False) -> List[KernelSpec]:
        """NTT of ``transforms`` residue rows as ONE polynomial-level
        launch (the kernel-fused form: all primes of one polynomial in a
        single kernel, but no cross-polynomial dimension)."""
        if self.optimized:
            plan = self._wd_ntt.kernel_plan(transforms, inverse=inverse)
            return [k.renamed(name) for k in plan]
        n = self.params.n
        import math

        butterflies = (n // 2) * int(math.log2(n)) * transforms
        elems = n * transforms
        return [
            KernelSpec(
                name=name,
                blocks=self.geometry.blocks_for(elems),
                warps_per_block=self.geometry.warps_per_block,
                int32_ops=butterflies * costs.BUTTERFLY_OPS * self.op_factor
                + elems * costs.MONTGOMERY_MULMOD_OPS * self.op_factor,
                gmem_read_bytes=elems * self.word_bytes * 1.1,
                gmem_write_bytes=elems * self.word_bytes,
                smem_read_bytes=elems * self.word_bytes
                * int(math.log2(n)) / 2,
                smem_write_bytes=elems * self.word_bytes
                * int(math.log2(n)) / 2,
                smem_per_block_bytes=48 * 1024,
                efficiency=_EFFICIENCY,
                tags={"kind": "ntt", "system": "100x"},
            ).validate()
        ]

    # -- keyswitch plan -----------------------------------------------------------------

    def keyswitch_plan(self, level: int = None) -> List[KernelSpec]:
        """Polynomial-level KeySwitch: per-digit pipelines.

        Structure: input INTT; per digit, a ModUp kernel, an NTT kernel
        and two MAC (multiply-accumulate against the evk halves) kernels;
        then 2 INTTs, 2 ModDowns and 2 output NTTs plus the combine —
        ``4*dnum + 8`` launches, matching Table IX's scale.
        """
        params = self.params
        level = params.max_level if level is None else level
        lvl = level + 1
        n = params.n
        special = params.num_special
        alpha = -(-params.num_primes // params.dnum)
        digits = min(params.dnum, -(-lvl // alpha))
        ext = lvl + special
        geo = self.geometry
        w_factor = self.word_bytes / WORD_BYTES

        plan: List[KernelSpec] = []
        plan += self.ntt_kernels("100x.intt_input", lvl, inverse=True)
        for d in range(digits):
            plan.append(_scale_words(K.modup_kernel(
                f"100x.modup[{d}]", n, alpha, ext, polys=1, geometry=geo,
                efficiency=_EFFICIENCY, system="100x",
            ), self.op_factor, w_factor))
            plan += self.ntt_kernels(f"100x.ntt_digit[{d}]", ext)
            for acc in range(2):
                plan.append(_scale_words(K.modmul_kernel(
                    f"100x.mac[{d},{acc}]", n * ext, operands=3,
                    geometry=geo, system="100x",
                ), self.op_factor, w_factor))
        for acc in range(2):
            plan += self.ntt_kernels(f"100x.intt_acc{acc}", ext,
                                     inverse=True)
        for acc in range(2):
            plan.append(_scale_words(K.moddown_kernel(
                f"100x.moddown{acc}", n, lvl, special, geometry=geo,
                efficiency=_EFFICIENCY, system="100x",
            ), self.op_factor, w_factor))
        for acc in range(2):
            plan += self.ntt_kernels(f"100x.ntt_out{acc}", lvl)
        plan.append(_scale_words(K.modadd_kernel(
            "100x.combine", 2 * n * lvl, geometry=geo, system="100x",
        ), self.op_factor, w_factor))
        return plan

    # -- homomorphic ops --------------------------------------------------------------------

    def plan(self, op: str, *, level: int = None) -> List[KernelSpec]:
        params = self.params
        level = params.max_level if level is None else level
        lvl = level + 1
        n = params.n
        geo = self.geometry
        w_factor = self.word_bytes / WORD_BYTES

        if op in ("hadd", "hsub"):
            # Polynomial-level: one kernel per polynomial.
            return [
                _scale_words(K.modadd_kernel(
                    f"100x.{op}[{p}]", n * lvl, geometry=geo, system="100x",
                ), self.op_factor, w_factor)
                for p in range(2)
            ]
        if op == "pmult":
            return [
                _scale_words(K.modmul_kernel(
                    f"100x.pmult[{p}]", n * lvl, geometry=geo,
                    system="100x",
                ), self.op_factor, w_factor)
                for p in range(2)
            ]
        if op == "keyswitch":
            return self.keyswitch_plan(level)
        if op == "rescale":
            plan: List[KernelSpec] = []
            for p in range(2):
                plan += self.ntt_kernels(f"100x.rescale.intt[{p}]", lvl,
                                         inverse=True)
            plan.append(_scale_words(K.elementwise_kernel(
                "100x.rescale.divide", n * (lvl - 1) * 2,
                ops_per_element=9, read_words=2, write_words=1,
                geometry=geo, system="100x",
            ), self.op_factor, w_factor))
            for p in range(2):
                plan += self.ntt_kernels(f"100x.rescale.ntt[{p}]", lvl - 1)
            return plan
        if op == "hmult":
            plan = [
                _scale_words(K.modmul_kernel(
                    f"100x.hmult.d{i}", n * lvl, geometry=geo,
                    system="100x",
                ), self.op_factor, w_factor)
                for i in range(3)
            ]
            plan += self.keyswitch_plan(level)
            plan += self.plan("rescale", level=level)
            return plan
        if op == "hrotate":
            plan = [
                _scale_words(K.automorphism_kernel(
                    f"100x.rotate[{p}]", n, lvl, polys=1, geometry=geo,
                    system="100x",
                ), self.op_factor, w_factor)
                for p in range(2)
            ]
            plan += self.keyswitch_plan(level)
            return plan
        raise ValueError(f"unknown operation {op!r}")

    def simulate(self, op: str, *, level: int = None) -> ExecutionResult:
        return run_serial(self.plan(op, level=level), self.device)

    def latency_us(self, op: str, *, level: int = None) -> float:
        return self.simulate(op, level=level).elapsed_us

    def kernel_count(self, op: str, *, level: int = None) -> int:
        return len(self.plan(op, level=level))

    def keyswitch_profile(self, *, level: int = None) -> Dict[str, object]:
        """Kernel count + utilizations for Table IX / Table III."""
        from ..gpusim import aggregate

        result = self.simulate("keyswitch", level=level)
        agg = aggregate(result.profiles)
        return {
            "kernels": result.kernel_count,
            "compute_util": agg.compute_utilization,
            "memory_util": agg.memory_utilization,
            "latency_us": result.elapsed_us,
        }


def _scale_words(spec: KernelSpec, op_factor: float,
                 word_factor: float) -> KernelSpec:
    """Adjust a 32-bit kernel descriptor for 64-bit words."""
    if op_factor == 1.0 and word_factor == 1.0:
        return spec
    from dataclasses import replace

    return replace(
        spec,
        int32_ops=spec.int32_ops * op_factor,
        gmem_read_bytes=spec.gmem_read_bytes * word_factor,
        gmem_write_bytes=spec.gmem_write_bytes * word_factor,
        smem_read_bytes=spec.smem_read_bytes * word_factor,
        smem_write_bytes=spec.smem_write_bytes * word_factor,
    )
