"""CPU baseline, calibrated to the HEAX software numbers the paper uses.

The paper's CPU column ([49], Xeon Silver 4108 @ 1.80 GHz) provides the
single-thread software reference of Tables VII and XII. We model it with a
per-primitive cycle model — butterflies, modular multiplies, basis
conversions — whose single constant (cycles per butterfly) is calibrated
once against the SET-A NTT row (7.2 KOPS) and then *predicts* the other
rows; the prediction quality is itself asserted in tests (SET-B/C within
10% of the paper).
"""

from __future__ import annotations

import math

from ..ckks.params import CkksParams

#: Xeon Silver 4108 base clock, GHz.
CPU_CLOCK_GHZ = 1.80

#: Cycles per NTT butterfly (modmul + add/sub + loads), single thread.
#: Calibrated: 7.2 KOPS at N=2^12 -> 138.9 us -> 250k cycles / 24576
#: butterflies ((N/2) log2 N) ~ 10.2.
CYCLES_PER_BUTTERFLY = 10.17

#: Cycles per stand-alone modular multiply (Barrett, 64-bit lanes).
CYCLES_PER_MODMUL = 6.0

#: Fraction of the naive keyswitch NTT count a tuned CPU library
#: eliminates through lazy conversions (calibrated at SET-A HMULT).
_KEYSWITCH_NTT_DISCOUNT = 0.25


def ntt_latency_us(n: int) -> float:
    """Single N-point NTT on one core."""
    butterflies = (n // 2) * int(math.log2(n))
    return butterflies * CYCLES_PER_BUTTERFLY / (CPU_CLOCK_GHZ * 1e3)


def ntt_throughput_kops(n: int) -> float:
    return 1e3 / ntt_latency_us(n)


def hmult_latency_us(params: CkksParams, *, level: int = None) -> float:
    """HMULT = tensor products + hybrid keyswitch + rescale on one core."""
    level = params.max_level if level is None else level
    lvl = level + 1
    special = params.num_special
    alpha = -(-params.num_primes // params.dnum)
    digits = min(params.dnum, -(-lvl // alpha))
    ext = lvl + special
    n = params.n

    ntt_count = (
        lvl                      # INTT of d2
        + digits * ext           # NTT of extended digits
        + 2 * ext                # INTT of both accumulators
        + 2 * lvl                # NTT of both outputs
        + 4 * lvl                # rescale INTT/NTT of both polynomials
    ) * _KEYSWITCH_NTT_DISCOUNT
    ntt_us = ntt_count * ntt_latency_us(n)

    modmul_count = (
        3 * n * lvl                       # tensor products
        + n * digits * alpha * ext        # ModUp inner loops
        + n * ext * digits * 2            # inner product MACs
        + n * special * lvl * 2           # ModDown
        + n * lvl * 4                     # rescale divides and fixups
    )
    modmul_us = modmul_count * CYCLES_PER_MODMUL / (CPU_CLOCK_GHZ * 1e3)
    return ntt_us + modmul_us


def hmult_throughput_kops(params: CkksParams, *, level: int = None) -> float:
    return 1e3 / hmult_latency_us(params, level=level)
