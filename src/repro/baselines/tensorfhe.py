"""TensorFHE [22] baseline: the 5-stage kernel-level tensor-core NTT.

Lowers Algorithm 1 of the paper exactly as written: a dedicated bit-split
kernel, 16 limb-GEMM kernel launches per GEMM stage (one per ``(m, n)``
limb pair, launched on streams that serialize on full-device grids), a
Mid kernel (merge + ModRedc + twiddle Hadamard + re-split), 16 more GEMM
launches, and a Merge kernel. Every stage round-trips its data through
global memory — the structural property behind Table II's stall profile
and the 10x gap of Table VII.

Homomorphic operations follow TensorFHE's *operation batching* design:
the same polynomial-level pipeline amortized over ``batch`` ciphertexts.
"""

from __future__ import annotations

from typing import List

from ..ckks.params import CkksParams
from ..gpusim import (
    A100_SXM_40G,
    ExecutionResult,
    GpuSpec,
    KernelSpec,
    run_serial,
    run_streams,
)
from ..core import costs
from ..core.kernels import DEFAULT_GEOMETRY, GeometryConfig

#: TensorFHE kernels achieve the same silicon fraction as other
#: non-WarpDrive CUDA kernels in this reproduction (see EXPERIMENTS.md).
_EFFICIENCY = 0.5

WORD = 4


def functional_five_stage_ntt(x, tables):
    """Execute TensorFHE's NTT *functionally*: one-level decomposition
    with uint8 limb GEMM inner NTTs — exactly the Algorithm 1 dataflow
    (split, limb GEMMs, merge + Hadamard, limb GEMMs, merge), bit-exact
    against the reference transform (tested).

    ``x``: ``(..., N)`` coefficients; ``tables``: NttTables of (q, N).
    """
    import math

    from ..ntt import HierarchicalNtt
    from ..ntt.decompose import NttPlan

    n = tables.n
    bits = n.bit_length() - 1
    n1 = 1 << (bits - bits // 2)
    n2 = 1 << (bits // 2)
    plan = NttPlan(n, left=NttPlan(n1), right=NttPlan(n2))
    return HierarchicalNtt(tables, plan=plan,
                           leaf_engine="tensor").forward(x)


class TensorFheNtt:
    """Kernel-level 5-stage NTT (Algorithm 1), 1-level decomposition."""

    def __init__(self, n: int, *, device: GpuSpec = A100_SXM_40G,
                 geometry: GeometryConfig = DEFAULT_GEOMETRY):
        if n & (n - 1) or n < 256:
            raise ValueError("TensorFHE NTT expects a power of two >= 256")
        self.n = n
        self.device = device
        self.geometry = geometry
        bits = n.bit_length() - 1
        self.n1 = 1 << (bits - bits // 2)
        self.n2 = 1 << (bits // 2)

    # -- kernel plan --------------------------------------------------------------

    def kernel_plan(self, batch: int = 1) -> List[KernelSpec]:
        """The 35 launches of one batched five-stage NTT."""
        b = batch
        n = self.n
        geo = self.geometry
        elems = b * n

        split = KernelSpec(
            name="tf.split(U32ToU8)",
            blocks=geo.blocks_for(elems),
            warps_per_block=geo.warps_per_block,
            int32_ops=elems * 4 * costs.BIT_SPLIT_OPS * 2,
            gmem_read_bytes=elems * WORD,
            gmem_write_bytes=elems * 4,  # four uint8 planes
            coalescing=0.25,             # byte-granular stores
            efficiency=_EFFICIENCY,
            tags={"stage": "Stage 1"},
        ).validate()

        def gemm(stage: str, inner: int, m: int, mn: int) -> KernelSpec:
            # One limb-pair GEMM: X_m (uint8) x W (uint8) -> int32 partial.
            return KernelSpec(
                name=f"tf.gemm{stage}[{m},{mn}]",
                blocks=geo.blocks_for(elems, geo.ntt_coeffs_per_thread),
                warps_per_block=geo.warps_per_block,
                tensor_macs=elems * inner,
                int32_ops=elems * 2,  # accumulator staging
                gmem_read_bytes=elems * 1 + inner * inner,
                gmem_write_bytes=elems * WORD,  # int32 partials
                smem_read_bytes=elems * inner * 0.125,
                smem_per_block_bytes=48 * 1024,
                efficiency=_EFFICIENCY,
                tags={"stage": stage},
            ).validate()

        mid = KernelSpec(
            name="tf.mid(Hada&Trans)",
            blocks=geo.blocks_for(elems),
            warps_per_block=geo.warps_per_block,
            int32_ops=elems * (
                16 * costs.BIT_MERGE_OPS + costs.MODRED_OPS
                + costs.MONTGOMERY_MULMOD_OPS + 4 * costs.BIT_SPLIT_OPS
            ),
            gmem_read_bytes=elems * 16 * WORD + elems * WORD,
            gmem_write_bytes=elems * 4,
            coalescing=0.5,
            efficiency=_EFFICIENCY,
            tags={"stage": "Stage 3"},
        ).validate()

        merge = KernelSpec(
            name="tf.merge(U8ToU32)",
            blocks=geo.blocks_for(elems),
            warps_per_block=geo.warps_per_block,
            int32_ops=elems * (16 * costs.BIT_MERGE_OPS + costs.MODRED_OPS),
            gmem_read_bytes=elems * 16 * WORD,
            gmem_write_bytes=elems * WORD,
            efficiency=_EFFICIENCY,
            tags={"stage": "Stage 5"},
        ).validate()

        plan = [split]
        plan += [gemm("Stage 2", self.n2, m, mn)
                 for m in range(4) for mn in range(4)]
        plan += [mid]
        plan += [gemm("Stage 4", self.n1, m, mn)
                 for m in range(4) for mn in range(4)]
        plan += [merge]
        return plan

    def simulate(self, batch: int = 1024, *, streams: int = 1,
                 ) -> ExecutionResult:
        plan = self.kernel_plan(batch)
        if streams <= 1:
            return run_serial(plan, self.device)
        # GEMM launches spread across streams (they serialize anyway on
        # full-device grids — the §III-A observation).
        lanes: List[List[KernelSpec]] = [[] for _ in range(streams)]
        for i, k in enumerate(plan):
            lanes[i % streams].append(k)
        return run_streams(lanes, self.device)

    def throughput_kops(self, batch: int = 1024) -> float:
        return batch / self.simulate(batch).elapsed_us * 1e3

    def stage_profiles(self, batch: int = 1024):
        """Profiles grouped by pipeline stage (for Table II / Fig. 5)."""
        result = self.simulate(batch)
        groups = {}
        for entry in result.entries:
            stage = entry.profile.spec.tags.get("stage", "?")
            groups.setdefault(stage, []).append(entry.profile)
        return dict(sorted(groups.items()))


class TensorFheOps:
    """TensorFHE homomorphic operations: operation-level batching, with
    host-side handling of the per-ciphertext polynomial loop (§IV-C-1)."""

    def __init__(self, params: CkksParams, *,
                 device: GpuSpec = A100_SXM_40G,
                 geometry: GeometryConfig = DEFAULT_GEOMETRY):
        self.params = params
        self.device = device
        self.geometry = geometry
        self.ntt = TensorFheNtt(params.n, device=device, geometry=geometry)

    def hmult_latency_us(self, *, level: int = None,
                         batch: int = 32) -> float:
        """Amortized HMULT latency at TensorFHE's batch size.

        Pipeline: tensor products + keyswitch where every NTT is the
        5-stage kernel plan and the polynomial loop runs on the host (one
        kernel sequence per polynomial — no intra-ciphertext parallelism).
        """
        level = self.params.max_level if level is None else level
        plan = self._hmult_plan(level, batch)
        return run_serial(plan, self.device).elapsed_us / batch

    def hmult_throughput_kops(self, *, level: int = None,
                              batch: int = 32) -> float:
        return 1e3 / self.hmult_latency_us(level=level, batch=batch)

    def _hmult_plan(self, level: int, batch: int) -> List[KernelSpec]:
        from ..core import kernels as K

        n = self.params.n
        lvl = level + 1
        special = self.params.num_special
        dnum = min(self.params.dnum, lvl)
        plan: List[KernelSpec] = []
        # Tensor product: 3 separate batched Hadamard kernels.
        for name in ("d0", "d1", "d2"):
            plan.append(K.modmul_kernel(
                f"tf.hmult.{name}", n * lvl * batch,
                geometry=self.geometry, efficiency=_EFFICIENCY,
            ))
        # KeySwitch with 5-stage NTTs, polynomial loop on the host: each
        # digit's NTT is a separate 35-kernel sequence over the extended
        # basis (amortized over the ciphertext batch).
        ext = lvl + special
        plan += self.ntt.kernel_plan(lvl * batch)  # INTT input
        plan.append(K.modup_kernel(
            "tf.modup", n, -(-lvl // dnum), ext, polys=dnum * batch,
            geometry=self.geometry, efficiency=_EFFICIENCY,
        ))
        for d in range(dnum):
            plan += self.ntt.kernel_plan(ext * batch)
        plan.append(K.inner_product_kernel(
            "tf.inner_product", n, ext * batch, dnum,
            geometry=self.geometry, efficiency=_EFFICIENCY,
        ))
        plan += self.ntt.kernel_plan(ext * batch)  # INTT acc0
        plan += self.ntt.kernel_plan(ext * batch)  # INTT acc1
        for i in range(2):
            plan.append(K.moddown_kernel(
                f"tf.moddown{i}", n, lvl, special, polys=batch,
                geometry=self.geometry, efficiency=_EFFICIENCY,
            ))
        plan += self.ntt.kernel_plan(lvl * batch)  # NTT out0
        plan += self.ntt.kernel_plan(lvl * batch)  # NTT out1
        # Rescale.
        plan += self.ntt.kernel_plan(2 * lvl * batch)
        plan.append(K.elementwise_kernel(
            "tf.rescale.divide", n * (lvl - 1) * 2 * batch,
            ops_per_element=9, read_words=2, write_words=1,
            geometry=self.geometry, efficiency=_EFFICIENCY,
        ))
        plan += self.ntt.kernel_plan(2 * (lvl - 1) * batch)
        return plan
