"""Published comparator numbers for closed or unavailable systems.

Liberate.FHE [18], Cheddar [32], GME/GME-base [53], the CNN work [47] and
the original TensorFHE/100x workload rows are closed-source or require
hardware we cannot run (MI100 with microarchitectural modifications). The
paper compares against their *published* numbers; we embed exactly those
so the benchmark harness can print the same comparison rows next to our
simulated WarpDrive values. Everything in this module is data, clearly
attributed — no measurements are fabricated.
"""

from __future__ import annotations

from typing import Dict, Optional

#: Table VIII — latency (us) of key operations by scheme and parameter set.
TABLE_VIII_LATENCY_US: Dict[str, Dict[str, Dict[str, float]]] = {
    "HMULT": {
        "Liberate.FHE": {"SET-C": 6185, "SET-D": 9543, "SET-E": 25673},
        "TensorFHE_repl": {"SET-C": 847, "SET-D": 2893, "SET-E": 10986},
        "100x_fused": {"SET-C": 595, "SET-D": 1734, "SET-E": 5971},
        "100x_opt": {"SET-C": 504, "SET-D": 1642, "SET-E": 5571},
        "WarpDrive": {"SET-C": 277, "SET-D": 1089, "SET-E": 4284},
    },
    "HROTATE": {
        "Liberate.FHE": {"SET-C": 5832, "SET-D": 9164, "SET-E": 25263},
        "TensorFHE_repl": {"SET-C": 838, "SET-D": 2876, "SET-E": 11030},
        "100x_fused": {"SET-C": 579, "SET-D": 1693, "SET-E": 5871},
        "100x_opt": {"SET-C": 512, "SET-D": 1667, "SET-E": 5659},
        "WarpDrive": {"SET-C": 273, "SET-D": 1095, "SET-E": 4341},
    },
    "RESCALE": {
        "Liberate.FHE": {"SET-C": 572, "SET-D": 625, "SET-E": 790},
        "TensorFHE_repl": {"SET-C": 149, "SET-D": 355, "SET-E": 759},
        "100x_fused": {"SET-C": 107, "SET-D": 185, "SET-E": 406},
        "100x_opt": {"SET-C": 87, "SET-D": 181, "SET-E": 396},
        "WarpDrive": {"SET-C": 45, "SET-D": 100, "SET-E": 241},
    },
    "HADD": {
        "Liberate.FHE": {"SET-C": 62, "SET-D": 64, "SET-E": 66},
        "TensorFHE_repl": {"SET-C": 5.2, "SET-D": 11, "SET-E": 61},
        "100x_fused": {"SET-C": 13, "SET-D": 22, "SET-E": 82},
        "100x_opt": {"SET-C": 12, "SET-D": 21, "SET-E": 81.5},
        "WarpDrive": {"SET-C": 5.2, "SET-D": 11, "SET-E": 61},
    },
}

#: Table XI — Cheddar comparison (N=2^16, alpha=7), us.
TABLE_XI_CHEDDAR_US: Dict[str, Dict[str, Dict[str, float]]] = {
    "HADD": {
        "Cheddar": {"full": 78, "half": 32},
        "WarpDrive": {"full": 52.1, "half": 26.3},
    },
    "PMULT": {
        "Cheddar": {"full": 62, "half": 26},
        "WarpDrive": {"full": 45.3, "half": 19.9},
    },
    "HMULT": {
        "Cheddar": {"full": 890, "half": 395},
        "WarpDrive": {"full": 917, "half": 386},
    },
}

#: Table VII — published NTT/INTT throughput (KOPS).
TABLE_VII_NTT_KOPS: Dict[str, Dict[str, Optional[float]]] = {
    "CPU Baseline": {"SET-A": 7.2, "SET-B": 3.4, "SET-C": 1.6,
                     "SET-D": None, "SET-E": None},
    "TensorFHE": {"SET-A": 910, "SET-B": 450, "SET-C": 209,
                  "SET-D": 98.9, "SET-E": 48.3},
    "WarpDrive": {"SET-A": 12181, "SET-B": 4675, "SET-C": 2088,
                  "SET-D": 1009, "SET-E": 468},
}

#: Table XII — published HMULT throughput (KOPS).
TABLE_XII_HMULT_KOPS: Dict[str, Dict[str, float]] = {
    "CPU Baseline": {"SET-A": 0.42, "SET-B": 0.08, "SET-C": 0.02},
    "TensorFHE": {"SET-A": 88.0, "SET-B": 27.6, "SET-C": 3.8},
    "WarpDrive": {"SET-A": 304.9, "SET-B": 47.7, "SET-C": 5.2},
}

#: Table XIV — workload performance (amortized; Boot ms, HELR ms/iter,
#: ResNet s) with (scheme, hardware, batch) context.
TABLE_XIV_WORKLOADS: Dict[str, Dict[str, Optional[float]]] = {
    "TensorFHE (A100-SMX-40G)": {
        "boot_ms": 250, "helr_ms": 220, "resnet_s": 4.94, "batch": 64,
    },
    "WarpDrive BS=16 (A100-PCIE-80G)": {
        "boot_ms": 97, "helr_ms": 78, "resnet_s": 4.77, "batch": 16,
    },
    "100x (V100)": {
        "boot_ms": 328, "helr_ms": 775, "resnet_s": None, "batch": 1,
    },
    "[47] (A100-PCIE-80G)": {
        "boot_ms": 171, "helr_ms": None, "resnet_s": 8.58, "batch": 1,
    },
    "GME-Baseline (MI100)": {
        "boot_ms": 413, "helr_ms": 658, "resnet_s": 9.99, "batch": 1,
    },
    "GME (modified MI100)": {
        "boot_ms": 33.6, "helr_ms": 54.5, "resnet_s": 0.98, "batch": 1,
    },
    "WarpDrive BS=1 (A100-PCIE-80G)": {
        "boot_ms": 121, "helr_ms": 113, "resnet_s": 5.88, "batch": 1,
    },
}

#: Table XV — AES-CTR-128 transciphering of 512 KB.
TABLE_XV_TRANSCIPHER = {
    "CPU Baseline (Hygon C86 7265)": {"latency_min": 110.8},
    "WarpDrive (A100-PCIE-80G)": {"latency_min": 3.5},
}

#: Table II — published TensorFHE stall metrics (N=2^16, batch=1024).
TABLE_II_TENSORFHE_STALLS = {
    "Stage 1": {"stall_per_issued": 66.5, "memory_related_pct": 99.5,
                "lg_throttle_pct": 82.7, "long_scoreboard_pct": 4.6},
    "Stage 2": {"stall_per_issued": 48.0, "memory_related_pct": 62.4,
                "lg_throttle_pct": 0.5, "long_scoreboard_pct": 21.1},
    "Stage 3": {"stall_per_issued": 3.4, "memory_related_pct": 54.1,
                "lg_throttle_pct": 4.5, "long_scoreboard_pct": 43.1},
    "Stage 4": {"stall_per_issued": 48.0, "memory_related_pct": 62.4,
                "lg_throttle_pct": 0.5, "long_scoreboard_pct": 21.1},
    "Stage 5": {"stall_per_issued": 5.2, "memory_related_pct": 70.2,
                "lg_throttle_pct": 3.8, "long_scoreboard_pct": 60.7},
}

#: Table IX — published keyswitch kernel counts and utilizations.
TABLE_IX_KEYSWITCH = {
    "100x_opt": {
        "kernels": {"SET-C": 59, "SET-D": 90, "SET-E": 109},
        "compute_util": {"SET-C": 14.2, "SET-D": 24.5, "SET-E": 31.6},
        "memory_util": {"SET-C": 25.3, "SET-D": 47.0, "SET-E": 65.9},
    },
    "WarpDrive": {
        "kernels": {"SET-C": 11, "SET-D": 11, "SET-E": 11},
        "compute_util": {"SET-C": 26.6, "SET-D": 34.8, "SET-E": 35.6},
        "memory_util": {"SET-C": 53.6, "SET-D": 70.6, "SET-E": 79.4},
    },
}

#: Table X — published NTT utilization comparison.
TABLE_X_NTT_UTILIZATION = {
    "TensorFHE": {
        "compute_util": {"SET-C": 27.0, "SET-D": 30.0, "SET-E": 31.8},
        "memory_util": {"SET-C": 65.5, "SET-D": 73.1, "SET-E": 78.7},
    },
    "WarpDrive": {
        "compute_util": {"SET-C": 49.6, "SET-D": 56.8, "SET-E": 49.1},
        "memory_util": {"SET-C": 59.0, "SET-D": 65.9, "SET-E": 80.1},
    },
}

#: Table III — published 100x keyswitch kernel utilizations.
TABLE_III_100X_UTILIZATION = {
    "N=2^15": {
        "memory_util": {"NTT": 49.1, "ModUP": 43.0, "INTT": 17.6,
                        "ModDown": 30.9, "InProd": 83.4},
        "compute_util": {"NTT": 37.4, "ModUP": 36.7, "INTT": 19.7,
                         "ModDown": 49.9, "InProd": 20.2},
    },
    "N=2^16": {
        "memory_util": {"NTT": 58.3, "ModUP": 57.4, "INTT": 24.1,
                        "ModDown": 37.1, "InProd": 83.5},
        # The compute row of the N=2^16 block is cut off in the available
        # paper text; these values are interpolated from the N=2^15 block
        # scaled by the memory-row growth. Marked estimated in reports.
        "compute_util": {"NTT": 41.2, "ModUP": 41.5, "INTT": 26.3,
                         "ModDown": 52.8, "InProd": 24.8},
    },
}
