"""Baseline systems the paper compares against.

- :mod:`.tensorfhe` — structural reimplementation of TensorFHE's 5-stage
  kernel-level NTT (Algorithm 1) and operation batching;
- :mod:`.hundredx` — 100x's kernel-fused polynomial-level design (64-bit
  words on V100) plus the paper's 100x_opt variant;
- :mod:`.cpu_baseline` — calibrated single-core CPU model ([49]);
- :mod:`.published` — published numbers for closed systems (Liberate,
  Cheddar, GME, [47]) used verbatim by the comparison tables.
"""

from . import published
from .cpu_baseline import (
    hmult_latency_us as cpu_hmult_latency_us,
    hmult_throughput_kops as cpu_hmult_throughput_kops,
    ntt_latency_us as cpu_ntt_latency_us,
    ntt_throughput_kops as cpu_ntt_throughput_kops,
)
from .hundredx import HundredXOps
from .tensorfhe import TensorFheNtt, TensorFheOps

__all__ = [
    "HundredXOps",
    "TensorFheNtt",
    "TensorFheOps",
    "cpu_hmult_latency_us",
    "cpu_hmult_throughput_kops",
    "cpu_ntt_latency_us",
    "cpu_ntt_throughput_kops",
    "published",
]
