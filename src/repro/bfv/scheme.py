"""Functional BFV [21] on the WarpDrive substrate (§VI-B generality).

BFV is the *scale-invariant* exact scheme: messages ride in the high bits
(``Delta = floor(Q/t)``) so modulus switching is unnecessary, at the cost
of a scaled tensor product in multiplication::

    HMULT(ct_a, ct_b) = round( t/Q * (ct_a (x) ct_b) )  mod Q

The tensor product must be exact over the integers, so both ciphertexts
are lifted (with *signed* representatives) onto an auxiliary RNS basis
wide enough to hold ``N * (Q/2)^2``, multiplied there with the same NTT
machinery as everything else, scaled by ``t/Q`` with an exact
RNS division, and relinearized with the standard hybrid key-switch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence, Tuple

import numpy as np

from ..ckks.keys import KeyGenerator, KeySet
from ..ckks.keyswitch import keyswitch
from ..ckks.poly import COEFF, RnsPoly
from ..ckks.sampling import sample_error, sample_ternary
from ..ntt import negacyclic_intt, negacyclic_ntt
from ..ntt.tables import get_tables
from ..numtheory import CRTReconstructor, find_ntt_prime, modinv
from ..numtheory.rns import RNSBasis, extend_basis, extend_basis_signed


@dataclass(frozen=True)
class BfvParams:
    """Static parameters of one BFV instantiation."""

    n: int
    max_level: int = 3  # chain length knob (no rescaling in BFV)
    num_special: int = 2
    dnum: int = 2
    plain_bits: int = 17
    modulus_bits: int = 26
    base_bits: int = 31
    special_bits: int = 31
    error_std: float = 3.2
    secret_hamming_weight: int = 0
    name: str = ""

    def __post_init__(self):
        if self.n < 8 or self.n & (self.n - 1):
            raise ValueError("ring degree must be a power of two >= 8")
        if self.max_level < 1:
            raise ValueError("need at least one extra prime in the chain")

    @property
    def plain_modulus(self) -> int:
        return _plain_prime(self.plain_bits, self.n)

    @property
    def num_primes(self) -> int:
        return self.max_level + 1

    def chain(self):
        from ..bgv.params import _chain_for

        return _chain_for(
            self.n, self.max_level, self.num_special, self.base_bits,
            self.modulus_bits, self.special_bits,
        )

    @classmethod
    def toy(cls) -> "BfvParams":
        return cls(n=64, max_level=3, num_special=2, dnum=2,
                   plain_bits=13, modulus_bits=26, name="bfv-toy")


@lru_cache(maxsize=32)
def _plain_prime(bits: int, n: int) -> int:
    return find_ntt_prime(bits, n)


@dataclass
class BfvCiphertext:
    """BFV ciphertext: an RLWE pair over the full chain (no levels)."""

    c0: RnsPoly
    c1: RnsPoly

    @property
    def moduli(self):
        return self.c0.moduli


class BfvContext:
    """Keygen, encryption and homomorphic evaluation for BFV."""

    def __init__(self, params: BfvParams, *, seed: int = None):
        self.params = params
        self.rng = np.random.default_rng(seed)
        self.t = params.plain_modulus
        chain = params.chain()
        self.q_moduli = tuple(chain.moduli)
        self.p_moduli = tuple(chain.special_primes)
        self.q_product = chain.q_product(params.max_level)
        #: Delta = floor(Q / t): the message scale.
        self.delta = self.q_product // self.t
        self._keygen = KeyGenerator(params, self.rng)
        self._tables_t = get_tables(self.t, params.n)
        self._aux_moduli = self._build_aux_basis()

    def _build_aux_basis(self) -> Tuple[int, ...]:
        """Auxiliary primes for the tensor product: their product must
        exceed ``N * Q / 2 * t`` (the scaled product's magnitude over the
        Q-rows it joins)."""
        need_bits = (
            self.q_product.bit_length()
            + self.t.bit_length()
            + int(math.log2(self.params.n)) + 4
        )
        primes = []
        below = None
        bits_collected = 0
        taken = set(self.q_moduli) | set(self.p_moduli) | {self.t}
        while bits_collected < need_bits:
            p = find_ntt_prime(30, self.params.n, below=below)
            below = p
            if p in taken:
                continue
            primes.append(p)
            bits_collected += p.bit_length() - 1
        return tuple(primes)

    # -- keys ---------------------------------------------------------------------

    def keygen(self) -> KeySet:
        secret = self._keygen.generate_secret()
        return KeySet(
            secret=secret,
            public=self._keygen.generate_public(secret),
            relin=self._keygen.generate_relin(secret),
        )

    # -- encoding (same SIMD slots as BGV) --------------------------------------------

    def encode(self, values: Sequence[int]) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        if len(values) > self.params.n:
            raise ValueError(f"at most {self.params.n} slots")
        slots = np.zeros(self.params.n, dtype=np.uint64)
        slots[: len(values)] = np.mod(values, self.t).astype(np.uint64)
        return negacyclic_intt(slots, self._tables_t)

    def decode(self, coeffs: np.ndarray) -> np.ndarray:
        return negacyclic_ntt(
            coeffs.astype(np.uint64) % np.uint64(self.t), self._tables_t
        ).astype(np.int64)

    # -- encryption ------------------------------------------------------------------

    def encrypt(self, values: Sequence[int], keys: KeySet) -> BfvCiphertext:
        n = self.params.n
        moduli = self.q_moduli
        # Delta * m, per-prime via the big-int scalar.
        m_coeffs = self.encode(values)
        m = RnsPoly.from_signed(
            m_coeffs.astype(np.int64), moduli
        ).mul_scalar(self.delta).to_eval()
        v = RnsPoly.from_signed(sample_ternary(n, self.rng),
                                moduli).to_eval()
        e0 = RnsPoly.from_signed(
            sample_error(n, self.rng, std=self.params.error_std), moduli
        ).to_eval()
        e1 = RnsPoly.from_signed(
            sample_error(n, self.rng, std=self.params.error_std), moduli
        ).to_eval()
        pk_b = keys.public.b
        pk_a = keys.public.a
        return BfvCiphertext(
            c0=pk_b * v + e0 + m, c1=pk_a * v + e1
        )

    def decrypt(self, ct: BfvCiphertext, keys: KeySet) -> np.ndarray:
        s = keys.secret.poly.take_primes(range(len(self.q_moduli)))
        phase = (ct.c0 + ct.c1 * s).to_coeff()
        crt = CRTReconstructor(list(self.q_moduli))
        coeffs = crt.reconstruct_array(phase.data, signed=True)
        q = self.q_product
        t = self.t
        reduced = np.array(
            [((2 * t * int(c) + q) // (2 * q)) % t for c in coeffs],
            dtype=np.uint64,
        )
        slots = self.decode(reduced)
        centered = slots.copy()
        centered[centered > t // 2] -= t
        return centered

    # -- additive ops -------------------------------------------------------------------

    def hadd(self, a: BfvCiphertext, b: BfvCiphertext) -> BfvCiphertext:
        return BfvCiphertext(a.c0 + b.c0, a.c1 + b.c1)

    def hsub(self, a: BfvCiphertext, b: BfvCiphertext) -> BfvCiphertext:
        return BfvCiphertext(a.c0 - b.c0, a.c1 - b.c1)

    def negate(self, ct: BfvCiphertext) -> BfvCiphertext:
        return BfvCiphertext(-ct.c0, -ct.c1)

    def add_plain(self, ct: BfvCiphertext,
                  values: Sequence[int]) -> BfvCiphertext:
        m = RnsPoly.from_signed(
            self.encode(values).astype(np.int64), self.q_moduli
        ).mul_scalar(self.delta).to_eval()
        return BfvCiphertext(ct.c0 + m, ct.c1.copy())

    def pmult(self, ct: BfvCiphertext,
              values: Sequence[int]) -> BfvCiphertext:
        """Plaintext multiplication (unscaled plaintext: exact mod t)."""
        m = RnsPoly.from_signed(
            self.encode(values).astype(np.int64), self.q_moduli
        ).to_eval()
        return BfvCiphertext(ct.c0 * m, ct.c1 * m)

    # -- multiplication --------------------------------------------------------------------

    def hmult(self, a: BfvCiphertext, b: BfvCiphertext,
              keys: KeySet) -> BfvCiphertext:
        """Scale-invariant product with relinearization."""
        q_basis = RNSBasis(self.q_moduli)
        aux_basis = RNSBasis(self._aux_moduli)
        full_moduli = self.q_moduli + self._aux_moduli

        def lift(poly: RnsPoly) -> RnsPoly:
            coeff = poly.to_coeff()
            aux = extend_basis_signed(coeff.data, q_basis, aux_basis)
            data = np.concatenate([coeff.data, aux], axis=0)
            return RnsPoly(data, full_moduli, COEFF).to_eval()

        a0, a1 = lift(a.c0), lift(a.c1)
        b0, b1 = lift(b.c0), lift(b.c1)
        d0 = a0 * b0
        d1 = (a0 * b1).fma_(a1, b0)
        d2 = a1 * b1
        d0q = self._scale_to_q(d0)
        d1q = self._scale_to_q(d1)
        d2q = self._scale_to_q(d2)
        ks0, ks1 = keyswitch(d2q, keys.relin, self.p_moduli)
        return BfvCiphertext(d0q + ks0, d1q + ks1)

    def _scale_to_q(self, poly: RnsPoly) -> RnsPoly:
        """``round(t * x / Q) mod Q`` for ``x`` held exactly over Q+aux.

        Computed as an exact RNS division on the aux rows — subtract
        ``[t*x]_Q`` (known from the Q rows), divide by Q — then an exact
        conversion of the (small) quotient back onto the Q basis.
        """
        q_basis = RNSBasis(self.q_moduli)
        aux_basis = RNSBasis(self._aux_moduli)
        num_q = len(self.q_moduli)
        coeff = poly.to_coeff()
        tx_q = coeff.data[:num_q].copy()
        tx_aux = coeff.data[num_q:].copy()
        # Multiply by t on both row groups.
        for i, q in enumerate(self.q_moduli):
            tx_q[i] = q_basis.reducers[i].mul_vec(
                tx_q[i], np.uint64(self.t % q)
            )
        for i, p in enumerate(self._aux_moduli):
            tx_aux[i] = aux_basis.reducers[i].mul_vec(
                tx_aux[i], np.uint64(self.t % p)
            )
        # Remainder r = [t*x]_Q (centered for round-to-nearest-ish), then
        # quotient y = (t*x - r) / Q on the aux rows.
        r_on_aux = extend_basis_signed(tx_q, q_basis, aux_basis)
        y_aux = np.empty_like(tx_aux)
        for i, p in enumerate(self._aux_moduli):
            red = aux_basis.reducers[i]
            diff = red.sub_vec(tx_aux[i], r_on_aux[i])
            q_inv = modinv(self.q_product % p, p)
            y_aux[i] = red.mul_vec(diff, np.uint64(q_inv))
        # The quotient is small (|y| < t*N*Q / Q ~ t*N); convert exactly
        # back onto the Q basis with the signed representative.
        y_on_q = extend_basis_signed(y_aux, aux_basis, q_basis)
        return RnsPoly(y_on_q, self.q_moduli, COEFF).to_eval()
