"""BFV scheme on the WarpDrive substrate (the §VI-B generality claim)."""

from .scheme import BfvCiphertext, BfvContext, BfvParams

__all__ = ["BfvCiphertext", "BfvContext", "BfvParams"]
