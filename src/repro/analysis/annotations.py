"""Declarative safety annotations consumed by :mod:`repro.analysis.fhelint`.

The batched kernels of this library are correct only because a handful of
numeric invariants hold everywhere: lazy butterfly values stay inside
their ``[0, k*q)`` window, uint8 limb products fit the int32 tensor-core
accumulator, wide-dot partial sums never wrap uint64, eval-form stacks
never feed coefficient-form consumers, and compiled plans are never
mutated. These decorators let the module that *owns* an invariant state
it declaratively; ``python -m repro.analysis.fhelint`` then checks the
statements statically (see DESIGN.md §9 for the lattice and the checked
obligations).

At runtime every decorator is a no-op that records its arguments on the
function (``__fhelint__``) and returns it unchanged — zero overhead, no
imports beyond the standard library, safe to use from the lowest layers.

Vocabulary
----------
``@bounded(...)``
    Width/bounds contract of a numeric kernel. Keywords:

    ``dtype``
        Lane type the kernel computes in (``"uint64"`` default,
        ``"int32"`` for tensor-core accumulator paths). Sets the
        capacity every tracked intermediate must stay below.
    ``in_q`` / ``in_bits``
        Bound assumed for array parameters: values ``< in_q * q`` (with
        ``q < 2**31``) or ``< 2**in_bits``. Both may be given; the
        tighter one applies.
    ``max_q_multiple``
        The lazy-reduction window: no value stored back into a working
        buffer may exceed this many multiples of ``q``.
    ``out_q`` / ``out_bits``
        Bound the return value is proven to satisfy (``out_q_lazy``
        applies instead when the call site passes ``lazy=True``).
    ``max_lanes``
        Upper bound on the length of any reduced axis (``sum`` /
        ``@``-contraction) inside the kernel; accumulator capacity is
        checked as ``operand_bits + log2(max_lanes)``.
    ``params``
        Per-parameter overrides: ``{"w": {"bits": 31}}``. Keys may be
        dotted (``"stack.omega": {"q": 1}``) to bound attributes of a
        parameter object. Specs: ``q`` (``< k*q``), ``bits``
        (``< 2**b``), ``ubound`` (exact exclusive bound), ``shoup``
        (a Shoup companion table below ``2**b``), ``modulus`` (the
        exact modulus column itself).
    ``passthrough``
        Name of the parameter whose bound the return value inherits
        verbatim (shape-check helpers that return their input).
    ``assume``
        Mark a trusted primitive (e.g. the Barrett partial-product
        assembly): its *declared* bounds seed callers, but its body is
        exempt from interval checking — these are the lattice's axioms,
        covered by the scalar-vs-vector property tests instead.

``@coeff_form`` / ``@eval_form``
    The returned polynomial/stack is in coefficient or NTT (slot)
    representation.
``@montgomery_domain`` / ``@standard_domain``
    The returned values carry (or don't) the Montgomery ``R`` factor.
``@takes_form(x="coeff", ...)`` / ``@takes_domain(w="montgomery", ...)``
    Representation each named parameter must arrive in (``"self"``
    names the receiver of a method).
``@frozen``
    Class decorator: instances are compiled plans — immutable after
    ``__init__``/``__post_init__``. Any later ``self.attr = ...`` or
    ``self.attr[...] = ...`` is a finding.
``@returns_view``
    Acknowledges that the function intentionally returns a view of
    internal/cached state (read-only by construction); suppresses the
    aliased-return rule at this definition.
``@exact_oracle``
    Marks a deliberately slow, exact reference implementation (Python
    bigints, ``dtype=object``): its arbitrary-precision arithmetic is
    the point, not a silent fallback, so the object-dtype rule (B-OBJ)
    does not apply inside its body. Use only on O(N^2)-style ground
    truths that the fast kernels are tested against — never on a
    production path.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

FHELINT_ATTR = "__fhelint__"

#: Representation tags of the coefficient/evaluation axis.
FORM_TAGS = ("coeff", "eval")
#: Representation tags of the Montgomery/standard axis.
DOMAIN_TAGS = ("montgomery", "standard")


def _meta(obj: Any) -> Dict[str, Any]:
    meta = getattr(obj, FHELINT_ATTR, None)
    if meta is None:
        meta = {}
        setattr(obj, FHELINT_ATTR, meta)
    return meta


def bounded(*, dtype: str = "uint64", in_q: Optional[float] = None,
            in_bits: Optional[int] = None,
            max_q_multiple: Optional[float] = None,
            out_q: Optional[float] = None, out_bits: Optional[int] = None,
            out_q_lazy: Optional[float] = None,
            max_lanes: Optional[int] = None,
            params: Optional[Dict[str, Dict[str, float]]] = None,
            passthrough: Optional[str] = None,
            assume: bool = False) -> Callable:
    """Width/bounds contract — see the module docstring."""
    spec = {
        "dtype": dtype, "in_q": in_q, "in_bits": in_bits,
        "max_q_multiple": max_q_multiple, "out_q": out_q,
        "out_bits": out_bits, "out_q_lazy": out_q_lazy,
        "max_lanes": max_lanes, "params": params or {},
        "passthrough": passthrough, "assume": assume,
    }

    def deco(func: Callable) -> Callable:
        _meta(func)["bounded"] = spec
        return func

    return deco


def _form_deco(tag: str) -> Callable:
    def deco(func: Callable) -> Callable:
        _meta(func)["returns_form"] = tag
        return func

    return deco


def _domain_deco(tag: str) -> Callable:
    def deco(func: Callable) -> Callable:
        _meta(func)["returns_domain"] = tag
        return func

    return deco


#: The returned poly/stack is in coefficient representation.
coeff_form = _form_deco("coeff")
#: The returned poly/stack is in NTT (evaluation) representation.
eval_form = _form_deco("eval")
#: The returned values carry the Montgomery ``R`` factor.
montgomery_domain = _domain_deco("montgomery")
#: The returned values are plain (no ``R`` factor).
standard_domain = _domain_deco("standard")


def takes_form(**param_forms: str) -> Callable:
    """Declare the coeff/eval form each named parameter must arrive in."""
    for tag in param_forms.values():
        if tag not in FORM_TAGS:
            raise ValueError(f"unknown form tag {tag!r}")

    def deco(func: Callable) -> Callable:
        _meta(func).setdefault("takes_form", {}).update(param_forms)
        return func

    return deco


def takes_domain(**param_domains: str) -> Callable:
    """Declare the Montgomery/standard domain of each named parameter."""
    for tag in param_domains.values():
        if tag not in DOMAIN_TAGS:
            raise ValueError(f"unknown domain tag {tag!r}")

    def deco(func: Callable) -> Callable:
        _meta(func).setdefault("takes_domain", {}).update(param_domains)
        return func

    return deco


def frozen(cls: type) -> type:
    """Mark a compiled-plan class immutable after construction."""
    _meta(cls)["frozen"] = True
    return cls


def returns_view(func: Callable) -> Callable:
    """Bless an intentional view-returning function (read-only views)."""
    _meta(func)["returns_view"] = True
    return func


def exact_oracle(func: Callable) -> Callable:
    """Mark an exact bigint reference oracle (module docstring)."""
    _meta(func)["exact_oracle"] = True
    return func
