"""Reporting and comparison helpers for the benchmark harness."""

from .metrics import kops_from_us, us_from_kops, within_factor
from .report import (
    dagcheck_gate_summary,
    format_table,
    lint_gate_summary,
    paper_vs_measured,
    shape_check,
    speedup_row,
)

__all__ = [
    "dagcheck_gate_summary",
    "format_table",
    "kops_from_us",
    "lint_gate_summary",
    "paper_vs_measured",
    "shape_check",
    "speedup_row",
    "us_from_kops",
    "within_factor",
]
