"""CLI: ``python -m repro.analysis.dagcheck``.

Runs the full catalog verification plus the mutation-kill battery,
writes the JSON report consumed by CI (``ANALYSIS_dagcheck.json``) and
exits non-zero on any finding, surviving mutation or loose certificate.
"""

from __future__ import annotations

import argparse
import sys

from .runner import run_dagcheck


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.dagcheck",
        description="static ciphertext-semantics, noise-budget and "
                    "schedule-legality verification over recorded traces",
    )
    parser.add_argument("--json", default="ANALYSIS_dagcheck.json",
                        help="JSON report path (default %(default)s; "
                             "'-' disables)")
    parser.add_argument("--format", choices=("text", "github"),
                        default="text",
                        help="finding output format (github = workflow "
                             "error annotations)")
    parser.add_argument("--workload", action="append", dest="names",
                        help="restrict to one catalog workload "
                             "(repeatable)")
    parser.add_argument("--no-optimizer", action="store_true",
                        help="skip optimizer-output surfaces")
    parser.add_argument("--no-search", action="store_true",
                        help="skip schedule_search surfaces")
    parser.add_argument("--no-memory", action="store_true",
                        help="skip HBM certificates")
    parser.add_argument("--no-mutations", action="store_true",
                        help="skip the mutation-kill battery")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the text report")
    args = parser.parse_args(argv)

    result = run_dagcheck(
        optimizer=not args.no_optimizer,
        search=not args.no_search,
        memory=not args.no_memory,
        mutations=not args.no_mutations,
        names=args.names,
    )
    if args.json != "-":
        result.write_json(args.json)
    if args.format == "github":
        rendered = result.render(fmt="github")
        if rendered:
            print(rendered)
        if not args.quiet:
            print(result.render(), file=sys.stderr)
    elif not args.quiet:
        print(result.render())
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
