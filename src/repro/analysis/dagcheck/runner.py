"""Catalog-wide dagcheck runner: results, JSON report, CI gate."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..fhelint.findings import DAG_RULES, Finding
from .catalog import WorkloadReport, run_catalog
from .mutations import MUTATIONS, forge

#: Certificate tightness bound asserted by CI: the static peak-HBM
#: certificate must not exceed the observed peak by more than this.
CERT_SLACK = 1.25


@dataclass
class DagcheckResult:
    """One full dagcheck run over the catalog."""

    reports: Dict[str, WorkloadReport] = field(default_factory=dict)
    #: forge name -> number of expected-rule findings it produced.
    mutation_kills: Dict[str, int] = field(default_factory=dict)

    @property
    def findings(self) -> List[Finding]:
        out: List[Finding] = []
        for report in self.reports.values():
            out.extend(report.findings)
        return out

    @property
    def surviving_mutations(self) -> List[str]:
        """Forges the checker failed to catch — must be empty."""
        return sorted(n for n, k in self.mutation_kills.items() if k == 0)

    @property
    def loose_certificates(self) -> List[str]:
        """Workloads whose HBM certificate is not in
        ``[observed, CERT_SLACK * observed]``."""
        bad = []
        for name, report in self.reports.items():
            ratio = report.cert_ratio()
            if ratio is not None and not 1.0 <= ratio <= CERT_SLACK:
                bad.append(name)
        return sorted(bad)

    @property
    def exit_code(self) -> int:
        if self.findings or self.surviving_mutations:
            return 1
        if self.loose_certificates:
            return 1
        return 0

    def rule_counts(self) -> Dict[str, int]:
        out = {rule: 0 for rule in DAG_RULES}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return out

    def render(self, *, fmt: str = "text") -> str:
        if fmt == "github":
            return "\n".join(
                f"::error file={f.path},line={f.line}::"
                f"[{f.rule}] {f.func}: {f.message}"
                for f in self.findings
            )
        lines: List[str] = []
        for name, report in sorted(self.reports.items()):
            status = "CLEAN" if report.clean else \
                f"{len(report.findings)} finding(s)"
            cert = ""
            if report.certificate is not None:
                cert = f", hbm cert {report.certificate.peak_gib:.3f} GiB"
                ratio = report.cert_ratio()
                if ratio is not None:
                    cert += f" ({ratio:.2f}x observed)"
            lines.append(
                f"{name}: {status} over "
                f"{len(report.surfaces)} surface(s){cert}")
            lines.extend("  " + f.render() for f in report.findings)
        for name in sorted(self.mutation_kills):
            kills = self.mutation_kills[name]
            verdict = "KILLED" if kills else "SURVIVED"
            lines.append(f"mutation {name}: {verdict} ({kills} finding(s))")
        verdict = "PASS" if self.exit_code == 0 else "FAIL"
        lines.append(f"[{verdict}] dagcheck: {len(self.findings)} "
                     f"finding(s), {len(self.surviving_mutations)} "
                     "surviving mutation(s)")
        return "\n".join(lines)

    def to_json(self) -> Dict:
        return {
            "version": 1,
            "rules": dict(DAG_RULES),
            "rule_counts": self.rule_counts(),
            "findings": [f.to_json() for f in self.findings],
            "mutation_kills": dict(self.mutation_kills),
            "surviving_mutations": self.surviving_mutations,
            "certificates": {
                name: {
                    "peak_bytes": report.certificate.peak_bytes,
                    "observed_peak_bytes": report.observed_peak,
                    "ratio": report.cert_ratio(),
                    "nodes": report.certificate.node_count,
                }
                for name, report in sorted(self.reports.items())
                if report.certificate is not None
            },
            "workloads": {
                name: {
                    "surfaces": report.surfaces,
                    "findings": len(report.findings),
                }
                for name, report in sorted(self.reports.items())
            },
            "exit_code": self.exit_code,
        }

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")


def run_dagcheck(*, optimizer: bool = True, search: bool = True,
                 memory: bool = True, mutations: bool = True,
                 names: Optional[List[str]] = None) -> DagcheckResult:
    """The full catalog run plus the mutation-kill battery.

    Mutations are forged against the smallest catalog trace that
    supports each forge (the ResNet block where possible) so the kill
    battery stays cheap relative to the catalog sweep.
    """
    result = DagcheckResult(
        reports=run_catalog(optimizer=optimizer, search=search,
                            memory=memory, names=names))
    if mutations:
        from .catalog import CATALOG
        recorders = CATALOG()
        small = recorders["resnet_block"]()
        big = recorders["aes_transcipher"]()
        for name in MUTATIONS:
            trace = small
            try:
                found = forge(name, trace)
            except ValueError:
                trace = big
                found = forge(name, trace)
            result.mutation_kills[name] = len(found)
    return result
