"""Ciphertext-semantics rules: level, domain, scale, rescale, keys.

All checks run over ``trace.expanded()`` — primitive granularity — so
optimizer-fused events are verified through their constituents and the
recorded scale tags survive fusion.  Every rule is an abstract
interpretation along data dependencies; none requires replaying the
workload.

Conventions established by the recorder (:mod:`repro.ckks`):

* ``divide`` events carry the **input** level; the output sits at
  ``level - drop`` and has ``rows = level + 1 - drop`` residue rows per
  polynomial.  The divisor is the product of the dropped (topmost)
  primes of the input chain.
* The only legitimate level *raise* is bootstrap's ModRaise, recognised
  by the ``ModRaise``/``mod_raise`` span component.
* Scale tags (:attr:`~repro.trace.ir.TraceEvent.scale`) appear on
  ciphertext-producing stages; key-switch interior stages are untagged
  and pass their input scale through.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from ..fhelint.findings import Finding
from ...trace.ir import ELEMENTWISE_KINDS, OpTrace, TraceEvent

#: Relative tolerance for scale agreement at additions.
SCALE_RTOL = 1e-6

#: Span components that legitimise a level raise along a data dep.
_RAISE_SPANS = ("ModRaise", "mod_raise")

#: Output domain per kind; element-wise kinds join their inputs.
_OUT_DOMAIN = {
    "ntt": "eval",
    "intt": "coeff",
    "modup": "coeff",
    "moddown": "coeff",
    "divide": "coeff",
    "inner_product": "eval",
    "automorphism": "eval",
}

#: Required input domain per kind (element-wise kinds accept either but
#: must not mix).
_IN_DOMAIN = {
    "ntt": "coeff",
    "intt": "eval",
    "modup": "coeff",
    "moddown": "coeff",
    "inner_product": "eval",
    "automorphism": "eval",
}


def _finding(rule: str, trace: OpTrace, event: TraceEvent,
             message: str) -> Finding:
    return Finding(rule=rule, path=trace.label or "<trace>", line=event.eid,
                   func=event.op or event.kind, message=message)


def _allows_raise(event: TraceEvent) -> bool:
    return any(tag in event.op for tag in _RAISE_SPANS)


def divide_divisor(trace: OpTrace, event: TraceEvent) -> Optional[float]:
    """The exact scale divisor of a ``divide`` event, from the trace's
    parameter chain; ``None`` when parameters are unavailable."""
    params = trace.params
    if params is None or event.level is None:
        return None
    moduli = params.chain().moduli
    drop = event.shape.get("drop", 1)
    lo = event.level + 1 - drop
    if lo < 0 or event.level + 1 > len(moduli):
        return None
    div = 1.0
    for i in range(lo, event.level + 1):
        div *= moduli[i]
    return div


class ScaleMap:
    """Abstract CKKS scale per event, propagated along data deps.

    An event's scale is its own tag when present; a ``divide`` maps its
    input scale through the exact divisor; untagged events inherit the
    unique known dependency scale (disagreeing or absent inputs yield
    *unknown*, which silences downstream checks rather than guessing).
    """

    def __init__(self, trace: OpTrace):
        self.trace = trace
        self.scales: Dict[int, Optional[float]] = {}
        for e in trace.events:
            self.scales[e.eid] = self._infer(e)

    def _infer(self, e: TraceEvent) -> Optional[float]:
        dep_scales = [self.scales[d] for d in e.deps
                      if self.scales.get(d) is not None]
        if e.kind == "divide":
            div = divide_divisor(self.trace, e)
            if div is None or not dep_scales:
                return None
            return dep_scales[0] / div
        if e.scale is not None:
            return e.scale
        known = set(dep_scales)
        return known.pop() if len(known) == 1 else None

    def __getitem__(self, eid: int) -> Optional[float]:
        return self.scales.get(eid)


def _check_levels(trace: OpTrace, out: List[Finding]) -> None:
    """D-LVL: level monotonicity and prime-count bookkeeping."""
    params = trace.params
    num_special = getattr(params, "num_special", None)
    by_eid = {e.eid: e for e in trace.events}
    for e in trace.events:
        if e.level is None:
            continue
        for d in e.deps:
            dep = by_eid.get(d)
            if dep is None or dep.level is None:
                continue
            if e.level > dep.level and not _allows_raise(e):
                out.append(_finding(
                    "D-LVL", trace, e,
                    f"level raised {dep.level} -> {e.level} along dep "
                    f"eid {d} outside a ModRaise span"))
        L1 = e.level + 1
        if e.kind == "automorphism":
            primes = e.shape.get("primes")
            if primes is not None and primes != L1:
                out.append(_finding(
                    "D-LVL", trace, e,
                    f"automorphism over {primes} primes at level "
                    f"{e.level} (expected {L1})"))
        elif e.kind == "inner_product" and e.key and num_special is not None:
            primes = e.shape.get("primes")
            expect = L1 + num_special
            if primes is not None and primes != expect:
                out.append(_finding(
                    "D-LVL", trace, e,
                    f"keyed inner product over {primes} primes at level "
                    f"{e.level} (expected {expect} incl. "
                    f"{num_special} special)"))
        elif e.kind == "divide":
            rows = e.shape.get("rows")
            drop = e.shape.get("drop", 1)
            if rows is not None and rows != L1 - drop:
                out.append(_finding(
                    "D-LVL", trace, e,
                    f"divide produced {rows} rows at input level "
                    f"{e.level} dropping {drop} (expected {L1 - drop})"))
        elif e.kind in ("modadd", "modmul", "tensor_product"):
            rows = e.shape.get("rows")
            if rows is not None and rows > 0 and rows % L1 != 0:
                out.append(_finding(
                    "D-LVL", trace, e,
                    f"{e.kind} over {rows} rows is not a whole number of "
                    f"polynomials at level {e.level} ({L1} primes)"))


def _check_domains(trace: OpTrace, out: List[Finding]) -> None:
    """D-CEV: coeff/eval domain discipline along data paths."""
    domain: Dict[int, Optional[str]] = {}
    for e in trace.events:
        dep_domains = [(d, domain.get(d)) for d in e.deps]
        need = _IN_DOMAIN.get(e.kind)
        if need is not None:
            for d, dd in dep_domains:
                if dd is not None and dd != need:
                    out.append(_finding(
                        "D-CEV", trace, e,
                        f"{e.kind} consumes {dd}-domain data from eid {d} "
                        f"(needs {need})"))
        if e.kind in _OUT_DOMAIN:
            domain[e.eid] = _OUT_DOMAIN[e.kind]
        else:
            known = {dd for _, dd in dep_domains if dd is not None}
            if len(known) > 1:
                out.append(_finding(
                    "D-CEV", trace, e,
                    f"{e.kind} mixes coeff- and eval-domain inputs"))
                domain[e.eid] = None
            elif known:
                domain[e.eid] = known.pop()
            else:
                # Sources are ciphertext inputs, which live in eval form.
                domain[e.eid] = "eval" if not e.deps else None


def _check_scales(trace: OpTrace, scales: ScaleMap,
                  out: List[Finding]) -> None:
    """D-SCL: scale agreement at tagged additions and exact divides."""
    for e in trace.events:
        if e.kind == "modadd" and e.scale is not None:
            for d in e.deps:
                ds = scales[d]
                if ds is not None and not math.isclose(
                        ds, e.scale, rel_tol=SCALE_RTOL):
                    out.append(_finding(
                        "D-SCL", trace, e,
                        f"operand eid {d} scale 2^{math.log2(ds):.2f} != "
                        f"result scale 2^{math.log2(e.scale):.2f} at "
                        "addition"))
        elif e.kind == "divide" and e.scale is not None:
            div = divide_divisor(trace, e)
            dep_scales = [scales[d] for d in e.deps
                          if scales[d] is not None]
            if div is not None and dep_scales:
                expect = dep_scales[0] / div
                if not math.isclose(expect, e.scale, rel_tol=SCALE_RTOL):
                    out.append(_finding(
                        "D-SCL", trace, e,
                        f"divide tagged 2^{math.log2(e.scale):.2f} but "
                        f"input/divisor give 2^{math.log2(expect):.2f}"))


def _check_rescale_placement(trace: OpTrace, out: List[Finding]) -> None:
    """D-RES: a tensor product must never consume an unrescaled tensor
    product — the squared scale would square again and exhaust the
    modulus.  Propagates a boolean *tensor-pending* flag that only a
    ``divide`` (rescale) clears."""
    pending: Dict[int, bool] = {}
    for e in trace.events:
        dep_pending = any(pending.get(d, False) for d in e.deps)
        if e.kind == "tensor_product":
            if dep_pending:
                out.append(_finding(
                    "D-RES", trace, e,
                    "tensor product consumes a tensor-product result with "
                    "no rescale on the path"))
            pending[e.eid] = True
        elif e.kind == "divide":
            pending[e.eid] = False
        else:
            pending[e.eid] = dep_pending


def _check_keys(trace: OpTrace, out: List[Finding]) -> None:
    """D-KEY: automorphism steps against the declared rotation-key set."""
    if trace.rotations is None:
        return
    declared = set(trace.rotations)
    for e in trace.events:
        if e.kind != "automorphism":
            continue
        missing = sorted(set(e.args) - declared)
        if missing:
            out.append(_finding(
                "D-KEY", trace, e,
                f"automorphism step(s) {missing} have no declared "
                "rotation key (-1 = conjugation)"))


def check_semantics(trace: OpTrace) -> List[Finding]:
    """All ciphertext-semantics rules over one (possibly optimized) trace."""
    ex = trace.expanded()
    out: List[Finding] = []
    _check_levels(ex, out)
    _check_domains(ex, out)
    _check_scales(ex, ScaleMap(ex), out)
    _check_rescale_placement(ex, out)
    _check_keys(ex, out)
    return out
