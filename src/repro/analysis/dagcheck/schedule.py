"""D-SCH: schedule legality without replay.

Three layers of proof, cheapest first:

* :func:`check_trace_schedule` — in a (possibly optimizer-permuted)
  trace, every data dependency must be *positioned* before its
  dependent.  ``validate_trace`` raises on this; here it is a finding so
  a forged reorder is reported, not crashed on.
* :func:`check_dag_schedule` — the lowered :class:`KernelDag` invariant:
  node dependency indices strictly below the node's own index
  (``run_dag`` launches in index order, so this *is* executability).
* :func:`happens_before_certificate` — the full certificate: ancestor
  bitsets (arbitrary-width Python ints) close the dependency relation
  transitively, then every trace-level data dep is checked to be an
  ancestor of (or co-located with) the node realizing the dependent
  event.  This proves any legal execution of the DAG replays the
  recorded data flow — the property ``schedule_search`` permutations
  must preserve — in O(V·E/64) without running the simulator.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..fhelint.findings import Finding
from ...trace.ir import OpTrace
from ...trace.lowering import KernelDag


def check_trace_schedule(trace: OpTrace) -> List[Finding]:
    """Findings for deps that do not precede their dependents in order."""
    ex = trace.expanded()
    pos: Dict[int, int] = {}
    out: List[Finding] = []
    for i, e in enumerate(ex.events):
        for d in e.deps:
            where = pos.get(d)
            if where is None or where >= i:
                out.append(Finding(
                    rule="D-SCH", path=ex.label or "<trace>", line=e.eid,
                    func=e.op or e.kind,
                    message=(
                        f"event at position {i} depends on eid {d} which "
                        + ("does not precede it"
                           if where is None else
                           f"is positioned later (at {where})")),
                ))
        pos[e.eid] = i
    return out


def check_dag_schedule(dag: KernelDag) -> List[Finding]:
    """Findings for lowered-DAG nodes whose deps are not earlier nodes."""
    out: List[Finding] = []
    for i, node in enumerate(dag.nodes):
        bad = sorted(d for d in node.deps if not 0 <= d < i)
        if bad:
            out.append(Finding(
                rule="D-SCH", path=dag.label or "<dag>", line=i,
                func=node.op,
                message=(
                    f"node {i} ({node.spec.name}) depends on node(s) "
                    f"{bad} not scheduled before it"),
            ))
    return out


def happens_before_certificate(dag: KernelDag,
                               trace: OpTrace) -> List[Finding]:
    """Prove the DAG's dependency closure covers the trace's data flow.

    Returns an empty list when, for every trace event ``e`` realized by
    node ``i`` and every data dep ``d`` of ``e``, the node realizing
    ``d`` is ``i`` itself or a transitive ancestor of ``i`` — i.e. every
    legal topological execution of the DAG observes the recorded
    happens-before relation.
    """
    ex = trace.expanded()
    realizes: Dict[int, int] = {}
    for i, node in enumerate(dag.nodes):
        for eid in node.eids:
            realizes[eid] = i

    anc: List[int] = []
    for i, node in enumerate(dag.nodes):
        mask = 0
        for d in node.deps:
            if 0 <= d < i:
                mask |= anc[d] | (1 << d)
        anc.append(mask)

    out: List[Finding] = []
    for e in ex.events:
        i = realizes.get(e.eid)
        if i is None:
            continue  # elided by lowering (folded into another launch)
        for d in e.deps:
            j = realizes.get(d)
            if j is None or j == i:
                continue
            if not (anc[i] >> j) & 1:
                out.append(Finding(
                    rule="D-SCH", path=dag.label or "<dag>", line=i,
                    func=e.op or e.kind,
                    message=(
                        f"no happens-before: node {j} (producing eid {d}) "
                        f"is not an ancestor of node {i} (consuming it "
                        f"via eid {e.eid})"),
                ))
    return out
