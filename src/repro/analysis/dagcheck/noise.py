"""D-NSE: interval-abstract noise walk over a trace DAG.

An abstract-interpretation counterpart of
:class:`~repro.ckks.noise.NoiseEstimator`: instead of tracking one noise
standard deviation alongside a live ciphertext, the walker propagates a
``[lo, hi]`` *interval* of plausible noise std per trace event, applying
the estimator's per-operation effects along data dependencies:

* sources (events with no writer dependency) start at fresh-encryption
  noise;
* additions combine in quadrature;
* tensor products apply the full HMULT estimate using the recorded scale
  tags for the message-magnitude terms;
* keyed inner products add one hybrid key-switch noise in quadrature;
* divides (rescale) divide by the exact dropped-prime product and add
  the rounding term.

A finding fires only when the interval's **lower** bound already
exhausts the modulus budget at the event's level — i.e. even the most
optimistic reading of the abstraction says decryption would fail.  The
estimator itself is kept honest against ``measured_noise_bits`` golden
tests (``tests/ckks/test_noise_golden.py``), which transitively anchors
this walker.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..fhelint.findings import Finding
from ...ckks.noise import NoiseEstimator
from ...trace.ir import OpTrace
from .semantics import ScaleMap, divide_divisor


@dataclass(frozen=True)
class NoiseInterval:
    """Interval of plausible noise standard deviations."""

    lo: float
    hi: float

    @property
    def lo_bits(self) -> float:
        return math.log2(max(2.0, 6.0 * self.lo))

    @property
    def hi_bits(self) -> float:
        return math.log2(max(2.0, 6.0 * self.hi))


class NoiseWalk:
    """The per-event noise intervals of one trace."""

    def __init__(self, trace: OpTrace):
        if trace.params is None:
            raise ValueError("noise walk needs trace.params")
        self.trace = trace
        self.params = trace.params
        self.est = NoiseEstimator(self.params)
        self.scales = ScaleMap(trace)
        self.intervals: Dict[int, NoiseInterval] = {}
        self._ks = self.est.keyswitch_noise()
        self._default_scale = float(self.params.scale)
        for e in trace.events:
            self.intervals[e.eid] = self._step(e)

    def _dep_ivals(self, e) -> List[NoiseInterval]:
        return [self.intervals[d] for d in e.deps if d in self.intervals]

    def _step(self, e) -> NoiseInterval:
        deps = self._dep_ivals(e)
        if not deps:
            fresh = self.est.fresh().std
            return NoiseInterval(fresh, fresh)
        if e.kind == "modadd":
            lo = math.hypot(*[d.lo for d in deps]) if len(deps) > 1 \
                else deps[0].lo
            hi = math.hypot(*[d.hi for d in deps]) if len(deps) > 1 \
                else deps[0].hi
            return NoiseInterval(lo, hi)
        if e.kind == "tensor_product":
            return self._tensor(e, deps)
        if e.kind == "inner_product" and e.key:
            worst = max(deps, key=lambda d: d.hi)
            best = min(deps, key=lambda d: d.lo)
            return NoiseInterval(math.hypot(best.lo, self._ks),
                                 math.hypot(worst.hi, self._ks))
        if e.kind == "divide":
            div = divide_divisor(self.trace, e) or 1.0
            rounding = 0.5 * self.est.sqrt_n
            worst = max(deps, key=lambda d: d.hi)
            best = min(deps, key=lambda d: d.lo)
            return NoiseInterval(math.hypot(best.lo / div, rounding),
                                 math.hypot(worst.hi / div, rounding))
        # Pass-through stages (ntt/intt/modup/moddown/modmul/automorphism/
        # keyless inner products): the interval hull of the inputs.
        return NoiseInterval(min(d.lo for d in deps),
                             max(d.hi for d in deps))

    def _tensor(self, e, deps: List[NoiseInterval]) -> NoiseInterval:
        # Message magnitudes from the recorded scale tags: the event's
        # own tag is the product scale; operand scales fall back to the
        # parameter-set scale when untagged.
        op_scales = [self.scales[d] or self._default_scale for d in e.deps]
        while len(op_scales) < 2:
            op_scales.append(self._default_scale)
        m_a, m_b = op_scales[0], op_scales[1]
        a = deps[0]
        b = deps[1] if len(deps) > 1 else deps[0]

        def combine(sa: float, sb: float) -> float:
            # hypot instead of sqrt-of-squares: scales internally, so a
            # forged 2^200-scale chain saturates instead of overflowing.
            cross = math.hypot(sa * m_b, sb * m_a)
            product = sa * sb * self.est.sqrt_n
            return math.hypot(cross, product, self._ks)

        return NoiseInterval(combine(a.lo, b.lo), combine(a.hi, b.hi))

    def budget_bits(self, level: int) -> float:
        """log2 of the modulus product at ``level``."""
        return math.log2(self.params.chain().q_product(level))


def check_noise(trace: OpTrace) -> List[Finding]:
    """D-NSE findings: events whose optimistic noise bound already
    exceeds the modulus budget at their level."""
    ex = trace.expanded()
    if ex.params is None:
        return []
    walk = NoiseWalk(ex)
    out: List[Finding] = []
    budget_cache: Dict[int, float] = {}
    for e in ex.events:
        if e.level is None:
            continue
        ival = walk.intervals[e.eid]
        budget = budget_cache.get(e.level)
        if budget is None:
            budget = walk.budget_bits(e.level)
            budget_cache[e.level] = budget
        if ival.lo_bits >= budget:
            out.append(Finding(
                rule="D-NSE", path=ex.label or "<trace>", line=e.eid,
                func=e.op or e.kind,
                message=(
                    f"noise lower bound {ival.lo_bits:.1f} bits exhausts "
                    f"the {budget:.1f}-bit modulus at level {e.level}"),
            ))
    return out
