"""Mutation forges: known-illegal variants the checker must catch.

Each forge takes a *clean* recorded trace (and, for the pool mutation, a
lowered DAG), produces a minimally mutated artifact and runs exactly the
rule that should catch it.  The CI gate asserts every forge yields at
least one finding of its expected rule while the unmutated inputs stay
clean — the mutation-kill property that keeps the checker honest: a rule
that silently stops firing fails the build, not just a unit test.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from ..fhelint.findings import Finding
from ...trace.ir import OpTrace, TraceEvent
from ...trace.lowering import KernelDag
from .memory import check_hbm_budget, static_hbm_certificate
from .noise import check_noise
from .schedule import check_trace_schedule
from .semantics import check_semantics


def _events(trace: OpTrace) -> List[TraceEvent]:
    return list(trace.expanded().events)


def forge_illegal_reorder(trace: OpTrace) -> List[Finding]:
    """Move an event in front of one of its dependencies (D-SCH)."""
    events = _events(trace)
    pos = {e.eid: i for i, e in enumerate(events)}
    for e in events:
        if e.deps:
            dep_pos = pos[e.deps[-1]]
            my_pos = pos[e.eid]
            if dep_pos < my_pos:
                events.insert(dep_pos, events.pop(my_pos))
                break
    else:
        raise ValueError("trace has no dependent event to reorder")
    mutated = dataclasses.replace(trace, events=tuple(events))
    return [f for f in check_trace_schedule(mutated) if f.rule == "D-SCH"]


def forge_scale_mismatch(trace: OpTrace) -> List[Finding]:
    """Double the recorded result scale of one addition (D-SCL)."""
    base = _events(trace)
    for i, e in enumerate(base):
        if e.kind != "modadd" or e.scale is None or not e.deps:
            continue
        events = list(base)
        events[i] = dataclasses.replace(e, scale=e.scale * 2.0)
        mutated = dataclasses.replace(trace, events=tuple(events))
        found = [f for f in check_semantics(mutated) if f.rule == "D-SCL"]
        if found:
            return found
    raise ValueError("no tagged addition whose mutation trips D-SCL")


def forge_dropped_rescale(trace: OpTrace) -> List[Finding]:
    """Delete a rescale divide between two tensor products (D-RES).

    Scale tags are stripped first so the forged trace exercises the
    structural rescale-placement rule, not the scale checker.
    """
    base = [dataclasses.replace(e, scale=None) for e in _events(trace)]
    for i, victim in enumerate(base):
        if victim.kind != "divide" or not victim.deps:
            continue
        replacement = victim.deps[0]
        events = []
        for e in base[:i] + base[i + 1:]:
            if victim.eid in e.deps:
                deps = tuple(sorted(
                    {replacement if d == victim.eid else d for d in e.deps}))
                e = dataclasses.replace(e, deps=deps)
            events.append(e)
        mutated = dataclasses.replace(trace, events=tuple(events))
        found = [f for f in check_semantics(mutated) if f.rule == "D-RES"]
        if found:
            return found
    raise ValueError("no divide whose removal breaks rescale placement")


def forge_over_budget_noise(trace: OpTrace) -> List[Finding]:
    """Append an unrescaled level-0 squaring chain (D-NSE)."""
    if trace.params is None:
        raise ValueError("noise forge needs trace.params")
    events = _events(trace)
    prev = events[-1]
    scale = float(trace.params.scale)
    next_eid = max(e.eid for e in events) + 1
    for k in range(6):
        tagged = scale ** (k + 2)
        ev = TraceEvent(
            eid=next_eid + k, kind="tensor_product",
            op="forged/square_chain", span=f"forged#{k}",
            level=0, shape={"rows": 1}, deps=(prev.eid,), scale=tagged,
        )
        events.append(ev)
        prev = ev
    mutated = dataclasses.replace(trace, events=tuple(events))
    return [f for f in check_noise(mutated) if f.rule == "D-NSE"]


def forge_overcommitted_pool(trace: OpTrace,
                             dag: Optional[KernelDag] = None
                             ) -> List[Finding]:
    """Declare half the certified HBM need as the job budget (D-HBM)."""
    if dag is None:
        from ...trace.lowering import lower_trace
        dag = lower_trace(trace)
    cert = static_hbm_certificate(dag)
    declared = cert.peak_bytes / 2.0
    return check_hbm_budget(dag.label or trace.label, declared, cert)


#: Forge name -> (expected rule, forge callable).
MUTATIONS: Dict[str, tuple] = {
    "illegal_reorder": ("D-SCH", forge_illegal_reorder),
    "scale_mismatch_add": ("D-SCL", forge_scale_mismatch),
    "dropped_rescale": ("D-RES", forge_dropped_rescale),
    "over_budget_noise": ("D-NSE", forge_over_budget_noise),
    "overcommitted_pool": ("D-HBM", forge_overcommitted_pool),
}


def forge(name: str, trace: OpTrace,
          dag: Optional[KernelDag] = None) -> List[Finding]:
    """Run one named forge; returns the findings its rule produced."""
    rule, fn = MUTATIONS[name]
    if name == "overcommitted_pool":
        found = fn(trace, dag)
    else:
        found = fn(trace)
    return [f for f in found if f.rule == rule]
