"""Run dagcheck over the full recorded-workload catalog.

For every catalog workload (bootstrap, HELR iteration, ResNet block,
AES transcipher block) this drives the complete verification surface:

1. the recorded trace — semantics + noise + trace-order legality;
2. every optimizer output — the full ``optimize_trace`` pipeline result
   re-checked at primitive granularity (scale tags and the declared
   rotation set survive the passes by construction);
3. the lowered DAG of both — index legality plus the ancestor-bitmask
   happens-before certificate against the trace's data flow;
4. every ``schedule_search`` permutation strategy — the winning order
   re-certified;
5. the static peak-HBM certificate vs the simulated observed peak.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..fhelint.findings import Finding
from ...trace.ir import OpTrace
from ...trace.lowering import KernelDag, lower_trace
from .memory import (
    HbmCertificate,
    observed_peak_bytes,
    static_hbm_certificate,
)
from .noise import check_noise
from .schedule import (
    check_dag_schedule,
    check_trace_schedule,
    happens_before_certificate,
)
from .semantics import check_semantics


def _catalog_recorders() -> Dict[str, Callable[[], OpTrace]]:
    from ...workloads.recorded import (
        record_bootstrap_trace,
        record_helr_iteration_trace,
        record_resnet_block_trace,
        record_transcipher_block_trace,
    )
    return {
        "bootstrap": record_bootstrap_trace,
        "helr_iteration": record_helr_iteration_trace,
        "resnet_block": record_resnet_block_trace,
        "aes_transcipher": record_transcipher_block_trace,
    }


#: Workload name -> zero-argument recorder (lazily imported).
CATALOG = _catalog_recorders


def check_trace(trace: OpTrace) -> List[Finding]:
    """Semantics + noise + trace-order legality of one trace."""
    out = check_semantics(trace)
    out.extend(check_noise(trace))
    out.extend(check_trace_schedule(trace))
    return out


@dataclass
class WorkloadReport:
    """Everything dagcheck proved about one catalog workload."""

    name: str
    findings: List[Finding] = field(default_factory=list)
    surfaces: List[str] = field(default_factory=list)
    certificate: Optional[HbmCertificate] = None
    observed_peak: Optional[float] = None

    @property
    def clean(self) -> bool:
        return not self.findings

    def cert_ratio(self) -> Optional[float]:
        """certificate / observed peak (>= 1.0 means the certificate is
        a true upper bound)."""
        if self.certificate is None or not self.observed_peak:
            return None
        return self.certificate.peak_bytes / self.observed_peak


def check_workload(name: str, trace: OpTrace, *,
                   optimizer: bool = True,
                   search: bool = True,
                   memory: bool = True) -> WorkloadReport:
    """The full verification surface of one recorded workload."""
    report = WorkloadReport(name=name)

    def run(surface: str, findings: List[Finding]) -> None:
        report.surfaces.append(surface)
        report.findings.extend(findings)

    run("trace", check_trace(trace))

    dag = lower_trace(trace)
    run("dag", check_dag_schedule(dag))
    run("dag-hb", happens_before_certificate(dag, trace))

    if optimizer:
        from ...trace.opt import optimize_trace, schedule_search
        opt, _ = optimize_trace(trace)
        run("opt-trace", check_trace(opt))
        opt_dag = lower_trace(opt)
        run("opt-dag", check_dag_schedule(opt_dag))
        run("opt-dag-hb", happens_before_certificate(opt_dag, opt))
        if search:
            best, _ = schedule_search(opt_dag)
            run("sched-search", check_dag_schedule(best))
            run("sched-search-hb", happens_before_certificate(best, opt))
        dag = opt_dag  # certify the DAG the serving layer would run

    if memory:
        report.certificate = static_hbm_certificate(dag)
        report.observed_peak = observed_peak_bytes(dag.run())
    return report


def run_catalog(*, optimizer: bool = True, search: bool = True,
                memory: bool = True,
                names: Optional[List[str]] = None
                ) -> Dict[str, WorkloadReport]:
    """Check every catalog workload; returns per-workload reports."""
    recorders = CATALOG()
    out: Dict[str, WorkloadReport] = {}
    for name, recorder in recorders.items():
        if names is not None and name not in names:
            continue
        trace = recorder()
        out[name] = check_workload(name, trace, optimizer=optimizer,
                                   search=search, memory=memory)
    return out
