"""dagcheck: static verification over recorded trace DAGs.

Where :mod:`repro.analysis.fhelint` lints *source text*, dagcheck
verifies *recorded executions*: it walks the
:class:`~repro.trace.ir.OpTrace` / lowered
:class:`~repro.trace.lowering.KernelDag` of a workload and proves, with
no replay, that

* **ciphertext semantics** hold along every data dependency — level and
  prime-count bookkeeping, coeff/eval domain discipline, CKKS scale
  matching at additions and divides, mandatory rescale placement between
  tensor products, and automorphism steps against the declared
  rotation-key set (:mod:`.semantics`);
* the **noise budget** is never statically exhausted — an
  interval-abstract version of the
  :class:`~repro.ckks.noise.NoiseEstimator` walked over the DAG
  (:mod:`.noise`);
* every **schedule is legal** — dependencies precede dependents in both
  the (optimized) trace and the lowered DAG, with an ancestor-bitmask
  happens-before certificate (:mod:`.schedule`), and a liveness-based
  static peak-HBM certificate bounds what any legal execution can
  allocate (:mod:`.memory`).

Findings reuse fhelint's :class:`~repro.analysis.fhelint.findings.Finding`
records (``path`` = trace label, ``line`` = event id / node index) under
the rule ids of
:data:`~repro.analysis.fhelint.findings.DAG_RULES`, so baselines,
suppression and JSON reporting carry over.  :mod:`.mutations` forges
known-illegal variants of a clean trace; the CI gate asserts the clean
catalog has zero findings while every forged mutation is caught.
"""

from .semantics import ScaleMap, check_semantics
from .noise import NoiseWalk, check_noise
from .schedule import (
    check_dag_schedule,
    check_trace_schedule,
    happens_before_certificate,
)
from .memory import (
    HbmCertificate,
    check_hbm_budget,
    observed_peak_bytes,
    static_hbm_certificate,
)
from .mutations import MUTATIONS, forge
from .catalog import CATALOG, check_trace, run_catalog
from .runner import DagcheckResult, run_dagcheck

__all__ = [
    "CATALOG",
    "DagcheckResult",
    "HbmCertificate",
    "MUTATIONS",
    "NoiseWalk",
    "ScaleMap",
    "check_dag_schedule",
    "check_hbm_budget",
    "check_noise",
    "check_semantics",
    "check_trace",
    "check_trace_schedule",
    "forge",
    "happens_before_certificate",
    "observed_peak_bytes",
    "run_catalog",
    "run_dagcheck",
    "static_hbm_certificate",
]
