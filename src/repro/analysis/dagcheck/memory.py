"""D-HBM: liveness-based static peak-HBM certificates.

The serving layer's ``memory_aware`` placement and the
:class:`~repro.core.memory_pool.MemoryPool` admission check both need a
per-job HBM figure *before* the job runs.  This module derives one from
the lowered DAG alone — no workload execution, no pool measurements:

1. **Schedule prediction** — an independent replay of the
   :func:`~repro.gpusim.streams.run_dag` discipline (event-driven,
   ready nodes launch in index order when their grids fit the free SMs)
   using the analytic per-kernel cost model, yielding a
   ``[start, end)`` window per node.
2. **Liveness sweep** — every node's output (``gmem_write_bytes``) is
   allocated at its launch and freed when its last consumer completes;
   the peak of the live-byte total over the predicted timeline, padded
   by :data:`CERT_HEADROOM`, is the certificate.

Schedule-universal structural bounds (max-weight antichains over the
"can coexist" order, dependency-closed frontier cuts) were evaluated and
rejected: legal-but-never-taken schedules inflate them 2–10x above any
peak the deterministic scheduler reaches, which is useless for
admission.  The certificate instead fixes the scheduling discipline and
stays within the headroom of the simulator's observed peak; CI asserts
exactly that bracket (``observed <= cert <= 1.25 * observed``) for every
catalog job, which cross-validates this module's liveness model against
:mod:`repro.gpusim`'s timeline accounting — two independent
implementations that must agree.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..fhelint.findings import Finding
from ...gpusim.device import GpuSpec
from ...gpusim.streams import ExecutionResult
from ...trace.lowering import KernelDag

#: Multiplicative pad on the predicted-schedule liveness peak: absorbs
#: allocator fragmentation and scheduling transients while staying well
#: inside the 25% tightness bound CI asserts against the simulator.
CERT_HEADROOM = 1.10


@dataclass(frozen=True)
class HbmCertificate:
    """Static liveness certificate for one lowered DAG."""

    label: str
    peak_bytes: float
    node_count: int

    @property
    def peak_gib(self) -> float:
        return self.peak_bytes / 2 ** 30


def predicted_schedule(dag: KernelDag,
                       device: GpuSpec = None
                       ) -> List[Tuple[float, float]]:
    """``(start_us, end_us)`` per node under the run_dag discipline.

    Re-implements the event loop independently of
    :func:`~repro.gpusim.streams.run_dag` (same rules: dependencies
    complete first, ready nodes launch in index order, a grid launches
    only when it fits the free SMs) so the CI bracket check compares two
    separate codepaths rather than one with itself.
    """
    from ...gpusim import A100_PCIE_80G
    from ...gpusim.engine import simulate_kernel
    from ...gpusim.streams import spec_cache_key

    dev = device if device is not None else (dag.device or A100_PCIE_80G)
    nodes = dag.nodes
    n = len(nodes)
    profile_cache: Dict[tuple, object] = {}
    latency = [0.0] * n
    sms = [0] * n
    for i, node in enumerate(nodes):
        key = spec_cache_key(node.spec)
        prof = profile_cache.get(key)
        if prof is None:
            prof = profile_cache[key] = simulate_kernel(node.spec, dev)
        latency[i] = prof.elapsed_us
        sms[i] = prof.occupancy.sm_used

    children: List[List[int]] = [[] for _ in range(n)]
    indegree = [0] * n
    for i, node in enumerate(nodes):
        for d in node.deps:
            children[d].append(i)
        indegree[i] = len(node.deps)

    windows: List[Tuple[float, float]] = [(0.0, 0.0)] * n
    ready = [i for i in range(n) if indegree[i] == 0]
    heapq.heapify(ready)
    running: List[Tuple[float, int]] = []
    busy_sms = 0
    now = 0.0
    while ready or running:
        deferred: List[int] = []
        while ready:
            i = heapq.heappop(ready)
            if dev.sm_count - busy_sms < sms[i]:
                deferred.append(i)
                continue
            end = now + latency[i]
            windows[i] = (now, end)
            heapq.heappush(running, (end, i))
            busy_sms += sms[i]
        for i in deferred:
            heapq.heappush(ready, i)
        if not running:
            break
        now = running[0][0]
        while running and running[0][0] <= now:
            _, i = heapq.heappop(running)
            busy_sms -= sms[i]
            for child in children[i]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    heapq.heappush(ready, child)
    return windows


def _liveness_peak(byte_count: List[float],
                   windows: List[Tuple[float, float]],
                   deps_of: List[Tuple[int, ...]]) -> float:
    """Peak live bytes: buffers alive from producer launch until the
    last consumer completes (or the producer's own completion when
    unconsumed)."""
    n = len(byte_count)
    death = [windows[i][1] for i in range(n)]
    for i in range(n):
        for d in deps_of[i]:
            if windows[i][1] > death[d]:
                death[d] = windows[i][1]
    points: List[Tuple[float, int, float]] = []
    for i in range(n):
        b = byte_count[i]
        if b <= 0:
            continue
        points.append((windows[i][0], 0, b))  # birth sorts before
        points.append((death[i], 1, -b))      # death at equal timestamps
    points.sort()
    peak = live = 0.0
    for _, _, b in points:
        live += b
        if live > peak:
            peak = live
    return peak


def static_hbm_certificate(dag: KernelDag,
                           device: GpuSpec = None) -> HbmCertificate:
    """The admission certificate: predicted-schedule liveness peak plus
    :data:`CERT_HEADROOM`."""
    windows = predicted_schedule(dag, device)
    byte_count = [float(nd.spec.gmem_write_bytes) for nd in dag.nodes]
    deps_of = [nd.deps for nd in dag.nodes]
    peak = _liveness_peak(byte_count, windows, deps_of)
    return HbmCertificate(label=dag.label or "<dag>",
                          peak_bytes=peak * CERT_HEADROOM,
                          node_count=len(dag.nodes))


def observed_peak_bytes(result: ExecutionResult) -> float:
    """Peak live bytes of one simulated execution's timeline, under the
    same allocate-at-launch / free-at-last-consumer-completion model."""
    entries = sorted(result.entries, key=lambda e: e.index)
    if not entries:
        return 0.0
    index_of = {e.index: pos for pos, e in enumerate(entries)}
    byte_count = [float(e.profile.spec.gmem_write_bytes) for e in entries]
    windows = [(e.start_us, e.end_us) for e in entries]
    deps_of = [tuple(index_of[d] for d in e.deps if d in index_of)
               for e in entries]
    return _liveness_peak(byte_count, windows, deps_of)


def check_hbm_budget(label: str, declared_bytes: float,
                     certificate: HbmCertificate) -> List[Finding]:
    """D-HBM finding when a declared budget undercuts the certificate —
    admission on that figure would overcommit the pool."""
    if declared_bytes >= certificate.peak_bytes:
        return []
    return [Finding(
        rule="D-HBM", path=label, line=0, func="hbm_budget",
        message=(
            f"declared {declared_bytes / 2**30:.3f} GiB is below the "
            f"static liveness certificate "
            f"{certificate.peak_gib:.3f} GiB"),
    )]
