"""Representation-tag checking (the D-xxx rule family).

Two independent binary representation axes matter for correctness:

* **coeff / eval** — whether a polynomial (or a stacked residue matrix)
  is in coefficient or NTT slot representation. Pointwise products are
  only meaningful in eval form; automorphisms and basis conversions only
  in coeff form. Mixing them yields silently wrong ciphertexts, not
  crashes.
* **montgomery / standard** — whether values carry the Montgomery ``R``
  factor. A standard-domain operand fed to a REDC-based multiply comes
  out scaled by ``R^{-1}``.

Functions declare the representation they return (``@coeff_form``,
``@eval_form``, ``@montgomery_domain``, ``@standard_domain``) and the
representation each parameter must arrive in (``@takes_form(x="coeff")``,
``@takes_domain(w="montgomery")``; the key ``self`` names a method's
receiver). This pass propagates tags intraprocedurally — through
assignments, tuple unpacking, ``np.where``/``reshape``/``copy`` and
other shape-only operations — and flags every call site where a tracked
tag provably contradicts the callee's declaration. Unknown tags pass:
like B-ARG, coverage is bounded by annotation coverage, and the pass
never guesses.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from .findings import Finding
from .registry import FuncInfo, ModuleInfo, Registry

#: Tag axes: (attribute on FuncInfo declaring the return tag,
#:            attribute declaring per-param requirements, rule id).
_AXES = (
    ("returns_form", "takes_form", "D-FORM", "representation"),
    ("returns_domain", "takes_domain", "D-DOM", "domain"),
)

#: Shape-only ndarray methods / np functions a tag survives.
_TAG_PRESERVING = {
    "reshape", "transpose", "copy", "ravel", "flatten", "squeeze",
    "swapaxes", "view", "take", "astype", "ascontiguousarray", "asarray",
    "array", "broadcast_to", "stack", "concatenate", "where",
}


class Tags:
    """Per-variable (form, domain) lattice: None = unknown."""

    def __init__(self) -> None:
        self.form: Dict[str, str] = {}
        self.domain: Dict[str, str] = {}

    def get(self, axis: str, name: str) -> Optional[str]:
        table = self.form if axis == "returns_form" else self.domain
        return table.get(name)

    def set(self, name: str, form: Optional[str],
            domain: Optional[str]) -> None:
        if form is not None:
            self.form[name] = form
        else:
            self.form.pop(name, None)
        if domain is not None:
            self.domain[name] = domain
        else:
            self.domain.pop(name, None)

    def snapshot(self) -> Tuple[Dict[str, str], Dict[str, str]]:
        return dict(self.form), dict(self.domain)

    def join_with(self, other: Tuple[Dict[str, str], Dict[str, str]]) -> None:
        """Keep only tags both branches agree on."""
        oform, odomain = other
        self.form = {k: v for k, v in self.form.items()
                     if oform.get(k) == v}
        self.domain = {k: v for k, v in self.domain.items()
                       if odomain.get(k) == v}


class DomainPass:
    """Check one function body's representation flow."""

    def __init__(self, registry: Registry, info: FuncInfo,
                 module: ModuleInfo, findings: List[Finding]):
        self.registry = registry
        self.info = info
        self.module = module
        self.findings = findings
        self.tags = Tags()

    def report(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            rule=rule, path=self.module.path,
            line=getattr(node, "lineno", self.info.line),
            func=self.info.qualname, message=message,
        ))

    def run(self) -> None:
        # Parameters arrive in their declared representation.
        for pname in self.info.params:
            self.tags.set(
                pname,
                self.info.takes_form.get(pname),
                self.info.takes_domain.get(pname),
            )
        self.exec_block(self.info.node.body)

    # -- statements ----------------------------------------------------------

    def exec_block(self, stmts) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            form, domain = self.eval(stmt.value)
            for target in stmt.targets:
                self.bind(target, form, domain)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            form, domain = self.eval(stmt.value)
            self.bind(stmt.target, form, domain)
        elif isinstance(stmt, ast.AugAssign):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            self.check_return(stmt)
        elif isinstance(stmt, ast.If):
            saved = self.tags.snapshot()
            self.exec_block(stmt.body)
            then = self.tags.snapshot()
            self.tags.form, self.tags.domain = dict(saved[0]), dict(saved[1])
            self.exec_block(stmt.orelse)
            self.tags.join_with(then)
        elif isinstance(stmt, (ast.For, ast.While)):
            if isinstance(stmt, ast.For):
                self.bind(stmt.target, None, None)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body)
            for handler in stmt.handlers:
                self.exec_block(handler.body)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.With):
            self.exec_block(stmt.body)

    def bind(self, target: ast.expr, form: Optional[str],
             domain: Optional[str]) -> None:
        if isinstance(target, ast.Name):
            self.tags.set(target.id, form, domain)
        elif isinstance(target, ast.Tuple):
            # A tuple of same-representation results (the common
            # (c0, c1) ciphertext pair) shares the tag.
            for elt in target.elts:
                self.bind(elt, form, domain)

    def check_return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            return
        form, domain = self.eval(stmt.value)
        for ret_attr, _takes, rule, label in _AXES:
            declared = getattr(self.info, ret_attr)
            actual = form if ret_attr == "returns_form" else domain
            if declared is not None and actual is not None and \
                    actual != declared:
                self.report(
                    rule, stmt,
                    f"declared to return {declared}-{label} values but "
                    f"this return is {actual}",
                )

    # -- expressions ---------------------------------------------------------

    def eval(self, node: ast.expr) -> Tuple[Optional[str], Optional[str]]:
        """(form, domain) of an expression, or (None, None)."""
        if isinstance(node, ast.Name):
            return (self.tags.get("returns_form", node.id),
                    self.tags.get("returns_domain", node.id))
        if isinstance(node, ast.Attribute):
            base = self.eval(node.value)
            # x.data / x.copy-style attribute access keeps the poly's tag.
            return base
        if isinstance(node, ast.Subscript):
            return self.eval(node.value)
        if isinstance(node, ast.Call):
            return self.eval_call(node)
        if isinstance(node, ast.IfExp):
            then = self.eval(node.body)
            other = self.eval(node.orelse)
            return (then[0] if then[0] == other[0] else None,
                    then[1] if then[1] == other[1] else None)
        if isinstance(node, ast.Tuple) and node.elts:
            tags = [self.eval(e) for e in node.elts]
            form = tags[0][0] if all(t[0] == tags[0][0] for t in tags) \
                else None
            domain = tags[0][1] if all(t[1] == tags[0][1] for t in tags) \
                else None
            return (form, domain)
        if isinstance(node, ast.BinOp):
            self.eval(node.left)
            self.eval(node.right)
            return (None, None)
        return (None, None)

    def eval_call(self, node: ast.Call) -> Tuple[Optional[str],
                                                 Optional[str]]:
        func = node.func
        callee: Optional[FuncInfo] = None
        recv_node: Optional[ast.expr] = None
        if isinstance(func, ast.Name):
            callee = self.registry.lookup(func.id)
        elif isinstance(func, ast.Attribute):
            if func.attr in _TAG_PRESERVING:
                # Shape-only op: the receiver's (or first arg's) tag
                # flows through.
                inner = self.eval(func.value)
                for arg in node.args:
                    got = self.eval(arg)
                    if inner == (None, None):
                        inner = got
                return inner
            callee = self.registry.lookup(func.attr)
            recv_node = func.value
        if callee is None:
            for arg in node.args:
                self.eval(arg)
            for kw in node.keywords:
                self.eval(kw.value)
            return (None, None)

        self.check_args(node, callee, recv_node)
        return (callee.returns_form, callee.returns_domain)

    def check_args(self, node: ast.Call, callee: FuncInfo,
                   recv_node: Optional[ast.expr]) -> None:
        params = [p for p in callee.params if p not in ("self", "cls")]
        arg_nodes: Dict[str, ast.expr] = {}
        for i, arg in enumerate(node.args):
            if i < len(params):
                arg_nodes[params[i]] = arg
            else:
                self.eval(arg)
        for kw in node.keywords:
            if kw.arg and kw.arg in params:
                arg_nodes[kw.arg] = kw.value
            else:
                self.eval(kw.value)
        if recv_node is not None:
            arg_nodes["self"] = recv_node

        for _ret, takes_attr, rule, label in _AXES:
            requirements = getattr(callee, takes_attr)
            for pname, required in requirements.items():
                arg = arg_nodes.get(pname)
                if arg is None:
                    continue
                form, domain = self.eval(arg)
                actual = form if takes_attr == "takes_form" else domain
                if actual is not None and actual != required:
                    where = "receiver" if pname == "self" \
                        else f"argument {pname!r}"
                    self.report(
                        rule, node,
                        f"{where} of {callee.name} must be "
                        f"{required}-{label} but a {actual}-{label} value "
                        "flows here",
                    )
        # Evaluate any argument not re-visited above (tag side effects
        # don't exist, but keeps traversal total).
        for pname, arg in arg_nodes.items():
            self.eval(arg)
