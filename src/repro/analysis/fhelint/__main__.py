"""CLI: ``python -m repro.analysis.fhelint src/ [--baseline B] [--json J]``."""

from __future__ import annotations

import argparse
import json
import os
import sys

from .findings import Baseline, load_baseline
from .runner import run_lint, write_json


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="fhelint",
        description="Overflow/domain static analyzer for the batched "
                    "FHE kernels (see DESIGN.md §9).",
    )
    parser.add_argument("roots", nargs="+",
                        help="files or directories to lint (e.g. src/)")
    parser.add_argument("--baseline", default=None,
                        help="grandfathered-findings JSON; covered "
                             "findings report but do not gate")
    parser.add_argument("--json", dest="json_out",
                        default="ANALYSIS_lint.json",
                        help="machine-readable output path "
                             "(default: %(default)s; '-' to skip)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite --baseline to cover every current "
                             "finding, then exit 0")
    parser.add_argument("--prune-baseline", action="store_true",
                        help="drop baseline entries that no longer fire "
                             "(stale entries otherwise fail the gate), "
                             "then exit 0")
    parser.add_argument("--format", dest="fmt", default="text",
                        choices=("text", "github"),
                        help="output style: human text or GitHub Actions "
                             "::error annotations (default: text)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary table; print only "
                             "active findings")
    args = parser.parse_args(argv)

    baseline = None
    if args.baseline and os.path.exists(args.baseline):
        baseline = load_baseline(args.baseline)
    result = run_lint(args.roots, baseline)

    if args.update_baseline:
        if not args.baseline:
            parser.error("--update-baseline requires --baseline")
        fresh = Baseline.from_findings(result.findings)
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(fresh.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"fhelint: baseline rewritten with "
              f"{sum(len(v) for v in fresh.fingerprints.values())} "
              f"fingerprint(s) -> {args.baseline}")
        return 0

    if args.prune_baseline:
        if not args.baseline:
            parser.error("--prune-baseline requires --baseline")
        kept = Baseline({
            rule: pruned
            for rule, fps in (baseline or Baseline()).fingerprints.items()
            if (pruned := [fp for fp in fps if fp not in result.stale])
        })
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(kept.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"fhelint: pruned {len(result.stale)} stale "
              f"fingerprint(s) -> {args.baseline}")
        return 0

    if args.json_out and args.json_out != "-":
        write_json(result, args.json_out)
    if args.fmt == "github":
        out = result.render_github()
        if out:
            print(out)
        print(f"fhelint: {'clean' if result.exit_code == 0 else 'failed'}")
    elif args.quiet:
        for f in sorted(result.active, key=lambda f: (f.path, f.line)):
            print(f.render())
        for fp in result.stale:
            print(f"stale baseline entry (no longer fires): {fp}")
        print(f"fhelint: {'clean' if result.exit_code == 0 else str(len(result.active)) + ' finding(s)'}")
    else:
        print(result.render())
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
