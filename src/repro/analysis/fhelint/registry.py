"""Cross-module annotation registry.

Parses every file under the lint roots once, records each function's
``repro.analysis.annotations`` decorators (by reading the decorator AST —
the linter never imports the code it checks), module-level integer
constants, ``@frozen`` classes (including ``@dataclass(frozen=True)``),
and return-type hints pointing at frozen classes. Rule passes resolve
call sites against this registry by bare function/method name; when two
definitions share a name their declared contracts are merged
conservatively (weakest input obligation, weakest output guarantee) so a
collision can cause a missed finding but never a false positive.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Decorator names we understand (see repro/analysis/annotations.py).
_FORM_DECOS = {"coeff_form": "coeff", "eval_form": "eval"}
_DOMAIN_DECOS = {"montgomery_domain": "montgomery",
                 "standard_domain": "standard"}


@dataclass
class FuncInfo:
    """Annotation metadata of one function/method definition."""

    name: str
    qualname: str
    path: str
    line: int
    params: List[str]
    is_method: bool
    bounded: Optional[dict] = None
    returns_form: Optional[str] = None
    returns_domain: Optional[str] = None
    takes_form: Dict[str, str] = field(default_factory=dict)
    takes_domain: Dict[str, str] = field(default_factory=dict)
    returns_view: bool = False
    return_type: Optional[str] = None
    node: Optional[ast.AST] = None


@dataclass
class ModuleInfo:
    path: str
    tree: ast.Module
    source_lines: List[str]
    constants: Dict[str, int] = field(default_factory=dict)


class Registry:
    """All annotation facts visible to the rule passes."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        #: bare name -> all definitions carrying that name.
        self.functions: Dict[str, List[FuncInfo]] = {}
        self.frozen_classes: set = set()
        #: class name -> attr -> "array" | "immutable" | "container".
        #: Inferred from dataclass field annotations and ``__init__``
        #: assignments; drives which ``self.X`` count as shared buffers.
        self.class_attr_kinds: Dict[str, Dict[str, str]] = {}
        #: "Class.method" -> FuncInfo, for receivers whose class is known
        #: (typed parameters) — exact contracts, no weakest-merge.
        self.by_qualname: Dict[str, FuncInfo] = {}
        #: class name -> attr -> class name of the attribute's value, from
        #: field annotations and ``self.x = ClassName(...)`` assignments.
        self.class_attr_types: Dict[str, Dict[str, str]] = {}

    def attr_kind(self, class_name: str, attr: str) -> Optional[str]:
        return self.class_attr_kinds.get(class_name, {}).get(attr)

    def attr_class(self, class_name: str, attr: str) -> Optional[str]:
        """Class of ``class_name.attr``: a typed/constructed field, or
        an annotated method/property return."""
        typed = self.class_attr_types.get(class_name, {}).get(attr)
        if typed is not None:
            return typed
        info = self.by_qualname.get(f"{class_name}.{attr}")
        if info is not None:
            return _ann_class_name(info.node.returns)
        return None

    def return_class(self, name: str) -> Optional[str]:
        """Class named by the return annotation of the (unique) function
        ``name`` — resolves receivers like ``active_backend().mod_mul``
        to the annotated backend-interface contract."""
        infos = self.functions.get(name)
        if infos and len(infos) == 1 and infos[0].node is not None:
            return _ann_class_name(infos[0].node.returns)
        return None

    def lookup_method(self, class_name: Optional[str],
                      method: str) -> Optional["FuncInfo"]:
        """Exact contract of ``class_name.method`` when the receiver's
        class is known; falls back to the bare-name weakest merge."""
        if class_name is not None:
            info = self.by_qualname.get(f"{class_name}.{method}")
            if info is not None:
                return info
        return self.lookup(method)

    # -- queries -------------------------------------------------------------

    def lookup(self, name: str) -> Optional[FuncInfo]:
        """Resolve a call-site name to merged annotation facts.

        Multiple same-named definitions merge conservatively: a tag or
        contract survives only if no sibling contradicts it.
        """
        infos = self.functions.get(name)
        if not infos:
            return None
        if len(infos) == 1:
            return infos[0]
        merged = FuncInfo(
            name=name, qualname=name, path=infos[0].path,
            line=infos[0].line, params=infos[0].params,
            is_method=infos[0].is_method,
        )
        forms = {i.returns_form for i in infos}
        domains = {i.returns_domain for i in infos}
        merged.returns_form = forms.pop() if len(forms) == 1 else None
        merged.returns_domain = domains.pop() if len(domains) == 1 else None
        for key in ("takes_form", "takes_domain"):
            dicts = [getattr(i, key) for i in infos]
            out: Dict[str, str] = {}
            for param in set().union(*dicts):
                tags = {d.get(param) for d in dicts}
                if len(tags) == 1 and None not in tags:
                    out[param] = tags.pop()
            setattr(merged, key, out)
        boundeds = [i.bounded for i in infos if i.bounded is not None]
        if len(boundeds) == len(infos) and boundeds:
            merged.bounded = _merge_bounded(boundeds)
        return merged

    # -- construction --------------------------------------------------------

    def add_module(self, path: str, source: str) -> Optional[ModuleInfo]:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            return None
        mod = ModuleInfo(path=path, tree=tree,
                         source_lines=source.splitlines())
        mod.constants = _module_constants(tree)
        self.modules[path] = mod
        self._collect_defs(tree, path, qual=(), in_class=False,
                           constants=mod.constants)
        return mod

    def _collect_defs(self, node: ast.AST, path: str, qual: Tuple[str, ...],
                      in_class: bool, constants: Dict[str, int]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if _is_frozen_class(child):
                    self.frozen_classes.add(child.name)
                kinds = self.class_attr_kinds.setdefault(child.name, {})
                kinds.update(_class_attr_kinds(child))
                types = self.class_attr_types.setdefault(child.name, {})
                types.update(_class_attr_types(child))
                self._collect_defs(child, path, qual + (child.name,), True,
                                   constants)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = _func_info(child, path, qual, in_class, constants)
                self.functions.setdefault(info.name, []).append(info)
                if in_class:
                    self.by_qualname.setdefault(
                        f"{qual[-1]}.{info.name}", info
                    )
                self._collect_defs(child, path, qual + (child.name,), False,
                                   constants)


def _merge_bounded(specs: List[dict]) -> dict:
    """Weakest-contract merge of colliding ``@bounded`` declarations."""
    merged = dict(specs[0])
    for other in specs[1:]:
        for key in ("in_q", "in_bits", "max_q_multiple", "out_q",
                    "out_bits", "out_q_lazy", "max_lanes"):
            a, b = merged.get(key), other.get(key)
            merged[key] = None if a is None or b is None else max(a, b)
        if merged.get("dtype") != other.get("dtype"):
            merged["dtype"] = "uint64"
        merged["assume"] = merged.get("assume") or other.get("assume")
        if merged.get("params") != other.get("params"):
            shared = {}
            for name, spec in (merged.get("params") or {}).items():
                other_spec = (other.get("params") or {}).get(name)
                if other_spec == spec:
                    shared[name] = spec
                elif other_spec is not None:
                    weak = _merge_param_spec(spec, other_spec)
                    if weak is not None:
                        shared[name] = weak
            merged["params"] = shared
    return merged


def _merge_param_spec(a: dict, b: dict) -> Optional[dict]:
    """Weakest merge of two per-parameter specs: numeric bounds take the
    larger value; structural claims (shoup/modulus) must agree or the
    whole spec is dropped (None) so no false obligation survives."""
    if a.get("modulus") != b.get("modulus") or a.get("shoup") != b.get("shoup"):
        return None
    out = {}
    for key in ("q", "bits", "ubound"):
        va, vb = a.get(key), b.get(key)
        if va is not None and vb is not None:
            out[key] = max(va, vb)
    for key in ("modulus", "shoup"):
        if a.get(key) is not None:
            out[key] = a[key]
    return out or None


# -- AST helpers -------------------------------------------------------------


def deco_name(deco: ast.expr) -> str:
    """Bare name of a decorator expression (``a.b.frozen`` -> ``frozen``)."""
    target = deco.func if isinstance(deco, ast.Call) else deco
    while isinstance(target, ast.Attribute):
        target = target.attr if isinstance(target.attr, ast.expr) else target
        break
    if isinstance(target, ast.Attribute):
        return target.attr
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(deco, ast.Call) and isinstance(deco.func, ast.Attribute):
        return deco.func.attr
    return ""


def _deco_bare(deco: ast.expr) -> str:
    target = deco.func if isinstance(deco, ast.Call) else deco
    if isinstance(target, ast.Attribute):
        return target.attr
    if isinstance(target, ast.Name):
        return target.id
    return ""


def const_eval(node: ast.expr, constants: Optional[Dict[str, int]] = None):
    """Evaluate a literal-ish expression: ints, floats, strings, tuples,
    dicts, ``2**20``-style arithmetic, ``np.uint64(32)`` wrappers and
    known module constants. Returns None when not statically evaluable."""
    constants = constants or {}
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name):
        return constants.get(node.id)
    if isinstance(node, ast.Attribute):
        # np.uint64 and friends used as dtype markers -> their name.
        return node.attr
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        val = const_eval(node.operand, constants)
        return -val if isinstance(val, (int, float)) else None
    if isinstance(node, ast.BinOp):
        left = const_eval(node.left, constants)
        right = const_eval(node.right, constants)
        if not isinstance(left, (int, float)) or \
                not isinstance(right, (int, float)):
            return None
        try:
            if isinstance(node.op, ast.Pow):
                return left ** right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.LShift):
                return left << right
            if isinstance(node.op, ast.RShift):
                return left >> right
            if isinstance(node.op, ast.FloorDiv):
                return left // right
            if isinstance(node.op, ast.BitAnd):
                return left & right
            if isinstance(node.op, ast.BitOr):
                return left | right
        except (TypeError, ValueError):
            return None
        return None
    if isinstance(node, ast.Tuple):
        vals = [const_eval(e, constants) for e in node.elts]
        return None if any(v is None for v in vals) else tuple(vals)
    if isinstance(node, ast.List):
        vals = [const_eval(e, constants) for e in node.elts]
        return None if any(v is None for v in vals) else list(vals)
    if isinstance(node, ast.Dict):
        out = {}
        for k, v in zip(node.keys, node.values):
            if k is None:
                return None
            key = const_eval(k, constants)
            val = const_eval(v, constants)
            if key is None or val is None:
                return None
            out[key] = val
        return out
    if isinstance(node, ast.Call):
        # np.uint64(32) / int(...) wrappers around a literal.
        if len(node.args) == 1 and not node.keywords:
            return const_eval(node.args[0], constants)
    return None


def _module_constants(tree: ast.Module) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                isinstance(stmt.targets[0], ast.Name):
            val = const_eval(stmt.value, out)
            if isinstance(val, int):
                out[stmt.targets[0].id] = val
    return out


_ARRAY_TYPE_NAMES = {"ndarray", "NDArray", "array", "matrix"}
_IMMUTABLE_TYPE_NAMES = {"str", "int", "float", "bool", "bytes", "tuple",
                         "Tuple", "frozenset", "complex", "type", "None"}
_CONTAINER_TYPE_NAMES = {"dict", "Dict", "list", "List", "set", "Set",
                         "defaultdict", "OrderedDict", "deque"}
_ARRAY_CTOR_NAMES = {"array", "asarray", "ascontiguousarray", "zeros",
                     "ones", "empty", "full", "zeros_like", "ones_like",
                     "empty_like", "full_like", "arange", "copy", "stack",
                     "concatenate", "where", "outer"}
_IMMUTABLE_CTOR_NAMES = {"tuple", "str", "int", "float", "bool", "len",
                         "frozenset", "bytes"}


def _ann_kind(node: Optional[ast.expr]) -> Optional[str]:
    """Kind implied by a type annotation expression."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value
        for name in _ARRAY_TYPE_NAMES:
            if name in text:
                return "array"
        head = text.split("[")[0].split(".")[-1].strip()
        if head in _IMMUTABLE_TYPE_NAMES:
            return "immutable"
        if head in _CONTAINER_TYPE_NAMES:
            return "container"
        return None
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Subscript):
        # Dict[...] / Optional[...] — classify by the head.
        return _ann_kind(node.value)
    if name in _ARRAY_TYPE_NAMES:
        return "array"
    if name in _IMMUTABLE_TYPE_NAMES:
        return "immutable"
    if name in _CONTAINER_TYPE_NAMES:
        return "container"
    return None


def _rhs_kind(node: ast.expr) -> Optional[str]:
    """Kind implied by an ``__init__`` assignment's right-hand side."""
    if isinstance(node, ast.Constant):
        return "immutable"
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return "container"
    if isinstance(node, ast.Tuple):
        return "immutable"
    if isinstance(node, ast.Call):
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in _IMMUTABLE_CTOR_NAMES:
            return "immutable"
        if name in _ARRAY_CTOR_NAMES:
            return "array"
        if name in ("dict", "list", "set"):
            return "container"
    return None


def _class_attr_kinds(node: ast.ClassDef) -> Dict[str, str]:
    kinds: Dict[str, str] = {}
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name):
            kind = _ann_kind(stmt.annotation)
            if kind is not None:
                kinds[stmt.target.id] = kind
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and \
                stmt.name in ("__init__", "__post_init__"):
            for sub in ast.walk(stmt):
                target = None
                value = None
                if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                    target, value = sub.targets[0], sub.value
                elif isinstance(sub, ast.AnnAssign):
                    target, value = sub.target, sub.value
                if isinstance(target, ast.Attribute) and \
                        isinstance(target.value, ast.Name) and \
                        target.value.id == "self":
                    kind = None
                    if isinstance(sub, ast.AnnAssign):
                        kind = _ann_kind(sub.annotation)
                    if kind is None and value is not None:
                        kind = _rhs_kind(value)
                    if kind is not None and target.attr not in kinds:
                        kinds[target.attr] = kind
    return kinds


def _ann_class_name(ann) -> Optional[str]:
    """Class name of an annotation expression, if it is a plain name."""
    if isinstance(ann, ast.Name):
        return ann.id
    if isinstance(ann, ast.Attribute):
        return ann.attr
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        return ann.value.strip("\"'").split(".")[-1].split("[")[0]
    return None


def _class_attr_types(node: ast.ClassDef) -> Dict[str, str]:
    """attr -> class name, from body annotations and ctor assigns."""
    types: Dict[str, str] = {}
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name):
            cls = _ann_class_name(stmt.annotation)
            if cls is not None and cls[:1].isupper():
                types[stmt.target.id] = cls
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and \
                stmt.name in ("__init__", "__post_init__"):
            for sub in ast.walk(stmt):
                if not (isinstance(sub, ast.Assign)
                        and len(sub.targets) == 1):
                    continue
                target = sub.targets[0]
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                value = sub.value
                if isinstance(value, ast.Call) and \
                        isinstance(value.func, ast.Name) and \
                        value.func.id[:1].isupper() and \
                        target.attr not in types:
                    types[target.attr] = value.func.id
    return types


def _is_frozen_class(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        name = _deco_bare(deco)
        if name == "frozen":
            return True
        if name == "dataclass" and isinstance(deco, ast.Call):
            for kw in deco.keywords:
                if kw.arg == "frozen" and \
                        isinstance(kw.value, ast.Constant) and \
                        kw.value.value is True:
                    return True
    return False


def _func_info(node, path: str, qual: Tuple[str, ...], in_class: bool,
               constants: Optional[Dict[str, int]] = None) -> FuncInfo:
    params = [a.arg for a in node.args.posonlyargs + node.args.args]
    info = FuncInfo(
        name=node.name,
        qualname=".".join(qual + (node.name,)),
        path=path,
        line=node.lineno,
        params=params,
        is_method=in_class and bool(params) and params[0] in ("self", "cls"),
        node=node,
    )
    if node.returns is not None:
        ret = node.returns
        if isinstance(ret, ast.Constant) and isinstance(ret.value, str):
            info.return_type = ret.value.strip("\"'").split(".")[-1]
        elif isinstance(ret, ast.Name):
            info.return_type = ret.id
        elif isinstance(ret, ast.Attribute):
            info.return_type = ret.attr
    for deco in node.decorator_list:
        name = _deco_bare(deco)
        if name in _FORM_DECOS:
            info.returns_form = _FORM_DECOS[name]
        elif name in _DOMAIN_DECOS:
            info.returns_domain = _DOMAIN_DECOS[name]
        elif name == "returns_view":
            info.returns_view = True
        elif name == "takes_form" and isinstance(deco, ast.Call):
            for kw in deco.keywords:
                val = const_eval(kw.value)
                if kw.arg and isinstance(val, str):
                    info.takes_form[kw.arg] = val
        elif name == "takes_domain" and isinstance(deco, ast.Call):
            for kw in deco.keywords:
                val = const_eval(kw.value)
                if kw.arg and isinstance(val, str):
                    info.takes_domain[kw.arg] = val
        elif name == "bounded" and isinstance(deco, ast.Call):
            spec = {
                "dtype": "uint64", "in_q": None, "in_bits": None,
                "max_q_multiple": None, "out_q": None, "out_bits": None,
                "out_q_lazy": None, "max_lanes": None, "params": {},
                "passthrough": None, "assume": False,
            }
            for kw in deco.keywords:
                if kw.arg:
                    spec[kw.arg] = const_eval(kw.value, constants)
            if not isinstance(spec.get("params"), dict):
                spec["params"] = {}
            info.bounded = spec
    return info
