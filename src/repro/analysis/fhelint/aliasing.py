"""Aliasing / purity checks (the A-xxx rule family).

**A-VIEW** — a method that returns a numpy *view* of instance state
(``self.buf[...]``, a cached-stack lookup, a ``reshape`` of an internal
column, or a constructor call wrapping such a buffer uncopied) hands the
caller a mutable window into shared state. That is exactly the PR 1
``to_eval()`` bug class: the caller mutates its "copy" and corrupts the
cache. Which ``self`` attributes count as shared buffers is inferred
from the class itself — dataclass field annotations and ``__init__``
assignment shapes classify each attribute as ``array``, ``container``
or ``immutable`` — so ``Ciphertext(self.level, ...)`` (a scalar) passes
while ``RnsPoly(self.data, ...)`` (the residue matrix, uncopied) flags.
Returns of ``self`` itself and plain ``self.attr`` accessors are exempt
(conventional, visibly shared); ``@returns_view`` suppresses the rule
where handing out a view is intentional and the definition owns the
read-only discipline.

**A-FROZEN** — stores to attributes of a ``@frozen`` compiled plan
(including ``@dataclass(frozen=True)`` classes, whose ``__setattr__``
only guards direct assignment — ``self.table[i] = x`` still mutates
shared state) anywhere outside ``__init__`` / ``__post_init__``, and
stores through parameters/variables whose type annotation names a
frozen class.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from .findings import Finding
from .registry import FuncInfo, ModuleInfo, Registry

#: Methods whose result is a fresh object even when called on a view.
_FRESH_METHODS = {"copy", "tolist", "sum", "min", "max", "astype", "item",
                  "mean", "all", "any"}
#: Methods that return another view of the same buffer.
_VIEW_METHODS = {"reshape", "transpose", "ravel", "squeeze", "swapaxes",
                 "view", "take", "T"}
#: Attribute kinds that make a ``self.X`` a shared mutable buffer.
_SHARED_KINDS = {"array", "container"}


class AliasPass:
    """Check one function body for aliased returns and frozen mutation."""

    def __init__(self, registry: Registry, info: FuncInfo,
                 module: ModuleInfo, findings: List[Finding]):
        self.registry = registry
        self.info = info
        self.module = module
        self.findings = findings
        self.self_name = info.params[0] if info.is_method else ""
        self.owner = info.qualname.rsplit(".", 1)[0] \
            if "." in info.qualname else ""
        #: Variables currently holding an uncopied view of self state.
        self.view_vars: Set[str] = set()
        #: Variables annotated with a @frozen class type.
        self.frozen_vars: Set[str] = set()

    def report(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            rule=rule, path=self.module.path,
            line=getattr(node, "lineno", self.info.line),
            func=self.info.qualname, message=message,
        ))

    # -- shared-state classification -----------------------------------------

    def _is_shared_attr(self, attr: str) -> bool:
        kind = self.registry.attr_kind(self.owner, attr)
        return kind in _SHARED_KINDS

    def _is_self_state(self, node: ast.expr) -> bool:
        """Does this expression alias mutable instance state (uncopied)?"""
        if isinstance(node, ast.Name):
            return node.id in self.view_vars
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and \
                    node.value.id == self.self_name:
                return self._is_shared_attr(node.attr)
            if node.attr in _VIEW_METHODS:
                return self._is_self_state(node.value)
            return False
        if isinstance(node, ast.Subscript):
            return self._is_self_state(node.value)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr in _FRESH_METHODS:
                    return False
                if func.attr in _VIEW_METHODS:
                    return self._is_self_state(func.value)
            return False
        return False

    # -- driver --------------------------------------------------------------

    def run(self) -> None:
        in_ctor = self.info.name in ("__init__", "__post_init__",
                                     "__new__")
        frozen_receiver = self.info.is_method and \
            self.owner in self.registry.frozen_classes and not in_ctor

        # Parameters annotated with a frozen class type are frozen too.
        for arg in self.info.node.args.args:
            tname = _type_name(arg.annotation)
            if tname in self.registry.frozen_classes:
                self.frozen_vars.add(arg.arg)

        for node in ast.walk(self.info.node):
            if isinstance(node, ast.Assign):
                self._track_assign(node, frozen_receiver)
            elif isinstance(node, ast.AnnAssign):
                self._track_annassign(node, frozen_receiver)
            elif isinstance(node, ast.AugAssign):
                self._check_store_target(node.target, node,
                                         frozen_receiver)
            elif isinstance(node, ast.Return) and node.value is not None:
                self._check_return(node)

    # -- frozen mutation -----------------------------------------------------

    def _track_assign(self, node: ast.Assign, frozen_receiver: bool) -> None:
        for target in node.targets:
            self._check_store_target(target, node, frozen_receiver)
            if isinstance(target, ast.Name):
                if self._is_self_state(node.value):
                    self.view_vars.add(target.id)
                else:
                    self.view_vars.discard(target.id)
                if self._yields_frozen(node.value):
                    self.frozen_vars.add(target.id)
                else:
                    self.frozen_vars.discard(target.id)

    def _yields_frozen(self, value: ast.expr) -> bool:
        """Does this expression produce an instance of a @frozen class?

        Covers direct constructor calls and calls whose resolved
        definition carries a return annotation naming a frozen class —
        so ``plan = self.compile(level)`` is tracked even without a
        local type annotation.
        """
        if isinstance(value, ast.Name):
            return value.id in self.frozen_vars
        if not isinstance(value, ast.Call):
            return False
        func = value.func
        info = None
        if isinstance(func, ast.Name):
            if func.id in self.registry.frozen_classes:
                return True
            info = self.registry.lookup(func.id)
        elif isinstance(func, ast.Attribute):
            if func.attr in self.registry.frozen_classes:
                return True
            if isinstance(func.value, ast.Name) and \
                    func.value.id == self.self_name and self.owner:
                info = self.registry.lookup_method(self.owner, func.attr)
            else:
                info = self.registry.lookup(func.attr)
        if info is None or info.node is None or info.node.returns is None:
            return False
        return _type_name(info.node.returns) in self.registry.frozen_classes

    def _track_annassign(self, node: ast.AnnAssign,
                         frozen_receiver: bool) -> None:
        self._check_store_target(node.target, node, frozen_receiver)
        tname = _type_name(node.annotation)
        if tname in self.registry.frozen_classes and \
                isinstance(node.target, ast.Name):
            self.frozen_vars.add(node.target.id)
        if node.value is not None and isinstance(node.target, ast.Name) \
                and self._is_self_state(node.value):
            self.view_vars.add(node.target.id)

    def _frozen_base(self, node: ast.expr) -> Optional[str]:
        """Name of the frozen object a store target reaches, if any."""
        if isinstance(node, ast.Name):
            return node.id if node.id in self.frozen_vars else None
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            return self._frozen_base(node.value)
        return None

    def _check_store_target(self, target: ast.expr, origin: ast.AST,
                            frozen_receiver: bool) -> None:
        if isinstance(target, ast.Tuple):
            for elt in target.elts:
                self._check_store_target(elt, origin, frozen_receiver)
            return
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        base = target
        while isinstance(base, (ast.Attribute, ast.Subscript)):
            inner = base.value
            if frozen_receiver and isinstance(inner, ast.Name) and \
                    inner.id == self.self_name:
                self.report(
                    "A-FROZEN", origin,
                    "mutates a @frozen compiled plan outside its "
                    "constructor",
                )
                return
            base = inner
        frozen_var = self._frozen_base(target)
        if frozen_var is not None:
            self.report(
                "A-FROZEN", origin,
                f"mutates {frozen_var!r}, an instance of a @frozen "
                "compiled-plan class",
            )

    # -- aliased returns -----------------------------------------------------

    def _check_return(self, node: ast.Return) -> None:
        if self.info.returns_view or not self.info.is_method:
            return
        value = node.value
        # Bare `return self` and plain accessor `return self.attr` are
        # conventional, visibly-shared returns — not the bug class.
        if isinstance(value, ast.Name) and value.id == self.self_name:
            return
        if isinstance(value, ast.Attribute) and \
                isinstance(value.value, ast.Name) and \
                value.value.id == self.self_name:
            return
        targets: List[ast.expr] = []
        if isinstance(value, ast.Tuple):
            targets = list(value.elts)
        elif isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Attribute) and \
                    func.attr in _VIEW_METHODS:
                # reshape/transpose of instance state: still a view.
                targets = [value]
            elif (isinstance(func, ast.Name) and func.id[:1].isupper()) \
                    or (isinstance(func, ast.Attribute)
                        and func.attr[:1].isupper()):
                # A constructor call can wrap a buffer into an object
                # that *looks* fresh but shares it.
                targets = list(value.args) + \
                    [kw.value for kw in value.keywords]
            else:
                # Scalar builtins / lowercase helpers return fresh data.
                return
        elif isinstance(value, (ast.Subscript, ast.Name)):
            targets = [value]
        else:
            # BinOp / Compare / comprehension results are fresh arrays.
            return
        for sub in targets:
            if self._is_self_state(sub):
                self.report(
                    "A-VIEW", node,
                    "returns a view of self/cached buffers — the caller "
                    "can mutate shared state (copy, or mark the "
                    "definition @returns_view and make the view "
                    "read-only)",
                )
                return


def _type_name(ann: Optional[ast.expr]) -> Optional[str]:
    if isinstance(ann, ast.Name):
        return ann.id
    if isinstance(ann, ast.Attribute):
        return ann.attr
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        return ann.value.strip("\"'").split(".")[-1].split("[")[0]
    return None
