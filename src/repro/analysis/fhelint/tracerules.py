"""Trace-event hygiene (the T-xxx rule family).

**T-KIND** — every ``emit("<kind>", ...)`` call site (including the
``_temit`` alias the instrumented ckks hot paths use, and method calls
like ``rec.emit``/``self.emit``) whose first argument is a string
literal must name a kind in the :data:`repro.trace.ir.ALL_KINDS`
vocabulary.  The recorder itself accepts any string — a typo'd kind
would record fine, then fail (or worse, silently misprice) at lowering
time, far from the emit site.  Call sites passing a variable are out of
scope for the static check.
"""

from __future__ import annotations

import ast
from typing import List

from ...trace.ir import ALL_KINDS
from .findings import Finding
from .registry import ModuleInfo

_EMIT_NAMES = frozenset({"emit", "_temit"})


def _emit_callee(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def trace_kind_findings(module: ModuleInfo, func_of_line) -> List[Finding]:
    out: List[Finding] = []
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Call)
                and _emit_callee(node) in _EMIT_NAMES and node.args):
            continue
        first = node.args[0]
        if not isinstance(first, ast.Constant) or \
                not isinstance(first.value, str):
            continue
        kind = first.value
        if kind not in ALL_KINDS:
            out.append(Finding(
                rule="T-KIND", path=module.path, line=node.lineno,
                func=func_of_line(node.lineno),
                message=f"emit() with unknown trace-event kind {kind!r} "
                        "— not in repro.trace.ir.ALL_KINDS, so the "
                        "recording cannot be lowered or optimized",
            ))
    return out
