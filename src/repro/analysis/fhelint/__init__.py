"""fhelint — overflow/domain static analyzer for the batched FHE kernels.

``python -m repro.analysis.fhelint src/`` runs three rule families over
the library (see DESIGN.md §9):

* **B-xxx — width/bounds abstract interpretation**: an interval lattice
  in units of ``q`` (plus absolute log2 bounds) over the numpy
  expressions of ``@bounded``-annotated kernels, proving lazy butterflies
  stay inside their declared window, limb GEMMs fit the int32
  tensor-core accumulator, and wide-accumulator sums cannot wrap uint64;
  plus repo-wide object-dtype promotion checks.
* **D-xxx — domain tags**: a call-graph pass over ``@coeff_form`` /
  ``@eval_form`` and ``@montgomery_domain`` / ``@standard_domain``
  annotations so an eval-form stack can never feed a coeff-form
  consumer (and vice versa).
* **A-xxx — aliasing/purity**: functions returning views of ``self``
  buffers or cached stacks (the ``to_eval()`` bug class) and mutation
  of ``@frozen`` compiled plans.
* **K-xxx — kernel descriptors**: every ``KernelSpec(...)`` constructed
  in the tree must go through ``.validate()``.

Findings can be grandfathered in a committed per-rule baseline file and
suppressed inline with ``# fhelint: allow-<rule>`` where a usage is
intentionally outside a rule's model.
"""

from .findings import Finding, load_baseline
from .runner import LintResult, run_lint

__all__ = ["Finding", "LintResult", "load_baseline", "run_lint"]
