"""Finding records, fingerprints and the grandfathering baseline."""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: One-line description per rule id (also the JSON rule table).
RULES: Dict[str, str] = {
    "B-OVF": "integer lane may wrap: bound exceeds the dtype capacity",
    "B-RED": "reducer input exceeds its proven range",
    "B-LAZY": "lazy value stored outside the declared q-multiple window",
    "B-OUT": "return value exceeds the declared output bound",
    "B-ARG": "argument exceeds the callee's declared input bound",
    "B-ACC": "reduction axis has no declared max_lanes bound",
    "B-OBJ": "object-dtype promotion (silent bigint fallback)",
    "D-FORM": "coeff/eval representation mismatch at a call site",
    "D-DOM": "Montgomery/standard domain mismatch at a call site",
    "A-VIEW": "returns a view of self/cached buffers without copy",
    "A-FROZEN": "mutation of a @frozen compiled plan",
    "K-VAL": "KernelSpec constructed without .validate()",
    "T-KIND": "trace emit() with a kind outside the ALL_KINDS vocabulary",
}

#: The dagcheck (D-family) rules: static verification over recorded trace
#: DAGs rather than source text (see :mod:`repro.analysis.dagcheck`).
#: Findings reuse :class:`Finding` with ``path`` = trace label and
#: ``line`` = event id, so fingerprints, baselines and suppression
#: machinery carry over unchanged.
DAG_RULES: Dict[str, str] = {
    "D-LVL": "ciphertext level/prime-count inconsistent along data deps",
    "D-CEV": "coeff/eval domain mismatch along a trace data path",
    "D-SCL": "CKKS scale mismatch at an addition or divide",
    "D-RES": "tensor product consumes an unrescaled tensor product",
    "D-KEY": "automorphism step outside the declared rotation-key set",
    "D-NSE": "statically predicted noise-budget exhaustion",
    "D-SCH": "schedule illegality: event ordered before a dependency",
    "D-HBM": "declared HBM budget below the static liveness certificate",
}


@dataclass
class Finding:
    """One static-analysis finding."""

    rule: str
    path: str
    line: int
    func: str
    message: str
    baselined: bool = False
    suppressed: bool = False

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching: rule + file + function +
        a hash of the message — line numbers excluded so findings survive
        unrelated edits above them."""
        digest = hashlib.sha1(self.message.encode()).hexdigest()[:10]
        return f"{self.rule}:{self.path}:{self.func}:{digest}"

    def to_json(self) -> Dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "func": self.func,
            "message": self.message,
            "fingerprint": self.fingerprint,
            "baselined": self.baselined,
        }

    def render(self) -> str:
        mark = " [baselined]" if self.baselined else ""
        return (
            f"{self.path}:{self.line}: [{self.rule}] {self.func}: "
            f"{self.message}{mark}"
        )


@dataclass
class Baseline:
    """Grandfathered fingerprints, grouped per rule in the JSON file."""

    fingerprints: Dict[str, List[str]] = field(default_factory=dict)

    def covers(self, finding: Finding) -> bool:
        return finding.fingerprint in self.fingerprints.get(finding.rule, [])

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        out: Dict[str, List[str]] = {}
        for f in findings:
            if not f.suppressed:
                out.setdefault(f.rule, []).append(f.fingerprint)
        return cls({rule: sorted(set(v)) for rule, v in sorted(out.items())})

    def to_json(self) -> Dict:
        return {"version": 1, "findings": self.fingerprints}


def load_baseline(path: Optional[str]) -> Baseline:
    if path is None:
        return Baseline()
    with open(path) as fh:
        data = json.load(fh)
    return Baseline({r: list(v) for r, v in data.get("findings", {}).items()})
