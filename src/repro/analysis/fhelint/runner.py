"""Lint driver: walk roots, run rule passes, baseline, render, JSON.

The runner never imports the code it checks — everything is pure AST.
Inline suppression: ``# fhelint: allow-<RULE>`` on the finding's line or
the line directly above waives that rule there (the waiver is visible in
the diff, unlike a baseline entry).
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..report import format_table
from .aliasing import AliasPass
from .bounds import (BoundsPass, object_dtype_findings,
                     unannotated_astype_findings)
from .domains import DomainPass
from .findings import RULES, Baseline, Finding
from .kernelrules import kernelspec_findings
from .registry import ModuleInfo, Registry
from .tracerules import trace_kind_findings

_ALLOW_RE = re.compile(r"#\s*fhelint:\s*allow-([A-Z]+-[A-Z]+)")

#: Paths (relative, substring match) where the numeric-root-only rules
#: apply: narrowing astype outside @bounded.
_NUMERIC_ROOTS = ("repro/ntt/", "repro/numtheory/", "repro/backend/")

#: Directories never linted (the linter itself, tests, caches).
_SKIP_PARTS = {"__pycache__", ".git", "fhelint"}


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    functions_checked: int = 0
    #: Baseline fingerprints that no longer match any finding — dead
    #: grandfather entries.  They gate too: a stale entry would silently
    #: re-admit the finding if the code regressed, so CI requires the
    #: baseline be pruned (``--prune-baseline``) the moment a baselined
    #: finding is fixed.
    stale: List[str] = field(default_factory=list)

    @property
    def active(self) -> List[Finding]:
        """Findings that gate: not baselined, not inline-waived."""
        return [f for f in self.findings
                if not f.baselined and not f.suppressed]

    @property
    def exit_code(self) -> int:
        return 1 if self.active or self.stale else 0

    def rule_counts(self) -> Dict[str, Dict[str, int]]:
        out: Dict[str, Dict[str, int]] = {
            rule: {"active": 0, "baselined": 0, "waived": 0}
            for rule in RULES
        }
        for f in self.findings:
            bucket = ("waived" if f.suppressed
                      else "baselined" if f.baselined else "active")
            out.setdefault(f.rule, {"active": 0, "baselined": 0,
                                    "waived": 0})[bucket] += 1
        return out

    def render(self) -> str:
        """Nsight-style per-rule summary plus the active finding list."""
        counts = self.rule_counts()
        rows = []
        for rule, desc in RULES.items():
            c = counts[rule]
            rows.append([f"{rule}  {desc[:40]}", c["active"],
                         c["baselined"], c["waived"]])
        table = format_table(
            ["rule", "active", "baseline", "waived"], rows,
            title=f"fhelint: {self.files_checked} files, "
                  f"{self.functions_checked} annotated kernels checked",
            first_col_width=48, col_width=10,
        )
        lines = [table, ""]
        for f in sorted(self.active, key=lambda f: (f.path, f.line)):
            lines.append(f.render())
        for fp in self.stale:
            lines.append(f"stale baseline entry (no longer fires): {fp}")
        verdict = "clean" if self.exit_code == 0 else ", ".join(
            part for part in (
                f"{len(self.active)} finding(s)" if self.active else "",
                f"{len(self.stale)} stale baseline entr"
                f"{'y' if len(self.stale) == 1 else 'ies'}"
                if self.stale else "",
            ) if part)
        lines.append(f"fhelint: {verdict}")
        return "\n".join(lines)

    def render_github(self) -> str:
        """GitHub Actions workflow-command annotations, one per active
        finding (stale baseline entries annotate the baseline file)."""
        lines = [
            f"::error file={f.path},line={f.line}::"
            f"[{f.rule}] {f.func}: {f.message}"
            for f in sorted(self.active, key=lambda f: (f.path, f.line))
        ]
        lines.extend(
            f"::error::stale fhelint baseline entry {fp} — "
            "run --prune-baseline"
            for fp in self.stale
        )
        return "\n".join(lines)

    def to_json(self) -> Dict:
        return {
            "tool": "fhelint",
            "files_checked": self.files_checked,
            "functions_checked": self.functions_checked,
            "rules": RULES,
            "counts": self.rule_counts(),
            "active": len(self.active),
            "stale_baseline": list(self.stale),
            "exit_code": self.exit_code,
            "findings": [f.to_json() for f in self.findings
                         if not f.suppressed],
        }


def _iter_py_files(roots: List[str]) -> List[str]:
    out: List[str] = []
    for root in roots:
        if os.path.isfile(root):
            out.append(root)
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = [d for d in dirnames if d not in _SKIP_PARTS]
            for name in sorted(filenames):
                if name.endswith(".py"):
                    out.append(os.path.join(dirpath, name))
    return sorted(set(out))


def _func_locator(module: ModuleInfo) -> Callable[[int], str]:
    """Map a line number to the enclosing function's qualname."""
    spans: List = []

    def collect(node: ast.AST, qual: tuple) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                name = qual + (child.name,)
                end = getattr(child, "end_lineno", child.lineno)
                if not isinstance(child, ast.ClassDef):
                    spans.append((child.lineno, end, ".".join(name)))
                collect(child, name)

    collect(module.tree, ())

    def locate(line: int) -> str:
        best = "<module>"
        best_span = None
        for lo, hi, name in spans:
            if lo <= line <= hi and \
                    (best_span is None or hi - lo < best_span):
                best, best_span = name, hi - lo
        return best

    return locate


def _apply_waivers(findings: List[Finding],
                   modules: Dict[str, ModuleInfo]) -> None:
    for f in findings:
        module = modules.get(f.path)
        if module is None:
            continue
        for line_no in (f.line, f.line - 1):
            if 1 <= line_no <= len(module.source_lines):
                for m in _ALLOW_RE.finditer(
                        module.source_lines[line_no - 1]):
                    if m.group(1) == f.rule:
                        f.suppressed = True


def run_lint(roots: List[str],
             baseline: Optional[Baseline] = None) -> LintResult:
    """Run every rule family over the python files under ``roots``."""
    registry = Registry()
    modules: Dict[str, ModuleInfo] = {}
    for path in _iter_py_files(roots):
        try:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
        except OSError:
            continue
        mod = registry.add_module(path, source)
        if mod is not None:
            modules[path] = mod

    result = LintResult(files_checked=len(modules))
    findings = result.findings
    for path, module in modules.items():
        locate = _func_locator(module)
        findings.extend(object_dtype_findings(module, locate))
        findings.extend(kernelspec_findings(module, locate))
        findings.extend(trace_kind_findings(module, locate))
        if any(part in path.replace("\\", "/")
               for part in _NUMERIC_ROOTS):
            findings.extend(
                unannotated_astype_findings(module, registry, locate))

    for infos in registry.functions.values():
        for info in infos:
            module = modules.get(info.path)
            if module is None or info.node is None:
                continue
            if info.bounded is not None and not info.bounded.get("assume"):
                result.functions_checked += 1
                BoundsPass(registry, info, module, findings).run()
            if info.node.body:
                DomainPass(registry, info, module, findings).run()
                AliasPass(registry, info, module, findings).run()

    _apply_waivers(findings, modules)
    if baseline is not None:
        for f in findings:
            if not f.suppressed and baseline.covers(f):
                f.baselined = True
        fired = {f.fingerprint for f in findings if not f.suppressed}
        result.stale = sorted(
            fp
            for fps in baseline.fingerprints.values()
            for fp in fps
            if fp not in fired
        )
    return result


def write_json(result: LintResult, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result.to_json(), fh, indent=2, sort_keys=True)
        fh.write("\n")
