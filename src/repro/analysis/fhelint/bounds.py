"""Width/bounds abstract interpretation (the B-xxx rule family).

Every ``@bounded``-annotated function (``assume=False``) is interpreted
over an interval lattice whose elements track, per value:

* ``ub`` — an exact exclusive upper bound as a Python integer (so
  ``2**62 + 2**52 <= 2**62 + 2**53`` is decided without float slop);
* ``q_mult`` — a bound in units of the ambient RNS modulus
  (``value < q_mult * q`` with every modulus ``q < 2**31``);
* idiom markers — multi-statement reduction patterns (Shoup lazy
  products, ``min``-trick folds, wrapped subtractions, conditional
  subtractions) are recognized across statements so the kernels' actual
  deferred-reduction style proves clean without per-line annotations.

Obligations checked inside annotated bodies:

* B-OVF — any arithmetic result must stay below the declared dtype's
  capacity; narrowing ``astype`` of a value proven too wide; a
  possibly-wrapped subtraction stored into a tracked buffer or returned
  before its fold.
* B-RED — arguments of ``assume=True`` reducer primitives must *provably*
  satisfy the primitive's declared input range (unknown is a finding:
  reduction inputs are the overflow-critical boundary).
* B-ARG — arguments of annotated non-assume callees are checked when the
  interpreter has a bound for them (a known bound above the contract is
  a finding; unknown is allowed — soundness here is bounded by
  annotation coverage, see DESIGN.md §9).
* B-LAZY — values written into working buffers (subscript stores and
  ``out=`` targets) must stay inside the declared ``max_q_multiple``
  window.
* B-OUT — returned values must satisfy the declared ``out_q`` /
  ``out_bits`` (``out_q_lazy`` applies when the declaration has one).
* B-ACC — every reduced axis (``.sum`` / ``@``) needs a declared
  ``max_lanes`` so accumulator growth is bounded.

Module-wide (annotation-independent) checks: ``astype(object)`` /
``dtype=object`` promotions (B-OBJ) everywhere, and narrowing integer
``astype`` outside any ``@bounded`` contract in the numeric roots.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from .findings import Finding
from .registry import FuncInfo, ModuleInfo, Registry, const_eval

#: Largest representable modulus (all chains use q < 2**31).
Q_MAX = (1 << 31) - 1

#: Exclusive lane capacity per understood dtype.
CAPACITY = {
    "uint64": 1 << 64, "int64": 1 << 63,
    "uint32": 1 << 32, "int32": 1 << 31,
    "uint16": 1 << 16, "int16": 1 << 15,
    "uint8": 1 << 8, "int8": 1 << 7,
}

#: Verified input range of the 64/32 Barrett assembly: q**2 plus the
#: documented slack (fma_ adds the accumulator, wide_dot adds the folded
#: low word) stays within one extra conditional subtraction.
BARRETT_INPUT = (1 << 62) + (1 << 53)


@dataclass(frozen=True)
class AV:
    """Abstract value: exclusive integer bound + q-multiple + markers."""

    ub: Optional[int] = None          # value < ub (None = unbounded)
    q_mult: Optional[float] = None    # value < q_mult * q
    kq: Optional[float] = None        # value is exactly k * q
    bias_q: float = 0.0               # value >= bias_q * q (no-wrap Sub)
    marker: Optional[Tuple] = None    # in-flight reduction idiom
    shoup: Optional[int] = None       # Shoup companion table, < 2**shoup
    const: Optional[int] = None       # exact scalar value when known
    is_float: bool = False
    signed: bool = False
    root: Optional[str] = None        # alias root (buffer this views)

    def bounded(self) -> bool:
        return self.ub is not None

    def with_root(self, root: Optional[str]) -> "AV":
        return replace(self, root=root) if root != self.root else self


TOP = AV()
FLOAT = AV(is_float=True)
#: ``None`` sentinels: no integer values at all, identity under join —
#: so ``result = None`` accumulator loops keep the loop body's bound.
BOTTOM = AV(ub=0)


def q_av(mult: float, **kw) -> AV:
    return AV(ub=int(mult * Q_MAX) + 1, q_mult=mult, **kw)


def bits_av(bits: int, **kw) -> AV:
    return AV(ub=1 << bits, **kw)


def kq_av(k: float) -> AV:
    return AV(ub=int(k * Q_MAX) + 1, q_mult=k, kq=k)


def const_av(value: int) -> AV:
    return AV(ub=abs(value) + 1, const=value, signed=value < 0)


def av_from_spec(spec: dict) -> AV:
    """Abstract value declared by one ``params`` entry / in_q / in_bits."""
    if spec.get("modulus"):
        return kq_av(1)
    if spec.get("shoup") is not None:
        return AV(ub=1 << int(spec["shoup"]), shoup=int(spec["shoup"]))
    if spec.get("ubound") is not None:
        return AV(ub=int(spec["ubound"]))
    candidates = []
    if spec.get("q") is not None:
        candidates.append(q_av(spec["q"]))
    if spec.get("bits") is not None:
        candidates.append(bits_av(int(spec["bits"])))
    if not candidates:
        return TOP
    best = min(candidates, key=lambda a: a.ub)
    # keep the q_mult tag when both forms are declared
    q = next((a.q_mult for a in candidates if a.q_mult is not None), None)
    return replace(best, q_mult=q) if q is not None else best


def join(a: AV, b: AV) -> AV:
    """Least upper bound of two abstract values."""
    if a is BOTTOM:
        return b
    if b is BOTTOM:
        return a
    if a is TOP and b is TOP:
        return TOP
    ub = None if a.ub is None or b.ub is None else max(a.ub, b.ub)
    q_mult = None if a.q_mult is None or b.q_mult is None \
        else max(a.q_mult, b.q_mult)
    return AV(
        ub=ub, q_mult=q_mult,
        kq=a.kq if a.kq == b.kq else None,
        bias_q=min(a.bias_q, b.bias_q),
        marker=a.marker if a.marker == b.marker else None,
        shoup=a.shoup if a.shoup == b.shoup else None,
        const=a.const if a.const == b.const else None,
        is_float=a.is_float or b.is_float,
        signed=a.signed or b.signed,
        root=a.root if a.root == b.root else None,
    )


def _sym(node: ast.expr) -> Optional[str]:
    return node.id if isinstance(node, ast.Name) else None


def _ann_class(ann: Optional[ast.expr]) -> Optional[str]:
    """Class name of a plain annotation (``BatchBarrettReducer``,
    ``barrett.BatchBarrettReducer``, or the string form)."""
    if isinstance(ann, ast.Name):
        return ann.id
    if isinstance(ann, ast.Attribute):
        return ann.attr
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        return ann.value.strip("\"'").split(".")[-1].split("[")[0]
    return None


_PRESERVE_METHODS = {
    "reshape", "transpose", "copy", "ravel", "flatten", "squeeze",
    "swapaxes", "view", "take",
}
_PRESERVE_NP = {
    "ascontiguousarray", "asarray", "array", "copy", "broadcast_to",
    "abs", "uint64", "int64", "uint32", "int32", "uint8", "intp",
    "ndarray",
}
_FLOAT_NP = {"floor", "rint", "ceil", "sqrt", "float64", "float32"}
_FRESH_ZERO_NP = {"zeros", "zeros_like"}
_TOP_NP = {"empty", "empty_like", "ones", "ones_like", "arange", "outer"}

_INT_DTYPES = set(CAPACITY)
_FLOAT_DTYPES = {"float64", "float32", "float16", "float_", "double"}


def _dtype_name(node: ast.expr) -> Optional[str]:
    """Name of a dtype expression: ``np.uint64`` -> ``uint64``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


class BoundsPass:
    """Interpret one annotated function body and collect findings."""

    def __init__(self, registry: Registry, info: FuncInfo,
                 module: ModuleInfo, findings: List[Finding]):
        self.registry = registry
        self.info = info
        self.module = module
        self.findings = findings
        self.spec = info.bounded or {}
        self.capacity = CAPACITY.get(self.spec.get("dtype") or "uint64",
                                     1 << 64)
        self.max_lanes = self.spec.get("max_lanes")
        self.window = self.spec.get("max_q_multiple")
        self.env: Dict[str, AV] = {}
        #: param name -> annotated class name, for exact method contracts.
        self.param_types: Dict[str, str] = {}
        #: local name -> class, tracked through simple assignments.
        self.var_types: Dict[str, str] = {}
        args = info.node.args
        for arg in list(args.args) + list(args.kwonlyargs) + \
                list(getattr(args, "posonlyargs", [])):
            tname = _ann_class(arg.annotation)
            if tname is not None:
                self.param_types[arg.arg] = tname

    # -- driver --------------------------------------------------------------

    def run(self) -> None:
        if self.spec.get("assume"):
            return
        node = self.info.node
        params = self.spec.get("params") or {}
        names = [p for p in self.info.params if p not in ("self", "cls")]
        for i, name in enumerate(names):
            if name in params:
                self.env[name] = av_from_spec(params[name])
            elif i == 0 and (self.spec.get("in_q") is not None
                             or self.spec.get("in_bits") is not None):
                self.env[name] = av_from_spec({
                    "q": self.spec.get("in_q"),
                    "bits": self.spec.get("in_bits"),
                })
        self.returns: List[Tuple[ast.AST, AV, bool]] = []
        self.exec_block(node.body)
        self.check_returns()

    def report(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            rule=rule, path=self.module.path,
            line=getattr(node, "lineno", self.info.line),
            func=self.info.qualname, message=message,
        ))

    # -- statements ----------------------------------------------------------

    def exec_block(self, stmts) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value)
            for target in stmt.targets:
                self.assign(target, value, stmt.value)
                if isinstance(target, ast.Name):
                    cls = self._receiver_class(stmt.value)
                    if cls is not None:
                        self.var_types[target.id] = cls
                    else:
                        self.var_types.pop(target.id, None)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self.assign(stmt.target, self.eval(stmt.value), stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            current = self.eval(stmt.target)
            value = self.binop(stmt.op, current, self.eval(stmt.value),
                               stmt.target, stmt.value, stmt)
            self.assign(stmt.target, value, stmt)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            av = TOP
            bare_self = isinstance(stmt.value, ast.Name) and \
                stmt.value.id in ("self", "cls")
            if stmt.value is not None:
                av = self.eval(stmt.value)
            self.returns.append((stmt, av, bare_self))
        elif isinstance(stmt, ast.If):
            saved = dict(self.env)
            self.exec_block(stmt.body)
            then_env = self.env
            self.env = dict(saved)
            self.exec_block(stmt.orelse)
            self.env = self._join_env(then_env, self.env)
        elif isinstance(stmt, (ast.While, ast.For)):
            if isinstance(stmt, ast.For):
                self._bind_loop_target(stmt.target, stmt.iter)
            # Two body passes give a fixpoint for the q-mult lattice used
            # here: one pass to widen, one to confirm stability.
            for _ in range(2):
                before = dict(self.env)
                if isinstance(stmt, ast.For):
                    self._bind_loop_target(stmt.target, stmt.iter)
                self.exec_block(stmt.body)
                self.env = self._join_env(before, self.env)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            saved = dict(self.env)
            self.exec_block(stmt.body)
            for handler in stmt.handlers:
                env = dict(saved)
                env, self.env = self.env, env
                self.exec_block(handler.body)
                self.env = self._join_env(env, self.env)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.With):
            self.exec_block(stmt.body)
        # Raise/Assert/Pass/Import/nested defs: no dataflow tracked.

    def _join_env(self, a: Dict[str, AV], b: Dict[str, AV]) -> Dict[str, AV]:
        out = {}
        for key in set(a) | set(b):
            if key in a and key in b:
                out[key] = join(a[key], b[key])
            else:
                out[key] = a.get(key, b.get(key, TOP))
        return out

    def _bind_loop_target(self, target: ast.expr, source: ast.expr) -> None:
        """Loop variables inherit the element bound of the iterated value
        (``for x in limbs`` / ``for i, x in enumerate(limbs)``)."""
        av = TOP
        if isinstance(source, ast.Call) and \
                isinstance(source.func, ast.Name) and \
                source.func.id in ("enumerate", "reversed", "sorted"):
            if source.args:
                av = self.eval(source.args[0])
            if source.func.id == "enumerate" and \
                    isinstance(target, ast.Tuple) and len(target.elts) == 2:
                self.assign(target.elts[0], TOP, source)
                self.assign(target.elts[1], av, source)
                return
        else:
            av = self.eval(source)
        if isinstance(target, ast.Tuple):
            for elt in target.elts:
                self.assign(elt, av, source)
        else:
            self.assign(target, av, source)

    # -- assignments & stores ------------------------------------------------

    def assign(self, target: ast.expr, value: AV, origin: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, ast.Tuple):
            for elt in target.elts:
                self.assign(elt, value, origin)
        elif isinstance(target, ast.Subscript):
            self.store_into(target.value, value, origin, via_view=True)
        elif isinstance(target, ast.Starred):
            self.assign(target.value, value, origin)
        # Attribute stores belong to the aliasing pass.

    def store_into(self, base: ast.expr, value: AV, origin: ast.AST,
                   *, via_view: bool) -> None:
        """A write through a view/``out=`` target lands in the base buffer:
        join the stored bound into the buffer's and check the window."""
        self.check_store(value, origin, via_view=via_view)
        root = None
        if isinstance(base, ast.Name):
            root = self.env.get(base.id, TOP).root or base.id
        if root is not None:
            self.env[root] = join(self.env.get(root, TOP),
                                  value.with_root(root))

    def check_store(self, value: AV, origin: ast.AST, *,
                    via_view: bool) -> None:
        if value.is_float:
            return
        if via_view and value.marker and \
                value.marker[0] in ("wrap_diff", "minus_kq"):
            self.report(
                "B-OVF", origin,
                "possibly wrapped subtraction stored into a buffer before "
                "its min-fold recovers the borrow",
            )
        if self.window is not None and value.q_mult is not None and \
                value.q_mult > self.window:
            self.report(
                "B-LAZY", origin,
                f"stores a value < {value.q_mult:g}q but the declared "
                f"lazy window is max_q_multiple={self.window:g}",
            )

    def check_returns(self) -> None:
        out_q = self.spec.get("out_q")
        out_lazy = self.spec.get("out_q_lazy")
        out_bits = self.spec.get("out_bits")
        if out_q is None and out_bits is None and out_lazy is None:
            return
        eff_q = max(x for x in (out_q, out_lazy) if x is not None) \
            if (out_q is not None or out_lazy is not None) else None
        for node, av, bare_self in self.returns:
            if bare_self:
                continue
            if av.is_float:
                continue
            if av.marker and av.marker[0] in ("wrap_diff", "minus_kq"):
                self.report("B-OUT", node,
                            "returns a possibly wrapped subtraction")
                continue
            if not av.bounded():
                self.report(
                    "B-OUT", node,
                    "cannot prove the declared output bound "
                    f"(out_q={out_q!r}, out_bits={out_bits!r}) for this "
                    "return value",
                )
                continue
            if eff_q is not None and av.q_mult is not None:
                if av.q_mult > eff_q:
                    self.report(
                        "B-OUT", node,
                        f"returns a value < {av.q_mult:g}q, wider than the "
                        f"declared out_q={eff_q:g}",
                    )
                continue
            limit = None
            if out_bits is not None:
                limit = 1 << int(out_bits)
            elif eff_q is not None:
                limit = int(eff_q * Q_MAX) + 1
            if limit is not None and av.ub > limit:
                self.report(
                    "B-OUT", node,
                    f"returns a value < 2**{av.ub.bit_length() - 1}ish "
                    f"(ub={av.ub}), wider than the declared output bound "
                    f"{limit}",
                )

    # -- expression evaluation -----------------------------------------------

    def eval(self, node: ast.expr) -> AV:
        if isinstance(node, ast.Constant):
            if node.value is None:
                return BOTTOM
            if isinstance(node.value, bool):
                return TOP
            if isinstance(node.value, int):
                return const_av(node.value)
            if isinstance(node.value, float):
                return FLOAT
            return TOP
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            cval = self.module.constants.get(node.id)
            if cval is not None:
                return const_av(cval)
            return TOP
        if isinstance(node, ast.Attribute):
            return self.eval_attribute(node)
        if isinstance(node, ast.Subscript):
            base = self.eval(node.value)
            root = base.root or _sym(node.value)
            # A slice/gather preserves every value bound of the base.
            return replace(base, const=None, root=root)
        if isinstance(node, ast.BinOp):
            return self.binop(node.op, self.eval(node.left),
                              self.eval(node.right), node.left, node.right,
                              node)
        if isinstance(node, ast.UnaryOp):
            inner = self.eval(node.operand)
            if isinstance(node.op, ast.USub):
                return replace(inner, signed=True, const=None) \
                    if inner.bounded() else TOP
            return inner
        if isinstance(node, ast.Call):
            return self.eval_call(node)
        if isinstance(node, ast.IfExp):
            return join(self.eval(node.body), self.eval(node.orelse))
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            avs = [self.eval(e) for e in node.elts]
            out = TOP
            if avs:
                out = avs[0]
                for av in avs[1:]:
                    out = join(out, av)
            return replace(out, root=None) if out is not TOP else TOP
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
            saved = dict(self.env)
            for gen in node.generators:
                self._bind_loop_target(gen.target, gen.iter)
            out = self.eval(node.elt)
            self.env = saved
            return replace(out, root=None) if out is not TOP else TOP
        if isinstance(node, ast.Compare):
            for sub in [node.left] + node.comparators:
                self.eval(sub)
            return TOP
        if isinstance(node, ast.BoolOp):
            for sub in node.values:
                self.eval(sub)
            return TOP
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        return TOP

    def eval_attribute(self, node: ast.Attribute) -> AV:
        # Declared dotted param spec ("stack.omega") wins.
        if isinstance(node.value, ast.Name):
            dotted = f"{node.value.id}.{node.attr}"
            spec = (self.spec.get("params") or {}).get(dotted)
            if spec is not None:
                return av_from_spec(spec)
        if node.attr == "moduli":
            # A basis/stack modulus list: exact q values.
            return kq_av(1)
        return TOP

    # -- operators -----------------------------------------------------------

    def binop(self, op: ast.operator, left: AV, right: AV,
              left_node: ast.expr, right_node: ast.expr,
              origin: ast.AST) -> AV:
        if left.is_float or right.is_float:
            return FLOAT
        if isinstance(op, ast.Add):
            return self.op_add(left, right, left_node, origin)
        if isinstance(op, ast.Sub):
            return self.op_sub(left, right, left_node, origin)
        if isinstance(op, ast.Mult):
            return self.op_mult(left, right, left_node, right_node, origin)
        if isinstance(op, ast.MatMult):
            return self.op_matmult(left, right, origin)
        if isinstance(op, ast.RShift):
            return self.op_rshift(left, right)
        if isinstance(op, ast.LShift):
            return self.op_lshift(left, right, origin)
        if isinstance(op, ast.BitAnd):
            ubounds = [a.ub for a in (left, right) if a.ub is not None]
            return AV(ub=min(ubounds)) if ubounds else TOP
        if isinstance(op, ast.BitOr):
            if left.ub is not None and right.ub is not None:
                # OR of split halves: bounded by the wider operand's bits.
                bits = max((left.ub - 1).bit_length(),
                           (right.ub - 1).bit_length())
                return self._checked(AV(ub=1 << bits), origin)
            return TOP
        if isinstance(op, ast.Mod):
            if right.kq is not None:
                return q_av(right.kq)
            if right.const is not None and right.const > 0:
                return AV(ub=right.const)
            return AV(ub=left.ub) if left.ub is not None else TOP
        if isinstance(op, ast.FloorDiv):
            if left.marker and left.marker[0] == "q_shl" and \
                    right.kq == 1:
                # floor(w << s / q) < 2**s for w < q: the Shoup companion.
                return AV(ub=1 << left.marker[1])
            return AV(ub=left.ub) if left.ub is not None else TOP
        if isinstance(op, ast.Div):
            return FLOAT
        if isinstance(op, ast.Pow):
            if left.const is not None and right.const is not None:
                return const_av(left.const ** right.const)
            return TOP
        return TOP

    def _checked(self, av: AV, origin: ast.AST) -> AV:
        """Capacity obligation on every fresh arithmetic result."""
        if not av.is_float and av.ub is not None and av.ub > self.capacity:
            self.report(
                "B-OVF", origin,
                f"intermediate may reach {av.ub - 1} "
                f"(~2**{(av.ub - 1).bit_length()}), beyond the "
                f"{self.spec.get('dtype') or 'uint64'} lane capacity",
            )
        return av

    def op_add(self, left: AV, right: AV, left_node: ast.expr,
               origin: ast.AST) -> AV:
        if left.kq is not None and right.kq is not None:
            return kq_av(left.kq + right.kq)
        # X + k*q: biased value for a later no-wrap subtraction.
        for a, b, node in ((left, right, left_node),
                           (right, left, left_node)):
            if b.kq is not None and a.q_mult is not None:
                if a.marker and a.marker[0] == "wrap_diff":
                    # d + kq ahead of min(d, d + kq): the borrow fold.
                    _, lo_mult, hi_k = a.marker
                    if b.kq >= hi_k:
                        return AV(
                            ub=1 << 64,
                            marker=("wrap_fix", _sym(node),
                                    max(lo_mult, b.kq)),
                        )
                return self._checked(
                    replace(q_av(a.q_mult + b.kq),
                            bias_q=a.bias_q + b.kq),
                    origin,
                )
        if left.marker and left.marker[0] == "wrap_diff" and \
                right.kq is not None:
            _, lo_mult, hi_k = left.marker
            if right.kq >= hi_k:
                return AV(ub=1 << 64,
                          marker=("wrap_fix", _sym(left_node),
                                  max(lo_mult, right.kq)))
        if left.ub is None or right.ub is None:
            return TOP
        q_mult = None
        if left.q_mult is not None and right.q_mult is not None:
            q_mult = left.q_mult + right.q_mult
        return self._checked(
            AV(ub=left.ub + right.ub - 1, q_mult=q_mult,
               signed=left.signed or right.signed),
            origin,
        )

    def op_sub(self, left: AV, right: AV, left_node: ast.expr,
               origin: ast.AST) -> AV:
        # Shoup fold: (a*w) - ((a*wsh) >> 32) * q  ->  value < 2q.
        if left.marker and right.marker and \
                left.marker[0] == "prod_q" and right.marker[0] == "shoup_t" \
                and left.marker[1] is not None \
                and left.marker[1] == right.marker[1]:
            orig_ub = max(left.marker[2], right.marker[2])
            if orig_ub <= (1 << 32):
                return q_av(2)
            self.report(
                "B-OVF", origin,
                "Shoup lazy product operand exceeds 2**32; the < 2q "
                "guarantee of the Harvey butterfly no longer holds",
            )
            return TOP
        if left.signed or right.signed:
            if left.ub is None or right.ub is None:
                return TOP
            return self._checked(
                AV(ub=left.ub + right.ub - 1, signed=True), origin
            )
        # q - x with x < q: the negation pattern (np.where guards x == 0).
        if left.kq is not None and right.q_mult is not None and \
                right.q_mult <= left.kq:
            return q_av(left.kq)
        # Biased subtraction cannot wrap: (x + kq) - y with y < kq.
        if right.q_mult is not None and left.bias_q >= right.q_mult:
            if left.ub is None:
                return TOP
            return AV(ub=left.ub, q_mult=left.q_mult,
                      bias_q=left.bias_q - right.q_mult)
        # X - kq ahead of min(X, X - kq): the lazy canonicalization.
        if right.kq is not None:
            return AV(ub=1 << 64,
                      marker=("minus_kq", _sym(left_node), right.kq))
        # Wrapping difference of two q-bounded legs, folded later by
        # min(d, d + kq).
        if left.q_mult is not None and right.q_mult is not None:
            return AV(ub=1 << 64,
                      marker=("wrap_diff", left.q_mult, right.q_mult))
        if left.ub is not None and right.ub is not None:
            # Unsigned subtraction of unclassified operands: may wrap.
            return AV(ub=1 << 64, marker=("wrap_diff",
                                          float((left.ub - 1) // Q_MAX + 1),
                                          float((right.ub - 1) // Q_MAX + 1)))
        return TOP

    def op_mult(self, left: AV, right: AV, left_node: ast.expr,
                right_node: ast.expr, origin: ast.AST) -> AV:
        # Shoup companion product: a * wsh, tagged for the >> 32 step.
        for a, b, a_node in ((left, right, left_node),
                             (right, left, right_node)):
            if b.shoup is not None and a.ub is not None:
                return self._checked(
                    AV(ub=(a.ub - 1) * (b.ub - 1) + 1,
                       marker=("shoup_raw", _sym(a_node), a.ub)),
                    origin,
                )
        # (shoup shifted) * q: the subtrahend of the lazy fold.
        for a, b in ((left, right), (right, left)):
            if a.marker and a.marker[0] == "shoup_shift" and \
                    b.kq is not None:
                ub = (a.ub - 1) * int(b.kq * Q_MAX) + 1 \
                    if a.ub is not None else None
                return self._checked(
                    AV(ub=ub, marker=("shoup_t",) + a.marker[1:]), origin
                )
        # a * w with w < q: the plain leg of the Shoup product.
        for a, b, a_node in ((left, right, left_node),
                             (right, left, right_node)):
            if b.q_mult == 1 and b.kq is None and a.ub is not None and \
                    a.q_mult != 1:
                return self._checked(
                    AV(ub=(a.ub - 1) * (b.ub - 1) + 1,
                       marker=("prod_q", _sym(a_node), a.ub),
                       signed=a.signed or b.signed),
                    origin,
                )
        if left.ub is not None and right.ub is not None:
            return self._checked(
                AV(ub=(left.ub - 1) * (right.ub - 1) + 1,
                   signed=left.signed or right.signed),
                origin,
            )
        return TOP

    def op_matmult(self, left: AV, right: AV, origin: ast.AST) -> AV:
        if self.max_lanes is None:
            self.report(
                "B-ACC", origin,
                "matrix contraction without a declared max_lanes bound — "
                "the accumulator depth is unchecked",
            )
            return TOP
        if left.ub is None or right.ub is None:
            self.report(
                "B-ACC", origin,
                "cannot bound the operands of this matrix contraction",
            )
            return TOP
        ub = (left.ub - 1) * (right.ub - 1) * int(self.max_lanes) + 1
        return self._checked(AV(ub=ub), origin)

    def reduce_sum(self, operand: AV, origin: ast.AST) -> AV:
        if operand.is_float:
            return FLOAT
        if self.max_lanes is None:
            self.report(
                "B-ACC", origin,
                "axis reduction without a declared max_lanes bound — "
                "the accumulator depth is unchecked",
            )
            return TOP
        if operand.ub is None:
            self.report("B-ACC", origin,
                        "cannot bound the operand of this axis reduction")
            return TOP
        return self._checked(
            AV(ub=(operand.ub - 1) * int(self.max_lanes) + 1), origin
        )

    def op_rshift(self, left: AV, right: AV) -> AV:
        shift = right.const
        if shift is None or left.ub is None:
            return TOP
        av = AV(ub=((left.ub - 1) >> shift) + 1)
        if left.marker and left.marker[0] == "shoup_raw" and shift == 32:
            av = replace(av, marker=("shoup_shift",) + left.marker[1:])
        return av

    def op_lshift(self, left: AV, right: AV, origin: ast.AST) -> AV:
        shift = right.const
        if shift is None or left.ub is None:
            return TOP
        av = AV(ub=((left.ub - 1) << shift) + 1)
        if left.q_mult is not None and left.q_mult <= 1:
            av = replace(av, marker=("q_shl", shift))
        return self._checked(av, origin)

    # -- calls ---------------------------------------------------------------

    def eval_call(self, node: ast.Call) -> AV:
        func = node.func
        # numpy ufuncs, possibly with out=/where= store semantics.
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name) and func.value.id == "np":
            return self.eval_np_call(node, func.attr)
        if isinstance(func, ast.Attribute):
            return self.eval_method_call(node, func)
        if isinstance(func, ast.Name):
            return self.eval_name_call(node, func.id)
        return TOP

    def eval_name_call(self, node: ast.Call, name: str) -> AV:
        if name == "pow" and len(node.args) == 3:
            for arg in node.args:
                self.eval(arg)
            return q_av(1)  # 3-arg pow: result below the modulus
        if name in ("int", "len", "min", "max", "abs", "round"):
            avs = [self.eval(a) for a in node.args]
            if name in ("min", "max") and avs and \
                    all(a.ub is not None for a in avs):
                pick = min if name == "min" else max
                return AV(ub=pick(a.ub for a in avs))
            if name in ("int", "abs") and avs:
                return avs[0]
            return TOP
        if name == "float":
            for arg in node.args:
                self.eval(arg)
            return FLOAT
        info = self.registry.lookup(name)
        if info is not None and info.bounded is not None:
            return self.contract_call(node, info, skip_self=False)
        for arg in node.args:
            self.eval(arg)
        return TOP

    def eval_method_call(self, node: ast.Call, func: ast.Attribute) -> AV:
        method = func.attr
        recv = self.eval(func.value)
        if method in _PRESERVE_METHODS:
            for arg in node.args:
                self.eval(arg)
            return recv
        if method == "astype":
            return self.handle_astype(node, recv)
        if method == "sum":
            return self.reduce_sum(recv, node)
        if method in ("min", "max"):
            return AV(ub=recv.ub) if recv.ub is not None else TOP
        if method == "q_col":
            # Reducer accessor for the broadcast modulus column.
            return kq_av(1)
        if method in ("setflags", "fill", "sort", "get", "append",
                      "extend", "items", "keys", "values", "update"):
            for arg in node.args:
                self.eval(arg)
            return TOP
        info = self.registry.lookup_method(
            self._receiver_class(func.value), method
        )
        if info is not None and info.bounded is not None:
            return self.contract_call(node, info, skip_self=True)
        for arg in node.args:
            self.eval(arg)
        for kw in node.keywords:
            self.eval(kw.value)
        return TOP

    def _receiver_class(self, recv: ast.expr) -> Optional[str]:
        """Known class of a method receiver: a typed parameter or
        tracked local, the enclosing class for ``self``, a direct
        constructor call, or an attribute chain resolved through class
        field / property annotations (``self.context.barrett``)."""
        if isinstance(recv, ast.Name):
            if recv.id == "self" and "." in self.info.qualname:
                return self.info.qualname.rsplit(".", 1)[0]
            return self.var_types.get(recv.id) or \
                self.param_types.get(recv.id)
        if isinstance(recv, ast.Attribute):
            base = self._receiver_class(recv.value)
            if base is not None:
                return self.registry.attr_class(base, recv.attr)
            return None
        if isinstance(recv, ast.Call) and isinstance(recv.func, ast.Name):
            if recv.func.id[:1].isupper():
                return recv.func.id
            # Factory call: resolve through the callee's return annotation
            # (e.g. ``active_backend() -> ArrayBackend`` dispatches to the
            # backend-interface contracts).
            return self.registry.return_class(recv.func.id)
        return None

    def handle_astype(self, node: ast.Call, operand: AV) -> AV:
        dtype = _dtype_name(node.args[0]) if node.args else None
        for kw in node.keywords:
            if kw.arg == "dtype":
                dtype = _dtype_name(kw.value)
        if dtype == "object":
            self.report("B-OBJ", node,
                        "astype(object) silently promotes to Python "
                        "bigints — use a split-reduction path instead")
            return TOP
        if dtype in _FLOAT_DTYPES:
            return FLOAT
        if dtype in _INT_DTYPES:
            cap = CAPACITY[dtype]
            if operand.ub is not None and operand.ub > cap:
                self.report(
                    "B-OVF", node,
                    f"astype({dtype}) may truncate: operand can reach "
                    f"{operand.ub - 1} (~2**{(operand.ub - 1).bit_length()})",
                )
                return AV(ub=cap, signed=dtype.startswith("int"))
            if operand.is_float or operand.ub is None:
                # Unknown operand re-entering integer lanes: trivially
                # below the capacity but nothing stronger.
                return AV(ub=None, signed=dtype.startswith("int"))
            return replace(operand, signed=operand.signed
                           or dtype.startswith("int"))
        if dtype == "intp" or dtype == "bool":
            return TOP
        self.report("B-OVF", node,
                    f"astype to unrecognized dtype {dtype!r} — annotate "
                    "or use an understood lane type")
        return TOP

    def eval_np_call(self, node: ast.Call, name: str) -> AV:
        kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg}
        if name in ("add", "subtract", "multiply", "minimum", "maximum",
                    "bitwise_and", "bitwise_or", "right_shift",
                    "left_shift", "mod", "floor_divide") and \
                len(node.args) >= 2:
            left = self.eval(node.args[0])
            right = self.eval(node.args[1])
            result = self.np_binary(name, node, left, right, kwargs)
            out = kwargs.get("out")
            if out is not None:
                if isinstance(out, ast.Name):
                    self.check_store(result, node, via_view=False)
                    prior = self.env.get(out.id, TOP)
                    self.env[out.id] = result.with_root(prior.root)
                    if prior.root is not None:
                        self.env[prior.root] = join(
                            self.env.get(prior.root, TOP),
                            result.with_root(prior.root),
                        )
                elif isinstance(out, ast.Subscript):
                    self.store_into(out.value, result, node, via_view=True)
            return result
        if name == "where" and len(node.args) == 3:
            self.eval(node.args[0])
            return join(self.eval(node.args[1]), self.eval(node.args[2]))
        if name in ("stack", "concatenate", "hstack", "vstack"):
            return self.eval(node.args[0]) if node.args else TOP
        if name in _PRESERVE_NP:
            return self.eval(node.args[0]) if node.args else TOP
        if name in _FLOAT_NP:
            for arg in node.args:
                self.eval(arg)
            return FLOAT
        if name in _FRESH_ZERO_NP:
            return AV(ub=1)
        if name in _TOP_NP:
            return TOP
        if name == "sum" and node.args:
            return self.reduce_sum(self.eval(node.args[0]), node)
        if name == "matmul" and len(node.args) == 2:
            return self.op_matmult(self.eval(node.args[0]),
                                   self.eval(node.args[1]), node)
        for arg in node.args:
            self.eval(arg)
        return TOP

    def np_binary(self, name: str, node: ast.Call, left: AV, right: AV,
                  kwargs: Dict[str, ast.expr]) -> AV:
        where = kwargs.get("where")
        if name == "subtract" and where is not None:
            # Conditional subtraction: np.subtract(x, kq, out=x,
            # where=x >= kq) tightens x by k q-multiples.
            if right.kq is not None and left.q_mult is not None and \
                    self._where_guards(where, node.args[0], node.args[1]):
                return q_av(max(left.q_mult - right.kq, right.kq))
            return join(left, self.op_sub(left, right, node.args[0], node))
        if name == "add" and where is not None:
            return join(left, self.op_add(left, right, node.args[0], node))
        op_map = {
            "add": ast.Add(), "subtract": ast.Sub(), "multiply": ast.Mult(),
            "bitwise_and": ast.BitAnd(), "bitwise_or": ast.BitOr(),
            "right_shift": ast.RShift(), "left_shift": ast.LShift(),
            "mod": ast.Mod(), "floor_divide": ast.FloorDiv(),
        }
        if name in ("minimum", "maximum"):
            return self.np_minimum(name, left, right, node)
        return self.binop(op_map[name], left, right, node.args[0],
                          node.args[1], node)

    def _where_guards(self, where: ast.expr, target: ast.expr,
                      threshold: ast.expr) -> bool:
        """True for ``where=target >= threshold`` (textually)."""
        return (
            isinstance(where, ast.Compare)
            and len(where.ops) == 1
            and isinstance(where.ops[0], (ast.GtE, ast.Gt))
            and ast.dump(where.left) == ast.dump(target)
            and ast.dump(where.comparators[0]) == ast.dump(threshold)
        )

    def np_minimum(self, name: str, left: AV, right: AV,
                   node: ast.Call) -> AV:
        if name == "minimum":
            for a, b, a_node in ((left, right, node.args[0]),
                                 (right, left, node.args[1])):
                if b.marker and b.marker[0] == "minus_kq" and \
                        b.marker[1] is not None and \
                        b.marker[1] == _sym(a_node) and \
                        a.q_mult is not None:
                    # min(s, s - kq) folds s < mq into < max(m-k, k) q.
                    k = b.marker[2]
                    return q_av(max(a.q_mult - k, k))
                if b.marker and b.marker[0] == "wrap_fix" and \
                        b.marker[1] is not None and \
                        b.marker[1] == _sym(a_node) and \
                        a.marker and a.marker[0] == "wrap_diff":
                    # min(d, d + kq) recovers the wrapped borrow.
                    return q_av(b.marker[2])
            ubounds = [a.ub for a in (left, right) if a.ub is not None]
            return AV(ub=min(ubounds)) if ubounds else TOP
        ubounds = [a.ub for a in (left, right)]
        if None in ubounds:
            return TOP
        return AV(ub=max(ubounds))

    # -- annotated callee contracts ------------------------------------------

    def contract_call(self, node: ast.Call, callee: FuncInfo,
                      *, skip_self: bool) -> AV:
        spec = callee.bounded
        params = [p for p in callee.params if p not in ("self", "cls")]
        mapping: List[Tuple[str, ast.expr]] = []
        for i, arg in enumerate(node.args):
            if i < len(params):
                mapping.append((params[i], arg))
            else:
                self.eval(arg)
        kw_vals: Dict[str, ast.expr] = {}
        for kw in node.keywords:
            if kw.arg and kw.arg in params:
                mapping.append((kw.arg, kw.value))
            elif kw.arg:
                kw_vals[kw.arg] = kw.value
                self.eval(kw.value)
            else:
                self.eval(kw.value)

        arg_avs: Dict[str, AV] = {}
        first_param = params[0] if params else None
        for pname, arg_node in mapping:
            av = self.eval(arg_node)
            arg_avs[pname] = av
            pspec = (spec.get("params") or {}).get(pname)
            if pspec is None and pname == first_param and (
                    spec.get("in_q") is not None
                    or spec.get("in_bits") is not None):
                pspec = {"q": spec.get("in_q"),
                         "bits": spec.get("in_bits")}
            if pspec is None:
                continue
            self.check_arg(node, callee, pname, av, pspec)

        if spec.get("passthrough"):
            return arg_avs.get(spec["passthrough"], TOP)
        lazy_kw = kw_vals.get("lazy")
        use_lazy = isinstance(lazy_kw, ast.Constant) and \
            lazy_kw.value is True and spec.get("out_q_lazy") is not None
        out_q = spec.get("out_q_lazy") if use_lazy else spec.get("out_q")
        if out_q is not None:
            return q_av(out_q)
        if spec.get("out_bits") is not None:
            return bits_av(int(spec["out_bits"]))
        return TOP

    def check_arg(self, node: ast.Call, callee: FuncInfo, pname: str,
                  av: AV, pspec: dict) -> None:
        rule = "B-RED" if callee.bounded.get("assume") else "B-ARG"
        if av.is_float:
            return
        if pspec.get("modulus"):
            if av.kq is None and av.bounded():
                self.report(
                    rule, node,
                    f"argument {pname!r} of {callee.name} must be the "
                    "exact modulus column",
                )
            return
        limit = av_from_spec(pspec).ub
        if limit is None:
            return
        if av.marker and av.marker[0] in ("wrap_diff", "minus_kq"):
            self.report(
                rule, node,
                f"argument {pname!r} of {callee.name} may hold a wrapped "
                "subtraction",
            )
            return
        if av.ub is None:
            if rule == "B-RED":
                self.report(
                    rule, node,
                    f"cannot prove argument {pname!r} of {callee.name} "
                    f"stays below its declared input range ({limit})",
                )
            return
        if av.ub > limit:
            self.report(
                rule, node,
                f"argument {pname!r} of {callee.name} can reach "
                f"{av.ub - 1} (~2**{(av.ub - 1).bit_length()}), beyond the "
                f"declared input range ({limit})",
            )


# -- module-wide syntactic checks --------------------------------------------


def _exact_oracle_spans(module: ModuleInfo) -> List[tuple]:
    """Line spans of functions decorated ``@exact_oracle`` — declared
    bigint reference oracles where object-dtype arithmetic is the
    intent, not a silent fallback."""
    spans = []
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = target.attr if isinstance(target, ast.Attribute) else \
                getattr(target, "id", None)
            if name == "exact_oracle":
                spans.append(
                    (node.lineno, getattr(node, "end_lineno", node.lineno)))
                break
    return spans


def object_dtype_findings(module: ModuleInfo,
                          func_of_line) -> List[Finding]:
    """B-OBJ: every ``astype(object)`` / ``dtype=object`` in the module,
    except inside ``@exact_oracle``-declared reference implementations."""
    oracle_spans = _exact_oracle_spans(module)
    out: List[Finding] = []
    for node in ast.walk(module.tree):
        if any(lo <= getattr(node, "lineno", 0) <= hi
               for lo, hi in oracle_spans):
            continue
        hit = None
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "astype" and node.args:
                if _dtype_name(node.args[0]) == "object":
                    hit = "astype(object) promotes to Python bigints"
            for kw in node.keywords:
                if kw.arg == "dtype" and _dtype_name(kw.value) == "object":
                    hit = "dtype=object allocates a Python-object array"
        if hit:
            out.append(Finding(
                rule="B-OBJ", path=module.path, line=node.lineno,
                func=func_of_line(node.lineno),
                message=hit + " — silent arbitrary-precision fallback",
            ))
    return out


def unannotated_astype_findings(module: ModuleInfo, registry: Registry,
                                func_of_line) -> List[Finding]:
    """Narrowing integer ``astype`` outside any ``@bounded`` contract in
    the numeric roots (ntt/numtheory): silent truncation risk."""
    annotated_spans = []
    for infos in registry.functions.values():
        for info in infos:
            if info.path == module.path and info.bounded is not None:
                end = getattr(info.node, "end_lineno", info.line)
                annotated_spans.append((info.line, end))

    def covered(line: int) -> bool:
        return any(lo <= line <= hi for lo, hi in annotated_spans)

    out: List[Finding] = []
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype" and node.args):
            continue
        dtype = _dtype_name(node.args[0])
        if dtype not in _INT_DTYPES or CAPACITY[dtype] >= (1 << 63):
            continue
        if covered(node.lineno):
            continue
        out.append(Finding(
            rule="B-OVF", path=module.path, line=node.lineno,
            func=func_of_line(node.lineno),
            message=f"narrowing astype({dtype}) outside any @bounded "
                    "contract — annotate the enclosing kernel",
        ))
    return out
