"""Kernel-descriptor hygiene (the K-xxx rule family).

**K-VAL** — every ``KernelSpec(...)`` constructed inside the library
must be validated at the construction site:
``KernelSpec(...).validate()``. The gpusim engine re-validates at submit
time, but a spec built and cached long before submission (plan caches,
baseline tables) would otherwise fail far from the mistake; the lint
rule keeps the check next to the numbers. Specs built inside
``KernelSpec``'s own module (the dataclass definition, ``validate``
itself, ``replace``-style helpers) are exempt.
"""

from __future__ import annotations

import ast
from typing import List

from .findings import Finding
from .registry import ModuleInfo


def _is_kernelspec_ctor(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "KernelSpec"
    if isinstance(func, ast.Attribute):
        return func.attr == "KernelSpec"
    return False


def kernelspec_findings(module: ModuleInfo, func_of_line) -> List[Finding]:
    if module.path.replace("\\", "/").endswith("gpusim/kernel.py"):
        return []
    validated: set = set()
    for node in ast.walk(module.tree):
        # KernelSpec(...).validate() — the ctor node hangs off the
        # attribute receiver of the validate call.
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr == "validate" and \
                isinstance(node.func.value, ast.Call) and \
                _is_kernelspec_ctor(node.func.value):
            validated.add(id(node.func.value))
    out: List[Finding] = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call) and _is_kernelspec_ctor(node) and \
                id(node) not in validated:
            out.append(Finding(
                rule="K-VAL", path=module.path, line=node.lineno,
                func=func_of_line(node.lineno),
                message="KernelSpec constructed without an immediate "
                        ".validate() — geometry/stall errors surface at "
                        "submit time, far from the numbers",
            ))
    return out
