"""Metric conversions shared by benchmarks."""

from __future__ import annotations


def kops_from_us(latency_us: float) -> float:
    """Operations per second in thousands, from per-op latency."""
    if latency_us <= 0:
        raise ValueError("latency must be positive")
    return 1e3 / latency_us


def us_from_kops(kops: float) -> float:
    if kops <= 0:
        raise ValueError("throughput must be positive")
    return 1e3 / kops


def within_factor(measured: float, reference: float, factor: float) -> bool:
    """True when measured is within [reference/factor, reference*factor]."""
    if measured <= 0 or reference <= 0:
        return False
    ratio = measured / reference
    return 1.0 / factor <= ratio <= factor
