"""Plain-text table rendering for the benchmark harness.

The benchmark files print tables shaped like the paper's; these helpers
keep the formatting consistent (fixed-width columns, ratio rows,
paper-vs-measured annotations).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 *, title: str = "", col_width: int = 12,
                 first_col_width: int = 28) -> str:
    """Fixed-width table: first column left-aligned, rest right-aligned."""
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("-" * (first_col_width + col_width * (len(headers) - 1)))
    header = f"{headers[0]:<{first_col_width}}" + "".join(
        f"{h:>{col_width}}" for h in headers[1:]
    )
    lines.append(header)
    for row in rows:
        cells = [_fmt(c) for c in row]
        lines.append(
            f"{cells[0]:<{first_col_width}}"
            + "".join(f"{c:>{col_width}}" for c in cells[1:])
        )
    return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def speedup_row(label: str, ours: Dict[str, float],
                baseline: Dict[str, float],
                keys: Sequence[str]) -> List:
    """A 'Speedup' table row: ours / baseline per column."""
    row: List = [label]
    for k in keys:
        a, b = ours.get(k), baseline.get(k)
        row.append(None if not a or not b else f"{a / b:.2f}x")
    return row


def paper_vs_measured(name: str, paper: Optional[float], measured: float,
                      *, unit: str = "") -> str:
    """One EXPERIMENTS.md-style comparison line."""
    if paper is None:
        return f"{name:<40} paper: -          measured: {measured:.4g} {unit}"
    ratio = measured / paper if paper else float("inf")
    return (
        f"{name:<40} paper: {paper:<10.4g} measured: {measured:<10.4g} "
        f"{unit:<6} (x{ratio:.2f} of paper)"
    )


def shape_check(description: str, condition: bool) -> str:
    """A pass/fail line for a qualitative claim ('who wins')."""
    mark = "PASS" if condition else "FAIL"
    return f"[{mark}] {description}"


def lint_gate_summary(json_path: str = "ANALYSIS_lint.json") -> str:
    """Fold the fhelint static-safety gate into the reproduction report.

    Reads a previously written ``ANALYSIS_lint.json`` (the CI artifact)
    when one exists; otherwise re-runs the analyzer over the installed
    package source, so the reproduction summary never silently skips
    the gate. The numeric tables above only mean something if the
    kernels producing them provably stay inside their declared bounds.
    """
    import json
    import os

    if os.path.exists(json_path):
        with open(json_path, encoding="utf-8") as fh:
            data = json.load(fh)
        origin = json_path
    else:
        # Local import: the lint runner imports this module's
        # format_table, so a top-level import would be circular.
        from .fhelint.runner import run_lint
        import repro

        data = run_lint([os.path.dirname(repro.__file__)]).to_json()
        origin = "live run"

    rows = []
    for rule in sorted(data.get("counts", {})):
        c = data["counts"][rule]
        if c["active"] or c["baselined"] or c["waived"]:
            rows.append([rule, c["active"], c["baselined"], c["waived"]])
    if not rows:
        rows.append(["(no findings)", 0, 0, 0])
    verdict = "CLEAN" if data.get("active", 1) == 0 else \
        f"{data['active']} ACTIVE FINDING(S)"
    table = format_table(
        ["rule", "active", "baseline", "waived"], rows,
        title=f"Static safety gate: fhelint ({origin}) — "
              f"{data.get('functions_checked', 0)} annotated kernels",
        first_col_width=12, col_width=10,
    )
    return f"{table}\n{shape_check('fhelint gate: ' + verdict, verdict == 'CLEAN')}"


def dagcheck_gate_summary(json_path: str = "ANALYSIS_dagcheck.json") -> str:
    """Fold the dagcheck trace-DAG verification gate into the report.

    Reads a previously written ``ANALYSIS_dagcheck.json`` (the CI
    artifact) when one exists; otherwise verifies one catalog workload
    live at proxy scale so the summary never silently skips the gate.
    The optimizer/serving numbers above only mean something if the
    rewritten DAGs provably preserve ciphertext semantics, stay inside
    noise budget, and admit under their memory certificates.
    """
    import json
    import os

    if os.path.exists(json_path):
        with open(json_path, encoding="utf-8") as fh:
            data = json.load(fh)
        origin = json_path
    else:
        # Local import: dagcheck's runner renders with format_table,
        # so a top-level import would be circular.
        from .dagcheck import run_dagcheck

        data = run_dagcheck(names=["resnet_block"], search=False).to_json()
        origin = "live run (resnet_block only)"

    rows = []
    for wl in sorted(data.get("workloads", {})):
        info = data["workloads"][wl]
        cert = data.get("certificates", {}).get(wl, {})
        ratio = cert.get("ratio")
        rows.append([
            wl, info.get("findings", 0), len(info.get("surfaces", [])),
            round(cert.get("peak_bytes", 0) / 2**20, 1),
            f"{ratio:.2f}x" if ratio else "-",
        ])
    if not rows:
        rows.append(["(no workloads)", 0, 0, 0, "-"])
    findings = len(data.get("findings", []))
    survivors = data.get("surviving_mutations", [])
    kills = data.get("mutation_kills", {})
    ok = data.get("exit_code", 1) == 0
    verdict = "CLEAN" if ok else (
        f"{findings} FINDING(S), {len(survivors)} SURVIVING MUTATION(S)"
    )
    table = format_table(
        ["workload", "findings", "surfaces", "cert MiB", "cert/obs"],
        rows,
        title=f"Trace-DAG verification gate: dagcheck ({origin}) — "
              f"{len(kills)} mutation(s) killed",
        first_col_width=16, col_width=10,
    )
    return f"{table}\n{shape_check('dagcheck gate: ' + verdict, ok)}"
