"""Barrett modular reduction for 32-bit moduli.

WarpDrive uses Barrett reduction everywhere outside the NTT (§IV-A-4):
element-wise ciphertext arithmetic does not enjoy the free Montgomery-domain
conversion that precomputed twiddles give the NTT, so Barrett's
single-constant form wins there.

We use the 64/32 split: with ``mu = floor(2**62 / q)`` and ``q < 2**31``,
``approx = (t * mu) >> 62`` misses the true quotient by at most one, so one
conditional subtraction corrects the remainder. To keep ``t * mu`` inside a
uint64 lane the vectorized path first splits the product — the same
double-word trick a 32-bit GPU kernel performs with ``__umulhi``.
"""

from __future__ import annotations

import numpy as np

from ..analysis.annotations import bounded, returns_view
from ..backend import active_backend

_SHIFT = 62

#: Exclusive input bound of the 64/32 split assembly: ``q**2 < 2**62``
#: plus the slack every caller is allowed (an extra accumulator term in
#: ``fma_``, the folded low word in ``wide_dot``) — still small enough
#: that the quotient approximation misses by at most two subtractions.
_REDUCE_INPUT = (1 << 62) + (1 << 53)


class BarrettReducer:
    """Barrett arithmetic for a fixed modulus ``q < 2**31``."""

    def __init__(self, modulus: int):
        if not 2 < modulus < (1 << 31):
            raise ValueError(f"modulus must lie in (2, 2**31), got {modulus}")
        self.modulus = modulus
        #: mu = floor(2**62 / q); fits in 32+ bits but always below 2**62.
        self.mu = (1 << _SHIFT) // modulus
        self._q64 = np.uint64(modulus)
        self._mu_hi = np.uint64(self.mu >> 32)
        self._mu_lo = np.uint64(self.mu & 0xFFFFFFFF)

    # ---- scalar reference ------------------------------------------------

    def reduce(self, t: int) -> int:
        """Return ``t mod q`` for ``0 <= t < q**2`` (covers any 62-bit input)."""
        if t < 0:
            raise ValueError("Barrett reduction input must be non-negative")
        approx = (t * self.mu) >> _SHIFT
        r = t - approx * self.modulus
        while r >= self.modulus:
            r -= self.modulus
        return r

    def mulmod(self, a: int, b: int) -> int:
        """Return ``a * b mod q`` for operands already below ``q``."""
        return self.reduce((a % self.modulus) * (b % self.modulus))

    # ---- vectorized hot path ----------------------------------------------

    @bounded(assume=True, params={"t": {"ubound": _REDUCE_INPUT}},
             out_q=1)
    def reduce_vec(self, t: np.ndarray) -> np.ndarray:
        """Vectorized ``t mod q`` for uint64 inputs below ``q**2 < 2**62``.

        Computes ``(t * mu) >> 62`` without overflowing uint64 by splitting
        ``mu`` into 32-bit halves: ``t*mu = (t*mu_hi << 32) + t*mu_lo``. The
        splits mirror the two ``__umulhi``/``mul.lo`` pairs an INT32 CUDA
        core issues for the same reduction.
        """
        t = t.astype(np.uint64, copy=False)
        t_hi = t >> np.uint64(32)
        t_lo = t & np.uint64(0xFFFFFFFF)
        # (t * mu) >> 64, assembled from four 32x32 partial products.
        lo_lo = t_lo * self._mu_lo
        mid1 = t_hi * self._mu_lo
        mid2 = t_lo * self._mu_hi
        carry = (lo_lo >> np.uint64(32)) + (mid1 & np.uint64(0xFFFFFFFF)) + (
            mid2 & np.uint64(0xFFFFFFFF)
        )
        high = (
            t_hi * self._mu_hi
            + (mid1 >> np.uint64(32))
            + (mid2 >> np.uint64(32))
            + (carry >> np.uint64(32))
        )
        # (t*mu) >> 62 == (high << 2) | (top 2 bits of the low word).
        low_word = (carry << np.uint64(32)) | (lo_lo & np.uint64(0xFFFFFFFF))
        approx = (high << np.uint64(2)) | (low_word >> np.uint64(62))
        r = t - approx * self._q64
        r = np.where(r >= self._q64, r - self._q64, r)
        return np.where(r >= self._q64, r - self._q64, r)

    @bounded(assume=True, params={"a": {"q": 1}, "b": {"q": 1}}, out_q=1)
    def mul_vec(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorized ``a * b mod q`` for uint64 arrays with entries < q."""
        prod = a.astype(np.uint64, copy=False) * b.astype(np.uint64, copy=False)
        return self.reduce_vec(prod)

    @bounded(assume=True, params={"a": {"q": 1}, "b": {"q": 1}}, out_q=1)
    def add_vec(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorized ``a + b mod q`` for entries < q."""
        s = a.astype(np.uint64, copy=False) + b.astype(np.uint64, copy=False)
        return np.where(s >= self._q64, s - self._q64, s)

    @bounded(assume=True, params={"a": {"q": 1}, "b": {"q": 1}}, out_q=1)
    def sub_vec(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorized ``a - b mod q`` for entries < q."""
        a = a.astype(np.uint64, copy=False)
        b = b.astype(np.uint64, copy=False)
        return np.where(a >= b, a - b, a + self._q64 - b)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BarrettReducer(q={self.modulus})"


class BatchBarrettReducer:
    """Barrett arithmetic over a *stack* of moduli, one per matrix row.

    Where :class:`BarrettReducer` serves one modulus and 1-D vectors, this
    class serves the whole ``(num_primes, N)`` residue matrix of an RNS
    polynomial in a single numpy expression: the per-row constants are
    stored as arrays and broadcast down each row. Every elementwise
    operation is the exact uint64 sequence of the scalar class, so results
    are bit-identical to looping :class:`BarrettReducer` over the rows —
    the batched layout only removes the Python interpreter from the loop,
    the same way WarpDrive's kernels treat the limb dimension as one dense
    batch (§IV-A, §IV-B).
    """

    def __init__(self, moduli):
        self.moduli = tuple(moduli)
        if not self.moduli:
            raise ValueError("batch reducer needs at least one modulus")
        for q in self.moduli:
            if not 2 < q < (1 << 31):
                raise ValueError(
                    f"modulus must lie in (2, 2**31), got {q}"
                )
        mu = [(1 << _SHIFT) // q for q in self.moduli]
        self._q = np.array(self.moduli, dtype=np.uint64)
        self._mu_hi = np.array([m >> 32 for m in mu], dtype=np.uint64)
        self._mu_lo = np.array([m & 0xFFFFFFFF for m in mu], dtype=np.uint64)

    def __len__(self) -> int:
        return len(self.moduli)

    @returns_view
    @bounded(assume=True, out_q=1)
    def q_col(self, ndim: int = 2) -> np.ndarray:
        """The modulus vector shaped ``(num_primes, 1, ...)`` for
        broadcasting against ``ndim``-D residue arrays."""
        return self._q.reshape((-1,) + (1,) * (ndim - 1))

    @returns_view
    @bounded(assume=True, out_q=1)
    def q_row(self) -> np.ndarray:
        """The modulus vector as a flat ``(num_primes,)`` uint64 array —
        the per-row constant shape the backend interface takes."""
        return self._q

    @bounded(assume=True, params={"t": {"ubound": _REDUCE_INPUT}},
             out_q=1)
    def reduce_mat(self, t: np.ndarray) -> np.ndarray:
        """Row-wise ``t mod q_i`` for uint64 entries below ``q_i**2``.

        Delegates to the active backend (`repro.backend`); every backend
        returns the canonical residue bit-identical to
        :meth:`BarrettReducer.reduce_vec` with the row's own constants.
        """
        return active_backend().mod_reduce(t, self._q)

    @bounded(assume=True, params={"a": {"q": 1}, "b": {"q": 1}}, out_q=1)
    def mul_mat(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Row-wise ``a * b mod q_i`` for entries below ``q_i``."""
        return active_backend().mod_mul(a, b, self._q)

    @bounded(assume=True, params={"a": {"q": 1}, "b": {"q": 1}}, out_q=1)
    def add_mat(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Row-wise ``a + b mod q_i`` for entries below ``q_i``."""
        return active_backend().mod_add(a, b, self._q)

    @bounded(assume=True, params={"a": {"q": 1}, "b": {"q": 1}}, out_q=1)
    def sub_mat(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Row-wise ``a - b mod q_i`` for entries below ``q_i``."""
        return active_backend().mod_sub(a, b, self._q)

    @bounded(assume=True, params={"a": {"q": 1}}, out_q=1)
    def neg_mat(self, a: np.ndarray) -> np.ndarray:
        """Row-wise ``-a mod q_i`` for entries below ``q_i``."""
        return active_backend().mod_neg(a, self._q)

    @bounded(assume=True, out_q=1)
    def reduce_scalar(self, value: int) -> np.ndarray:
        """``value mod q_i`` per row as a ``(num_primes, 1)`` uint64 column
        (accepts arbitrary-precision integers)."""
        return np.array(
            [value % q for q in self.moduli], dtype=np.uint64
        ).reshape(-1, 1)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BatchBarrettReducer(L={len(self.moduli)})"
