"""Chinese Remainder Theorem reconstruction helpers.

CKKS decryption/decoding needs the coefficient values over the full modulus
``Q_l = q0*...*ql``, which the RNS representation only holds as residues.
These helpers reconstruct big-integer coefficients (Garner-style mixed radix
or direct CRT) and provide the signed-centering used before decoding.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .modmath import modinv


class CRTReconstructor:
    """Reconstructs integers from residues over a fixed co-prime basis."""

    def __init__(self, moduli: Sequence[int]):
        if not moduli:
            raise ValueError("CRT basis must contain at least one modulus")
        self.moduli = list(moduli)
        self.product = 1
        for q in self.moduli:
            self.product *= q
        # Precompute Q/qi and (Q/qi)^{-1} mod qi for direct CRT.
        self._hats = [self.product // q for q in self.moduli]
        self._hat_invs = [
            modinv(hat % q, q) for hat, q in zip(self._hats, self.moduli)
        ]

    def reconstruct(self, residues: Sequence[int]) -> int:
        """Return the unique ``x`` in ``[0, Q)`` with the given residues."""
        if len(residues) != len(self.moduli):
            raise ValueError(
                f"expected {len(self.moduli)} residues, got {len(residues)}"
            )
        total = 0
        for r, hat, hat_inv, q in zip(
            residues, self._hats, self._hat_invs, self.moduli
        ):
            total += hat * ((int(r) * hat_inv) % q)
        return total % self.product

    def reconstruct_signed(self, residues: Sequence[int]) -> int:
        """Reconstruct into the centered range ``(-Q/2, Q/2]``."""
        x = self.reconstruct(residues)
        if x > self.product // 2:
            x -= self.product
        return x

    def reconstruct_array(self, residue_matrix: np.ndarray, *,
                          signed: bool = False) -> List[int]:
        """Reconstruct a whole polynomial.

        ``residue_matrix`` has shape ``(len(moduli), n)``: one residue row
        per modulus. Returns ``n`` Python ints (arbitrary precision).
        """
        if residue_matrix.shape[0] != len(self.moduli):
            raise ValueError(
                f"residue matrix has {residue_matrix.shape[0]} rows, "
                f"basis has {len(self.moduli)} moduli"
            )
        columns = residue_matrix.T.tolist()
        if signed:
            return [self.reconstruct_signed(col) for col in columns]
        return [self.reconstruct(col) for col in columns]

    def decompose(self, value: int) -> List[int]:
        """Map a (possibly signed) big integer to its residue vector."""
        return [value % q for q in self.moduli]

    def decompose_array(self, values: Sequence[int]) -> np.ndarray:
        """Map big-int coefficients to a ``(len(moduli), n)`` residue matrix."""
        rows = [
            np.array([int(v) % q for v in values], dtype=np.uint64)
            for q in self.moduli
        ]
        return np.stack(rows)
