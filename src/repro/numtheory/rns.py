"""Residue Number System bases and conversions.

The RNS layer is the substrate beneath every homomorphic operation in this
library: polynomials live as ``(num_primes, N)`` uint64 residue matrices,
and hybrid key-switching is built from the two conversions implemented
here —

* **ModUp** (fast basis extension): raise a digit from its sub-basis to the
  full ``Q*P`` basis. We provide both the *approximate* extension (the
  standard HPS/BEHZ form that tolerates a small multiple-of-Q additive
  term, which CKKS absorbs as noise) and an *exact* variant that removes
  the overshoot with a floating-point quotient estimate.
* **ModDown**: divide by the special-prime product ``P`` with rounding and
  return to the ciphertext basis, as required at the end of KeySwitch.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence

import numpy as np

from ..analysis.annotations import bounded
from .barrett import BarrettReducer, BatchBarrettReducer
from .modmath import modinv


#: Guard half-width for the float64 quotient estimate. The accumulated
#: ``sum_i y_i / q_i`` carries at most ``~len(source) * 2**-52`` relative
#: error (about ``2**-46`` for 64 primes), so any lane whose fractional
#: part lands within ``2**-38`` of a decision boundary is recomputed
#: exactly; lanes further away are provably on the correct side.
_RATIO_EPS = 2.0 ** -38


def _ratio_estimate(y: np.ndarray, moduli: Sequence[int]) -> np.ndarray:
    """Float64 estimate of ``sum_i y_i / q_i`` over the prime axis.

    Exactly ``(x + u * Q) / Q`` in exact arithmetic — the integer part is
    the basis-extension overshoot ``u``, the fractional part is ``x / Q``.
    """
    ratio = np.zeros(y.shape[1:], dtype=np.float64)
    for i, q_i in enumerate(moduli):
        ratio += y[i].astype(np.float64) / float(q_i)
    return ratio


def _exact_total(y_flat: np.ndarray, hats: Sequence[int], j: int) -> int:
    """``sum_i y_i[j] * hat_i`` as an exact Python integer — the CRT sum
    whose quotient/remainder by ``Q`` the float estimate approximates."""
    return sum(int(y_flat[i, j]) * hats[i] for i in range(len(hats)))


@bounded(assume=True, out_q=1)
def _const_col(values, ndim: int) -> np.ndarray:
    """Shape per-prime constants to broadcast over ``ndim``-D residue
    arrays whose leading axis is the prime index. Every caller passes
    constants already reduced below their row's modulus (the ``out_q=1``
    axiom)."""
    return np.asarray(values, dtype=np.uint64).reshape(
        (-1,) + (1,) * (ndim - 1)
    )


class RNSBasis:
    """An ordered co-prime basis with cached per-prime reducers."""

    def __init__(self, moduli: Sequence[int]):
        if not moduli:
            raise ValueError("RNS basis needs at least one modulus")
        if len(set(moduli)) != len(moduli):
            raise ValueError("RNS moduli must be distinct")
        self.moduli = list(moduli)
        self.reducers = [BarrettReducer(q) for q in self.moduli]
        #: Row-wise reducer for whole-matrix passes (batched engine).
        self.batch = BatchBarrettReducer(self.moduli)
        self.product = 1
        for q in self.moduli:
            self.product *= q
        # hat_i = (Q / q_i) mod q_i inverse, used in basis extension.
        self._hats = [self.product // q for q in self.moduli]
        self.hat_invs = [
            modinv(hat % q, q) for hat, q in zip(self._hats, self.moduli)
        ]
        self._hat_inv_col = np.array(
            self.hat_invs, dtype=np.uint64
        ).reshape(-1, 1)

    def __len__(self) -> int:
        return len(self.moduli)

    def __eq__(self, other) -> bool:
        return isinstance(other, RNSBasis) and self.moduli == other.moduli

    def __hash__(self) -> int:
        return hash(tuple(self.moduli))

    def sub_basis(self, indices: Sequence[int]) -> "RNSBasis":
        """Return the basis restricted to the given modulus indices."""
        return RNSBasis([self.moduli[i] for i in indices])

    @bounded(out_q=1)
    def zero(self, n: int) -> np.ndarray:
        """A zero residue matrix of shape ``(len(self), n)``."""
        return np.zeros((len(self), n), dtype=np.uint64)

    @bounded(assume=True, out_q=1)
    def random(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform residue matrix (independent per prime — a uniform RNS
        value over the full product by CRT)."""
        rows = [
            rng.integers(0, q, size=n, dtype=np.uint64) for q in self.moduli
        ]
        return np.stack(rows)

    @bounded(assume=True, out_q=1)
    def reduce_signed(self, coeffs: np.ndarray) -> np.ndarray:
        """Map signed int64 coefficients into residue rows."""
        rows = []
        for q in self.moduli:
            rows.append(np.mod(coeffs.astype(np.int64), q).astype(np.uint64))
        return np.stack(rows)


@bounded(in_q=1, out_q=1, params={"residues": {"q": 1}})
def extend_basis(residues: np.ndarray, source: RNSBasis, target: RNSBasis,
                 *, exact: bool = False) -> np.ndarray:
    """Fast basis extension (the ModUp core).

    Parameters
    ----------
    residues:
        ``(len(source), ..., n)`` uint64 array of residues w.r.t.
        ``source`` — any number of trailing batch axes (the batched
        key-switch pipeline passes digit- and accumulator-stacked
        tensors); the leading axis is always the prime index.
    source, target:
        Source and destination bases; they need not overlap.
    exact:
        When False (default) the result may exceed the true value by a small
        multiple ``u * prod(source)`` with ``0 <= u < len(source)`` — the
        approximate extension used inside key-switching. When True the
        overshoot ``u`` is estimated with a float sum and subtracted, giving
        the exact value whenever the input is below ``prod(source)``.

    Returns
    -------
    ``(len(target), ..., n)`` uint64 array of residues w.r.t. ``target``.
    """
    if residues.shape[0] != len(source):
        raise ValueError(
            f"residue rows ({residues.shape[0]}) != source basis size "
            f"({len(source)})"
        )
    if len(source) == 1:
        # Single-prime source (the K=1 ModDown of the Table VI sets): the
        # lone CRT factor is hat = 1, so y = x, every target row is just
        # x mod t, and the exact ratio correction is identically zero
        # (y/q < 1 floors to 0). One reduction replaces the generic
        # mul/add/ratio passes, bit-identically.
        return target.batch.reduce_mat(
            np.broadcast_to(
                residues[0], (len(target),) + residues.shape[1:]
            )
        )
    ndim = residues.ndim
    # y_i = x_i * hat_inv_i mod q_i  (all < q_i < 2**31) — one row-wise pass.
    y = source.batch.mul_mat(residues, _const_col(source.hat_invs, ndim))

    # Accumulate sum_i y_i * (Q/q_i mod t) over all target rows at once;
    # only the (small) digit dimension remains a Python loop.
    out = np.zeros((len(target),) + residues.shape[1:], dtype=np.uint64)
    tgt = target.batch
    for i, q_i in enumerate(source.moduli):
        hat_col = _const_col(
            [(source.product // q_i) % t for t in target.moduli], ndim
        )
        out = tgt.add_mat(out, tgt.mul_mat(y[i][None, ...], hat_col))

    if exact:
        # The approximate result equals x + u*Q with
        # u = floor(sum_i y_i / q_i); float64 is ample for |source| <= ~64
        # 31-bit primes (relative error ~ 2**-52 per term) — EXCEPT when
        # the true ratio sits next to an integer (x close to 0 or to Q),
        # where accumulated rounding can push the estimate across the
        # floor boundary and the result ends up off by a full Q. Guard:
        # lanes within _RATIO_EPS of an integer recompute u exactly from
        # the bigint CRT sum.
        ratio = _ratio_estimate(y, source.moduli)
        u = np.floor(ratio)
        frac = ratio - u
        suspect = np.minimum(frac, 1.0 - frac) < _RATIO_EPS
        if np.any(suspect):
            y_flat = y.reshape(len(source), -1)
            u_flat = u.reshape(-1)
            for j in np.flatnonzero(suspect.reshape(-1)):
                u_flat[j] = _exact_total(
                    y_flat, source._hats, j
                ) // source.product
        u = u.astype(np.uint64)
        q_mod_t_col = _const_col(
            [source.product % t for t in target.moduli], ndim
        )
        # u < len(source) <= 64 — far below any modulus, but the bound
        # comes from the float estimate, outside the interval domain.
        u_rows = tgt.reduce_mat(  # fhelint: allow-B-RED (u < alpha)
            np.broadcast_to(u, out.shape)
        )
        correction = tgt.mul_mat(u_rows, q_mod_t_col)
        out = tgt.sub_mat(out, correction)
    return out


@lru_cache(maxsize=256)
@bounded(assume=True, out_q=1)
def _stacked_modup_plan(source_moduli: tuple, groups: tuple,
                        target_moduli: tuple):
    """Precomputed constants for :func:`extend_basis_stacked`.

    Returns ``(flat_rows, flat_reducer, hat_inv_col, steps)`` where
    ``steps[k] = (group_positions, y_rows, hat_cols)`` vectorizes the
    k-th prime of every digit across all digits at once:
    ``hat_cols[t, j] = (prod(digit_j) / q_{rows[j]}) mod target_t``.

    The ``out_q=1`` axiom covers the numeric leaves: every constant in
    the plan (``hat_inv_col``, ``hat_cols``) is reduced below its row's
    modulus at construction.
    """
    sub_products = []
    hat_invs = []
    for g in groups:
        prod = 1
        for i in g:
            prod *= source_moduli[i]
        sub_products.append(prod)
        for i in g:
            q_i = source_moduli[i]
            hat = prod // q_i
            hat_invs.append(modinv(hat % q_i, q_i))
    flat_rows = [i for g in groups for i in g]
    flat_reducer = BatchBarrettReducer([source_moduli[i] for i in flat_rows])
    hat_inv_col = np.array(hat_invs, dtype=np.uint64).reshape(-1, 1)

    alpha = max(len(g) for g in groups)
    steps = []
    offsets = np.cumsum([0] + [len(g) for g in groups[:-1]])
    for k in range(alpha):
        positions = [gi for gi, g in enumerate(groups) if len(g) > k]
        y_rows = np.array(
            [offsets[gi] + k for gi in positions], dtype=np.intp
        )
        hat_cols = np.array(
            [[(sub_products[gi] // source_moduli[groups[gi][k]]) % t
              for gi in positions]
             for t in target_moduli],
            dtype=np.uint64,
        )[:, :, None]
        steps.append((np.array(positions, dtype=np.intp), y_rows, hat_cols))
    return flat_rows, flat_reducer, hat_inv_col, steps


@bounded(in_q=1, out_q=1, out_q_lazy=2, params={"residues": {"q": 1}})
def extend_basis_stacked(residues: np.ndarray, groups: Sequence[Sequence[int]],
                         source: RNSBasis, target: RNSBasis, *,
                         lazy: bool = False) -> np.ndarray:
    """Digit-batched ModUp: extend every decomposition digit in one pass.

    Where the per-digit pipeline calls :func:`extend_basis` ``dnum`` times
    (one ``(alpha, n) -> (T, n)`` extension per digit), this produces the
    whole ``(len(target), len(groups), n)`` digit tensor at once —
    prime-major, digit-minor, exactly the layout the stacked NTT consumes.

    Parameters
    ----------
    residues:
        ``(len(source), n)`` residue matrix (e.g. a level polynomial in
        coefficient form).
    groups:
        Per digit, the row indices of ``residues`` forming that digit's
        sub-basis. Groups must be non-empty; they need not cover every row.
    lazy:
        Only honored on the single-prime-digit fast path (``alpha == 1``,
        the paper's ``dnum = L+1`` benchmark sets): the extension of one
        prime's residue ``x < q_i < 2**31`` is just ``x mod t``, so the
        unreduced broadcast is already a valid lazy representative for the
        stacked NTT and the reduction is skipped entirely.

    Per digit, results are bit-identical to ``extend_basis`` on that
    digit's rows (canonical residues; lazy outputs reduce to them).
    """
    if not groups or any(len(g) == 0 for g in groups):
        raise ValueError("every digit group must hold at least one prime")
    n = residues.shape[1]
    num_groups = len(groups)
    num_target = len(target)

    if all(len(g) == 1 for g in groups):
        picked = residues[[g[0] for g in groups]]  # (G, n), each < 2**31
        out = np.broadcast_to(picked[None, :, :], (num_target, num_groups, n))
        if lazy:
            return np.ascontiguousarray(out)
        return target.batch.reduce_mat(np.ascontiguousarray(out))

    plan = _stacked_modup_plan(
        tuple(source.moduli), tuple(tuple(g) for g in groups),
        tuple(target.moduli),
    )
    flat_rows, flat_reducer, hat_inv_col, steps = plan
    # y_i = x_i * hat_inv_i mod q_i, every digit's rows in one pass (each
    # row scaled within its own digit's sub-basis).
    y = flat_reducer.mul_mat(residues[flat_rows], hat_inv_col)

    out = np.zeros((num_target, num_groups, n), dtype=np.uint64)
    tgt = target.batch
    # alpha passes, each handling the k-th prime of every digit at once.
    for positions, y_rows, hat_cols in steps:
        contrib = tgt.mul_mat(y[y_rows][None, :, :], hat_cols)
        out[:, positions, :] = tgt.add_mat(out[:, positions, :], contrib)
    return out


@bounded(in_q=1, out_q=1, params={"residues": {"q": 1}})
def mod_down(residues: np.ndarray, main: RNSBasis, special: RNSBasis,
             ) -> np.ndarray:
    """Divide by ``P = prod(special)`` with rounding (KeySwitch ModDown).

    ``residues`` holds the value over the concatenated basis ``main ++
    special`` (main rows first), with any number of trailing batch axes
    after the prime axis — the batched key-switch lowers both
    accumulators (and, when hoisting, every rotation step) in one call.
    Returns ``round(x / P)`` over ``main``.
    """
    n_main = len(main)
    if residues.shape[0] != n_main + len(special):
        raise ValueError(
            "ModDown input must cover the concatenated main+special basis"
        )
    x_main = residues[:n_main]
    x_special = residues[n_main:]
    # Extend (x mod P) back onto the main basis, then subtract and divide —
    # all main rows in one batched pass.
    x_special_on_main = extend_basis(x_special, special, main, exact=True)
    p_inv_col = _const_col(
        [modinv(special.product % q, q) for q in main.moduli],
        residues.ndim,
    )
    mb = main.batch
    diff = mb.sub_mat(x_main, mb.reduce_mat(x_special_on_main))
    return mb.mul_mat(diff, p_inv_col)


@bounded(in_q=1, out_q=1, params={"residues": {"q": 1}})
def extend_basis_signed(residues: np.ndarray, source: RNSBasis,
                        target: RNSBasis) -> np.ndarray:
    """Exact extension of the *centered* representative.

    ``residues`` encode a value ``x`` in ``[0, Q)``; this returns the
    target-basis residues of the signed representative in
    ``[-Q/2, Q/2)`` — i.e. values at or above ``Q/2`` are extended as
    ``x - Q``. BFV's cross-basis tensor products need this: the product
    of two centered lifts must be the centered product, not the product
    of positive representatives.

    The sign decision reuses the float quotient estimate of the exact
    extension (``x/Q`` as a float64 sum). Lanes whose fractional part
    lands within :data:`_RATIO_EPS` of a decision boundary — ``1/2``
    (the sign threshold) or an integer (``x`` within rounding error of
    ``0`` or ``Q``, where the float estimate can wrap the fractional
    part entirely and misclassify ``x = Q - 1`` as positive) — are
    decided exactly from the bigint CRT sum.
    """
    if residues.shape[0] != len(source):
        raise ValueError(
            f"residue rows ({residues.shape[0]}) != source basis size "
            f"({len(source)})"
        )
    out = extend_basis(residues, source, target, exact=True)
    # Recompute the fractional part x/Q to decide the sign.
    y = source.batch.mul_mat(
        residues, _const_col(source.hat_invs, residues.ndim)
    )
    ratio = _ratio_estimate(y, source.moduli)
    frac = ratio - np.floor(ratio)
    negative = frac >= 0.5
    suspect = (np.abs(frac - 0.5) < _RATIO_EPS) | \
        (np.minimum(frac, 1.0 - frac) < _RATIO_EPS)
    if np.any(suspect):
        y_flat = y.reshape(len(source), -1)
        neg_flat = negative.reshape(-1)
        for j in np.flatnonzero(suspect.reshape(-1)):
            x_mod = _exact_total(y_flat, source._hats, j) % source.product
            neg_flat[j] = 2 * x_mod >= source.product
    q_mod_t_col = _const_col(
        [source.product % t for t in target.moduli], residues.ndim
    )
    shifted = target.batch.sub_mat(
        out, np.broadcast_to(q_mod_t_col, out.shape)
    )
    return np.where(negative[None, ...], shifted, out)


@bounded(in_q=1, out_q=1, params={"residues": {"q": 1}})
def mod_down_exact_t(residues: np.ndarray, main: RNSBasis,
                     special: RNSBasis, t: int) -> np.ndarray:
    """BGV/BFV-style ModDown: divide by ``P`` *preserving residues mod t*.

    CKKS tolerates ModDown's rounding as noise; BGV cannot — the rounding
    must be a multiple of the plaintext modulus ``t``. Following
    Gentry-Halevi-Smart modulus switching: with ``delta = [x]_P``,
    subtract ``delta' = delta - P * [delta * P^{-1}]_t`` (centered), which
    is ≡ delta (mod P) and ≡ 0 (mod t), then divide by P exactly. The
    result ``y`` satisfies ``y ≡ x * P^{-1} (mod t)`` and
    ``|y - x/P| <= (t+1)/2``.
    """
    n_main = len(main)
    if residues.shape[0] != n_main + len(special):
        raise ValueError(
            "ModDown input must cover the concatenated main+special basis"
        )
    if any(q % t == 0 for q in main.moduli + special.moduli):
        raise ValueError("plaintext modulus must be coprime to the chain")
    x_main = residues[:n_main]
    x_special = residues[n_main:]
    ndim = residues.ndim
    delta_on_main = extend_basis(x_special, special, main, exact=True)
    # delta mod t, via an exact extension onto the singleton basis {t}.
    delta_mod_t = extend_basis(
        x_special, special, RNSBasis([t]), exact=True
    )[0]
    p_inv_t = modinv(special.product % t, t)
    # centered [delta * P^{-1}]_t as signed int64. Both operands are
    # below t < 2**31, so the 64/32 Barrett split keeps the product in
    # uint64 lanes — no object-dtype bigint fallback.
    correction = BarrettReducer(t).mul_vec(
        delta_mod_t, np.uint64(p_inv_t)
    ).astype(np.int64)
    correction[correction > t // 2] -= t

    p_inv_col = _const_col(
        [modinv(special.product % q, q) for q in main.moduli], ndim
    )
    p_mod_q_col = _const_col(
        [special.product % q for q in main.moduli], ndim
    )
    q_col = np.array(main.moduli, dtype=np.int64).reshape(
        (-1,) + (1,) * (ndim - 1)
    )
    mb = main.batch
    # np.mod against the signed q_col guarantees canonical residues, but
    # the signed/unsigned crossing is outside the interval domain.
    corr_mod_q = np.mod(
        correction.astype(np.int64)[None, ...], q_col
    ).astype(np.uint64)
    corr_term = mb.mul_mat(corr_mod_q, p_mod_q_col)  # fhelint: allow-B-RED
    delta_prime = mb.sub_mat(delta_on_main, corr_term)
    diff = mb.sub_mat(x_main, delta_prime)
    return mb.mul_mat(diff, p_inv_col)


@bounded(in_q=1, out_q=1, params={"residues": {"q": 1}})
def rescale_rows(residues: np.ndarray, basis: RNSBasis) -> np.ndarray:
    """Drop the last prime of ``basis`` and divide by it (CKKS RESCALE).

    Returns residues over ``basis.moduli[:-1]`` equal to
    ``round-ish(x / q_last)`` (the standard RNS rescale: exact division of
    ``x - [x]_{q_last}``, the rounding error being absorbed as noise).
    """
    if residues.shape[0] != len(basis):
        raise ValueError("residue rows do not match basis size")
    if len(basis) < 2:
        raise ValueError("cannot rescale below one modulus")
    last = residues[-1]
    q_last = basis.moduli[-1]
    # All remaining rows in one batched pass: subtract [x]_{q_last} and
    # multiply by q_last^{-1} mod q_i.
    head = basis.sub_basis(range(len(basis) - 1)).batch
    inv_col = np.array(
        [modinv(q_last % q_i, q_i) for q_i in basis.moduli[:-1]],
        dtype=np.uint64,
    ).reshape(-1, 1)
    remaining = residues[:-1]
    last_mod = head.reduce_mat(np.broadcast_to(last, remaining.shape))
    diff = head.sub_mat(remaining, last_mod)
    return head.mul_mat(diff, inv_col)


def digit_partition(num_primes: int, dnum: int) -> List[List[int]]:
    """Partition modulus indices ``0..num_primes-1`` into ``dnum`` digits.

    Hybrid key-switching groups the ciphertext primes into ``dnum``
    contiguous digits of ``alpha = ceil(num_primes / dnum)`` primes each
    (the last digit may be short).
    """
    if dnum < 1:
        raise ValueError("dnum must be >= 1")
    alpha = -(-num_primes // dnum)  # ceil division
    digits = []
    for d in range(dnum):
        lo = d * alpha
        hi = min(lo + alpha, num_primes)
        if lo >= hi:
            break
        digits.append(list(range(lo, hi)))
    return digits
