"""Scalar modular arithmetic primitives.

These routines back the prime generation, twiddle-table construction and the
RNS machinery. Everything here is exact integer math on Python ints; the
vectorized hot paths live in :mod:`repro.numtheory.montgomery` and
:mod:`repro.numtheory.barrett`.
"""

from __future__ import annotations

from ..analysis.annotations import bounded

# Deterministic Miller-Rabin witnesses for n < 3,317,044,064,679,887,385,961,981
# (covers every 64-bit integer); see Sorenson & Webster (2015).
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


@bounded(assume=True, out_q=1)
def modpow(base: int, exponent: int, modulus: int) -> int:
    """Return ``base ** exponent mod modulus`` for non-negative exponents."""
    if modulus <= 0:
        raise ValueError(f"modulus must be positive, got {modulus}")
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    return pow(base, exponent, modulus)


@bounded(assume=True, out_q=1)
def modinv(value: int, modulus: int) -> int:
    """Return the multiplicative inverse of ``value`` modulo ``modulus``.

    Raises ``ValueError`` when the inverse does not exist.
    """
    value %= modulus
    if value == 0:
        raise ValueError("0 has no modular inverse")
    g, x, _ = _extended_gcd(value, modulus)
    if g != 1:
        raise ValueError(f"{value} is not invertible mod {modulus} (gcd={g})")
    return x % modulus


def _extended_gcd(a: int, b: int) -> tuple:
    """Return ``(g, x, y)`` with ``a*x + b*y == g == gcd(a, b)``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def is_probable_prime(n: int) -> bool:
    """Deterministic Miller-Rabin for every integer below 2**64.

    For larger inputs the same witness set acts as a very strong
    probabilistic test; CKKS moduli in this library are < 2**32 so the
    deterministic guarantee always applies.
    """
    if n < 2:
        return False
    for p in _MR_WITNESSES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def factorize(n: int) -> dict:
    """Return the prime factorization of ``n`` as ``{prime: exponent}``.

    Trial division followed by Pollard rho; adequate for the < 2**64
    integers seen when searching for primitive roots.
    """
    if n <= 0:
        raise ValueError(f"can only factorize positive integers, got {n}")
    factors: dict = {}
    for p in (2, 3, 5, 7, 11, 13):
        while n % p == 0:
            factors[p] = factors.get(p, 0) + 1
            n //= p
    stack = [n] if n > 1 else []
    while stack:
        m = stack.pop()
        if m == 1:
            continue
        if is_probable_prime(m):
            factors[m] = factors.get(m, 0) + 1
            continue
        d = _pollard_rho(m)
        stack.append(d)
        stack.append(m // d)
    return factors


def _pollard_rho(n: int) -> int:
    """Return a non-trivial factor of composite ``n`` (Brent's variant)."""
    if n % 2 == 0:
        return 2
    from math import gcd

    c = 1
    while True:
        x = y = 2
        d = 1
        while d == 1:
            x = (x * x + c) % n
            y = (y * y + c) % n
            y = (y * y + c) % n
            d = gcd(abs(x - y), n)
        if d != n:
            return d
        c += 1


def primitive_root(q: int) -> int:
    """Return the smallest primitive root of the prime ``q``."""
    if not is_probable_prime(q):
        raise ValueError(f"{q} is not prime")
    if q == 2:
        return 1
    phi = q - 1
    prime_factors = list(factorize(phi))
    for g in range(2, q):
        if all(pow(g, phi // p, q) != 1 for p in prime_factors):
            return g
    raise ArithmeticError(f"no primitive root found for {q}")  # pragma: no cover


def root_of_unity(order: int, q: int) -> int:
    """Return a primitive ``order``-th root of unity modulo the prime ``q``.

    Requires ``order`` to divide ``q - 1`` (the standard NTT-friendliness
    condition ``q ≡ 1 mod order``).
    """
    if (q - 1) % order != 0:
        raise ValueError(f"{order} does not divide {q}-1; q is not NTT-friendly")
    g = primitive_root(q)
    omega = pow(g, (q - 1) // order, q)
    # Defensive sanity check: omega^(order/p) != 1 for each prime p | order.
    for p in factorize(order):
        if pow(omega, order // p, q) == 1:
            raise ArithmeticError(
                f"derived root {omega} is not a primitive {order}-th root mod {q}"
            )
    return omega


def bit_reverse(value: int, bits: int) -> int:
    """Reverse the low ``bits`` bits of ``value``."""
    result = 0
    for _ in range(bits):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def bit_reverse_permutation(n: int):
    """Return the length-``n`` bit-reversal permutation as a list."""
    if n & (n - 1):
        raise ValueError(f"n must be a power of two, got {n}")
    bits = n.bit_length() - 1
    return [bit_reverse(i, bits) for i in range(n)]


def is_power_of_two(n: int) -> bool:
    """Return True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0
