"""Number-theory substrate: modular arithmetic, primes, RNS, CRT."""

from .barrett import BarrettReducer, BatchBarrettReducer
from .crt import CRTReconstructor
from .karatsuba import (
    KARATSUBA_COST,
    SCHOOLBOOK_COST,
    karatsuba_limb_product,
    merge_limbs,
    schoolbook_limb_product,
    split_limbs,
)
from .modmath import (
    bit_reverse,
    bit_reverse_permutation,
    is_power_of_two,
    is_probable_prime,
    modinv,
    modpow,
    primitive_root,
    root_of_unity,
)
from .montgomery import BatchMontgomeryReducer, MontgomeryReducer
from .primes import (
    MAX_MODULUS_BITS,
    PrimeChain,
    build_prime_chain,
    find_ntt_prime,
    find_ntt_primes,
)
from .rns import (
    RNSBasis,
    digit_partition,
    extend_basis,
    extend_basis_stacked,
    mod_down,
    rescale_rows,
)

__all__ = [
    "BarrettReducer",
    "BatchBarrettReducer",
    "BatchMontgomeryReducer",
    "CRTReconstructor",
    "KARATSUBA_COST",
    "MAX_MODULUS_BITS",
    "MontgomeryReducer",
    "PrimeChain",
    "RNSBasis",
    "SCHOOLBOOK_COST",
    "bit_reverse",
    "bit_reverse_permutation",
    "build_prime_chain",
    "digit_partition",
    "extend_basis",
    "extend_basis_stacked",
    "find_ntt_prime",
    "find_ntt_primes",
    "is_power_of_two",
    "is_probable_prime",
    "karatsuba_limb_product",
    "merge_limbs",
    "mod_down",
    "modinv",
    "modpow",
    "primitive_root",
    "rescale_rows",
    "root_of_unity",
    "schoolbook_limb_product",
    "split_limbs",
]
