"""Karatsuba limb multiplication for the tensor-core GEMM path.

The paper evaluates a 4-term Karatsuba on the uint8 limb products inside the
tensor-core NTT (§IV-A-4): it cuts the limb GEMMs from 16 to 9 at the price
of 5 extra additions and 2 bits of effective word length, and ultimately is
*not* adopted. We implement both the schoolbook and the Karatsuba limb
schemes so the ablation benchmark can quantify that trade-off, and so the
multiplication-count claim (16 -> 9) is checkable in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..analysis.annotations import bounded

LIMB_BITS = 8
LIMB_BASE = 1 << LIMB_BITS
NUM_LIMBS = 4  # a 32-bit word as four uint8 limbs


@bounded(assume=True, out_bits=LIMB_BITS)
def split_limbs(values: np.ndarray, num_limbs: int = NUM_LIMBS) -> List[np.ndarray]:
    """Split uint32-range values into ``num_limbs`` uint8-range limbs.

    Limb 0 is the least significant. The output arrays stay uint64 so they
    can feed numpy GEMMs without overflow; each entry is below 256.
    """
    values = values.astype(np.uint64, copy=False)
    return [
        (values >> np.uint64(LIMB_BITS * i)) & np.uint64(LIMB_BASE - 1)
        for i in range(num_limbs)
    ]


def merge_limbs(limbs: Sequence[np.ndarray]) -> np.ndarray:
    """Inverse of :func:`split_limbs` for limb values below 256."""
    result = np.zeros_like(limbs[0], dtype=np.uint64)
    for i, limb in enumerate(limbs):
        result += limb.astype(np.uint64, copy=False) << np.uint64(LIMB_BITS * i)
    return result


@dataclass
class LimbProductCost:
    """Operation counts of one multi-precision limb product scheme."""

    multiplications: int
    extra_additions: int
    effective_word_bits_lost: int


SCHOOLBOOK_COST = LimbProductCost(
    multiplications=16, extra_additions=0, effective_word_bits_lost=0
)
KARATSUBA_COST = LimbProductCost(
    multiplications=9, extra_additions=5, effective_word_bits_lost=2
)


def schoolbook_limb_product(a_limbs: Sequence[np.ndarray],
                            b_limbs: Sequence[np.ndarray]) -> np.ndarray:
    """Full product of two 4-limb numbers via all 16 limb multiplications.

    Returns the exact (up to 64-bit) integer product; callers reduce mod q.
    This mirrors the 16 uint8 GEMMs the non-Karatsuba tensor path issues.
    """
    if len(a_limbs) != NUM_LIMBS or len(b_limbs) != NUM_LIMBS:
        raise ValueError("schoolbook_limb_product expects 4-limb operands")
    total = np.zeros_like(a_limbs[0], dtype=np.uint64)
    for i, a_i in enumerate(a_limbs):
        for j, b_j in enumerate(b_limbs):
            total += (a_i * b_j) << np.uint64(LIMB_BITS * (i + j))
    return total


def karatsuba_limb_product(a_limbs: Sequence[np.ndarray],
                           b_limbs: Sequence[np.ndarray]) -> np.ndarray:
    """Full product of two 4-limb numbers using 9 limb multiplications.

    Two-level Karatsuba: the 4-limb operands are treated as two 2-limb
    halves (3 half-products), and each half-product is itself a 2-limb
    Karatsuba (3 limb multiplications) — 9 total. The cross terms introduce
    the 5 extra additions and the 2-bit headroom loss Table/§IV-A-4 cites.

    The arithmetic here is exact because numpy uint64 lanes absorb the
    +2-bit growth; on real INT8 tensor cores that growth is what eats into
    the usable word length.
    """
    if len(a_limbs) != NUM_LIMBS or len(b_limbs) != NUM_LIMBS:
        raise ValueError("karatsuba_limb_product expects 4-limb operands")

    def kara2(a0, a1, b0, b1):
        """2-limb Karatsuba returning (low, mid, high) partial products."""
        low = a0 * b0
        high = a1 * b1
        mid = (a0 + a1) * (b0 + b1) - low - high
        return low, mid, high

    a0, a1, a2, a3 = (limb.astype(np.uint64, copy=False) for limb in a_limbs)
    b0, b1, b2, b3 = (limb.astype(np.uint64, copy=False) for limb in b_limbs)

    shift = np.uint64(LIMB_BITS)

    def combine2(low, mid, high):
        return low + (mid << shift) + (high << (shift + shift))

    # Half products via 2-limb Karatsuba (3 muls each).
    lo = combine2(*kara2(a0, a1, b0, b1))          # A_lo * B_lo
    hi = combine2(*kara2(a2, a3, b2, b3))          # A_hi * B_hi
    mid = combine2(*kara2(a0 + a2, a1 + a3, b0 + b2, b1 + b3)) - lo - hi

    two_limbs = np.uint64(2 * LIMB_BITS)
    return lo + (mid << two_limbs) + (hi << (two_limbs + two_limbs))
