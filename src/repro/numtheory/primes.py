"""Generation of NTT-friendly RNS prime chains for CKKS.

WarpDrive uses a 32-bit word size (paper §V-A): every RNS prime fits in a
machine word so CUDA cores operate on it natively and tensor cores consume
it as four uint8 limbs. We additionally keep primes below 2**31 so that
``a + m*q`` style intermediates in Montgomery reduction never overflow a
uint64 lane.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .modmath import is_probable_prime

#: Hard cap on any modulus in this library (see module docstring).
MAX_MODULUS_BITS = 31


def find_ntt_prime(bits: int, ring_degree: int, *, below: int = None,
                   above: int = None) -> int:
    """Return the largest prime ``q`` with ``q ≡ 1 (mod 2*ring_degree)``.

    ``q`` has at most ``bits`` bits and is strictly smaller than ``below``
    (when given) so that callers can walk down a chain of distinct primes.
    ``above`` bounds the search from below to detect exhaustion.
    """
    if bits > MAX_MODULUS_BITS:
        raise ValueError(
            f"requested {bits}-bit modulus exceeds the {MAX_MODULUS_BITS}-bit "
            "word-size limit used by the 32-bit WarpDrive configuration"
        )
    m = 2 * ring_degree
    ceiling = (1 << bits) - 1
    if below is not None:
        ceiling = min(ceiling, below - 1)
    floor = above if above is not None else 1 << (bits - 1)
    # Largest candidate ≡ 1 mod m at or below ceiling.
    candidate = ceiling - ((ceiling - 1) % m)
    while candidate >= floor:
        if is_probable_prime(candidate):
            return candidate
        candidate -= m
    raise ValueError(
        f"no {bits}-bit prime ≡ 1 mod {m} found below {ceiling} and above {floor}"
    )


def find_ntt_primes(count: int, bits: int, ring_degree: int) -> List[int]:
    """Return ``count`` distinct descending NTT-friendly primes of ``bits`` bits."""
    primes: List[int] = []
    below = None
    for _ in range(count):
        p = find_ntt_prime(bits, ring_degree, below=below)
        primes.append(p)
        below = p
    return primes


@dataclass(frozen=True)
class PrimeChain:
    """The full modulus chain of a CKKS instance.

    Attributes
    ----------
    base:
        The base prime ``q0`` (largest, sized for decryption headroom).
    scale_primes:
        The rescaling primes ``q1..qL`` (sized near the encoding scale).
    special_primes:
        The ``K`` special primes ``p0..p(K-1)`` used by hybrid key-switching.
    """

    base: int
    scale_primes: List[int] = field(default_factory=list)
    special_primes: List[int] = field(default_factory=list)

    @property
    def moduli(self) -> List[int]:
        """``[q0, q1, ..., qL]`` — the ciphertext modulus chain."""
        return [self.base] + list(self.scale_primes)

    @property
    def all_moduli(self) -> List[int]:
        """Ciphertext chain followed by the special primes."""
        return self.moduli + list(self.special_primes)

    @property
    def max_level(self) -> int:
        """Maximum multiplicative level L (number of scale primes)."""
        return len(self.scale_primes)

    def q_product(self, level: int) -> int:
        """Return ``Q_level = prod(q_0..q_level)``."""
        if not 0 <= level <= self.max_level:
            raise ValueError(f"level {level} out of range [0, {self.max_level}]")
        product = 1
        for q in self.moduli[: level + 1]:
            product *= q
        return product

    def p_product(self) -> int:
        """Return ``P = prod(special primes)``."""
        product = 1
        for p in self.special_primes:
            product *= p
        return product

    @property
    def log_qp(self) -> int:
        """Total modulus bits ``log2(Q_L * P_K)``, as reported in Table VI."""
        total = self.q_product(self.max_level) * self.p_product()
        return total.bit_length() - 1


def build_prime_chain(ring_degree: int, num_levels: int, num_special: int,
                      *, base_bits: int = 31, scale_bits: int = 28,
                      special_bits: int = 31) -> PrimeChain:
    """Construct a :class:`PrimeChain` with distinct NTT-friendly primes.

    The base and special primes are taken from the top of the 31-bit range,
    the scale primes from around ``2**scale_bits``, mirroring the common
    RNS-CKKS layout (base/special primes larger than the scale).
    """
    if num_levels < 0 or num_special < 0:
        raise ValueError("num_levels and num_special must be non-negative")
    taken: List[int] = []

    def next_prime(bits: int) -> int:
        below = None
        while True:
            p = find_ntt_prime(bits, ring_degree, below=below)
            if p not in taken:
                taken.append(p)
                return p
            below = p

    base = next_prime(base_bits)
    special = [next_prime(special_bits) for _ in range(num_special)]
    scale = [next_prime(scale_bits) for _ in range(num_levels)]
    return PrimeChain(base=base, scale_primes=scale, special_primes=special)
