"""Montgomery modular reduction with ``R = 2**32`` word radix.

The paper (§IV-A-4) converts NTT twiddle factors to the Montgomery domain
ahead of time — the domain conversion of one operand is then free, and
Montgomery reduction beats Barrett by about 10% inside the NTT. This module
provides both a scalar reference and the vectorized numpy form used by every
NTT hot path in this library.

All moduli must be odd and below 2**31 (see :mod:`repro.numtheory.primes`);
under that bound every intermediate fits a uint64 lane:
``T + m*q < q*R + q*R = q*2**33 < 2**64``.
"""

from __future__ import annotations

import numpy as np

from ..analysis.annotations import (bounded, montgomery_domain,
                                    standard_domain, takes_domain)
from ..backend import active_backend
from .modmath import modinv

#: Montgomery radix: one 32-bit GPU word.
RADIX_BITS = 32
RADIX = 1 << RADIX_BITS
_RADIX_MASK = np.uint64(RADIX - 1)


class MontgomeryReducer:
    """Montgomery arithmetic for a fixed odd prime modulus ``q < 2**31``."""

    def __init__(self, modulus: int):
        if modulus % 2 == 0:
            raise ValueError("Montgomery reduction requires an odd modulus")
        if not 2 < modulus < (1 << 31):
            raise ValueError(f"modulus must lie in (2, 2**31), got {modulus}")
        self.modulus = modulus
        #: q' = -q^{-1} mod R, the REDC constant.
        self.q_neg_inv = (-modinv(modulus, RADIX)) % RADIX
        #: R mod q and R^2 mod q for domain conversions.
        self.r_mod_q = RADIX % modulus
        self.r2_mod_q = (self.r_mod_q * self.r_mod_q) % modulus
        self._q64 = np.uint64(modulus)
        self._qinv64 = np.uint64(self.q_neg_inv)

    # ---- scalar reference ------------------------------------------------

    def reduce(self, t: int) -> int:
        """REDC: return ``t * R^{-1} mod q`` for ``0 <= t < q*R``."""
        if not 0 <= t < self.modulus * RADIX:
            raise ValueError("input out of Montgomery reduction range")
        m = ((t & (RADIX - 1)) * self.q_neg_inv) & (RADIX - 1)
        result = (t + m * self.modulus) >> RADIX_BITS
        if result >= self.modulus:
            result -= self.modulus
        return result

    def to_montgomery(self, a: int) -> int:
        """Map ``a`` into the Montgomery domain: ``a * R mod q``."""
        return self.reduce((a % self.modulus) * self.r2_mod_q)

    def from_montgomery(self, a_mont: int) -> int:
        """Map a Montgomery-domain value back to the plain domain."""
        return self.reduce(a_mont)

    def mulmod(self, a: int, b: int) -> int:
        """Plain-domain modular product computed through Montgomery form."""
        a_mont = self.to_montgomery(a)
        return self.reduce(a_mont * (b % self.modulus))

    # ---- vectorized hot path ----------------------------------------------

    @bounded(assume=True, params={"t": {"ubound": 1 << 63}}, out_q=1)
    def reduce_vec(self, t: np.ndarray) -> np.ndarray:
        """Vectorized REDC over a uint64 array with entries below ``q*R``."""
        t = t.astype(np.uint64, copy=False)
        m = ((t & _RADIX_MASK) * self._qinv64) & _RADIX_MASK
        result = (t + m * self._q64) >> np.uint64(RADIX_BITS)
        return np.where(result >= self._q64, result - self._q64, result)

    @bounded(assume=True, params={"a": {"q": 1}, "b": {"q": 1}}, out_q=1)
    def mul_vec(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Montgomery product of arrays already in the Montgomery domain.

        Inputs and output are uint64 arrays below ``q``; the result is
        ``a * b * R^{-1} mod q`` — i.e. the Montgomery-domain product when
        both inputs are Montgomery-domain values, or the plain product when
        exactly one operand carries the extra ``R`` factor (the twiddle-table
        trick the paper uses).
        """
        prod = a.astype(np.uint64, copy=False) * b.astype(np.uint64, copy=False)
        return self.reduce_vec(prod)

    @montgomery_domain
    @bounded(assume=True, params={"a": {"q": 1}}, out_q=1)
    def to_montgomery_vec(self, a: np.ndarray) -> np.ndarray:
        """Vectorized domain entry: ``a * R mod q``."""
        a = a.astype(np.uint64, copy=False)
        return self.reduce_vec(a * np.uint64(self.r2_mod_q))

    @standard_domain
    @takes_domain(a_mont="montgomery")
    @bounded(assume=True, params={"a_mont": {"q": 1}}, out_q=1)
    def from_montgomery_vec(self, a_mont: np.ndarray) -> np.ndarray:
        """Vectorized domain exit."""
        return self.reduce_vec(a_mont.astype(np.uint64, copy=False))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MontgomeryReducer(q={self.modulus})"


class BatchMontgomeryReducer:
    """Montgomery arithmetic over a stack of moduli, one per matrix row.

    The batched counterpart of :class:`MontgomeryReducer`: per-row REDC
    constants are held as broadcastable arrays so the whole
    ``(num_primes, N)`` residue matrix of an RNS polynomial — or any
    higher-rank view with the prime index on axis 0 — reduces in one numpy
    expression. Elementwise the uint64 sequence is exactly the scalar
    class's, so results are bit-identical to a per-row Python loop.
    """

    def __init__(self, moduli):
        self.moduli = tuple(moduli)
        if not self.moduli:
            raise ValueError("batch reducer needs at least one modulus")
        for q in self.moduli:
            if q % 2 == 0:
                raise ValueError("Montgomery reduction requires odd moduli")
            if not 2 < q < (1 << 31):
                raise ValueError(
                    f"modulus must lie in (2, 2**31), got {q}"
                )
        q_neg_inv = [(-modinv(q, RADIX)) % RADIX for q in self.moduli]
        r2 = [((RADIX % q) * (RADIX % q)) % q for q in self.moduli]
        self._q = np.array(self.moduli, dtype=np.uint64)
        self._qinv = np.array(q_neg_inv, dtype=np.uint64)
        self._r2 = np.array(r2, dtype=np.uint64)

    def __len__(self) -> int:
        return len(self.moduli)

    def _col(self, vec: np.ndarray, ndim: int) -> np.ndarray:
        return vec.reshape((-1,) + (1,) * (ndim - 1))

    @bounded(assume=True, out_q=1)
    def q_col(self, ndim: int = 2) -> np.ndarray:
        """The modulus vector shaped to broadcast against ``ndim``-D
        arrays with the prime index on axis 0."""
        return self._col(self._q, ndim)

    @bounded(assume=True, params={"t": {"ubound": 1 << 63}}, out_q=1)
    def reduce_mat(self, t: np.ndarray) -> np.ndarray:
        """Row-wise REDC for uint64 entries below ``q_i * R``.

        The REDC sequence lives in the active backend
        (:mod:`repro.backend`); every backend is bit-identical to
        :meth:`MontgomeryReducer.reduce_vec` with the row's constants.
        """
        return active_backend().montgomery_reduce(t, self._q, self._qinv)

    @bounded(assume=True, params={"a": {"q": 1}, "b": {"q": 1}}, out_q=1)
    def mul_mat(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Row-wise Montgomery product (entries below ``q_i``)."""
        return active_backend().montgomery_mul(a, b, self._q, self._qinv)

    @montgomery_domain
    @bounded(assume=True, params={"a": {"q": 1}}, out_q=1)
    def to_montgomery_mat(self, a: np.ndarray) -> np.ndarray:
        """Row-wise domain entry: ``a * R mod q_i``."""
        a = a.astype(np.uint64, copy=False)
        return self.reduce_mat(a * self._col(self._r2, a.ndim))

    @standard_domain
    @takes_domain(a_mont="montgomery")
    @bounded(assume=True, params={"a_mont": {"q": 1}}, out_q=1)
    def from_montgomery_mat(self, a_mont: np.ndarray) -> np.ndarray:
        """Row-wise domain exit."""
        return self.reduce_mat(a_mont.astype(np.uint64, copy=False))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BatchMontgomeryReducer(L={len(self.moduli)})"
