"""Pluggable array-ops backends for the RNS/NTT hot path.

Every batched kernel the profiler ranks hot — elementwise modular
arithmetic, the Barrett/Montgomery reduce chains, the stacked Shoup
NTT/INTT sweeps, and the key-switch ``wide_dot`` inner product — is
expressed once against the :class:`ArrayBackend` interface and routed
through :func:`active_backend`. Selection, in priority order:

1. an explicit :func:`set_backend` / :func:`use_backend` call;
2. the ``REPRO_BACKEND`` environment variable (``numpy`` | ``numba`` |
   ``cupy`` | ``auto``);
3. the numpy reference backend.

Optional backends are probed lazily; an unavailable or
failing-``self_check`` choice falls back to numpy with a single
``RuntimeWarning`` — never an ImportError, and never silently-divergent
arithmetic: a backend only activates after proving bit-exact agreement
with numpy on a deterministic op battery.

See DESIGN.md §11 for the interface contract (canonical-value equality,
lazy-representative freedom, the (num_primes, ...) leading-axis layout).
"""

from __future__ import annotations

from .base import (
    AUTO_ORDER,
    BACKEND_ENV,
    ArrayBackend,
    BackendUnavailable,
    active_backend,
    available_backends,
    backend_name,
    backend_names,
    resolve_backend,
    set_backend,
    use_backend,
)
from .numpy_backend import NumpyBackend

__all__ = [
    "AUTO_ORDER",
    "BACKEND_ENV",
    "ArrayBackend",
    "BackendUnavailable",
    "NumpyBackend",
    "active_backend",
    "available_backends",
    "backend_name",
    "backend_names",
    "resolve_backend",
    "set_backend",
    "use_backend",
]
