"""CuPy backend stub: device-resident elementwise ops, host transforms.

This is scaffolding for the WarpDrive GPU mapping (paper §IV), not an
optimized implementation: each elementwise kernel ships its operands to
the device, runs the same uint64 expression the numpy reference uses,
and ships the canonical residues back. The NTT/INTT sweeps and
``wide_dot`` stay on the numpy path for now — the fused CUDA-core
butterfly and Tensor-core inner product are tracked as ROADMAP items.

Round-tripping host<->device per call makes this *slower* than numpy
for real workloads; the stub exists so the selection machinery, the
bit-exactness gate, and the call-site routing are already proven against
a third backend shape before GPU hardware enters the picture. The
module imports ``cupy`` at load time and is only imported after an
availability probe; construction still runs ``self_check``, which on a
CUDA-less box fails at the first device allocation and falls back to
numpy with a warning.
"""

from __future__ import annotations

import numpy as np
import cupy as cp

from .numpy_backend import NumpyBackend, _col


class CupyBackend(NumpyBackend):
    """Device-elementwise backend stub; inherits transforms from numpy."""

    name = "cupy"

    @staticmethod
    def _pair(a: np.ndarray, b: np.ndarray):
        return (cp.asarray(a.astype(np.uint64, copy=False)),
                cp.asarray(b.astype(np.uint64, copy=False)))

    def mod_add(self, a: np.ndarray, b: np.ndarray,
                q: np.ndarray) -> np.ndarray:
        da, db = self._pair(a, b)
        s = da + db
        d = s - cp.asarray(_col(q, s.ndim))
        cp.minimum(s, d, out=d)
        return cp.asnumpy(d)

    def mod_sub(self, a: np.ndarray, b: np.ndarray,
                q: np.ndarray) -> np.ndarray:
        da, db = self._pair(a, b)
        d = da - db
        t = d + cp.asarray(_col(q, d.ndim))
        cp.minimum(d, t, out=t)
        return cp.asnumpy(t)

    def mod_neg(self, a: np.ndarray, q: np.ndarray) -> np.ndarray:
        da = cp.asarray(a.astype(np.uint64, copy=False))
        out = cp.where(da == 0, da, cp.asarray(_col(q, da.ndim)) - da)
        return cp.asnumpy(out)

    def mod_reduce(self, t: np.ndarray, q: np.ndarray) -> np.ndarray:
        dt = cp.asarray(np.ascontiguousarray(t, dtype=np.uint64))
        return cp.asnumpy(dt % cp.asarray(_col(q, dt.ndim)))

    def mod_mul(self, a: np.ndarray, b: np.ndarray,
                q: np.ndarray) -> np.ndarray:
        da, db = self._pair(a, b)
        prod = da * db
        cp.remainder(prod, cp.asarray(_col(q, prod.ndim)), out=prod)
        return cp.asnumpy(prod)
