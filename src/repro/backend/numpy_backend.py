"""Numpy reference backend — always available, always the oracle.

Every other backend is checked bit-for-bit against this one. It is also
where the small-size batched-arithmetic regression documented in
``BENCH_poly.json`` (PR 1: add/sub/mul at 0.56-0.87x vs the seed
per-prime loop at n=2048/4096) is fixed, by two changes to the
elementwise hot path:

* **Hardware-division reduce.** The row-wise Barrett partial-product
  assembly was ~17 ufunc passes with intermediate allocations; numpy's
  vectorized integer ``%`` (libdivide-style SIMD division since numpy
  1.26) computes the identical canonical residue in a *single* pass,
  4-5x faster at every measured size. The 64/32 Barrett split survives
  in :class:`repro.numtheory.barrett.BarrettReducer` as the scalar/GPU
  reference discipline and in the property tests that pin ``%`` to it.
* **Branchless min-trick add/sub.** ``np.subtract(..., where=mask)``
  allocates a bool mask and runs a slow masked inner loop. For
  ``s = a + b < 2q < 2**33`` the wrap-around trick ``min(s, s - q)``
  is exact (``s - q`` wraps past ``2**63`` when ``s < q``) and runs as
  two unmasked passes — ~6x faster than the masked form at n=2048.

The stacked Shoup NTT/INTT butterfly sweep moved here unchanged from
``repro.ntt.stacked`` (PR 2); it keeps its checked ``@bounded``
lazy-window contract.
"""

from __future__ import annotations

import numpy as np

from ..analysis.annotations import bounded
from .base import ArrayBackend

_U32 = np.uint64(32)
_LO32 = np.uint64(0xFFFFFFFF)
_RADIX_MASK = np.uint64((1 << 32) - 1)


def _col(vec: np.ndarray, ndim: int) -> np.ndarray:
    """Shape a 1-D per-row constant to broadcast over ``ndim``-D arrays
    whose leading axis is the prime index."""
    return vec.reshape((-1,) + (1,) * (ndim - 1))


@bounded(in_q=2, max_q_multiple=4, out_q=2,
         params={"a": {"q": 2}, "omega": {"q": 1},
                 "omega_sh": {"shoup": 32}, "q": {"modulus": True}})
def _butterfly_stages(a: np.ndarray, omega: np.ndarray,
                      omega_sh: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Radix-2 DIT sweep over axis 1 of ``a`` (shape ``(P, N, G)``,
    bit-reversed input order, values ``< 2q``); natural order out, lazy
    ``< 2q`` values. Mutates and returns ``a``.

    Every stage runs through four preallocated half-size scratch buffers
    (reshaped per stage — each stage touches exactly ``P * N/2 * G``
    elements) so the sweep performs zero allocations, and the difference
    leg exploits uint64 wraparound: ``lo - hi`` either is already the
    canonical-lazy value or wraps past ``2**63``, so ``min(d, d + 2q)``
    folds the borrow in one pass instead of pre-biasing by ``2q``.
    """
    num_primes, n, g = a.shape
    q4 = q.reshape(-1, 1, 1, 1)
    two_q = q4 + q4
    half_elems = num_primes * (n // 2) * g
    buf_v = np.empty(half_elems, dtype=np.uint64)
    buf_t = np.empty(half_elems, dtype=np.uint64)
    buf_s = np.empty(half_elems, dtype=np.uint64)
    buf_d = np.empty(half_elems, dtype=np.uint64)
    length = 2
    while length <= n:
        half = length // 2
        shape = (num_primes, n // length, half, g)
        view = a.reshape(num_primes, n // length, length, g)
        lo = view[:, :, :half, :]
        hi = view[:, :, half:, :]
        s = buf_s.reshape(shape)
        d = buf_d.reshape(shape)
        if length == 2:
            # The length-2 stage multiplies by omega^0 = 1: no mul, no copy.
            np.add(lo, hi, out=s)
            np.subtract(lo, hi, out=d)
        else:
            stride = n // length
            w = omega[:, ::stride][:, :half].reshape(num_primes, 1, half, 1)
            wsh = omega_sh[:, ::stride][:, :half].reshape(
                num_primes, 1, half, 1
            )
            # Shoup lazy product: v ≡ hi*w (mod q), v < 2q for hi < 2**32.
            v = buf_v.reshape(shape)
            t = buf_t.reshape(shape)
            np.multiply(hi, wsh, out=t)
            t >>= _U32
            t *= q4
            np.multiply(hi, w, out=v)
            v -= t
            np.add(lo, v, out=s)
            np.subtract(lo, v, out=d)
        # Fold both legs into [0, 2q): s < 4q loses one conditional 2q; the
        # wrapped d either is correct (< 2q) or recovers via + 2q.
        t = buf_t.reshape(shape)
        np.subtract(s, two_q, out=t)
        np.minimum(s, t, out=s)
        np.add(d, two_q, out=t)
        np.minimum(d, t, out=d)
        view[:, :, :half, :] = s
        view[:, :, half:, :] = d
        length *= 2
    return a


class NumpyBackend(ArrayBackend):
    """Pure-numpy reference implementation of every backend op."""

    name = "numpy"

    # ---- elementwise modular arithmetic ---------------------------------

    @bounded(assume=True, params={"a": {"q": 1}, "b": {"q": 1}}, out_q=1)
    def mod_add(self, a: np.ndarray, b: np.ndarray,
                q: np.ndarray) -> np.ndarray:
        s = a.astype(np.uint64, copy=False) + b.astype(np.uint64, copy=False)
        d = s - _col(q, s.ndim)
        # min-trick: d wrapped past 2**63 exactly when s < q.
        np.minimum(s, d, out=d)
        return d

    @bounded(assume=True, params={"a": {"q": 1}, "b": {"q": 1}}, out_q=1)
    def mod_sub(self, a: np.ndarray, b: np.ndarray,
                q: np.ndarray) -> np.ndarray:
        d = a.astype(np.uint64, copy=False) - b.astype(np.uint64, copy=False)
        # a >= b: d < q is already canonical and d + q > d picks d;
        # a < b: d wrapped huge, d + q wraps again to a + q - b < q.
        t = d + _col(q, d.ndim)
        np.minimum(d, t, out=t)
        return t

    @bounded(assume=True, params={"a": {"q": 1}}, out_q=1)
    def mod_neg(self, a: np.ndarray, q: np.ndarray) -> np.ndarray:
        a = a.astype(np.uint64, copy=False)
        return np.where(a == 0, a, _col(q, a.ndim) - a)

    @bounded(assume=True, params={"t": {"ubound": 1 << 63}}, out_q=1)
    def mod_reduce(self, t: np.ndarray, q: np.ndarray) -> np.ndarray:
        # One SIMD integer-division pass; exact for any uint64 input, so
        # it covers the full Barrett range (q**2 plus accumulator slack).
        return t.astype(np.uint64, copy=False) % _col(q, t.ndim)

    @bounded(assume=True, params={"a": {"q": 1}, "b": {"q": 1}}, out_q=1)
    def mod_mul(self, a: np.ndarray, b: np.ndarray,
                q: np.ndarray) -> np.ndarray:
        prod = a.astype(np.uint64, copy=False) * \
            b.astype(np.uint64, copy=False)
        np.remainder(prod, _col(q, prod.ndim), out=prod)
        return prod

    # ---- Montgomery (REDC) chains ---------------------------------------

    @bounded(assume=True, params={"t": {"ubound": 1 << 63}}, out_q=1)
    def montgomery_reduce(self, t: np.ndarray, q: np.ndarray,
                          qinv: np.ndarray) -> np.ndarray:
        t = t.astype(np.uint64, copy=False)
        q_c = _col(q, t.ndim)
        qinv_c = _col(qinv, t.ndim)
        m = t & _RADIX_MASK
        np.multiply(m, qinv_c, out=m)
        np.bitwise_and(m, _RADIX_MASK, out=m)
        np.multiply(m, q_c, out=m)
        np.add(m, t, out=m)
        np.right_shift(m, _U32, out=m)
        # min-trick conditional subtraction (m < 2q after the shift).
        np.minimum(m, m - q_c, out=m)
        return m

    @bounded(assume=True, params={"a": {"q": 1}, "b": {"q": 1}}, out_q=1)
    def montgomery_mul(self, a: np.ndarray, b: np.ndarray, q: np.ndarray,
                       qinv: np.ndarray) -> np.ndarray:
        prod = a.astype(np.uint64, copy=False) * \
            b.astype(np.uint64, copy=False)
        return self.montgomery_reduce(prod, q, qinv)

    # ---- fused transform kernels ----------------------------------------

    @bounded(in_bits=32, out_q=1, out_q_lazy=2, max_q_multiple=4,
             params={"x": {"bits": 32},
                     "stack.psi_perm": {"q": 1},
                     "stack.psi_perm_sh": {"shoup": 32},
                     "stack.omega": {"q": 1},
                     "stack.omega_sh": {"shoup": 32},
                     "stack.q": {"modulus": True}})
    def ntt_forward(self, x: np.ndarray, stack, *, lazy: bool = False,
                    t_out: bool = False) -> np.ndarray:
        # Bit-reversal gather, then transpose to the digit-innermost
        # layout so every butterfly slice is contiguous over the G lanes.
        a = np.ascontiguousarray(
            x.astype(np.uint64, copy=False)[:, :, stack._perm]
            .transpose(0, 2, 1)
        )
        q3 = stack.q.reshape(-1, 1, 1)
        # Pre-twist by psi (permuted table) — also reduces lazy inputs
        # to < 2q.
        wt = stack.psi_perm[:, :, None]
        wsh = stack.psi_perm_sh[:, :, None]
        t = a * wsh
        t >>= _U32
        t *= q3
        a *= wt
        a -= t
        a = _butterfly_stages(a, stack.omega, stack.omega_sh, stack.q)
        if not lazy:
            np.subtract(a, q3, out=t)  # canonicalize: < 2q -> < q
            np.minimum(a, t, out=a)
        if t_out:
            return a
        return np.ascontiguousarray(a.transpose(0, 2, 1))

    @bounded(in_q=2, out_q=1, max_q_multiple=4,
             params={"x": {"q": 2},
                     "stack.omega_inv": {"q": 1},
                     "stack.omega_inv_sh": {"shoup": 32},
                     "stack.psi_inv_scale": {"q": 1},
                     "stack.psi_inv_scale_sh": {"shoup": 32},
                     "stack.q": {"modulus": True}})
    def ntt_inverse(self, x: np.ndarray, stack) -> np.ndarray:
        a = np.ascontiguousarray(
            x.astype(np.uint64, copy=False)[:, :, stack._perm]
            .transpose(0, 2, 1)
        )
        a = _butterfly_stages(a, stack.omega_inv, stack.omega_inv_sh,
                              stack.q)
        q3 = stack.q.reshape(-1, 1, 1)
        # Fused post-twist psi^{-j} * N^{-1}, then canonicalize.
        wt = stack.psi_inv_scale[:, :, None]
        wsh = stack.psi_inv_scale_sh[:, :, None]
        t = a * wsh
        t >>= _U32
        t *= q3
        a *= wt
        a -= t
        np.subtract(a, q3, out=t)
        np.minimum(a, t, out=a)
        return np.ascontiguousarray(a.transpose(0, 2, 1))

    @bounded(assume=True, out_q=1, max_lanes=1 << 20,
             params={"ext": {"bits": 32}, "rows": {"q": 1}})
    def wide_dot(self, ext: np.ndarray, rows: np.ndarray, q: np.ndarray,
                 *, lane_axis: int = -2) -> np.ndarray:
        # Each < 2**63 product splits into 32-bit halves which accumulate
        # exactly in uint64 over the digit axis (safe for G up to ~2**25);
        # the partial sums fold with (hi mod q) * (2**32 mod q) + lo.
        prod = ext * rows
        hi = (prod >> _U32).sum(axis=lane_axis)
        lo = (prod & _LO32).sum(axis=lane_axis)
        q_c = _col(q, hi.ndim)
        np.remainder(hi, q_c, out=hi)
        radix = (np.uint64(1) << _U32) % q_c
        hi *= radix
        hi += lo
        np.remainder(hi, q_c, out=hi)
        return hi
