"""Numba JIT backend: the hot kernels as single compiled passes.

Where the numpy reference expresses each kernel as a chain of whole-array
ufunc passes (every pass a fresh sweep over memory, most allocating an
intermediate), this backend fuses each kernel into one ``@njit`` loop
nest parallelized over the prime rows — the shape LibFHE (PAPERS.md)
demonstrates for CUDA-Python FHE kernels, here on the CPU threading
layer:

* the Barrett/Montgomery **reduce chains** become one in-place pass per
  product (hardware 64-bit division / the REDC sequence per lane);
* the stacked **NTT/INTT butterfly sweeps** run pre-twist, every radix-2
  stage and the final canonicalization in a single kernel — no per-stage
  scratch traffic at all;
* **wide_dot** accumulates the 32-bit split partial sums per output lane
  in registers instead of materializing the full product tensor.

Bit-exactness: every method returns exactly the numpy backend's values
(``self_check`` runs at construction — a backend that cannot prove
equality is discarded and selection falls back to numpy). ``lazy=True``
NTT representatives are backend-specific but congruent mod ``q`` and
below ``2**32``, per the interface contract.

This module imports ``numba`` at load time; it is only ever imported by
the selection machinery after a successful availability probe.
"""

from __future__ import annotations

import numpy as np
from numba import njit, prange

from ..analysis.annotations import bounded
from .numpy_backend import NumpyBackend

_U0 = np.uint64(0)
_U1 = np.uint64(1)
_U32 = np.uint64(32)
_MASK = np.uint64(0xFFFFFFFF)

# ---- compiled kernels ------------------------------------------------------


@njit(parallel=True, cache=True)
def _reduce_rows(t, q):  # pragma: no cover - requires numba
    """In-place row-wise ``t %= q[i]`` over a contiguous (rows, n) view."""
    rows, n = t.shape
    for i in prange(rows):
        qi = q[i]
        for j in range(n):
            t[i, j] = t[i, j] % qi


@njit(parallel=True, cache=True)
def _mont_reduce_rows(t, q, qinv):  # pragma: no cover - requires numba
    """In-place row-wise REDC over a contiguous (rows, n) view."""
    rows, n = t.shape
    for i in prange(rows):
        qi = q[i]
        qinvi = qinv[i]
        for j in range(n):
            tt = t[i, j]
            m = ((tt & _MASK) * qinvi) & _MASK
            r = (tt + m * qi) >> _U32
            if r >= qi:
                r -= qi
            t[i, j] = r


@njit(parallel=True, cache=True)
def _ntt_forward_rows(a, psi, psi_sh, omega, omega_sh, q,
                      lazy):  # pragma: no cover - requires numba
    """Fused forward sweep over ``a``: (P, N, G) uint64, bit-reversed
    order along axis 1, representatives < 2**32. Pre-twist, every DIT
    stage and (unless ``lazy``) the canonicalization run in one kernel;
    values stay in the lazy [0, 2q) window between stages."""
    num_primes, n, g = a.shape
    for p in prange(num_primes):
        qp = q[p]
        two_q = qp + qp
        for j in range(n):
            w = psi[p, j]
            wsh = psi_sh[p, j]
            for lane in range(g):
                x = a[p, j, lane]
                t = (x * wsh) >> _U32
                a[p, j, lane] = x * w - t * qp
        length = 2
        while length <= n:
            half = length >> 1
            stride = n // length
            for blk in range(n // length):
                base = blk * length
                for jj in range(half):
                    w = omega[p, jj * stride]
                    wsh = omega_sh[p, jj * stride]
                    ilo = base + jj
                    ihi = ilo + half
                    for lane in range(g):
                        lo = a[p, ilo, lane]
                        hi = a[p, ihi, lane]
                        t = (hi * wsh) >> _U32
                        v = hi * w - t * qp
                        s = lo + v
                        if s >= two_q:
                            s -= two_q
                        d = lo + two_q - v
                        if d >= two_q:
                            d -= two_q
                        a[p, ilo, lane] = s
                        a[p, ihi, lane] = d
            length <<= 1
        if not lazy:
            for j in range(n):
                for lane in range(g):
                    x = a[p, j, lane]
                    if x >= qp:
                        x -= qp
                    a[p, j, lane] = x


@njit(parallel=True, cache=True)
def _ntt_inverse_rows(a, omega_inv, omega_inv_sh, psi_inv_scale,
                      psi_inv_scale_sh, q):  # pragma: no cover
    """Fused inverse sweep: DIT stages with the inverse twiddles, then
    the fused psi^{-j} * N^{-1} post-twist and canonicalization."""
    num_primes, n, g = a.shape
    for p in prange(num_primes):
        qp = q[p]
        two_q = qp + qp
        length = 2
        while length <= n:
            half = length >> 1
            stride = n // length
            for blk in range(n // length):
                base = blk * length
                for jj in range(half):
                    w = omega_inv[p, jj * stride]
                    wsh = omega_inv_sh[p, jj * stride]
                    ilo = base + jj
                    ihi = ilo + half
                    for lane in range(g):
                        lo = a[p, ilo, lane]
                        hi = a[p, ihi, lane]
                        t = (hi * wsh) >> _U32
                        v = hi * w - t * qp
                        s = lo + v
                        if s >= two_q:
                            s -= two_q
                        d = lo + two_q - v
                        if d >= two_q:
                            d -= two_q
                        a[p, ilo, lane] = s
                        a[p, ihi, lane] = d
            length <<= 1
        for j in range(n):
            w = psi_inv_scale[p, j]
            wsh = psi_inv_scale_sh[p, j]
            for lane in range(g):
                x = a[p, j, lane]
                t = (x * wsh) >> _U32
                r = x * w - t * qp
                if r >= qp:
                    r -= qp
                a[p, j, lane] = r


@njit(parallel=True, cache=True)
def _wide_dot_rows(ext, rows, q, out):  # pragma: no cover - requires numba
    """``out[p, m] = sum_g ext[p, m, g] * rows[p, m, g] mod q[p]`` with
    the exact 32-bit split accumulation of the numpy reference."""
    num_primes, m_lanes, g = ext.shape
    for p in prange(num_primes):
        qp = q[p]
        radix = (_U1 << _U32) % qp
        for m in range(m_lanes):
            acc_hi = _U0
            acc_lo = _U0
            for lane in range(g):
                prod = ext[p, m, lane] * rows[p, m, lane]
                acc_hi += prod >> _U32
                acc_lo += prod & _MASK
            out[p, m] = ((acc_hi % qp) * radix + acc_lo) % qp


# ---- backend ---------------------------------------------------------------


class NumbaBackend(NumpyBackend):
    """JIT-fused backend; inherits the (already single-pass) min-trick
    add/sub/neg from numpy and overrides every multi-pass kernel."""

    name = "numba"

    # ---- reduce chains ---------------------------------------------------

    @bounded(assume=True, params={"t": {"ubound": 1 << 63}}, out_q=1)
    def mod_reduce(self, t: np.ndarray, q: np.ndarray) -> np.ndarray:
        # Materializing copy: keeps the out-of-place contract and turns
        # broadcast (stride-0) views into real buffers for the kernel.
        out = np.array(t, dtype=np.uint64, copy=True, order="C")
        _reduce_rows(out.reshape(out.shape[0], -1), q)
        return out

    @bounded(assume=True, params={"a": {"q": 1}, "b": {"q": 1}}, out_q=1)
    def mod_mul(self, a: np.ndarray, b: np.ndarray,
                q: np.ndarray) -> np.ndarray:
        prod = a.astype(np.uint64, copy=False) * \
            b.astype(np.uint64, copy=False)  # fresh, contiguous
        _reduce_rows(prod.reshape(prod.shape[0], -1), q)
        return prod

    @bounded(assume=True, params={"t": {"ubound": 1 << 63}}, out_q=1)
    def montgomery_reduce(self, t: np.ndarray, q: np.ndarray,
                          qinv: np.ndarray) -> np.ndarray:
        out = np.array(t, dtype=np.uint64, copy=True, order="C")
        _mont_reduce_rows(out.reshape(out.shape[0], -1), q, qinv)
        return out

    @bounded(assume=True, params={"a": {"q": 1}, "b": {"q": 1}}, out_q=1)
    def montgomery_mul(self, a: np.ndarray, b: np.ndarray, q: np.ndarray,
                       qinv: np.ndarray) -> np.ndarray:
        prod = a.astype(np.uint64, copy=False) * \
            b.astype(np.uint64, copy=False)
        _mont_reduce_rows(prod.reshape(prod.shape[0], -1), q, qinv)
        return prod

    # ---- fused transforms ------------------------------------------------

    @bounded(in_bits=32, out_q=1, out_q_lazy=2, max_q_multiple=4,
             assume=True, params={"x": {"bits": 32}})
    def ntt_forward(self, x: np.ndarray, stack, *, lazy: bool = False,
                    t_out: bool = False) -> np.ndarray:
        a = np.ascontiguousarray(
            x.astype(np.uint64, copy=False)[:, :, stack._perm]
            .transpose(0, 2, 1)
        )
        _ntt_forward_rows(a, stack.psi_perm, stack.psi_perm_sh,
                          stack.omega, stack.omega_sh, stack.q, lazy)
        if t_out:
            return a
        return np.ascontiguousarray(a.transpose(0, 2, 1))

    @bounded(in_q=2, out_q=1, max_q_multiple=4, assume=True,
             params={"x": {"q": 2}})
    def ntt_inverse(self, x: np.ndarray, stack) -> np.ndarray:
        a = np.ascontiguousarray(
            x.astype(np.uint64, copy=False)[:, :, stack._perm]
            .transpose(0, 2, 1)
        )
        _ntt_inverse_rows(a, stack.omega_inv, stack.omega_inv_sh,
                          stack.psi_inv_scale, stack.psi_inv_scale_sh,
                          stack.q)
        return np.ascontiguousarray(a.transpose(0, 2, 1))

    @bounded(assume=True, out_q=1, max_lanes=1 << 20,
             params={"ext": {"bits": 32}, "rows": {"q": 1}})
    def wide_dot(self, ext: np.ndarray, rows: np.ndarray, q: np.ndarray,
                 *, lane_axis: int = -2) -> np.ndarray:
        ext_m = np.moveaxis(np.asarray(ext, dtype=np.uint64),
                            lane_axis, -1)
        rows_m = np.moveaxis(np.asarray(rows, dtype=np.uint64),
                             lane_axis, -1)
        ext_m, rows_m = np.broadcast_arrays(ext_m, rows_m)
        out_shape = ext_m.shape[:-1]
        num_primes = ext_m.shape[0]
        lanes = ext_m.shape[-1]
        ext2 = np.ascontiguousarray(ext_m).reshape(num_primes, -1, lanes)
        rows2 = np.ascontiguousarray(rows_m).reshape(num_primes, -1, lanes)
        out = np.empty(ext2.shape[:2], dtype=np.uint64)
        _wide_dot_rows(ext2, rows2, q, out)
        return out.reshape(out_shape)
