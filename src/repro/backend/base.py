"""Array-ops backend interface and selection machinery.

The batched RNS engine's hot kernels — row-wise modular arithmetic,
Barrett/Montgomery reduce chains, the stacked Shoup NTT/INTT butterfly
sweeps and the key-switch wide-accumulator inner product — are all
*array programs*: dense passes over ``(num_primes, ...)`` uint64 tensors
with per-row constants. This module defines the small interface those
programs are written against, so the whole hot path can switch between

* the **numpy** reference backend (always available, the default),
* a **numba** backend that JIT-fuses the reduce chains, butterfly sweeps
  and ``wide_dot`` into single compiled kernels (LibFHE shows CUDA-Python
  FHE via Numba is viable for exactly these kernel shapes), and
* a **cupy** scaffolding backend that moves the elementwise passes onto
  a GPU device (the WarpDrive target; unoptimized placeholder),

with one environment variable (``REPRO_BACKEND``) or one call
(:func:`set_backend`). Optional backends import lazily and *gracefully*:
a requested backend that is not importable, or that fails its
bit-exactness self-check against numpy, falls back to numpy with a
single warning — no code path in this library may hard-require numba or
cupy.

Contract
--------
Backends must agree on **values**, not instruction sequences: every
method returns the same canonical residues the numpy reference returns,
bit for bit (asserted by ``self_check`` and by the parity test suite).
The one representational freedom is ``lazy=True`` NTT outputs, whose
representatives are backend-specific but always congruent mod ``q`` and
below ``2**32`` — exactly what their only consumers (``wide_dot``, the
stacked inner product) accept.
"""

from __future__ import annotations

import importlib.util
import os
import warnings
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from ..analysis.annotations import bounded

#: Environment variable naming the backend to use (read once, at first
#: :func:`active_backend` call): ``numpy`` | ``numba`` | ``cupy`` |
#: ``auto``. ``auto`` picks the first available of cupy > numba > numpy.
#: Deprecated: prefer the declared ``backend`` knob in ``repro.tuning``
#: (the env var stays honored as that knob's default source).
BACKEND_ENV = "REPRO_BACKEND"

#: Selection order tried by ``auto`` (most to least accelerated).
AUTO_ORDER = ("cupy", "numba", "numpy")

# -- declared tuning knobs (DESIGN.md §14) ----------------------------------

from ..tuning.knobs import Choice, KnobSpec, \
    register_knob  # noqa: E402


def _backend_default() -> str:
    """Default backend name: the (deprecated) env var, else numpy.

    Garbage env values degrade to ``numpy`` here so the knob default is
    always in-domain; :func:`resolve_backend` still warns when an
    explicitly requested backend turns out unavailable.
    """
    value = os.environ.get(BACKEND_ENV, "numpy").strip().lower() or "numpy"
    return value if value in ("auto", *_FACTORIES) else "numpy"


register_knob(KnobSpec(
    name="backend", layer="backend",
    domain=Choice(("auto", "numpy", "numba", "cupy")),
    default_factory=_backend_default,
    doc="Array-ops backend the functional engine dispatches through "
        "(``auto`` takes the first available of cupy > numba > numpy).",
    observe=lambda pipe: pipe.backend,
))


class BackendUnavailable(RuntimeError):
    """The requested backend cannot be constructed on this machine."""


class ArrayBackend:
    """Abstract array-ops backend.

    All array arguments are uint64 with the prime index on axis 0;
    per-row constants (``q``, ``qinv``) arrive as 1-D ``(num_primes,)``
    uint64 arrays. Methods must return canonical residues (``< q`` per
    row) and never mutate their inputs unless documented otherwise.
    """

    #: Registry name; subclasses override.
    name = "abstract"

    # ---- elementwise modular arithmetic ---------------------------------

    @bounded(assume=True, params={"a": {"q": 1}, "b": {"q": 1}}, out_q=1)
    def mod_add(self, a: np.ndarray, b: np.ndarray,
                q: np.ndarray) -> np.ndarray:
        """Row-wise ``a + b mod q_i`` for entries below ``q_i``."""
        raise NotImplementedError

    @bounded(assume=True, params={"a": {"q": 1}, "b": {"q": 1}}, out_q=1)
    def mod_sub(self, a: np.ndarray, b: np.ndarray,
                q: np.ndarray) -> np.ndarray:
        """Row-wise ``a - b mod q_i`` for entries below ``q_i``."""
        raise NotImplementedError

    @bounded(assume=True, params={"a": {"q": 1}}, out_q=1)
    def mod_neg(self, a: np.ndarray, q: np.ndarray) -> np.ndarray:
        """Row-wise ``-a mod q_i`` for entries below ``q_i``."""
        raise NotImplementedError

    @bounded(assume=True, params={"t": {"ubound": 1 << 63}}, out_q=1)
    def mod_reduce(self, t: np.ndarray, q: np.ndarray) -> np.ndarray:
        """Row-wise ``t mod q_i`` for any uint64 ``t`` (the Barrett-range
        reduce: callers feed products below ``q_i**2`` plus slack)."""
        raise NotImplementedError

    @bounded(assume=True, params={"a": {"q": 1}, "b": {"q": 1}}, out_q=1)
    def mod_mul(self, a: np.ndarray, b: np.ndarray,
                q: np.ndarray) -> np.ndarray:
        """Row-wise ``a * b mod q_i`` for entries below ``q_i``; operands
        broadcast against each other (numpy rules)."""
        raise NotImplementedError

    # ---- Montgomery (REDC) chains ---------------------------------------

    @bounded(assume=True, params={"t": {"ubound": 1 << 63}}, out_q=1)
    def montgomery_reduce(self, t: np.ndarray, q: np.ndarray,
                          qinv: np.ndarray) -> np.ndarray:
        """Row-wise REDC ``t * R^{-1} mod q_i`` for ``t < q_i * 2**32``;
        ``qinv`` holds ``-q_i^{-1} mod 2**32``."""
        raise NotImplementedError

    @bounded(assume=True, params={"a": {"q": 1}, "b": {"q": 1}}, out_q=1)
    def montgomery_mul(self, a: np.ndarray, b: np.ndarray, q: np.ndarray,
                       qinv: np.ndarray) -> np.ndarray:
        """Row-wise Montgomery product (entries below ``q_i``); operands
        broadcast against each other."""
        raise NotImplementedError

    # ---- fused transform kernels ----------------------------------------

    @bounded(assume=True, in_bits=32, out_q=1, out_q_lazy=2,
             params={"x": {"bits": 32}})
    def ntt_forward(self, x: np.ndarray, stack, *, lazy: bool = False,
                    t_out: bool = False) -> np.ndarray:
        """Forward stacked negacyclic NTT of a ``(P, G, N)`` digit batch.

        ``stack`` is a :class:`repro.ntt.stacked.ShoupStack` (duck-typed:
        only its table arrays are read). Accepts lazy inputs ``< 2**32``;
        returns canonical values, or backend-specific lazy
        representatives ``< 2q`` when ``lazy=True``. ``t_out`` returns
        the digit-innermost ``(P, N, G)`` layout.
        """
        raise NotImplementedError

    @bounded(assume=True, in_q=2, out_q=1, params={"x": {"q": 2}})
    def ntt_inverse(self, x: np.ndarray, stack) -> np.ndarray:
        """Inverse stacked negacyclic NTT of a ``(P, G, N)`` batch
        (inputs ``< 2q``, canonical output)."""
        raise NotImplementedError

    @bounded(assume=True, out_q=1, max_lanes=1 << 20,
             params={"ext": {"bits": 32}, "rows": {"q": 1}})
    def wide_dot(self, ext: np.ndarray, rows: np.ndarray, q: np.ndarray,
                 *, lane_axis: int = -2) -> np.ndarray:
        """``sum_g ext[..g..] * rows[..g..] mod q_i`` reduced over the
        digit axis ``lane_axis`` without per-digit reduction. ``rows``
        must be canonical; ``ext`` may hold any representatives below
        ``2**32``. Canonical output."""
        raise NotImplementedError

    # ---- lifecycle -------------------------------------------------------

    def self_check(self) -> None:
        """Assert bit-exactness against the numpy reference backend.

        Runs every interface method on small deterministic inputs and
        compares with :class:`~repro.backend.numpy_backend.NumpyBackend`.
        Raises :class:`BackendUnavailable` on any mismatch — selection
        then falls back to numpy, so a miscompiled or subtly wrong
        accelerated backend can never corrupt ciphertexts silently.
        """
        from .numpy_backend import NumpyBackend

        ref = NumpyBackend()
        if type(self) is NumpyBackend:
            return
        rng = np.random.default_rng(0xC0FFEE)
        # 30-bit NTT-friendly primes for ring degree 64 (q = 1 mod 128),
        # so the ShoupStack checks below can build real twiddle tables.
        moduli = np.array([1073741441, 1073739649, 1073738753],
                          dtype=np.uint64)
        radix = 1 << 32
        qinv = np.array(
            [(-pow(int(q), -1, radix)) % radix for q in moduli],
            dtype=np.uint64,
        )
        n = 64
        a = np.stack([rng.integers(0, q, size=n, dtype=np.uint64)
                      for q in moduli])
        b = np.stack([rng.integers(0, q, size=n, dtype=np.uint64)
                      for q in moduli])
        t = np.stack([rng.integers(0, int(q) * int(q), size=n,
                                   dtype=np.uint64) for q in moduli])
        tm = np.stack([rng.integers(0, int(q) * radix, size=n,
                                    dtype=np.uint64) for q in moduli])
        checks = [
            ("mod_add", lambda be: be.mod_add(a, b, moduli)),
            ("mod_sub", lambda be: be.mod_sub(a, b, moduli)),
            ("mod_neg", lambda be: be.mod_neg(a, moduli)),
            ("mod_reduce", lambda be: be.mod_reduce(t, moduli)),
            ("mod_mul", lambda be: be.mod_mul(a, b, moduli)),
            ("montgomery_reduce",
             lambda be: be.montgomery_reduce(tm, moduli, qinv)),
            ("montgomery_mul",
             lambda be: be.montgomery_mul(a, b, moduli, qinv)),
        ]
        # NTT checks need a ShoupStack; import lazily (repro.ntt imports
        # this package, so the import must not run at module load).
        from ..ntt.stacked import get_shoup_stack

        stack = get_shoup_stack(tuple(int(q) for q in moduli), n)
        batch = np.stack([a, b], axis=1)  # (P, 2, n)
        checks += [
            ("ntt_forward", lambda be: be.ntt_forward(batch, stack)),
            ("ntt_forward_t",
             lambda be: be.ntt_forward(batch, stack, t_out=True)),
            ("ntt_roundtrip",
             lambda be: be.ntt_inverse(be.ntt_forward(batch, stack),
                                       stack)),
            ("wide_dot",
             lambda be: be.wide_dot(batch, np.stack([b, a], axis=1),
                                    moduli)),
            ("wide_dot_lanes_last",
             lambda be: be.wide_dot(
                 np.ascontiguousarray(batch.transpose(0, 2, 1)),
                 np.ascontiguousarray(
                     np.stack([b, a], axis=1).transpose(0, 2, 1)),
                 moduli, lane_axis=-1)),
        ]
        for label, fn in checks:
            got = np.asarray(fn(self))
            want = fn(ref)
            if not np.array_equal(got, want):
                raise BackendUnavailable(
                    f"backend {self.name!r} failed its bit-exactness "
                    f"self-check on {label}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} name={self.name!r}>"


# ---- registry and selection ---------------------------------------------

def _make_numpy() -> ArrayBackend:
    from .numpy_backend import NumpyBackend

    return NumpyBackend()


def _make_numba() -> ArrayBackend:
    if importlib.util.find_spec("numba") is None:
        raise BackendUnavailable("numba is not importable")
    from .numba_backend import NumbaBackend

    return NumbaBackend()


def _make_cupy() -> ArrayBackend:
    if importlib.util.find_spec("cupy") is None:
        raise BackendUnavailable("cupy is not importable")
    from .cupy_backend import CupyBackend

    return CupyBackend()


_FACTORIES: Dict[str, Callable[[], ArrayBackend]] = {
    "numpy": _make_numpy,
    "numba": _make_numba,
    "cupy": _make_cupy,
}

_active: Optional[ArrayBackend] = None


def backend_names() -> List[str]:
    """Registered backend names (available or not)."""
    return sorted(_FACTORIES)


def available_backends() -> Dict[str, bool]:
    """Importability of each registered backend (no construction, no
    JIT warm-up — just the module probe)."""
    return {
        "numpy": True,
        "numba": importlib.util.find_spec("numba") is not None,
        "cupy": importlib.util.find_spec("cupy") is not None,
    }


def _construct(name: str, *, verify: bool = True) -> ArrayBackend:
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise BackendUnavailable(
            f"unknown backend {name!r}; choose from {backend_names()}"
        ) from None
    backend = factory()
    if verify:
        backend.self_check()
    return backend


def resolve_backend(name: Optional[str] = None) -> ArrayBackend:
    """Construct the backend ``name`` (or the env-var/auto choice),
    falling back to numpy with one warning when unavailable.

    Selection order: an explicit ``name`` argument wins, then the
    ``backend`` knob default (which reads the deprecated
    ``REPRO_BACKEND`` environment variable), then ``numpy``. The special
    name ``auto`` walks :data:`AUTO_ORDER` and takes the first backend
    that constructs and passes its self-check.
    """
    from ..tuning.knobs import knob_default

    requested = name or knob_default("backend")
    requested = requested.strip().lower() or "numpy"
    if requested == "auto":
        for candidate in AUTO_ORDER:
            try:
                return _construct(candidate)
            except BackendUnavailable:
                continue
        return _construct("numpy")
    try:
        return _construct(requested)
    except BackendUnavailable as exc:
        if requested != "numpy":
            warnings.warn(
                f"repro backend {requested!r} unavailable ({exc}); "
                f"falling back to numpy",
                RuntimeWarning,
                stacklevel=2,
            )
            return _construct("numpy")
        raise


def active_backend() -> ArrayBackend:
    """The process-wide backend every hot kernel dispatches through.

    Resolved lazily from ``REPRO_BACKEND`` on first use; override with
    :func:`set_backend` / :func:`use_backend`.
    """
    global _active
    if _active is None:
        _active = resolve_backend()
    return _active


def set_backend(backend: Union[str, ArrayBackend, None]) -> ArrayBackend:
    """Install ``backend`` (a name or an instance) as the active backend.

    ``None`` resets to the environment-variable default. Returns the
    backend actually installed (which may be the numpy fallback).
    """
    global _active
    if backend is None:
        _active = resolve_backend()
    elif isinstance(backend, ArrayBackend):
        _active = backend
    else:
        _active = resolve_backend(backend)
    return _active


@contextmanager
def use_backend(backend: Union[str, ArrayBackend]):
    """Context manager: temporarily switch the active backend.

    Yields the installed backend (after fallback resolution), then
    restores the previous one — the bench harness and the parity tests
    flip backends per measurement with this.
    """
    global _active
    previous = active_backend()
    installed = set_backend(backend)
    try:
        yield installed
    finally:
        _active = previous


def backend_name() -> str:
    """Name of the currently active backend."""
    return active_backend().name
