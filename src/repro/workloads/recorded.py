"""Recorded workload pricing: price what the functional layer launched.

The hand-counted schedules of this package approximate workloads as op
lists; this module closes the loop the trace layer opens — it *runs* the
functional bootstrap under :mod:`repro.trace`, lowers the recording to a
kernel DAG at the target ring degree, and prices the DAG on the
dependency-aware scheduler. The hand-counted lists stay around as
cross-check oracles (``benchmarks/test_table14_workloads.py`` asserts the
two price within 10% of each other).

**Proxy recording.** Trace events carry ring-degree-free shapes (rows,
primes, digits, steps), so a run at a small proxy ring that shares the
target's chain structure (``max_level``, ``num_special``, ``dnum``,
``rescale_primes``) lowers to the *same* launch DAG as a full-ring run —
only the per-kernel geometry changes at lowering time. Recording at
``n = 2**proxy_log2n`` makes tracing a 46-prime bootstrap a seconds-scale
operation instead of an hours-scale one.

The recorded bootstrap's configuration is calibrated to the published
hand count (see :data:`RECORDED_BOOT_CONFIG` and DESIGN.md §10): the
proxy slot count gives the same number of FFT stages as the hand
schedule's 3-stage radix decomposition, and ``sine_degree`` is chosen so
the Chebyshev product-recurrence issues about as many HMULTs as the hand
count's deg-63 BSGS evaluation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

import numpy as np

from ..ckks.bootstrap import BootstrapConfig, Bootstrapper
from ..ckks.context import CkksContext
from ..ckks.params import CkksParams, ParameterSets
from ..core.scheduler import OperationScheduler
from ..trace import lower_trace
from ..trace.ir import OpTrace
from ..trace.recorder import record
from ..tuning.knobs import IntRange, KnobSpec, knob_default, register_knob
from .schedules import WorkloadSchedule, WorkloadTiming

# -- declared tuning knobs (DESIGN.md §14) ----------------------------------
#
# The recorded-workload layer owns the calibrated recording knobs of the
# proxy bootstrap (module docstring).  These are the exact co-design
# point ``repro.gym`` searches — ``BENCH_gym.json`` asserts the searched
# assignment matches or beats these hand-picked defaults.

register_knob(KnobSpec(
    name="recorded.proxy_log2n", layer="workloads",
    domain=IntRange(7, 12), default=10,
    doc="log2 ring degree of the proxy functional recording.",
    observe=lambda pipe: pipe.config["recorded.proxy_log2n"],
))
register_knob(KnobSpec(
    name="recorded.fuse", layer="workloads",
    domain=IntRange(1, 8, grid=(1, 2, 3, 4, 5)), default=3,
    doc="FFT stage fusion of the recorded bootstrap (calibrated to the "
        "hand count's 3-stage radix decomposition).",
    observe=lambda pipe: pipe.config["recorded.fuse"],
))
register_knob(KnobSpec(
    name="recorded.sine_degree", layer="workloads",
    domain=IntRange(7, 255, grid=(15, 31, 63)), default=31,
    doc="Sine degree of the recorded bootstrap (calibrated to issue "
        "about as many HMULTs as the hand count's deg-63 BSGS).",
    observe=lambda pipe: pipe.config["recorded.sine_degree"],
))


def _recorded_boot_config() -> Dict[str, int]:
    """The calibrated recording knobs, resolved from the registry."""
    return {
        "proxy_log2n": knob_default("recorded.proxy_log2n"),
        "fuse": knob_default("recorded.fuse"),
        "sine_degree": knob_default("recorded.sine_degree"),
    }


#: Calibrated recording knobs (see module docstring): proxy ring degree,
#: FFT stage fusion, and sine degree of the recorded bootstrap.  Kept as
#: a module attribute for the benchmark harness; the values are the
#: ``recorded.*`` knob defaults, not an independent copy.
RECORDED_BOOT_CONFIG: Dict[str, int] = _recorded_boot_config()

_trace_cache: Dict[tuple, OpTrace] = {}
_factor_cache: Dict[tuple, float] = {}


def proxy_params_for(params: CkksParams, log2n: int = 10) -> CkksParams:
    """``params`` with the ring shrunk to ``2**log2n`` (chain unchanged).

    The chain-structure fields that determine trace shapes are preserved,
    so :func:`repro.trace.lower_trace` accepts the recording for the
    original ``params``. Returns ``params`` itself when already small.
    """
    n = 2 ** log2n
    if params.n <= n:
        return params
    return dataclasses.replace(
        params, n=n, name=f"{params.name or 'params'}-proxy{log2n}"
    )


def _chain_key(params: CkksParams) -> tuple:
    return (params.max_level, params.num_special, params.dnum,
            params.rescale_primes, params.scale_bits)


def record_bootstrap_trace(params: CkksParams = None, *,
                           proxy_log2n: int = None, fuse: int = None,
                           sine_degree: int = None,
                           seed: int = 0) -> OpTrace:
    """Run one functional slim bootstrap at proxy scale and record it.

    The knobs default to :data:`RECORDED_BOOT_CONFIG`. Traces are cached
    per chain structure and knob set — the expensive functional run
    happens once per parameter family per process.
    """
    params = params or ParameterSets.boot()
    cfg = _recorded_boot_config()
    if proxy_log2n is not None:
        cfg["proxy_log2n"] = proxy_log2n
    if fuse is not None:
        cfg["fuse"] = fuse
    if sine_degree is not None:
        cfg["sine_degree"] = sine_degree
    proxy = proxy_params_for(params, cfg["proxy_log2n"])
    key = (_chain_key(params), proxy.n, cfg["fuse"], cfg["sine_degree"],
           seed)
    cached = _trace_cache.get(key)
    if cached is not None:
        return cached

    ctx = CkksContext.create(proxy, seed=seed)
    boot = Bootstrapper(ctx, BootstrapConfig(
        sine_degree=cfg["sine_degree"], fft_factored=True,
        fuse=cfg["fuse"],
    ))
    rotations = boot.required_rotations()
    keys = ctx.keygen(rotations=rotations, conjugation=True)
    vals = np.zeros(ctx.slots)
    vals[:4] = [0.5, -0.25, 0.125, 0.75]
    ct = ctx.encrypt(vals, keys, level=boot.stc_levels)
    with record(f"boot[{params.name or 'params'}]", params=proxy,
                n=proxy.n) as rec:
        boot.bootstrap(ct, keys)
    trace = dataclasses.replace(
        rec.trace, rotations=tuple(sorted(set(rotations))) + (-1,)
    )
    _trace_cache[key] = trace
    return trace


def record_helr_iteration_trace(params: CkksParams = None, *,
                                proxy_log2n: int = 8, samples: int = 2,
                                features: int = 4,
                                seed: int = 0) -> OpTrace:
    """Record one functional mini-HELR training iteration at proxy scale.

    The recording covers the per-sample dot product, the rotation
    all-reduce, the polynomial sigmoid and the masked gradient update of
    :class:`~repro.workloads.helr.EncryptedLogisticRegression` — the
    dataflow the hand-counted ``helr_iteration_schedule`` approximates.
    Cached per chain structure and knob set.
    """
    from .helr import EncryptedLogisticRegression

    params = params or ParameterSets.helr()
    proxy = proxy_params_for(params, proxy_log2n)
    key = ("helr", _chain_key(params), proxy.n, samples, features, seed)
    cached = _trace_cache.get(key)
    if cached is not None:
        return cached

    ctx = CkksContext.create(proxy, seed=seed)
    rotations = EncryptedLogisticRegression.required_rotations(ctx.slots)
    keys = ctx.keygen(rotations=rotations)
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(samples, features))
    y = (x.sum(axis=1) > 0).astype(float)
    model = EncryptedLogisticRegression(ctx, keys)
    with record(f"helr[{params.name or 'params'}]", params=proxy,
                n=proxy.n) as rec:
        model.train(x, y, iterations=1)
    trace = dataclasses.replace(
        rec.trace, rotations=tuple(sorted(set(rotations)))
    )
    _trace_cache[key] = trace
    return trace


def record_resnet_block_trace(params: CkksParams = None, *,
                              proxy_log2n: int = 8, height: int = 4,
                              width: int = 4, seed: int = 0) -> OpTrace:
    """Record one functional ResNet basic block at proxy scale.

    Conv -> square activation -> conv -> residual add, all under
    encryption via :class:`~repro.workloads.resnet.EncryptedConv2d`
    (hoisted kernel-position rotations, wide-accumulator mask reduce).
    Cached per chain structure and knob set.
    """
    from .resnet import EncryptedConv2d

    params = params or ParameterSets.resnet()
    proxy = proxy_params_for(params, proxy_log2n)
    key = ("resnet", _chain_key(params), proxy.n, height, width, seed)
    cached = _trace_cache.get(key)
    if cached is not None:
        return cached

    ctx = CkksContext.create(proxy, seed=seed)
    rotations = EncryptedConv2d.required_rotations(width, ctx.slots)
    keys = ctx.keygen(rotations=rotations)
    rng = np.random.default_rng(seed)
    kernel = rng.uniform(-0.5, 0.5, size=(3, 3))
    conv1 = EncryptedConv2d(ctx, keys, kernel)
    conv2 = EncryptedConv2d(ctx, keys, kernel.T.copy())
    img = np.zeros(ctx.slots)
    img[: height * width] = rng.uniform(-1, 1, size=height * width)
    ct = ctx.encrypt(img, keys)
    ev = ctx.evaluator
    with record(f"resnet-block[{params.name or 'params'}]", params=proxy,
                n=proxy.n) as rec:
        mid = conv1.forward(ct, height, width, square_activation=True)
        out = conv2.forward(mid, height, width)
        ev.hadd_matched(ev.level_down(ct, out.level), out)  # residual
    trace = dataclasses.replace(
        rec.trace, rotations=tuple(sorted(set(rotations)))
    )
    _trace_cache[key] = trace
    return trace


def record_transcipher_block_trace(params: CkksParams = None, *,
                                   proxy_log2n: int = 8,
                                   sbox_degree: int = 7,
                                   seed: int = 0) -> OpTrace:
    """Record one byte-slice AES transcipher round block at proxy scale.

    The homomorphic kernel of the Table XV transcipher workload, run
    functionally: SubBytes as a packed Chebyshev interpolation of the
    S-box over one byte-slice ciphertext (``sbox_degree`` stands in for
    the full deg-254 GF(2^8) interpolation, which only changes HMULT
    count, not dataflow), ShiftRows/MixColumns as masked slot rotations
    combined under encryption, and AddRoundKey as a plaintext add.
    Cached per chain structure and knob set.
    """
    from ..ckks.polyeval import PolynomialEvaluator

    params = params or ParameterSets.aes()
    proxy = proxy_params_for(params, proxy_log2n)
    key = ("aes-block", _chain_key(params), proxy.n, sbox_degree, seed)
    cached = _trace_cache.get(key)
    if cached is not None:
        return cached

    ctx = CkksContext.create(proxy, seed=seed)
    rotations = [1, 2, 3]  # the byte-lane shifts of ShiftRows/MixColumns
    keys = ctx.keygen(rotations=rotations)
    ev = ctx.evaluator
    poly = PolynomialEvaluator(ev)
    coeffs = PolynomialEvaluator.chebyshev_fit(
        np.tanh, sbox_degree  # any smooth stand-in for the S-box fit
    )
    rng = np.random.default_rng(seed)
    slice_vals = rng.uniform(-0.9, 0.9, size=ctx.slots)
    round_key = rng.uniform(-0.5, 0.5, size=ctx.slots)
    ct = ctx.encrypt(slice_vals, keys)
    with record(f"aes-block[{params.name or 'params'}]", params=proxy,
                n=proxy.n) as rec:
        sub = poly.eval_chebyshev(ct, coeffs, keys)        # SubBytes
        mixed = sub
        for step in rotations:                             # ShiftRows+MC
            rot = ev.hrotate(sub, step, keys)
            mask = np.zeros(ctx.slots)
            mask[step::4] = 1.0
            masked = ev.pmult(rot, ctx.encode(
                mask, level=rot.level, scale=rot.scale))
            masked = ev.rescale(masked)
            mixed = ev.hadd_matched(ev.level_down(mixed, masked.level),
                                    masked)
        pt_key = ctx.encode(round_key, level=mixed.level,
                            scale=mixed.scale)
        ev.add_plain(mixed, pt_key)                        # AddRoundKey
    trace = dataclasses.replace(
        rec.trace, rotations=tuple(sorted(set(rotations)))
    )
    _trace_cache[key] = trace
    return trace


def _lower_for(trace: OpTrace, scheduler: OperationScheduler, *,
               style: str = "pe", batch: int = 1, optimize: bool = False,
               search: bool = False):
    """Lower ``trace`` at the scheduler's params/device/geometry.

    ``optimize`` runs the :mod:`repro.trace.opt` pass pipeline over the
    recording first; ``search`` re-orders the lowered DAG with
    :func:`~repro.trace.opt.schedule_search` (both off by default so the
    recorded numbers stay directly comparable to the hand counts).
    """
    if optimize:
        from ..trace.opt import optimize_trace

        trace, _ = optimize_trace(trace)
    dag = lower_trace(
        trace, params=scheduler.params, style=style,
        device=scheduler.device, ntt_variant=scheduler.ntt.variant,
        geometry=scheduler.geometry, batch=batch,
    )
    if search:
        from ..trace.opt import schedule_search

        dag, _ = schedule_search(dag, scheduler.device)
    return dag


def simulate_recorded_bootstrap(params: CkksParams = None, *,
                                batch: int = 1,
                                scheduler: OperationScheduler = None,
                                style: str = "pe",
                                proxy_log2n: int = None, fuse: int = None,
                                sine_degree: int = None,
                                optimize: bool = False,
                                search: bool = False,
                                seed: int = 0) -> WorkloadTiming:
    """Record one bootstrap functionally and price the lowered DAG.

    The drop-in recorded counterpart of
    :func:`~repro.workloads.bootstrap_workload.simulate_bootstrap`; the
    breakdown buckets kernel time by recorded phase (StC / ModRaise /
    CtS / EvalMod). Under SM-level overlap the buckets sum to slightly
    more than the wall-clock ``total_us``.
    """
    params = params or ParameterSets.boot()
    scheduler = scheduler or OperationScheduler(params)
    trace = record_bootstrap_trace(
        params, proxy_log2n=proxy_log2n, fuse=fuse,
        sine_degree=sine_degree, seed=seed,
    )
    dag = _lower_for(trace, scheduler, style=style, batch=batch,
                     optimize=optimize, search=search)
    result = dag.run(scheduler.device)
    breakdown: Dict[str, float] = {}
    for entry in result.entries:
        group = dag.nodes[entry.index].group
        breakdown[group] = breakdown.get(group, 0.0) + entry.duration_us
    suffix = "+opt" if optimize or search else ""
    return WorkloadTiming(
        name=f"Boot-recorded[{style}{suffix}]", total_us=result.elapsed_us,
        batch=batch, breakdown=breakdown,
    )


def recorded_workload_timing(schedule: WorkloadSchedule,
                             scheduler: OperationScheduler, *,
                             batch: int = 1,
                             recorded_boot: WorkloadTiming,
                             hoisting: Optional[str] = None
                             ) -> WorkloadTiming:
    """Price ``schedule`` with its embedded bootstraps swapped for a
    recorded one.

    Hand-counted workload schedules embed bootstraps as ``boot*``-noted
    items (one ``ModRaise`` per bootstrap, scaled by the amortization
    count). This prices every non-boot item exactly as
    :meth:`WorkloadSchedule.price` would, then adds
    ``bootstraps x recorded_boot.total_us`` — the recorded DAG replacing
    the hand count.
    """
    core = WorkloadSchedule(schedule.name)
    bootstraps = 0.0
    for item in schedule.items:
        note = item.note or item.op
        if note.startswith("boot"):
            if note.endswith("ModRaise"):
                bootstraps += item.count
            continue
        core.items.append(item)
    timing = core.price(scheduler, batch=batch, hoisting=hoisting)
    boot_us = bootstraps * recorded_boot.total_us
    timing.breakdown["boot(recorded)"] = boot_us
    return WorkloadTiming(
        name=f"{schedule.name}-recorded",
        total_us=timing.total_us + boot_us, batch=batch,
        breakdown=timing.breakdown,
    )


def simulate_recorded_helr_iteration(params: CkksParams = None, *,
                                     batch: int = 1,
                                     scheduler: OperationScheduler = None,
                                     style: str = "pe",
                                     boot_period: int = 2
                                     ) -> WorkloadTiming:
    """HELR iteration with the amortized bootstrap recorded, not counted."""
    from .helr import helr_iteration_schedule

    params = params or ParameterSets.helr()
    scheduler = scheduler or OperationScheduler(params)
    boot = simulate_recorded_bootstrap(
        params, batch=batch, scheduler=scheduler, style=style
    )
    return recorded_workload_timing(
        helr_iteration_schedule(params, boot_period=boot_period),
        scheduler, batch=batch, recorded_boot=boot,
    )


def simulate_recorded_resnet20(params: CkksParams = None, *,
                               batch: int = 1,
                               scheduler: OperationScheduler = None,
                               style: str = "pe") -> WorkloadTiming:
    """ResNet-20 inference with every bootstrap recorded, not counted."""
    from .resnet import resnet20_schedule

    params = params or ParameterSets.resnet()
    scheduler = scheduler or OperationScheduler(params)
    boot = simulate_recorded_bootstrap(
        params, batch=batch, scheduler=scheduler, style=style
    )
    return recorded_workload_timing(
        resnet20_schedule(params), scheduler, batch=batch,
        recorded_boot=boot,
    )


# -- derived hoisting factor ------------------------------------------------


def derived_hoisted_rotation_factor(scheduler: OperationScheduler, *,
                                    steps: int = 8,
                                    proxy_log2n: int = 8,
                                    seed: int = 0) -> float:
    """Per-extra-rotation cost of a hoisted group, derived from a trace.

    Records one functional ``hoisted_rotations`` call over ``steps``
    rotation steps and one plain HROTATE at proxy scale, lowers both at
    the scheduler's parameters, and solves

        ``C_hoisted(S) = C_hrotate * (1 + factor * (S - 1))``

    for ``factor`` — the quantity the hand-tuned
    :data:`~repro.workloads.schedules.HOISTED_ROTATION_FACTOR` eyeballs.
    Cached per (chain, device, variant); raises on degenerate traces so
    callers can fall back to the constant.
    """
    params = scheduler.params
    key = (_chain_key(params), params.n, scheduler.device.name,
           scheduler.ntt.variant, steps, proxy_log2n, seed)
    cached = _factor_cache.get(key)
    if cached is not None:
        return cached

    from ..ckks.hoisting import hoisted_rotations

    proxy = proxy_params_for(params, proxy_log2n)
    ctx = CkksContext.create(proxy, seed=seed)
    rotations = [s + 1 for s in range(steps)]
    keys = ctx.keygen(rotations=rotations)
    vals = np.zeros(ctx.slots)
    vals[:2] = [0.5, -0.25]
    ct = ctx.encrypt(vals, keys)
    ev = ctx.evaluator

    with record("hoisted", params=proxy, n=proxy.n) as rec:
        hoisted_rotations(ev, ct, rotations, keys)
    hoisted_trace = rec.trace
    with record("hrotate", params=proxy, n=proxy.n) as rec:
        ev.hrotate(ct, 1, keys)
    single_trace = rec.trace

    cost_hoisted = _lower_for(hoisted_trace, scheduler).run(
        scheduler.device).elapsed_us
    cost_single = _lower_for(single_trace, scheduler).run(
        scheduler.device).elapsed_us
    if cost_single <= 0 or steps < 2:
        raise ValueError("degenerate hoisting trace")
    factor = (cost_hoisted - cost_single) / ((steps - 1) * cost_single)
    if not 0.0 < factor < 1.0:
        raise ValueError(
            f"derived hoisting factor {factor:.3f} outside (0, 1)"
        )
    _factor_cache[key] = factor
    return factor
