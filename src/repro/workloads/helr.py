"""HELR: logistic regression over CKKS (Table XIV "HELR").

Two layers, as everywhere in this reproduction:

* :func:`helr_iteration_schedule` — the full-scale operation schedule of
  one training iteration [25] (BSGS matrix-vector products for the
  forward pass and gradient, a degree-3 polynomial sigmoid, amortized
  bootstrapping every ``boot_period`` iterations), priced by the
  simulator;
* :class:`EncryptedLogisticRegression` — a *functional* mini-HELR that
  actually trains on encrypted data at toy ring sizes, validated against
  plaintext gradient descent in tests.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..ckks import CkksContext, ParameterSets
from ..ckks.params import CkksParams
from ..core.scheduler import OperationScheduler
from .bootstrap_workload import bootstrap_schedule
from .schedules import WorkloadSchedule, WorkloadTiming

#: Degree-3 least-squares fit of the sigmoid on [-8, 8] from [25].
SIGMOID3_COEFFS = (0.5, 0.15012, 0.0, -0.0015930)


def helr_iteration_schedule(params: CkksParams = None, *,
                            features: int = 196,
                            boot_period: int = 2,
                            fft_factored: bool = False,
                            fuse: int = 1) -> WorkloadSchedule:
    """One HELR training iteration at the paper's HELR parameter set.

    ``fft_factored``/``fuse`` select the sparse-factorized bootstrap
    schedule; the defaults keep the published pricing.
    """
    params = params or ParameterSets.helr()
    top = params.max_level
    sched = WorkloadSchedule("HELR-iteration")
    rot_groups = max(1, int(math.isqrt(features)))
    for phase, lvl in (("forward", top), ("gradient", top - 3)):
        # BSGS matrix-vector product: one full rotation then hoisted ones.
        sched.add("hrotate", lvl, 1, note=f"{phase}.rot")
        sched.add("hrotate", lvl, 2 * rot_groups - 1, hoisted=True,
                  note=f"{phase}.rot")
        sched.add("pmult", lvl, rot_groups, note=f"{phase}.pmult")
        sched.add("hadd", lvl, rot_groups, note=f"{phase}.add")
        sched.add("rescale", lvl, 1, note=f"{phase}.rescale")
    # Degree-3 sigmoid: two ciphertext products plus coefficient PMULTs.
    sched.add("hmult", top - 2, 2, note="sigmoid.hmult")
    sched.add("pmult", top - 2, 3, note="sigmoid.pmult")
    sched.add("hadd", top - 2, 3, note="sigmoid.add")
    # Weight update.
    sched.add("pmult", top - 5, 1, note="update.pmult")
    sched.add("hadd", top - 5, 1, note="update.add")
    # Amortized bootstrapping.
    boot = bootstrap_schedule(params, fft_factored=fft_factored, fuse=fuse)
    for item in boot.items:
        sched.add(item.op, item.level, item.count / boot_period,
                  hoisted=item.hoisted, note=f"boot.{item.note or item.op}")
    return sched


def simulate_helr_iteration(params: CkksParams = None, *, batch: int = 1,
                            scheduler: OperationScheduler = None,
                            hoisting: str = "derived") -> WorkloadTiming:
    """Amortized ms/iteration (the Table XIV HELR metric)."""
    params = params or ParameterSets.helr()
    scheduler = scheduler or OperationScheduler(params)
    return helr_iteration_schedule(params).price(
        scheduler, batch=batch, hoisting=hoisting
    )


class EncryptedLogisticRegression:
    """Functional mini-HELR: gradient descent on encrypted samples.

    One sample's feature vector per ciphertext (zero-padded to the slot
    count). Per iteration and sample: a slot-wise product with the
    encrypted weights, a rotation all-reduce to broadcast ``z = x.w`` to
    every slot, the degree-3 polynomial sigmoid, and a masked gradient
    accumulation — all under encryption. Tests validate against
    :func:`plaintext_reference`.
    """

    def __init__(self, ctx: CkksContext, keys, *, learning_rate: float = 1.0):
        self.ctx = ctx
        self.keys = keys
        self.lr = learning_rate

    # -- public API ---------------------------------------------------------------

    def train(self, x: np.ndarray, y: np.ndarray, *,
              iterations: int = 2) -> np.ndarray:
        """Train and return the decrypted weights (features <= slots)."""
        samples, features = x.shape
        if features > self.ctx.slots:
            raise ValueError("toy HELR requires features <= slots")
        ev = self.ctx.evaluator
        c0, c1, _, c3 = SIGMOID3_COEFFS

        ct_x = [self.ctx.encrypt(x[i], self.keys) for i in range(samples)]
        ct_w = self.ctx.encrypt(np.zeros(features), self.keys)

        # The gradient plaintext of sample i depends only on (i, level):
        # memoize so later iterations (which revisit the same levels)
        # never re-encode.
        pt_cache = {}

        def pt_sample(i, level):
            key = (i, level)
            if key not in pt_cache:
                pt_cache[key] = self.ctx.encode(x[i], level=level)
            return pt_cache[key]

        for _ in range(iterations):
            grad_acc = None
            for i in range(samples):
                lvl = min(ct_w.level, ct_x[i].level)
                prod = ev.hmult(ev.level_down(ct_x[i], lvl),
                                ev.level_down(ct_w, lvl), self.keys)
                ct_z = self._allreduce(prod)  # z in every slot
                # sigma(z) = c0 + c1 z + c3 z^3.
                ct_z2 = ev.hmult(ct_z, ct_z, self.keys)
                ct_z3 = ev.hmult(ct_z2, ev.level_down(ct_z, ct_z2.level),
                                 self.keys)
                ct_sig = ev.add_scalar(
                    ev.rescale(ev.hadd_matched(
                        ev.rescale(ev.pmult_scalar(ct_z, c1)),
                        ev.pmult_scalar(ct_z3, c3),
                    )),
                    c0 - float(y[i]),  # fold the label subtraction in
                )
                # gradient contribution: (sigma - y) * x_i.
                pt_x = pt_sample(i, ct_sig.level)
                ct_g = ev.rescale(ev.pmult(ct_sig, pt_x))
                grad_acc = ct_g if grad_acc is None else ev.hadd_matched(
                    ev.level_down(grad_acc,
                                  min(grad_acc.level, ct_g.level)),
                    ev.level_down(ct_g, min(grad_acc.level, ct_g.level)),
                )
            ct_step = ev.rescale(
                ev.pmult_scalar(grad_acc, -self.lr / samples)
            )
            ct_w = ev.hadd_matched(
                ev.level_down(ct_w, min(ct_w.level, ct_step.level)),
                ev.level_down(ct_step, min(ct_w.level, ct_step.level)),
            )
        return self.ctx.decrypt_decode_real(ct_w, self.keys)[:features]

    def _allreduce(self, ct):
        """Rotation all-reduce: every slot becomes the sum of all slots."""
        ev = self.ctx.evaluator
        step = 1
        while step < self.ctx.slots:
            ct = ev.hadd(ct, ev.hrotate(ct, step, self.keys))
            step *= 2
        return ct

    @staticmethod
    def required_rotations(slots: int) -> List[int]:
        rots = []
        step = 1
        while step < slots:
            rots.append(step)
            step *= 2
        return rots


def plaintext_reference(x: np.ndarray, y: np.ndarray, *, iterations: int,
                        learning_rate: float = 1.0) -> np.ndarray:
    """The same training loop in the clear (degree-3 sigmoid)."""
    c0, c1, _, c3 = SIGMOID3_COEFFS
    samples, features = x.shape
    w = np.zeros(features)
    for _ in range(iterations):
        z = x @ w
        sig = c0 + c1 * z + c3 * z**3
        grad = (sig - y) @ x / samples
        w = w - learning_rate * grad
    return w
