"""Private MLP inference — dense layers + polynomial activations.

The composition pattern behind every CKKS inference workload (HELR's
single layer, ResNet's convolutions): a *linear transform* on slots
followed by a *polynomial activation*, repeated. This module provides an
:class:`EncryptedMlp` that runs a small multi-layer perceptron entirely
under encryption, using the library's BSGS linear transforms and
Chebyshev activation evaluation — and is validated against the identical
plaintext network in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..ckks import CkksContext
from ..ckks.keys import KeySet
from ..ckks.linear_transform import LinearTransform
from ..ckks.polyeval import PolynomialEvaluator

#: Chebyshev coefficients of a smooth squashing activation on [-1, 1]:
#: 0.5 + 0.625 T1 - 0.125 T3 equals the cubic 0.5 + 0.5x*(1.5 - 0.5x^2)
#: restricted to [-1, 1] — a classic smooth-sign/sigmoid-like polynomial.
SQUASH_CHEB = (0.5, 0.625, 0.0, -0.125)


@dataclass
class DenseLayer:
    """One dense layer: ``activation(W x + b)`` (activation optional)."""

    weights: np.ndarray  # (out, in)
    bias: np.ndarray     # (out,)
    activate: bool = True


class EncryptedMlp:
    """Runs an MLP on encrypted feature vectors.

    Weight matrices are embedded into ``slots x slots`` transforms
    (zero-padded), so hidden widths up to the slot count are supported.
    Each layer costs one BSGS linear transform, one plaintext bias
    addition, and (optionally) one Chebyshev activation.
    """

    def __init__(self, ctx: CkksContext, layers: Sequence[DenseLayer]):
        self.ctx = ctx
        self.layers = list(layers)
        s = ctx.slots
        self._transforms: List[LinearTransform] = []
        for layer in self.layers:
            out_dim, in_dim = layer.weights.shape
            if max(out_dim, in_dim) > s:
                raise ValueError(
                    f"layer {layer.weights.shape} exceeds {s} slots"
                )
            padded = np.zeros((s, s), dtype=np.complex128)
            padded[:out_dim, :in_dim] = layer.weights
            self._transforms.append(LinearTransform(ctx, padded))
        self._polyeval = PolynomialEvaluator(ctx.evaluator)

    def required_rotations(self) -> List[int]:
        steps = set()
        for lt in self._transforms:
            steps.update(lt.required_rotations())
        return sorted(steps)

    def precompile(self, input_level: int) -> None:
        """Compile every layer's diagonal stack for the levels a forward
        pass starting at ``input_level`` will visit, so the first
        :meth:`infer` pays no encode/NTT cost.  Walks the same level
        schedule as :meth:`infer` (one level per transform, three per
        activation)."""
        level = input_level
        for layer, lt in zip(self.layers, self._transforms):
            lt.compile(level)
            level -= 1  # the transform's rescale
            if layer.activate:
                level -= 3  # degree-3 Chebyshev depth
        if level < 0:
            raise ValueError(
                f"input level {input_level} below the "
                f"{self.levels_needed()} levels this network needs"
            )

    def levels_needed(self) -> int:
        """Multiplicative depth: 1 per transform; each degree-3 Chebyshev
        activation costs ceil(log2(3)) + 1 = 3 levels (T2, then T3 at the
        deeper level, then the coefficient-combination rescale)."""
        import math

        degree = len(SQUASH_CHEB) - 1
        act_depth = math.ceil(math.log2(degree)) + 1
        depth = 0
        for layer in self.layers:
            depth += 1
            if layer.activate:
                depth += act_depth
        return depth

    def infer(self, ct, keys: KeySet):
        """Forward pass on an encrypted (zero-padded) feature vector."""
        ev = self.ctx.evaluator
        for layer, lt in zip(self.layers, self._transforms):
            ct = lt.apply(ct, keys)
            bias = np.zeros(self.ctx.slots)
            bias[: len(layer.bias)] = layer.bias
            pt = self.ctx.encode(bias, level=ct.level, scale=ct.scale)
            ct = ev.add_plain(ct, pt)
            if layer.activate:
                ct = self._polyeval.eval_chebyshev(ct, SQUASH_CHEB, keys)
        return ct


def plaintext_mlp(layers: Sequence[DenseLayer],
                  x: np.ndarray) -> np.ndarray:
    """The identical network in the clear (test oracle)."""
    from numpy.polynomial import chebyshev as _cheb

    act = _cheb.Chebyshev(SQUASH_CHEB)
    v = np.asarray(x, dtype=float)
    for layer in layers:
        v = layer.weights @ v + layer.bias
        if layer.activate:
            v = act(v)
    return v


def random_mlp(rng: np.random.Generator, dims: Sequence[int],
               *, weight_scale: float = 0.4) -> List[DenseLayer]:
    """Random small MLP with bounded weights (keeps activations inside
    the Chebyshev domain)."""
    layers = []
    for i in range(len(dims) - 1):
        last = i == len(dims) - 2
        layers.append(DenseLayer(
            weights=rng.normal(size=(dims[i + 1], dims[i]))
            * weight_scale / np.sqrt(dims[i]),
            bias=rng.normal(size=dims[i + 1]) * 0.1,
            activate=not last,
        ))
    return layers
