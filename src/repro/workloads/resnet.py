"""ResNet-20 over CKKS (Table XIV "ResNet").

Schedule layer: the multiplexed-parallel-convolution pipeline of Lee et
al. [35] — per convolution, the 9 kernel-position rotations (hoisted after
the first), channel-packing PMULTs and additions; per activation, a
polynomial ReLU; bootstrapping inserted on a level budget. Priced at the
paper's ResNet parameter set (N=2^16, L=37, K=13).

Functional layer: :class:`EncryptedConv2d` — a real homomorphic 2-D
convolution plus polynomial activation on an encrypted image at toy ring
size, validated against a numpy reference in tests.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from ..ckks import CkksContext, ParameterSets
from ..ckks.ciphertext import Ciphertext, Plaintext
from ..ckks.hoisting import hoisted_rotations
from ..ckks.ks_common import wide_dot
from ..ckks.params import CkksParams
from ..ckks.poly import EVAL, RnsPoly
from ..ckks.rns_context import get_rns_context
from ..core.scheduler import OperationScheduler
from ..ntt.stacked import get_shoup_stack, stacked_negacyclic_ntt
from .bootstrap_workload import bootstrap_schedule
from .schedules import WorkloadSchedule, WorkloadTiming

#: ResNet-20 structure: (blocks, channels) per stage on 32x32 CIFAR.
RESNET20_STAGES: Tuple[Tuple[int, int], ...] = ((3, 16), (3, 32), (3, 64))

#: Degree of the polynomial ReLU approximation (composite minimax [35]).
RELU_POLY_DEGREE = 27

#: Ciphertext products per composite-minimax ReLU (three composed
#: polynomials of ~deg 7/15/27 evaluated BSGS-style).
_RELU_HMULTS = 14

#: Multiplexing factor of the packed convolution (kernel positions are
#: replicated across the multiplexed channel layout [35]).
_CONV_MULTIPLEX = 8

#: Levels consumed per residual block (two convs + two deep ReLUs).
_LEVELS_PER_BLOCK = 16


def resnet20_schedule(params: CkksParams = None, *,
                      fft_factored: bool = False,
                      fuse: int = 1) -> WorkloadSchedule:
    """The full ResNet-20 inference schedule.

    ``fft_factored``/``fuse`` select the sparse-factorized bootstrap
    schedule; the defaults keep the published pricing.
    """
    params = params or ParameterSets.resnet()
    top = params.max_level
    sched = WorkloadSchedule("ResNet-20")
    level = top
    relu_mults = _RELU_HMULTS

    def conv(name: str, channels: int, lvl: int) -> None:
        # 9 kernel positions replicated over the multiplexed channel
        # layout [35]: the first rotation pays the ModUp, the rest are
        # hoisted; channel mixing adds log2(channels) accumulations.
        positions = 9 * _CONV_MULTIPLEX
        ch_rot = int(math.log2(channels))
        sched.add("hrotate", lvl, 1, note=f"{name}.rot")
        sched.add("hrotate", lvl, positions - 1 + ch_rot, hoisted=True,
                  note=f"{name}.rot")
        sched.add("pmult", lvl, positions, note=f"{name}.pmult")
        sched.add("hadd", lvl, positions + ch_rot, note=f"{name}.add")
        sched.add("rescale", lvl, 1, note=f"{name}.rescale")

    # Stem convolution.
    conv("stem", 16, level)
    level -= 1

    boots = 0
    for stage_idx, (blocks, channels) in enumerate(RESNET20_STAGES):
        for block in range(blocks):
            name = f"s{stage_idx}b{block}"
            if level < _LEVELS_PER_BLOCK + 2:
                # Bootstrap both residual-path ciphertexts.
                boot = bootstrap_schedule(
                    params, fft_factored=fft_factored, fuse=fuse
                )
                for item in boot.items:
                    sched.add(item.op, item.level, item.count * 2,
                              hoisted=item.hoisted,
                              note=f"boot{boots}.{item.note or item.op}")
                boots += 1
                level = top - 4
            conv(f"{name}.conv1", channels, level)
            sched.add("hmult", level - 1, relu_mults,
                      note=f"{name}.relu1")
            conv(f"{name}.conv2", channels, level - 2)
            sched.add("hadd", level - 3, 1, note=f"{name}.residual")
            sched.add("hmult", level - 3, relu_mults,
                      note=f"{name}.relu2")
            level -= _LEVELS_PER_BLOCK
    # Global average pool + fully connected layer.
    sched.add("hrotate", max(1, level), 5, hoisted=True, note="pool.rot")
    sched.add("pmult", max(1, level), 2, note="fc.pmult")
    sched.add("hadd", max(1, level), 2, note="fc.add")
    return sched


def simulate_resnet20(params: CkksParams = None, *, batch: int = 1,
                      scheduler: OperationScheduler = None,
                      hoisting: str = "derived") -> WorkloadTiming:
    """Amortized seconds per image (the Table XIV ResNet metric)."""
    params = params or ParameterSets.resnet()
    scheduler = scheduler or OperationScheduler(params)
    return resnet20_schedule(params).price(
        scheduler, batch=batch, hoisting=hoisting
    )


class EncryptedConv2d:
    """Functional homomorphic 2-D convolution (toy scale).

    Packs a ``h x w`` single-channel image row-major into slots and
    evaluates a ``3x3`` convolution as 9 rotations + plaintext masks +
    additions — exactly the multiplexed-convolution dataflow, minus the
    channel multiplexing that needs big rings. Validated against numpy in
    tests; an optional square activation demonstrates conv + nonlinearity
    under encryption.

    :meth:`forward` is batched like the linear transforms: the weighted
    boundary masks are compiled once per (image shape, level) into a
    cached eval-form plaintext stack, the kernel-position rotations share
    one hoisted ModUp, and the mask multiplies + accumulation run as one
    wide-accumulator pass. :meth:`forward_looped` keeps the per-position
    rotate/PMULT pipeline (reading the same compiled stack, so repeated
    calls never re-encode) as the reference; the two decrypt identically
    but are not bit-equal, since hoisted rotations and plain HROTATEs
    take different reduction paths.
    """

    def __init__(self, ctx: CkksContext, keys, kernel: np.ndarray):
        if kernel.shape != (3, 3):
            raise ValueError("toy conv supports 3x3 kernels")
        self.ctx = ctx
        self.keys = keys
        self.kernel = kernel
        self._mask_plans = {}

    @staticmethod
    def required_rotations(width: int, slots: int) -> List[int]:
        """Rotation steps for a row-major packed image of this width
        (negative shifts become complementary positive rotations)."""
        steps = set()
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                step = dy * width + dx
                if step == 0:
                    continue
                steps.add(step if step > 0 else slots + step)
        return sorted(steps)

    def _compile_masks(self, height: int, width: int, level: int):
        """The (rotation steps, eval-form mask stack) plan of one image
        shape at one level; memoized.  Masks of kernel positions landing
        on the same rotation step (degenerate widths) are summed — same
        algebra, one stack lane."""
        key = (height, width, level)
        plan = self._mask_plans.get(key)
        if plan is not None:
            return plan
        slots = self.ctx.slots
        by_step = {}
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                weight = float(self.kernel[dy + 1, dx + 1])
                if weight == 0.0:
                    continue
                step = (dy * width + dx) % slots
                mask = self._valid_mask(height, width, dy, dx) * weight
                if step in by_step:
                    by_step[step] = by_step[step] + mask
                else:
                    by_step[step] = mask
        steps = sorted(by_step)
        ev = self.ctx.evaluator
        moduli = tuple(ev.moduli_at(level))
        scale = self.ctx.params.scale
        n = self.ctx.params.n
        coeffs = self.ctx.encoder.encode_many(
            np.stack([by_step[s] for s in steps]), scale
        )
        q_col = np.array(moduli, dtype=np.int64)[:, None, None]
        residues = np.mod(coeffs[None, :, :], q_col).astype(np.uint64)
        stack = stacked_negacyclic_ntt(
            residues, get_shoup_stack(moduli, n)
        )
        stack.setflags(write=False)
        plan = (steps, moduli, scale, stack)
        self._mask_plans[key] = plan
        return plan

    def forward(self, ct, height: int, width: int, *,
                square_activation: bool = False):
        """Convolve the encrypted image (zero boundary conditions).

        Batched: one hoisted-rotation pass over the kernel positions, one
        wide-accumulator reduction against the cached mask stack.
        """
        steps, moduli, pt_scale, stack = self._compile_masks(
            height, width, ct.level
        )
        ev = self.ctx.evaluator
        rotated = hoisted_rotations(ev, ct, steps, self.keys)
        rot0 = np.stack([rotated[s].c0.data for s in steps], axis=1)
        rot1 = np.stack([rotated[s].c1.data for s in steps], axis=1)
        reducer = get_rns_context(moduli, ct.n).barrett
        acc = Ciphertext(
            RnsPoly(wide_dot(rot0, stack, reducer), moduli, EVAL),
            RnsPoly(wide_dot(rot1, stack, reducer), moduli, EVAL),
            ct.level, ct.scale * pt_scale,
        )
        out = ev.rescale(acc)
        if square_activation:
            out = ev.hmult(out, out, self.keys)
        return out

    def forward_looped(self, ct, height: int, width: int, *,
                       square_activation: bool = False):
        """The per-position reference pipeline (plain rotations, one
        PMULT per kernel position, memoized mask plaintexts)."""
        steps, moduli, pt_scale, stack = self._compile_masks(
            height, width, ct.level
        )
        ev = self.ctx.evaluator
        acc = None
        for i, step in enumerate(steps):
            shifted = ct if step == 0 else ev.hrotate(ct, step, self.keys)
            pt = Plaintext(
                poly=RnsPoly(stack[:, i, :], moduli, EVAL),
                scale=pt_scale, level=ct.level,
            )
            term = ev.pmult(shifted, pt)
            acc = term if acc is None else ev.hadd_matched(acc, term)
        out = ev.rescale(acc)
        if square_activation:
            out = ev.hmult(out, out, self.keys)
        return out

    def _valid_mask(self, height: int, width: int, dy: int,
                    dx: int) -> np.ndarray:
        """1.0 where the shifted pixel is inside the image, else 0."""
        mask = np.zeros(self.ctx.slots)
        for y in range(height):
            for x in range(width):
                sy, sx = y + dy, x + dx
                if 0 <= sy < height and 0 <= sx < width:
                    mask[y * width + x] = 1.0
        return mask


def conv2d_reference(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Plain 3x3 convolution with zero padding (the test oracle)."""
    height, width = image.shape
    out = np.zeros_like(image, dtype=float)
    for y in range(height):
        for x in range(width):
            acc = 0.0
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    sy, sx = y + dy, x + dx
                    if 0 <= sy < height and 0 <= sx < width:
                        acc += image[sy, sx] * kernel[dy + 1, dx + 1]
            out[y, x] = acc
    return out
