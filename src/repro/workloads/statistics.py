"""Private statistics: mean, variance, covariance, standardization.

The "secure data analysis" use case from the paper's introduction,
implemented with the slot utilities: aggregate statistics computed over
encrypted data vectors without decrypting individual records.
"""

from __future__ import annotations

from ..ckks import CkksContext
from ..ckks.ciphertext import Ciphertext
from ..ckks.keys import KeySet
from ..ckks.slots import SlotOps


class EncryptedStatistics:
    """Aggregate statistics on slot-packed encrypted samples."""

    def __init__(self, ctx: CkksContext):
        self.ctx = ctx
        self.ev = ctx.evaluator
        self.slots = SlotOps(ctx)

    def mean(self, ct: Ciphertext, keys: KeySet, *,
             count: int = None) -> Ciphertext:
        """Every slot holds the mean of the (first ``count``) samples.

        With ``count`` set, unused slots are masked out first."""
        n = count if count is not None else self.ctx.slots
        if count is not None and count < self.ctx.slots:
            ct = self.slots.mask(ct, list(range(count)))
        total = self.slots.sum_all(ct, keys)
        return self.ev.rescale(self.ev.pmult_scalar(total, 1.0 / n))

    def variance(self, ct: Ciphertext, keys: KeySet, *,
                 count: int = None) -> Ciphertext:
        """Population variance: ``E[x^2] - E[x]^2``."""
        n = count if count is not None else self.ctx.slots
        if count is not None and count < self.ctx.slots:
            ct = self.slots.mask(ct, list(range(count)))
        sq = self.ev.hmult(ct, ct, keys)
        mean_sq = self.ev.rescale(self.ev.pmult_scalar(
            self.slots.sum_all(sq, keys), 1.0 / n
        ))
        mean = self.mean(ct, keys, count=None if count is None else count)
        mean2 = self.ev.hmult(
            mean, self.ev.level_down(mean, mean.level), keys
        )
        lvl = min(mean_sq.level, mean2.level)
        return self.ev.hsub_matched(
            self.ev.level_down(mean_sq, lvl),
            self.ev.level_down(mean2, lvl),
        )

    def covariance(self, ct_x: Ciphertext, ct_y: Ciphertext,
                   keys: KeySet, *, count: int = None) -> Ciphertext:
        """Population covariance: ``E[xy] - E[x]E[y]``."""
        n = count if count is not None else self.ctx.slots
        if count is not None and count < self.ctx.slots:
            positions = list(range(count))
            ct_x = self.slots.mask(ct_x, positions)
            ct_y = self.slots.mask(ct_y, positions)
        prod = self.ev.hmult(ct_x, ct_y, keys)
        mean_xy = self.ev.rescale(self.ev.pmult_scalar(
            self.slots.sum_all(prod, keys), 1.0 / n
        ))
        mx = self.mean(ct_x, keys)
        my = self.mean(ct_y, keys)
        lvl = min(mx.level, my.level)
        mxy = self.ev.hmult(
            self.ev.level_down(mx, lvl), self.ev.level_down(my, lvl), keys
        )
        lvl = min(mean_xy.level, mxy.level)
        return self.ev.hsub_matched(
            self.ev.level_down(mean_xy, lvl),
            self.ev.level_down(mxy, lvl),
        )

    def center(self, ct: Ciphertext, keys: KeySet) -> Ciphertext:
        """Subtract the (encrypted) mean from every sample."""
        mean = self.mean(ct, keys)
        lvl = min(ct.level, mean.level)
        return self.ev.hsub_matched(
            self.ev.level_down(ct, lvl), self.ev.level_down(mean, lvl)
        )
