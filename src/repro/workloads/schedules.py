"""Workload operation schedules and their pricing.

A workload (bootstrapping, HELR, ResNet-20, AES transciphering) is a
counted sequence of homomorphic operations at known levels. The schedule
is priced with the same per-operation simulator used everywhere else,
with one workload-specific mechanism: *hoisting* — consecutive rotations
of the same input share their ModUp, so each additional hoisted rotation
costs a fraction of a full HROTATE (the standard BSGS linear-transform
optimization every system in Table XIV uses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.scheduler import OperationScheduler
from ..tuning.knobs import Choice, KnobSpec, knob_default, register_knob

#: Cost of each additional rotation in a hoisted group, as a fraction of a
#: full HROTATE (the shared ModUp dominates; only the inner product and
#: automorphism remain per rotation). Hand-tuned; the documented fallback
#: for :func:`hoisted_rotation_factor`, which derives the same quantity
#: from a traced hoisted-keyswitch plan.
HOISTED_ROTATION_FACTOR = 0.35

# -- declared tuning knobs (DESIGN.md §14) ----------------------------------

register_knob(KnobSpec(
    name="schedule.hoisting", layer="workloads",
    domain=Choice(("derived", "static")), default="derived",
    doc="Hoisted-rotation discount source: derived from a traced "
        "hoisted-keyswitch plan, or the hand-tuned constant.",
    observe=lambda pipe: pipe.hoisting,
))


def hoisted_rotation_factor(scheduler: OperationScheduler = None) -> float:
    """Per-extra-rotation cost fraction of a hoisted BSGS group.

    Derived from a recorded functional ``hoisted_rotations`` plan
    (:func:`repro.workloads.recorded.derived_hoisted_rotation_factor`)
    when a scheduler is given; falls back to the hand-tuned
    :data:`HOISTED_ROTATION_FACTOR` without one or when the derivation
    cannot run (e.g. a parameter set the functional layer rejects).
    """
    if scheduler is None:
        return HOISTED_ROTATION_FACTOR
    try:
        from .recorded import derived_hoisted_rotation_factor

        return derived_hoisted_rotation_factor(scheduler)
    except Exception:
        return HOISTED_ROTATION_FACTOR


@dataclass
class ScheduleItem:
    """``count`` executions of ``op`` at ``level``."""

    op: str
    level: int
    count: float = 1.0
    #: Rotations inside a hoisted BSGS group (cheaper per §workloads).
    hoisted: bool = False
    note: str = ""


@dataclass
class WorkloadTiming:
    """Priced workload: total and per-item breakdown."""

    name: str
    total_us: float
    batch: int
    breakdown: Dict[str, float] = field(default_factory=dict)

    @property
    def total_ms(self) -> float:
        return self.total_us / 1e3

    @property
    def amortized_ms(self) -> float:
        """Per-ciphertext time when ``batch`` inputs share the run."""
        return self.total_ms / self.batch

    @property
    def total_s(self) -> float:
        return self.total_us / 1e6


@dataclass
class WorkloadSchedule:
    """A named list of schedule items."""

    name: str
    items: List[ScheduleItem] = field(default_factory=list)

    def add(self, op: str, level: int, count: float = 1.0, *,
            hoisted: bool = False, note: str = "") -> "WorkloadSchedule":
        self.items.append(
            ScheduleItem(op=op, level=level, count=count, hoisted=hoisted,
                         note=note)
        )
        return self

    def extend(self, other: "WorkloadSchedule") -> "WorkloadSchedule":
        self.items.extend(other.items)
        return self

    def op_counts(self) -> Dict[str, float]:
        counts: Dict[str, float] = {}
        for item in self.items:
            counts[item.op] = counts.get(item.op, 0.0) + item.count
        return counts

    def price(self, scheduler: OperationScheduler, *, batch: int = 1,
              hoisting: Optional[str] = None) -> WorkloadTiming:
        """Total simulated time of the schedule on one device.

        ``batch`` ciphertexts ride through every kernel together (the
        amortization mechanism of Table XIV's BS column). ``hoisting``
        selects the hoisted-rotation discount: ``"derived"`` solves it
        from a traced hoisted-keyswitch plan via
        :func:`hoisted_rotation_factor`; ``"static"`` keeps the
        hand-tuned :data:`HOISTED_ROTATION_FACTOR`. The default comes
        from the ``schedule.hoisting`` knob, never a local literal.
        """
        if hoisting is None:
            hoisting = knob_default("schedule.hoisting")
        if hoisting not in ("derived", "static"):
            raise ValueError(
                f"hoisting must be 'derived' or 'static', got {hoisting!r}"
            )
        factor = (
            hoisted_rotation_factor(scheduler) if hoisting == "derived"
            else HOISTED_ROTATION_FACTOR
        )
        total = 0.0
        breakdown: Dict[str, float] = {}
        cache: Dict[tuple, float] = {}
        for item in self.items:
            key = (item.op, item.level)
            if key not in cache:
                cache[key] = scheduler.simulate(
                    item.op, level=item.level, batch=batch
                ).elapsed_us
            cost = cache[key] * item.count
            if item.hoisted:
                cost *= factor
            total += cost
            label = item.note or item.op
            breakdown[label] = breakdown.get(label, 0.0) + cost
        return WorkloadTiming(
            name=self.name, total_us=total, batch=batch,
            breakdown=breakdown,
        )
