"""FHE workloads: packed bootstrapping, HELR, ResNet-20, transciphering.

Each workload has a full-scale *operation schedule* priced by the GPU
simulator (for the Table XIV/XV reproductions) and, where feasible, a
*functional mini* that really runs under encryption at toy ring sizes.
"""

from .aes import ctr_encrypt, ctr_keystream, encrypt_block, expand_key
from .aes_transcipher import (
    TranscipherResult,
    cpu_transcipher_minutes,
    simulate_transcipher,
    transcipher_schedule,
)
from .bootstrap_workload import (
    bootstrap_schedule,
    eval_mod_schedule,
    linear_transform_schedule,
    simulate_bootstrap,
)
from .mlp import (
    DenseLayer,
    EncryptedMlp,
    plaintext_mlp,
    random_mlp,
)
from .helr import (
    EncryptedLogisticRegression,
    helr_iteration_schedule,
    plaintext_reference,
    simulate_helr_iteration,
)
from .resnet import (
    EncryptedConv2d,
    conv2d_reference,
    resnet20_schedule,
    simulate_resnet20,
)
from .statistics import EncryptedStatistics
from .schedules import (
    HOISTED_ROTATION_FACTOR,
    ScheduleItem,
    WorkloadSchedule,
    WorkloadTiming,
    hoisted_rotation_factor,
)
from .recorded import (
    RECORDED_BOOT_CONFIG,
    derived_hoisted_rotation_factor,
    proxy_params_for,
    record_bootstrap_trace,
    record_helr_iteration_trace,
    record_resnet_block_trace,
    record_transcipher_block_trace,
    recorded_workload_timing,
    simulate_recorded_bootstrap,
    simulate_recorded_helr_iteration,
    simulate_recorded_resnet20,
)

__all__ = [
    "EncryptedConv2d",
    "EncryptedLogisticRegression",
    "HOISTED_ROTATION_FACTOR",
    "ScheduleItem",
    "TranscipherResult",
    "WorkloadSchedule",
    "WorkloadTiming",
    "bootstrap_schedule",
    "conv2d_reference",
    "cpu_transcipher_minutes",
    "ctr_encrypt",
    "DenseLayer",
    "EncryptedMlp",
    "plaintext_mlp",
    "random_mlp",
    "ctr_keystream",
    "encrypt_block",
    "eval_mod_schedule",
    "expand_key",
    "helr_iteration_schedule",
    "linear_transform_schedule",
    "plaintext_reference",
    "resnet20_schedule",
    "simulate_bootstrap",
    "simulate_helr_iteration",
    "simulate_resnet20",
    "EncryptedStatistics",
    "simulate_transcipher",
    "transcipher_schedule",
    "RECORDED_BOOT_CONFIG",
    "derived_hoisted_rotation_factor",
    "hoisted_rotation_factor",
    "proxy_params_for",
    "record_bootstrap_trace",
    "record_helr_iteration_trace",
    "record_resnet_block_trace",
    "record_transcipher_block_trace",
    "recorded_workload_timing",
    "simulate_recorded_bootstrap",
    "simulate_recorded_helr_iteration",
    "simulate_recorded_resnet20",
]
