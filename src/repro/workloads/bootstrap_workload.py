"""Packed bootstrapping workload (Table XIV "Boot").

Builds the slim-bootstrapping operation schedule of [14], [26] at the
Boot parameter set (N=2^16, L=34, K=12): SlotToCoeff and CoeffToSlot as
radix-decomposed BSGS linear transforms with hoisted rotations, ModRaise
as element-wise work, and EvalMod as a BSGS Chebyshev sine evaluation.
The same pipeline runs *functionally* at toy scale in
:mod:`repro.ckks.bootstrap`; here it is priced at full scale.
"""

from __future__ import annotations

import math
from typing import Optional

from ..ckks.params import CkksParams, ParameterSets
from ..core.scheduler import OperationScheduler
from ..tuning.knobs import knob_default
from .schedules import WorkloadSchedule, WorkloadTiming


def linear_transform_schedule(name: str, slots: int, level: int, *,
                              stages: int = 3,
                              fft_factored: Optional[bool] = None,
                              fuse: Optional[int] = None
                              ) -> WorkloadSchedule:
    """BSGS radix-decomposed homomorphic DFT (CoeffToSlot / SlotToCoeff).

    The s-point transform splits into ``stages`` radix-``s^(1/stages)``
    stages; each stage is a BSGS matrix-vector product with
    ``2*sqrt(radix)`` rotation groups (baby steps hoisted) and ``radix``
    plaintext multiplications, consuming one level.

    ``fft_factored`` prices the sparse radix-2 factorization instead
    (:func:`repro.ckks.bootstrap.special_fft_factors`): ``log2(s)/fuse``
    stages of at most ``3**fuse`` diagonals each — the functional path's
    cost model.  ``None`` defaults resolve from the ``boot.*`` knob
    registry — the *same* source ``BootstrapConfig`` reads, so this
    schedule and the functional bootstrap cannot disagree about what the
    default pipeline looks like.
    """
    if fft_factored is None:
        fft_factored = knob_default("boot.fft_factored")
    if fuse is None:
        fuse = knob_default("boot.fuse")
    sched = WorkloadSchedule(name)
    if fft_factored:
        if fuse < 1:
            raise ValueError(f"fuse must be >= 1, got {fuse}")
        m = max(1, slots.bit_length() - 1)
        num_stages = -(-m // fuse)
        for stage in range(num_stages):
            lvl = max(1, level - stage)
            k = min(fuse, m - stage * fuse)
            diags = min(3 ** k, slots)
            # One full rotation pays the ModUp; the remaining diagonal
            # rotations share it.
            sched.add("hrotate", lvl, 1, note=f"{name}.stage{stage}.rot")
            sched.add("hrotate", lvl, diags - 1, hoisted=True,
                      note=f"{name}.stage{stage}.rot")
            sched.add("pmult", lvl, diags,
                      note=f"{name}.stage{stage}.pmult")
            sched.add("hadd", lvl, diags, note=f"{name}.stage{stage}.add")
            sched.add("rescale", lvl, 1,
                      note=f"{name}.stage{stage}.rescale")
        return sched
    radix = max(2, round(slots ** (1.0 / stages)))
    baby = max(1, int(math.isqrt(radix)))
    giant = max(1, radix // baby)
    for stage in range(stages):
        lvl = max(1, level - stage)
        # Baby-step rotations: one full, the rest hoisted on the shared
        # ModUp; giant-step rotations likewise.
        sched.add("hrotate", lvl, 1, note=f"{name}.stage{stage}.rot")
        sched.add("hrotate", lvl, baby - 1, hoisted=True,
                  note=f"{name}.stage{stage}.rot")
        sched.add("hrotate", lvl, giant - 1, hoisted=True,
                  note=f"{name}.stage{stage}.rot")
        sched.add("pmult", lvl, radix, note=f"{name}.stage{stage}.pmult")
        sched.add("hadd", lvl, radix, note=f"{name}.stage{stage}.add")
        sched.add("rescale", lvl, 1, note=f"{name}.stage{stage}.rescale")
    return sched


def eval_mod_schedule(level: int, *,
                      degree: Optional[int] = None) -> WorkloadSchedule:
    """BSGS Chebyshev sine evaluation: ~sqrt-degree ciphertext products.

    Baby set T_1..T_k and giant squarings cost one HMULT each
    (k + log2(degree/k) multiplications at descending levels), plus the
    coefficient PMULTs and additions of the reconstruction.  ``degree``
    defaults from the ``boot.sine_degree`` knob (the value
    ``BootstrapConfig`` uses), never a local literal.
    """
    if degree is None:
        degree = knob_default("boot.sine_degree")
    sched = WorkloadSchedule("EvalMod")
    k = max(2, int(math.isqrt(degree + 1)))
    giants = max(1, int(math.log2(max(2, (degree + 1) // k))))
    lvl = level
    for i in range(k - 1):
        sched.add("hmult", max(1, lvl), 1, note="EvalMod.baby")
        if i % 2 == 1:
            lvl -= 1
    for g in range(giants):
        lvl = max(1, lvl - 1)
        sched.add("hmult", lvl, 1, note="EvalMod.giant")
        sched.add("hmult", lvl, k // 2, note="EvalMod.combine")
    sched.add("pmult", max(1, lvl), k + giants, note="EvalMod.coeff")
    sched.add("hadd", max(1, lvl), k + giants, note="EvalMod.add")
    sched.add("rescale", max(1, lvl), 2, note="EvalMod.rescale")
    return sched


def bootstrap_schedule(params: CkksParams = None, *,
                       fft_factored: Optional[bool] = None,
                       fuse: Optional[int] = None) -> WorkloadSchedule:
    """The full slim bootstrap at the Boot parameter set.

    ``fft_factored``/``fuse`` price the sparse-factorized StC/CtS
    variant; ``None`` resolves both from the ``boot.*`` knob registry
    (whose shipped defaults keep the published dense-radix schedule).
    """
    if fft_factored is None:
        fft_factored = knob_default("boot.fft_factored")
    if fuse is None:
        fuse = knob_default("boot.fuse")
    params = params or ParameterSets.boot()
    slots = params.slots
    top = params.max_level
    sched = WorkloadSchedule("Boot")
    # SlotToCoeff runs on the nearly-exhausted ciphertext (low levels).
    stc_level = (
        max(3, -(-max(1, slots.bit_length() - 1) // fuse))
        if fft_factored else 3
    )
    sched.extend(linear_transform_schedule(
        "StC", slots, stc_level, stages=3,
        fft_factored=fft_factored, fuse=fuse,
    ))
    # ModRaise: element-wise lift onto the full chain.
    sched.add("hadd", top, 1, note="ModRaise")
    # CoeffToSlot at the top of the chain.
    sched.extend(linear_transform_schedule(
        "CtS", slots, top, stages=3,
        fft_factored=fft_factored, fuse=fuse,
    ))
    # EvalMod below CtS.
    sched.extend(eval_mod_schedule(top - 3))
    return sched


def simulate_bootstrap(params: CkksParams = None, *, batch: int = 1,
                       scheduler: OperationScheduler = None,
                       hoisting: Optional[str] = None) -> WorkloadTiming:
    """Price one packed bootstrap; Table XIV reports amortized ms."""
    params = params or ParameterSets.boot()
    scheduler = scheduler or OperationScheduler(params)
    return bootstrap_schedule(params).price(
        scheduler, batch=batch, hoisting=hoisting
    )
