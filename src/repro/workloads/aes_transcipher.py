"""AES-CTR transciphering over CKKS (Table XV).

Transciphering lets a client send AES ciphertexts instead of bulky FHE
ciphertexts: the server evaluates the AES keystream *homomorphically*
(under an encrypted AES key) and subtracts it, converting symmetric
ciphertexts into CKKS ciphertexts.

What the paper ran is an AES-CTR-128 evaluation over CKKS at N=2^16,
L=46 for 2^15 blocks (512 KB) — 3.5 minutes on the A100. We model the
homomorphic evaluation as the byte-sliced AES circuit of the E2E
transciphering line of work [7]: 16 byte-slices of the state, each
SubBytes a low-degree polynomial interpolation over the packed byte
values, ShiftRows free (a slot permutation folded into masks), MixColumns
a handful of slot-wise linear ops, with bootstraps on a level budget.
The client-side AES itself is the real implementation in
:mod:`repro.workloads.aes`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ckks.params import CkksParams, ParameterSets
from ..core.scheduler import OperationScheduler
from .bootstrap_workload import bootstrap_schedule
from .schedules import WorkloadSchedule, WorkloadTiming

#: Table XV workload: 2^15 blocks of 128 bits = 512 KB.
BLOCKS = 2**15
DATA_BYTES = BLOCKS * 16

#: Ciphertext products per byte-slice SubBytes evaluation (the GF(2^8)
#: S-box as a packed degree-254 interpolation, BSGS: ~2*sqrt(255)
#: baby/giant products).
_SUBBYTES_HMULTS = 64

#: Byte slices of the AES state.
_STATE_SLICES = 16

#: Bootstrap passes per round: each byte-slice pipeline burns its level
#: budget in the deep SubBytes polynomial and must refresh.
_BOOTS_PER_ROUND = 5.0 * _STATE_SLICES


def transcipher_schedule(params: CkksParams = None) -> WorkloadSchedule:
    """Homomorphic AES-CTR keystream evaluation for 2^15 blocks.

    With N=2^16 (32768 complex slots packing 2^15 block-bytes per slice),
    one slice-ciphertext covers all blocks at once, so the schedule is 10
    rounds over 16 byte-slices.
    """
    params = params or ParameterSets.aes()
    top = params.max_level
    sched = WorkloadSchedule("AES-CTR transcipher")
    rounds = 10
    for rnd in range(rounds):
        lvl = max(6, top - 4 * (rnd % 3))
        # SubBytes on every byte slice.
        sched.add("hmult", lvl, _STATE_SLICES * _SUBBYTES_HMULTS,
                  note=f"round{rnd}.subbytes")
        sched.add("pmult", lvl, _STATE_SLICES * 8,
                  note=f"round{rnd}.subbytes.coeff")
        # ShiftRows+MixColumns: slot permutations and linear combinations.
        sched.add("hrotate", lvl - 2, 4, note=f"round{rnd}.mix")
        sched.add("hrotate", lvl - 2, 12, hoisted=True,
                  note=f"round{rnd}.mix")
        sched.add("pmult", lvl - 2, _STATE_SLICES,
                  note=f"round{rnd}.mix.masks")
        sched.add("hadd", lvl - 2, _STATE_SLICES * 3,
                  note=f"round{rnd}.addroundkey")
        # Bootstraps to refresh the slice pipelines.
        boot = bootstrap_schedule(params)
        for item in boot.items:
            sched.add(item.op, item.level, item.count * _BOOTS_PER_ROUND,
                      hoisted=item.hoisted,
                      note=f"round{rnd}.boot.{item.note or item.op}")
    # Final keystream subtraction from the encoded symmetric ciphertexts.
    sched.add("hadd", 4, _STATE_SLICES, note="keystream.subtract")
    return sched


@dataclass
class TranscipherResult:
    timing: WorkloadTiming
    data_bytes: int

    @property
    def latency_min(self) -> float:
        return self.timing.total_us / 60e6

    @property
    def throughput_kb_per_s(self) -> float:
        return (self.data_bytes / 1024) / (self.timing.total_us / 1e6)


def simulate_transcipher(params: CkksParams = None, *,
                         scheduler: OperationScheduler = None,
                         ) -> TranscipherResult:
    """Price the 512 KB AES-CTR transciphering run (Table XV)."""
    params = params or ParameterSets.aes()
    scheduler = scheduler or OperationScheduler(params)
    timing = transcipher_schedule(params).price(scheduler)
    return TranscipherResult(timing=timing, data_bytes=DATA_BYTES)


def cpu_transcipher_minutes() -> float:
    """The paper's multi-threaded CPU baseline (Hygon C86, Table XV)."""
    from ..baselines.published import TABLE_XV_TRANSCIPHER

    return TABLE_XV_TRANSCIPHER[
        "CPU Baseline (Hygon C86 7265)"
    ]["latency_min"]
