"""Reference O(N^2) transforms — the ground truth for every fast engine.

Slow but unmistakably correct: direct evaluation of the defining sums
(Eq. 1 of the paper) with Python big-int arithmetic. All fast NTT variants
in this package are tested for bit-exact agreement against these.
"""

from __future__ import annotations

import numpy as np

from ..analysis.annotations import exact_oracle
from ..numtheory import modinv
from .tables import NttTables


def reference_cyclic_ntt(x: np.ndarray, omega: int, modulus: int) -> np.ndarray:
    """``X[k] = sum_j x[j] * omega^(jk) mod q`` by direct evaluation."""
    n = len(x)
    out = np.empty(n, dtype=np.uint64)
    xs = [int(v) for v in x]
    for k in range(n):
        acc = 0
        wk = pow(omega, k, modulus)
        w = 1
        for j in range(n):
            acc += xs[j] * w
            w = (w * wk) % modulus
        out[k] = acc % modulus
    return out


@exact_oracle
def reference_cyclic_intt(x: np.ndarray, omega: int, modulus: int) -> np.ndarray:
    """Inverse of :func:`reference_cyclic_ntt` (includes the 1/N factor)."""
    n = len(x)
    raw = reference_cyclic_ntt(x, modinv(omega, modulus), modulus)
    n_inv = modinv(n, modulus)
    return ((raw.astype(object) * n_inv) % modulus).astype(np.uint64)


@exact_oracle
def reference_negacyclic_ntt(x: np.ndarray, tables: NttTables) -> np.ndarray:
    """Negacyclic forward NTT: evaluate at the odd powers of ``psi``.

    ``X[k] = sum_j x[j] * psi^(j(2k+1)) mod q`` — the transform under which
    negacyclic (mod ``X^N + 1``) convolution becomes pointwise product.
    """
    q = tables.modulus
    scaled = (x.astype(object) * tables.psi_pows.astype(object)) % q
    return reference_cyclic_ntt(
        np.array(scaled, dtype=np.uint64), tables.omega, q
    )


@exact_oracle
def reference_negacyclic_intt(x: np.ndarray, tables: NttTables) -> np.ndarray:
    """Inverse of :func:`reference_negacyclic_ntt`."""
    q = tables.modulus
    raw = reference_cyclic_intt(x, tables.omega, q)
    out = (raw.astype(object) * tables.psi_inv_pows.astype(object)) % q
    return np.array(out, dtype=np.uint64)


@exact_oracle
def negacyclic_convolution(a: np.ndarray, b: np.ndarray, modulus: int,
                           ) -> np.ndarray:
    """Schoolbook product in ``Z_q[X] / (X^N + 1)`` — O(N^2), exact."""
    n = len(a)
    if len(b) != n:
        raise ValueError("operand lengths differ")
    out = [0] * n
    av = [int(v) for v in a]
    bv = [int(v) for v in b]
    for i in range(n):
        if av[i] == 0:
            continue
        for j in range(n):
            k = i + j
            term = av[i] * bv[j]
            if k < n:
                out[k] = (out[k] + term) % modulus
            else:
                out[k - n] = (out[k - n] - term) % modulus
    if modulus < 1 << 64:
        return np.array(out, dtype=np.uint64)
    return np.array(out, dtype=object)


def cyclic_convolution(a: np.ndarray, b: np.ndarray, modulus: int) -> np.ndarray:
    """Schoolbook product in ``Z_q[X] / (X^N - 1)``."""
    n = len(a)
    if len(b) != n:
        raise ValueError("operand lengths differ")
    out = [0] * n
    av = [int(v) for v in a]
    bv = [int(v) for v in b]
    for i in range(n):
        if av[i] == 0:
            continue
        for j in range(n):
            out[(i + j) % n] = (out[(i + j) % n] + av[i] * bv[j]) % modulus
    return np.array(out, dtype=np.uint64)
