"""Single-level 4-step NTT (Eq. 2 of the paper).

Decomposes an ``n = n1*n2`` cyclic NTT into: (a) ``n1`` rows of
``n2``-point inner NTTs, (b) transpose, (c) twiddle Hadamard product,
(d) ``n2`` columns of ``n1``-point inner NTTs. TensorFHE's kernel-level
method is exactly this with GEMM inner NTTs; WarpDrive recurses it
(:mod:`.hierarchical`).

Index convention (matching the derivation in the paper):
``x[j1 + n1*j2]`` in, ``X[k2 + n2*k1]`` out.
"""

from __future__ import annotations

import numpy as np

from ..numtheory import BarrettReducer
from .tables import NttTables, _power_table


def fourstep_cyclic_ntt(x: np.ndarray, n1: int, n2: int, omega: int,
                        modulus: int, *, inner=None) -> np.ndarray:
    """4-step cyclic NTT over the last axis.

    Parameters
    ----------
    x:
        ``(..., n1*n2)`` input in natural order.
    omega:
        Primitive ``n1*n2``-th root of unity mod ``modulus``.
    inner:
        Callable ``inner(matrix, size, omega_size) -> matrix`` running the
        inner transforms over the last axis; defaults to a direct DFT
        matrix product. Injecting this is how the engine variants choose
        tensor GEMM / CUDA GEMM / butterfly execution.
    """
    n = n1 * n2
    if x.shape[-1] != n:
        raise ValueError(f"last axis must be {n}, got {x.shape[-1]}")
    reducer = BarrettReducer(modulus)
    if inner is None:
        def inner(mat, size, w):
            pow_table = _power_table(w, size, modulus)
            idx = np.arange(size, dtype=np.uint64)
            dft = pow_table[(np.outer(idx, idx) % size).astype(np.intp)]
            prods = reducer.mul_vec(
                mat[..., None, :], dft[tuple([None] * (mat.ndim - 1))]
            )
            return reducer.reduce_vec(prods.sum(axis=-1, dtype=np.uint64))

    batch = x.shape[:-1]
    # Step (a): rows j1 hold x[j1 + n1*j2]; inner NTTs of size n2.
    a = np.swapaxes(
        x.astype(np.uint64, copy=False).reshape(*batch, n2, n1), -1, -2
    )
    b = inner(a, n2, pow(omega, n1, modulus))
    # Steps (b)+(c): transpose folded into indexing; twiddle Hadamard.
    omega_pows = _power_table(omega, n, modulus)
    j1 = np.arange(n1, dtype=np.uint64)[:, None]
    k2 = np.arange(n2, dtype=np.uint64)[None, :]
    b = reducer.mul_vec(b, omega_pows[(j1 * k2) % np.uint64(n)])
    # Step (d): inner NTTs of size n1 over columns.
    c = inner(np.swapaxes(b, -1, -2), n1, pow(omega, n2, modulus))
    return np.swapaxes(c, -1, -2).reshape(*batch, n)


def fourstep_negacyclic_ntt(x: np.ndarray, n1: int, n2: int,
                            tables: NttTables) -> np.ndarray:
    """Negacyclic forward NTT via psi pre-scale + 4-step cyclic core."""
    scaled = tables.mont.mul_vec(
        x.astype(np.uint64, copy=False), tables.psi_pows_mont
    )
    return fourstep_cyclic_ntt(scaled, n1, n2, tables.omega, tables.modulus)
