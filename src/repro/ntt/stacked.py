"""Stacked NTT kernel: one transform over a whole digit batch.

The batched key-switch pipeline materializes every decomposition digit of
a ciphertext at once — a ``(num_primes, dnum, N)`` residue tensor — and
needs all ``dnum * num_primes`` rows transformed in one pass, the way
WarpDrive's PE kernels consume the digit dimension as ciphertext-level
parallelism (§IV-C) rather than launching per-digit transforms serially.

Two things distinguish this kernel from the per-polynomial
:func:`~repro.ntt.twiddles.batched_negacyclic_ntt`:

* **Shoup multiplication with lazy (Harvey-style) reduction.** Twiddles
  are constant per stage, so each carries a precomputed companion
  ``w' = floor(w * 2**32 / q)`` and the butterfly product is two uint64
  multiplies and a shift — no Montgomery REDC chain. Products are kept
  *lazy* in ``[0, 2q)`` through the stages (``min``-trick corrections
  instead of masked stores) and canonicalized once at the end, exactly
  the deferred-reduction discipline of GPU NTT kernels.
* **Digit-innermost layout.** For a ``(P, G, N)`` batch the butterflies
  run in the transposed ``(P, N, G)`` layout, so every lo/hi slice is a
  contiguous run of ``G`` lanes at every stage — the strided access that
  dominates a radix-2 sweep becomes unit-stride over the batch.

Outputs are canonical (``< q``) and bit-identical to running the
Montgomery-domain batched kernel row by row (regression-tested).

Lazy inputs: the forward transform accepts any representatives below
``2**32`` (the Shoup pre-twist reduces them into ``[0, 2q)``), which lets
the single-prime-digit ModUp broadcast skip its reduction entirely. The
inverse transform requires inputs below ``2q`` (canonical suffices).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence, Tuple

import numpy as np

from ..analysis.annotations import bounded, coeff_form, eval_form, takes_form
from ..backend import active_backend
from ..numtheory import bit_reverse_permutation
from .tables import TABLE_CACHE_SIZE, get_tables

_U32 = np.uint64(32)


@bounded(params={"table": {"q": 1}, "q_col": {"modulus": True}},
         out_bits=32)
def _shoup(table: np.ndarray, q_col: np.ndarray) -> np.ndarray:
    """Shoup companions ``floor(w * 2**32 / q)`` per element.

    ``w < q < 2**31`` keeps ``w << 32`` inside uint64, so the quotient is
    exact in native integer arithmetic.
    """
    return (table << _U32) // q_col


class ShoupStack:
    """Plain-domain twiddles plus Shoup companions for one ``(moduli, N)``
    chain, shared by every stacked transform over that chain.

    Attributes
    ----------
    psi_perm, psi_perm_sh:
        Negacyclic pre-twist factors in *bit-reversed* order (the forward
        kernel permutes first, so the twist table is permuted once here
        instead of per call), with Shoup companions.
    omega, omega_sh / omega_inv, omega_inv_sh:
        ``(num_primes, N)`` cyclic-core twiddle tables, plain domain.
    psi_inv_scale, psi_inv_scale_sh:
        Inverse post-twist with the ``N^{-1}`` normalizer fused in:
        ``psi^{-j} * N^{-1} mod q``.
    """

    def __init__(self, moduli: Sequence[int], n: int):
        self.moduli = tuple(moduli)
        self.n = n
        tabs = [get_tables(q, n) for q in self.moduli]
        self.q = np.array(self.moduli, dtype=np.uint64)
        q_col = self.q[:, None]
        self._perm = np.array(bit_reverse_permutation(n), dtype=np.intp)

        psi = np.stack([t.psi_pows for t in tabs])
        self.psi_perm = np.ascontiguousarray(psi[:, self._perm])
        self.psi_perm_sh = _shoup(self.psi_perm, q_col)
        self.omega = np.stack([t.omega_pows for t in tabs])
        self.omega_sh = _shoup(self.omega, q_col)
        self.omega_inv = np.stack([t.omega_inv_pows for t in tabs])
        self.omega_inv_sh = _shoup(self.omega_inv, q_col)

        psi_inv = np.stack([t.psi_inv_pows for t in tabs])
        n_inv = np.array([t.n_inv for t in tabs], dtype=np.uint64)[:, None]
        # psi_inv * n_inv < 2**62 fits uint64; one fused post-scale table.
        self.psi_inv_scale = (psi_inv * n_inv) % q_col
        self.psi_inv_scale_sh = _shoup(self.psi_inv_scale, q_col)

    @property
    def num_primes(self) -> int:
        return len(self.moduli)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ShoupStack(L={len(self.moduli)}, N={self.n})"


@lru_cache(maxsize=TABLE_CACHE_SIZE)
def get_shoup_stack(moduli: Tuple[int, ...], n: int) -> ShoupStack:
    """Shared, cached stack lookup (same sizing as the per-prime tables)."""
    return ShoupStack(moduli, n)


@bounded(assume=True, passthrough="x")
def _check_shape(x: np.ndarray, stack: ShoupStack) -> np.ndarray:
    if x.ndim == 2:
        x = x[:, None, :]
    if x.ndim != 3 or x.shape[0] != stack.num_primes or \
            x.shape[2] != stack.n:
        raise ValueError(
            f"expected a ({stack.num_primes}, G, {stack.n}) digit batch "
            f"or a ({stack.num_primes}, {stack.n}) matrix, got {x.shape}"
        )
    return x


@eval_form
@takes_form(x="coeff")
@bounded(in_bits=32, out_q=1, out_q_lazy=2, params={"x": {"bits": 32}})
def stacked_negacyclic_ntt(x: np.ndarray, stack: ShoupStack, *,
                           lazy: bool = False,
                           t_out: bool = False) -> np.ndarray:
    """Forward negacyclic NTT of a ``(P, G, N)`` digit batch (or a plain
    ``(P, N)`` matrix) in one pass; canonical output, same shape.

    The butterfly sweep itself lives in the active backend
    (:mod:`repro.backend`); this wrapper owns shape validation and the
    2-D squeeze so every backend sees the same ``(P, G, N)`` batch.

    Accepts lazy inputs: any representatives ``< 2**32`` transform to the
    same canonical result as their reduced values.

    ``lazy``: skip the final canonicalization and return lazy values
    ``< 2q`` (congruent to the canonical transform; the representatives
    are backend-specific) — for consumers that tolerate 32-bit
    representatives, e.g. the wide-accumulator inner product.
    ``t_out``: return the digit-innermost ``(P, N, G)`` working layout
    directly, skipping the transpose back (3-D batches only); consumers
    that reduce over the digit axis read it contiguously.
    """
    squeeze = x.ndim == 2
    if squeeze and t_out:
        raise ValueError("t_out requires a 3-D (P, G, N) batch")
    x = _check_shape(x, stack)
    out = active_backend().ntt_forward(x, stack, lazy=lazy, t_out=t_out)
    return out[:, 0, :] if squeeze else out


@coeff_form
@takes_form(x="eval")
@bounded(in_q=2, out_q=1, params={"x": {"q": 2}})
def stacked_negacyclic_intt(x: np.ndarray, stack: ShoupStack) -> np.ndarray:
    """Inverse negacyclic NTT of a ``(P, G, N)`` batch (or ``(P, N)``
    matrix); canonical output, same shape. Inputs must be ``< 2q``
    (canonical inputs always qualify). Delegates the butterfly sweep to
    the active backend (:mod:`repro.backend`)."""
    squeeze = x.ndim == 2
    x = _check_shape(x, stack)
    out = active_backend().ntt_inverse(x, stack)
    return out[:, 0, :] if squeeze else out


def shoup_stack_cache_stats() -> dict:
    """Hit/miss counters of the stacked-kernel table cache."""
    info = get_shoup_stack.cache_info()
    return {
        "hits": info.hits,
        "misses": info.misses,
        "maxsize": info.maxsize,
        "currsize": info.currsize,
    }
