"""NTT algorithm suite: every transform strategy the paper discusses.

- :mod:`.reference` — O(N^2) ground truth;
- :mod:`.radix2` — iterative Cooley-Tukey workhorse;
- :mod:`.fourstep` — single-level 4-step (Eq. 2);
- :mod:`.decompose` / :mod:`.hierarchical` — WarpDrive's multi-level
  decomposition (Fig. 2, Table IV) with pluggable leaf engines;
- :mod:`.gemm` / :mod:`.bitsplit` — CUDA-core and tensor-core (uint8 limb)
  GEMM inner NTTs;
- :mod:`.butterfly` — high-radix butterfly inner NTTs (WD-BO);
- :mod:`.negacyclic` — polynomial products and Galois automorphisms.
"""

from .bitsplit import bitsplit_matmul_mod, count_limb_gemms
from .butterfly import SUPPORTED_RADICES, butterfly_inner_ntt, choose_radix
from .decompose import (
    DEFAULT_LEAF_SIZE,
    DecompositionCost,
    NttPlan,
    build_plan,
    table_iv_rows,
)
from .fourstep import fourstep_cyclic_ntt, fourstep_negacyclic_ntt
from .gemm import gemm_inner_ntt, matmul_mod_uint32
from .hierarchical import LEAF_ENGINES, ExecutionStats, HierarchicalNtt
from .negacyclic import (
    apply_automorphism,
    conjugate_automorphism,
    pointwise_mul,
    poly_add,
    poly_mul,
    poly_neg,
    rotate_galois,
)
from .radix2 import cyclic_ntt, negacyclic_intt, negacyclic_ntt
from .stacked import (
    ShoupStack,
    get_shoup_stack,
    shoup_stack_cache_stats,
    stacked_negacyclic_intt,
    stacked_negacyclic_ntt,
)
from .twiddles import (
    TwiddleStack,
    batched_cyclic_ntt,
    batched_negacyclic_intt,
    batched_negacyclic_ntt,
    get_twiddle_stack,
    twiddle_stack_cache_stats,
)
from .reference import (
    cyclic_convolution,
    negacyclic_convolution,
    reference_cyclic_intt,
    reference_cyclic_ntt,
    reference_negacyclic_intt,
    reference_negacyclic_ntt,
)
from .tables import (
    TABLE_CACHE_SIZE,
    NttTables,
    get_tables,
    table_cache_stats,
)

__all__ = [
    "DEFAULT_LEAF_SIZE",
    "DecompositionCost",
    "ExecutionStats",
    "HierarchicalNtt",
    "LEAF_ENGINES",
    "NttPlan",
    "NttTables",
    "SUPPORTED_RADICES",
    "ShoupStack",
    "TABLE_CACHE_SIZE",
    "TwiddleStack",
    "apply_automorphism",
    "batched_cyclic_ntt",
    "batched_negacyclic_intt",
    "batched_negacyclic_ntt",
    "bitsplit_matmul_mod",
    "build_plan",
    "butterfly_inner_ntt",
    "choose_radix",
    "conjugate_automorphism",
    "count_limb_gemms",
    "cyclic_convolution",
    "cyclic_ntt",
    "fourstep_cyclic_ntt",
    "fourstep_negacyclic_ntt",
    "gemm_inner_ntt",
    "get_shoup_stack",
    "get_tables",
    "get_twiddle_stack",
    "matmul_mod_uint32",
    "negacyclic_convolution",
    "negacyclic_intt",
    "negacyclic_ntt",
    "pointwise_mul",
    "poly_add",
    "poly_mul",
    "poly_neg",
    "reference_cyclic_intt",
    "reference_cyclic_ntt",
    "reference_negacyclic_intt",
    "reference_negacyclic_ntt",
    "rotate_galois",
    "shoup_stack_cache_stats",
    "stacked_negacyclic_intt",
    "stacked_negacyclic_ntt",
    "table_cache_stats",
    "table_iv_rows",
    "twiddle_stack_cache_stats",
]
