"""NTT decomposition planning and the Table IV cost model.

The paper's key algorithmic move (§IV-A-2) is a *multi-level* 4-step
decomposition: each level splits one NTT into (inner NTTs, twiddle Hadamard,
inner NTTs), and two levels take an ``N = 2^16`` transform down to 16-point
inner NTTs whose twiddle matrices fit in shared memory. This module builds
the recursive plan tree and reproduces the analytic operation counts of
Table IV that justify stopping at two levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Inner NTT dimension matched to the tensor-core MMA tile (§IV-B-2).
DEFAULT_LEAF_SIZE = 16


@dataclass(frozen=True)
class NttPlan:
    """A node of the recursive 4-step decomposition tree.

    A *leaf* executes a direct ``n``-point inner NTT (by GEMM on tensor or
    CUDA cores, or by butterflies). An internal node splits ``n = n1 * n2``
    into column transforms (``left``, size ``n1``), a twiddle Hadamard
    product, and row transforms (``right``, size ``n2``).
    """

    n: int
    left: Optional["NttPlan"] = None
    right: Optional["NttPlan"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    @property
    def n1(self) -> int:
        if self.is_leaf:
            raise ValueError("leaf plans have no split")
        return self.left.n

    @property
    def n2(self) -> int:
        if self.is_leaf:
            raise ValueError("leaf plans have no split")
        return self.right.n

    @property
    def depth(self) -> int:
        """Number of decomposition levels below this node."""
        if self.is_leaf:
            return 0
        return 1 + max(self.left.depth, self.right.depth)

    def leaf_sizes(self) -> list:
        """Inner NTT sizes in execution order (right/rows first)."""
        if self.is_leaf:
            return [self.n]
        return self.right.leaf_sizes() + self.left.leaf_sizes()

    def num_steps(self) -> int:
        """Total steps in the flattened schedule (Fig. 2: 7 for 2 levels).

        Each internal node contributes its two children's steps plus one
        twiddle/transpose step in between.
        """
        if self.is_leaf:
            return 1
        return self.left.num_steps() + self.right.num_steps() + 1

    def describe(self) -> str:
        """Nested-product notation, e.g. ``(16x16)x(16x16)``."""
        if self.is_leaf:
            return str(self.n)
        left = self.left.describe()
        right = self.right.describe()
        if not self.left.is_leaf:
            left = f"({left})"
        if not self.right.is_leaf:
            right = f"({right})"
        return f"{left}x{right}"


def build_plan(n: int, *, max_leaf: int = DEFAULT_LEAF_SIZE) -> NttPlan:
    """Build the decomposition plan WarpDrive uses for an ``n``-point NTT.

    Policy from §IV-A-2: decompose until every inner NTT dimension is at
    most ``max_leaf`` (16, the tensor-core tile), but no further — deeper
    levels shrink the GEMMs below tensor-core efficiency and inflate the
    CUDA-core twiddle work (Table IV). Large sizes split off 256-point
    chunks (which decompose into 16x16), giving ``(16x16)x(16x16)`` at
    ``N = 2^16`` and ``(16x16)x16`` at ``N = 4096``, exactly as the paper
    describes.
    """
    if n < 2:
        raise ValueError(f"NTT size must be >= 2, got {n}")
    if n & (n - 1):
        raise ValueError(f"NTT size must be a power of two, got {n}")
    bits = n.bit_length() - 1
    leaf_bits = max_leaf.bit_length() - 1
    if bits <= leaf_bits:
        return NttPlan(n)
    if bits > 2 * leaf_bits:
        left_bits = 2 * leaf_bits  # a further-decomposed 256-point block
    else:
        left_bits = (bits + 1) // 2
    right_bits = bits - left_bits
    return NttPlan(
        n,
        left=build_plan(1 << left_bits, max_leaf=max_leaf),
        right=build_plan(1 << right_bits, max_leaf=max_leaf),
    )


@dataclass(frozen=True)
class DecompositionCost:
    """Operation counts for an ``l``-level balanced decomposition (Table IV).

    All counts are per single N-point NTT:

    - ``matrix_size``: entries of one inner-NTT twiddle matrix
      (``N^(1/2^(l-1))``, i.e. the square of the inner dimension).
    - ``ew_mul``: element-wise multiplications inside the inner-NTT GEMMs.
    - ``mod_red``: modular reductions after the GEMM accumulations.
    - ``mod_mul``: modular multiplications in the twiddle Hadamard steps.
    - ``bit_dec_mer``: bit decomposition + merge operations (tensor path).
    """

    level: int
    n: int
    matrix_size: int
    ew_mul: int
    mod_red: int
    mod_mul: int
    bit_dec_mer: int

    @classmethod
    def for_level(cls, n: int, level: int) -> "DecompositionCost":
        """Evaluate the closed forms of Table IV for an ``l``-level split."""
        if level < 0:
            raise ValueError("decomposition level must be >= 0")
        inner_dim_sq = _integer_root_pow(n, level)
        return cls(
            level=level,
            n=n,
            matrix_size=inner_dim_sq,
            ew_mul=n * _integer_root_pow(n, level + 1) * (2**level)
            if level > 0
            else n * n,
            mod_red=n * (2**level) if level > 0 else 2 * n,
            mod_mul=(2**level - 1) * n if level > 0 else n,
            bit_dec_mer=(2 ** (level + 1) - 2) * n if level > 0 else 2 * n,
        )


def _integer_root_pow(n: int, level: int) -> int:
    """``N^(1 / 2^(level-1))`` for powers of two — the Table IV matrix size.

    ``level = 0`` means no decomposition (full ``N x N`` matrix, returns
    ``N**2``); each further level takes a square root of the inner
    dimension, and the matrix size is the square of that dimension:
    ``N^(1/2^(l-1)) = (N^(1/2^l))^2``.
    """
    bits = n.bit_length() - 1
    inner_bits = bits / (2**level)
    return 1 << round(2 * inner_bits)


def table_iv_rows(n: int = 65536, max_level: int = 3) -> list:
    """Return the rows of Table IV for the paper's ``N = 65536`` example."""
    return [DecompositionCost.for_level(n, lvl) for lvl in range(max_level + 1)]
