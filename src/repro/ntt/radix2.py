"""Iterative radix-2 Cooley-Tukey NTT, vectorized over batches.

This is the workhorse transform of the functional CKKS layer: a classic
decimation-in-time butterfly network with twiddles held in the Montgomery
domain (one REDC per modular product, per §IV-A-4 of the paper). It accepts
arrays of shape ``(..., N)`` and transforms the last axis, so a whole RNS
polynomial — or a batch of them — goes through in one call.
"""

from __future__ import annotations

import numpy as np

from ..numtheory import bit_reverse_permutation
from .tables import NttTables


def cyclic_ntt(x: np.ndarray, tables: NttTables, *,
               inverse: bool = False) -> np.ndarray:
    """Cyclic (I)NTT over the last axis; natural order in and out.

    The inverse includes the ``1/N`` normalization.
    """
    n = tables.n
    if x.shape[-1] != n:
        raise ValueError(f"last axis must have length {n}, got {x.shape[-1]}")
    mont = tables.mont
    omega_table = (
        tables.omega_inv_pows_mont if inverse else tables.omega_pows_mont
    )

    perm = np.array(bit_reverse_permutation(n), dtype=np.intp)
    a = np.ascontiguousarray(x.astype(np.uint64, copy=True)[..., perm])
    q64 = np.uint64(tables.modulus)

    length = 2
    while length <= n:
        half = length // 2
        stride = n // length
        # Twiddles w^(stride*j) for j < half, already in Montgomery form.
        w = omega_table[:: stride][:half]
        view = a.reshape(*a.shape[:-1], n // length, length)
        lo = view[..., :half]
        hi = mont.mul_vec(view[..., half:], w)
        s = lo + hi
        np.subtract(s, q64, out=s, where=s >= q64)
        d = lo + q64 - hi
        np.subtract(d, q64, out=d, where=d >= q64)
        view[..., :half] = s
        view[..., half:] = d
        length *= 2

    if inverse:
        a = mont.mul_vec(a, np.uint64(tables.n_inv_mont))
    return a


def negacyclic_ntt(x: np.ndarray, tables: NttTables) -> np.ndarray:
    """Forward negacyclic NTT: pre-scale by ``psi^j`` then cyclic NTT."""
    scaled = tables.mont.mul_vec(
        x.astype(np.uint64, copy=False), tables.psi_pows_mont
    )
    return cyclic_ntt(scaled, tables)


def negacyclic_intt(x: np.ndarray, tables: NttTables) -> np.ndarray:
    """Inverse negacyclic NTT: cyclic INTT then post-scale by ``psi^-j``."""
    raw = cyclic_ntt(x, tables, inverse=True)
    return tables.mont.mul_vec(raw, tables.psi_inv_pows_mont)
