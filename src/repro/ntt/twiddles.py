"""TwiddleStack: per-prime NTT tables stacked for the batched RNS engine.

WarpDrive's kernels treat the ``(num_primes, N)`` residue matrix as one
dense batch (§IV-A, §IV-B): all limbs move through the butterfly network
together, each row using its own modulus and twiddles. The functional
mirror of that layout is a :class:`TwiddleStack` — the Montgomery-domain
twiddle tables of every prime in the chain stacked into ``(num_primes, N)``
uint64 arrays, plus a :class:`~repro.numtheory.BatchMontgomeryReducer`
carrying the per-row REDC constants.

:func:`batched_negacyclic_ntt` / :func:`batched_negacyclic_intt` then run
the whole RNS polynomial through a single vectorized radix-2 network —
bit-identical to looping :func:`repro.ntt.radix2.negacyclic_ntt` over the
rows (same constants, same uint64 sequence per element), with no Python
loop over primes.

The stack is assembled from the per-prime :func:`~repro.ntt.tables.
get_tables` entries, so a prime's tables are computed exactly once no
matter which path — per-row or batched — asks for them first. Stacks are
themselves cached under the same unified cache size (see
:data:`repro.ntt.tables.TABLE_CACHE_SIZE`).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence, Tuple

import numpy as np

from ..analysis.annotations import bounded, coeff_form, eval_form, takes_form
from ..numtheory import BatchMontgomeryReducer, bit_reverse_permutation
from .tables import TABLE_CACHE_SIZE, get_tables


class TwiddleStack:
    """Stacked twiddle tables for a fixed ``(moduli, N)`` chain.

    Attributes
    ----------
    psi_pows_mont, psi_inv_pows_mont:
        ``(num_primes, N)`` negacyclic pre/post-scale factors, Montgomery
        domain.
    omega_pows_mont, omega_inv_pows_mont:
        ``(num_primes, N)`` cyclic-core twiddles, Montgomery domain.
    n_inv_mont:
        ``(num_primes, 1)`` inverse-transform normalizers.
    mont:
        Row-wise Montgomery reducer over the chain.
    """

    def __init__(self, moduli: Sequence[int], n: int):
        self.moduli = tuple(moduli)
        self.n = n
        tabs = [get_tables(q, n) for q in self.moduli]
        self.mont = BatchMontgomeryReducer(self.moduli)
        self.psi_pows_mont = np.stack([t.psi_pows_mont for t in tabs])
        self.psi_inv_pows_mont = np.stack(
            [t.psi_inv_pows_mont for t in tabs]
        )
        self.omega_pows_mont = np.stack([t.omega_pows_mont for t in tabs])
        self.omega_inv_pows_mont = np.stack(
            [t.omega_inv_pows_mont for t in tabs]
        )
        self.n_inv_mont = np.array(
            [t.n_inv_mont for t in tabs], dtype=np.uint64
        ).reshape(-1, 1)
        self._perm = np.array(bit_reverse_permutation(n), dtype=np.intp)

    @property
    def num_primes(self) -> int:
        return len(self.moduli)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TwiddleStack(L={len(self.moduli)}, N={self.n})"


@lru_cache(maxsize=TABLE_CACHE_SIZE)
def get_twiddle_stack(moduli: Tuple[int, ...], n: int) -> TwiddleStack:
    """Shared, cached stack lookup (same sizing as the per-prime tables)."""
    return TwiddleStack(moduli, n)


def twiddle_stack_cache_stats() -> dict:
    """Hit/miss counters of the stack cache (see ISSUE cache-sizing fix)."""
    info = get_twiddle_stack.cache_info()
    return {
        "hits": info.hits,
        "misses": info.misses,
        "maxsize": info.maxsize,
        "currsize": info.currsize,
    }


@bounded(in_q=1, out_q=1, max_q_multiple=2,
         params={"x": {"q": 1},
                 "stack.omega_pows_mont": {"q": 1},
                 "stack.omega_inv_pows_mont": {"q": 1},
                 "stack.n_inv_mont": {"q": 1}})
def batched_cyclic_ntt(x: np.ndarray, stack: TwiddleStack, *,
                       inverse: bool = False) -> np.ndarray:
    """Cyclic (I)NTT of every residue row in one vectorized pass.

    ``x`` is the ``(num_primes, N)`` residue matrix; row ``i`` is
    transformed mod ``stack.moduli[i]``. Natural order in and out; the
    inverse includes the ``1/N`` normalization. Bit-identical to
    :func:`repro.ntt.radix2.cyclic_ntt` applied row by row.
    """
    n = stack.n
    if x.ndim != 2 or x.shape != (stack.num_primes, n):
        raise ValueError(
            f"expected a ({stack.num_primes}, {n}) residue matrix, "
            f"got {x.shape}"
        )
    mont = stack.mont
    omega_table = (
        stack.omega_inv_pows_mont if inverse else stack.omega_pows_mont
    )
    num_primes = stack.num_primes
    a = np.ascontiguousarray(x.astype(np.uint64, copy=True)[:, stack._perm])
    q3 = mont.q_col(3)

    length = 2
    while length <= n:
        half = length // 2
        stride = n // length
        # Per-row twiddles w_i^(stride*j) for j < half, Montgomery form,
        # broadcast over the n//length butterfly groups of each row.
        w = omega_table[:, ::stride][:, :half][:, None, :]
        view = a.reshape(num_primes, n // length, length)
        lo = view[..., :half]
        hi = mont.mul_mat(view[..., half:], w)
        s = lo + hi
        np.subtract(s, q3, out=s, where=s >= q3)
        d = lo + q3 - hi
        np.subtract(d, q3, out=d, where=d >= q3)
        view[..., :half] = s
        view[..., half:] = d
        length *= 2

    if inverse:
        a = mont.mul_mat(a, stack.n_inv_mont)
    return a


@eval_form
@takes_form(x="coeff")
@bounded(in_q=1, out_q=1,
         params={"x": {"q": 1}, "stack.psi_pows_mont": {"q": 1}})
def batched_negacyclic_ntt(x: np.ndarray, stack: TwiddleStack) -> np.ndarray:
    """Forward negacyclic NTT of a whole RNS polynomial, no per-prime loop."""
    scaled = stack.mont.mul_mat(
        x.astype(np.uint64, copy=False), stack.psi_pows_mont
    )
    return batched_cyclic_ntt(scaled, stack)


@coeff_form
@takes_form(x="eval")
@bounded(in_q=1, out_q=1,
         params={"x": {"q": 1}, "stack.psi_inv_pows_mont": {"q": 1}})
def batched_negacyclic_intt(x: np.ndarray, stack: TwiddleStack) -> np.ndarray:
    """Inverse negacyclic NTT of a whole RNS polynomial, no per-prime loop."""
    raw = batched_cyclic_ntt(x, stack, inverse=True)
    return stack.mont.mul_mat(raw, stack.psi_inv_pows_mont)
