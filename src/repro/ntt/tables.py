"""Precomputed twiddle-factor tables for (negacyclic) NTTs.

One :class:`NttTables` instance caches everything the NTT engines need for a
fixed ``(modulus, N)`` pair: the primitive roots, their power tables, the
same tables in the Montgomery domain (the paper stores twiddles in
Montgomery form so the domain conversion is free, §IV-A-4), and the
``N^{-1}`` scaling constants for the inverse transform.

The WarpDrive initialization phase (§IV-D-1) precomputes these tables for
every prime in the modulus chain and ships them to the GPU once; the
functional layer mirrors that by building the tables eagerly and sharing
them across all NTT strategies.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..numtheory import (
    MontgomeryReducer,
    is_power_of_two,
    modinv,
    root_of_unity,
)


class NttTables:
    """Twiddle tables for the ring ``Z_q[X] / (X^N + 1)``.

    Attributes
    ----------
    psi, psi_inv:
        Primitive ``2N``-th root of unity and its inverse (the negacyclic
        "wrap" factor).
    omega, omega_inv:
        ``psi**2`` — a primitive ``N``-th root driving the cyclic core.
    psi_pows, psi_inv_pows:
        ``psi**j`` / ``psi**-j`` for ``j < N`` (uint64 arrays, plain domain).
    omega_pows, omega_inv_pows:
        ``omega**i`` for ``i < N``.
    *_mont variants:
        The same tables pre-multiplied by the Montgomery radix ``R`` so a
        single REDC yields a plain-domain product.
    n_inv, n_inv_mont:
        ``N^{-1} mod q`` for the inverse transform.
    """

    def __init__(self, modulus: int, n: int):
        if not is_power_of_two(n):
            raise ValueError(f"N must be a power of two, got {n}")
        if (modulus - 1) % (2 * n) != 0:
            raise ValueError(
                f"modulus {modulus} is not NTT-friendly for N={n} "
                f"(needs q ≡ 1 mod {2 * n})"
            )
        self.modulus = modulus
        self.n = n
        self.mont = MontgomeryReducer(modulus)

        self.psi = root_of_unity(2 * n, modulus)
        self.psi_inv = modinv(self.psi, modulus)
        self.omega = (self.psi * self.psi) % modulus
        self.omega_inv = modinv(self.omega, modulus)
        self.n_inv = modinv(n, modulus)

        self.psi_pows = _power_table(self.psi, n, modulus)
        self.psi_inv_pows = _power_table(self.psi_inv, n, modulus)
        self.omega_pows = _power_table(self.omega, n, modulus)
        self.omega_inv_pows = _power_table(self.omega_inv, n, modulus)

        self.psi_pows_mont = self.mont.to_montgomery_vec(self.psi_pows)
        self.psi_inv_pows_mont = self.mont.to_montgomery_vec(self.psi_inv_pows)
        self.omega_pows_mont = self.mont.to_montgomery_vec(self.omega_pows)
        self.omega_inv_pows_mont = self.mont.to_montgomery_vec(
            self.omega_inv_pows
        )
        self.n_inv_mont = self.mont.to_montgomery(self.n_inv)

    def omega_for_size(self, size: int, *, inverse: bool = False) -> int:
        """Primitive ``size``-th root for an inner NTT of ``size`` points.

        ``size`` must divide ``N``; the root is ``omega ** (N / size)``.
        """
        if self.n % size != 0:
            raise ValueError(f"inner size {size} does not divide N={self.n}")
        base = self.omega_inv if inverse else self.omega
        return pow(base, self.n // size, self.modulus)

    def dft_matrix(self, size: int, *, inverse: bool = False) -> np.ndarray:
        """The ``size x size`` (I)NTT matrix ``W[k, j] = w^(jk)`` (plain
        domain, no ``1/size`` factor on the inverse)."""
        w = self.omega_for_size(size, inverse=inverse)
        idx = np.arange(size, dtype=np.uint64)
        exps = (np.outer(idx, idx) % size).astype(np.uint64)
        pow_table = _power_table(w, size, self.modulus)
        return pow_table[exps]

    def twiddle_matrix(self, n1: int, n2: int, *,
                       inverse: bool = False) -> np.ndarray:
        """Step-two twiddles of a 4-step split ``n = n1*n2``:
        ``T[j1, k2] = w_n^(j1*k2)`` with ``w_n`` the size-``n1*n2`` root."""
        n = n1 * n2
        w = self.omega_for_size(n, inverse=inverse)
        pow_table = _power_table(w, n, self.modulus)
        j1 = np.arange(n1, dtype=np.uint64)[:, None]
        k2 = np.arange(n2, dtype=np.uint64)[None, :]
        exps = (j1 * k2) % np.uint64(n)
        return pow_table[exps]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"NttTables(q={self.modulus}, N={self.n})"


def _power_table(base: int, count: int, modulus: int) -> np.ndarray:
    """Return ``[base**0, base**1, ..., base**(count-1)] mod modulus``."""
    table = np.empty(count, dtype=np.uint64)
    value = 1
    for i in range(count):
        table[i] = value
        value = (value * base) % modulus
    return table


#: Unified sizing for every precompute cache in the library (twiddle
#: tables, Barrett reducers, twiddle stacks, RNS contexts). The caches
#: used to disagree — 256 tables vs 512 reducers — so a deep modulus
#: chain plus bootstrapping could evict twiddle tables mid-operation and
#: silently recompute them while the matching reducer stayed cached. One
#: constant, sized for the deepest chain anyone simulates (L+K ≤ ~64
#: primes x a handful of ring degrees), keeps the caches in lockstep.
TABLE_CACHE_SIZE = 1024


@lru_cache(maxsize=TABLE_CACHE_SIZE)
def get_tables(modulus: int, n: int) -> NttTables:
    """Shared, cached table lookup — CKKS contexts reuse these across ops."""
    return NttTables(modulus, n)


def table_cache_stats() -> dict:
    """Hit/miss counters of the twiddle-table cache.

    ``misses`` counts table constructions; an operation that runs without
    increasing it performed zero mid-op recomputation (regression-tested).
    """
    info = get_tables.cache_info()
    return {
        "hits": info.hits,
        "misses": info.misses,
        "maxsize": info.maxsize,
        "currsize": info.currsize,
    }
