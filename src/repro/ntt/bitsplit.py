"""UINT8 bit-splitting GEMM — the tensor-core dataflow, executed exactly.

Tensor cores multiply INT8 matrices with INT32 accumulation. A 32-bit NTT
operand therefore travels as four uint8 limbs, the twiddle matrix as four
more, and one modular matrix product becomes 16 small GEMMs (9 with the
Karatsuba variant the paper evaluates and rejects, §IV-A-4) whose partial
sums are shifted and merged before modular reduction.

This module performs that *exact* dataflow in numpy: real limb splits, real
int32-range accumulations (range-checked), real merges. The GPU simulator
charges these steps as tensor-core MMA ops plus CUDA-core split/merge work;
the numerics here prove the dataflow is lossless.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..analysis.annotations import bounded
from ..numtheory import BarrettReducer
from ..numtheory.karatsuba import LIMB_BITS, split_limbs

#: Exclusive bound of one uint8 limb.
_LIMB_BOUND = 256
#: Exclusive bound of a two-limb sum (Karatsuba cross operands).
_SUM_BOUND = 2 * _LIMB_BOUND - 1
#: Deepest GEMM the schoolbook dataflow may accumulate in int32:
#: products < 2**16, so k <= 2**15 keeps sums below 2**31.
_SCHOOLBOOK_LANES = 1 << 15
#: Deepest GEMM the two-level Karatsuba dataflow may accumulate: the
#: outer cross GEMM multiplies sums of limb-sums (< 1021), so products
#: reach ~2**20 and k must stay <= 2**11.
_KARATSUBA_LANES = 1 << 11

#: INT32 accumulator capacity of a tensor-core MMA chain.
_ACC_LIMIT = 1 << 31

#: (shift, sign, accumulated GEMM) partial product entries.
_Partial = Tuple[int, int, np.ndarray]


@bounded(in_q=1, out_q=1, params={"x": {"q": 1}, "w": {"q": 1}})
def bitsplit_matmul_mod(x: np.ndarray, w: np.ndarray, reducer: BarrettReducer,
                        *, use_karatsuba: bool = False) -> np.ndarray:
    """``(x @ w) mod q`` through the uint8-limb tensor-core dataflow.

    Parameters
    ----------
    x:
        ``(..., m, k)`` matrix of residues below ``q < 2**31``.
    w:
        ``(k, n)`` twiddle matrix of residues below ``q``.
    reducer:
        Barrett reducer for the target modulus.
    use_karatsuba:
        Evaluate the 9-multiplication Karatsuba limb scheme instead of the
        16-multiplication schoolbook.

    Notes
    -----
    The merge interleaves modular reductions: a full 64-bit merge of a deep
    GEMM would overflow (products reach ``2**16`` per MAC and the limb
    shifts add up to 48 bits), so each limb-pair GEMM is reduced *before*
    its shift is applied — exactly the "reassembling 16 elements and
    perform ModRedc" steps of Algorithms 1 and 2 in the paper.
    """
    k = x.shape[-1]
    if w.shape[0] != k:
        raise ValueError(f"inner dimensions differ: {k} vs {w.shape[0]}")
    # Karatsuba operand sums cost 2 extra bits *per operand* (the paper's
    # word-length loss): the outer cross GEMM multiplies sums of limb
    # sums, up to 4*255 each, so its products carry 4 extra bits.
    acc_bits = 2 * LIMB_BITS + (4 if use_karatsuba else 0)
    if (1 << acc_bits) * k > _ACC_LIMIT:
        raise ValueError(
            f"GEMM depth {k} overflows the int32 tensor-core accumulator; "
            "decompose the NTT further (the paper's 2-level split keeps "
            "inner dimensions at 16)"
        )
    x_limbs = split_limbs(x.astype(np.uint64, copy=False))
    w_limbs = split_limbs(w.astype(np.uint64, copy=False))

    if use_karatsuba:
        partials = _karatsuba_partials(x_limbs, w_limbs)
    else:
        partials = _schoolbook_partials(x_limbs, w_limbs)

    two_pow = [np.uint64(pow(2, LIMB_BITS * s, reducer.modulus))
               for s in range(8)]
    result = None
    for shift, sign, acc in partials:
        # The int32 bound on ``acc`` is proven inside the partial
        # builders (B-ACC at each GEMM); the list of (shift, sign, acc)
        # tuples itself is outside the interval domain.
        reduced = reducer.reduce_vec(acc)  # fhelint: allow-B-RED
        term = reducer.mul_vec(reduced, two_pow[shift])
        if result is None:
            result = term if sign > 0 else reducer.sub_vec(
                np.zeros_like(term), term
            )
        elif sign > 0:
            result = reducer.add_vec(result, term)
        else:
            result = reducer.sub_vec(result, term)
    return result


def count_limb_gemms(use_karatsuba: bool = False) -> int:
    """Number of uint8 GEMMs one 32-bit modular GEMM expands into."""
    return 9 if use_karatsuba else 16


@bounded(dtype="int32", max_lanes=_SCHOOLBOOK_LANES,
         params={"x_limbs": {"ubound": _LIMB_BOUND},
                 "w_limbs": {"ubound": _LIMB_BOUND}})
def _schoolbook_partials(x_limbs, w_limbs) -> List[_Partial]:
    """All 16 limb GEMMs, tagged with limb shift ``i + j`` and sign +1."""
    partials: List[_Partial] = []
    for i, xl in enumerate(x_limbs):
        for j, wl in enumerate(w_limbs):
            partials.append((i + j, +1, xl @ wl))
    return partials


@bounded(dtype="int32", max_lanes=_KARATSUBA_LANES,
         params={"a0": {"ubound": _SUM_BOUND}, "a1": {"ubound": _SUM_BOUND},
                 "b0": {"ubound": _SUM_BOUND}, "b1": {"ubound": _SUM_BOUND}})
def _kara2(a0, a1, b0, b1) -> List[_Partial]:
    """3 GEMMs -> partials of (a0 + a1*2^8)(b0 + b1*2^8) at local shifts.

    Operands may be limbs (< 256) or limb sums (< 511); the widest
    products — the cross GEMM over sums of sums — still fit the int32
    accumulator at depth ``_KARATSUBA_LANES``.
    """
    low = a0 @ b0
    high = a1 @ b1
    cross = (a0 + a1) @ (b0 + b1)
    return [
        (0, +1, low),
        (1, +1, cross),
        (1, -1, low),
        (1, -1, high),
        (2, +1, high),
    ]


@bounded(dtype="int32", max_lanes=_KARATSUBA_LANES,
         params={"x_limbs": {"ubound": _LIMB_BOUND},
                 "w_limbs": {"ubound": _LIMB_BOUND}})
def _karatsuba_partials(x_limbs, w_limbs) -> List[_Partial]:
    """9 limb GEMMs via two-level Karatsuba.

    Each 2-limb half-product uses 3 GEMMs (low, high, (a0+a1)(b0+b1));
    the outer level combines three half-products the same way. The
    middle-term subtractions reuse already-computed GEMMs with negative
    signs, so the GEMM count stays at 9 while the merge list grows.
    """
    x0, x1, x2, x3 = x_limbs
    w0, w1, w2, w3 = w_limbs

    lo = _kara2(x0, x1, w0, w1)         # A_lo * B_lo
    hi = _kara2(x2, x3, w2, w3)         # A_hi * B_hi
    cross = _kara2(x0 + x2, x1 + x3, w0 + w2, w1 + w3)

    partials: List[_Partial] = []
    partials.extend((s, sign, acc) for s, sign, acc in lo)
    # Middle term: (cross - lo - hi) << 2 limbs.
    partials.extend((s + 2, sign, acc) for s, sign, acc in cross)
    partials.extend((s + 2, -sign, acc) for s, sign, acc in lo)
    partials.extend((s + 2, -sign, acc) for s, sign, acc in hi)
    # High term: hi << 4 limbs.
    partials.extend((s + 4, sign, acc) for s, sign, acc in hi)
    return partials
