"""Matrix-multiplication inner NTTs (CUDA-core and tensor-core forms).

The hierarchical decomposition reduces an NTT to many small inner NTTs,
each a multiplication by a tiny twiddle matrix. WarpDrive executes those
inner products three ways (§IV-B-2):

* **tensor** — uint8 limb GEMMs on tensor cores (:mod:`.bitsplit`);
* **cuda-gemm** — full 32-bit GEMM directly on INT32 CUDA cores, no
  splitting/merging needed;
* **butterfly** — high-radix butterfly networks on CUDA cores
  (:mod:`.butterfly`).

All three produce bit-identical results; they differ only in the hardware
cost profile the simulator charges.
"""

from __future__ import annotations

import numpy as np

from ..numtheory import BarrettReducer
from .bitsplit import bitsplit_matmul_mod


def matmul_mod_uint32(x: np.ndarray, w: np.ndarray,
                      reducer: BarrettReducer) -> np.ndarray:
    """``(x @ w) mod q`` with native 32-bit products (CUDA-core GEMM).

    Each scalar product is reduced before accumulation so the running sum of
    a depth-``k`` GEMM stays below ``k * q`` — the same
    multiply-reduce-accumulate loop an INT32 core runs. Accumulation depth
    is limited only by uint64 headroom (``k < 2**33 / q``), far beyond any
    inner NTT here.
    """
    if x.ndim < 2:
        raise ValueError("x must be a (..., m, k) matrix, not a vector")
    k = x.shape[-1]
    if w.shape[0] != k:
        raise ValueError(f"inner dimensions differ: {k} vs {w.shape[0]}")
    if k * reducer.modulus >= 1 << 62:
        raise ValueError(f"GEMM depth {k} too deep for uint64 accumulation")
    # Reduce each product, then one reduction of the (small) sum.
    prods = reducer.mul_vec(
        x.astype(np.uint64, copy=False)[..., :, None],
        w.astype(np.uint64, copy=False)[None, :, :],
    )
    return reducer.reduce_vec(prods.sum(axis=-2, dtype=np.uint64))


def gemm_inner_ntt(x: np.ndarray, dft: np.ndarray, reducer: BarrettReducer,
                   *, engine: str = "cuda-gemm",
                   use_karatsuba: bool = False) -> np.ndarray:
    """Apply an inner NTT matrix to the last axis of ``x``.

    ``dft`` is the ``(n, n)`` matrix with ``dft[k, j] = w^(jk)``; the result
    is ``y[..., k] = sum_j x[..., j] * dft[k, j]`` — i.e. ``x @ dft.T``.

    ``engine`` selects the functional dataflow: ``"cuda-gemm"`` (32-bit
    products) or ``"tensor"`` (uint8 limb GEMMs).
    """
    wt = np.ascontiguousarray(dft.T)
    if engine == "cuda-gemm":
        return matmul_mod_uint32(x, wt, reducer)
    if engine == "tensor":
        return bitsplit_matmul_mod(x, wt, reducer,
                                   use_karatsuba=use_karatsuba)
    raise ValueError(f"unknown GEMM engine {engine!r}")
