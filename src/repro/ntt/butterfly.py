"""High-radix butterfly inner NTTs (the WD-BO CUDA-core path).

§IV-B-2: to keep CUDA cores off the GEMM treadmill, WarpDrive lets them run
the inner NTTs as *butterfly networks* instead — radix 16 by default (the
tensor tile size), with radix 8 and 4 for smaller dimensions, holding all
intermediates in registers to dodge the RAW-dependency stalls TensorFHE
reports.

Functionally a radix-``r`` butterfly network over ``log_r(n)`` stages is
just another factorization of the same DFT matrix, so the implementation
below computes each radix-``r`` stage as a batched ``r``-point transform
plus inter-stage twiddles, and is tested bit-exact against the reference.
"""

from __future__ import annotations

import numpy as np

from ..numtheory import BarrettReducer
from .tables import _power_table

#: Radix preference order from the paper (§IV-B-2).
SUPPORTED_RADICES = (16, 8, 4, 2)


def choose_radix(n: int) -> int:
    """Largest supported radix that divides ``n`` exactly at every stage.

    Picks the biggest ``r`` in :data:`SUPPORTED_RADICES` such that ``n`` is
    a power of ``r``; falls back to mixed-radix (the remainder handled by a
    final smaller stage) by returning the largest ``r`` dividing ``n``.
    """
    for r in (16, 8, 4):
        if n >= r and _is_power_of(n, r):
            return r
    for r in SUPPORTED_RADICES:
        if n % r == 0:
            return r
    return 2


def _is_power_of(n: int, r: int) -> bool:
    while n % r == 0:
        n //= r
    return n == 1


def butterfly_inner_ntt(x: np.ndarray, size: int, omega: int,
                        reducer: BarrettReducer) -> np.ndarray:
    """``size``-point cyclic NTT over the last axis via high-radix stages.

    ``omega`` is a primitive ``size``-th root of unity mod ``reducer.modulus``.
    Implemented as a recursive Cooley-Tukey split with radix
    :func:`choose_radix`; the base case applies the radix-point DFT matrix
    directly (those are the in-register butterflies).
    """
    if x.shape[-1] != size:
        raise ValueError(f"last axis must be {size}, got {x.shape[-1]}")
    q = reducer.modulus
    radix = choose_radix(size)
    return _radix_ct(x.astype(np.uint64, copy=False), size, omega, radix,
                     reducer, _power_table(omega, size, q))


def _radix_ct(x: np.ndarray, n: int, omega: int, radix: int,
              reducer: BarrettReducer, omega_pows: np.ndarray) -> np.ndarray:
    """Recursive radix-``r`` decimation (4-step with ``n1 = radix``)."""
    if n <= radix or n <= 2:
        return _small_dft(x, n, omega, reducer)
    n1 = radix
    n2 = n // radix
    batch = x.shape[:-1]
    # Rows j1 (length n2) <- x[j1 + n1*j2].
    a = x.reshape(*batch, n2, n1)
    a = np.swapaxes(a, -1, -2)  # (..., n1, n2)
    omega_n2 = pow(omega, n1, reducer.modulus)
    b = _radix_ct(a, n2, omega_n2, radix, reducer,
                  _power_table(omega_n2, n2, reducer.modulus))
    # Twiddle: T[j1, k2] = omega^(j1*k2).
    j1 = np.arange(n1, dtype=np.uint64)[:, None]
    k2 = np.arange(n2, dtype=np.uint64)[None, :]
    tw = omega_pows[(j1 * k2) % np.uint64(n)]
    b = reducer.mul_vec(b, tw)
    # Column transforms of size n1 (the register-resident butterflies).
    c = _small_dft(np.swapaxes(b, -1, -2), n1, pow(omega, n2, reducer.modulus),
                   reducer)  # (..., n2, n1) -> transformed over last axis
    # Output X[k2 + n2*k1] = C[k2][k1] -> flatten (k1, k2) C-order.
    return np.swapaxes(c, -1, -2).reshape(*batch, n)


def _small_dft(x: np.ndarray, n: int, omega: int,
               reducer: BarrettReducer) -> np.ndarray:
    """Direct ``n``-point DFT over the last axis (product-reduce-accumulate)."""
    if x.shape[-1] != n:
        raise ValueError("size mismatch in small DFT")
    pow_table = _power_table(omega, n, reducer.modulus)
    idx = np.arange(n, dtype=np.uint64)
    dft = pow_table[(np.outer(idx, idx) % n).astype(np.intp)]
    prods = reducer.mul_vec(
        x[..., None, :], dft[tuple([None] * (x.ndim - 1))]
    )
    return reducer.reduce_vec(prods.sum(axis=-1, dtype=np.uint64))
