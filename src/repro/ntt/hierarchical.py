"""Plan-driven hierarchical NTT — the WarpDrive decomposition, executed.

Executes the recursive decomposition trees built by
:func:`repro.ntt.decompose.build_plan`: every internal node is a 4-step
split (inner NTTs / twiddle Hadamard / inner NTTs) and every leaf is a
small inner NTT run by a pluggable engine — tensor-core limb GEMM,
CUDA-core 32-bit GEMM, or high-radix butterflies. The flattened schedule of
a 2-level tree is the 7-step structure of Fig. 2.

The executor also *meters* itself: it counts leaf GEMM invocations, twiddle
multiplications and element traffic, which the GPU simulator lowering uses
to charge cycles without re-deriving algorithm shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ..analysis.annotations import returns_view
from ..numtheory import BarrettReducer
from .butterfly import butterfly_inner_ntt
from .decompose import NttPlan, build_plan
from .gemm import gemm_inner_ntt
from .tables import NttTables, _power_table

#: Functional engines for leaf inner NTTs.
LEAF_ENGINES = ("tensor", "cuda-gemm", "butterfly")


@dataclass
class ExecutionStats:
    """Operation counts gathered during one hierarchical NTT execution."""

    leaf_invocations: int = 0
    leaf_elements: int = 0
    twiddle_muls: int = 0
    steps: int = 0
    leaf_calls_by_size: Dict[int, int] = field(default_factory=dict)

    def record_leaf(self, size: int, batch_elems: int) -> None:
        self.leaf_invocations += 1
        self.leaf_elements += batch_elems
        self.leaf_calls_by_size[size] = (
            self.leaf_calls_by_size.get(size, 0) + 1
        )
        self.steps += 1

    def record_twiddle(self, count: int) -> None:
        self.twiddle_muls += count
        self.steps += 1


class HierarchicalNtt:
    """Executor for one ``(tables, plan)`` pair with a chosen leaf engine.

    Parameters
    ----------
    tables:
        Twiddle tables of the target ``(q, N)``.
    plan:
        Decomposition tree; defaults to the paper's policy via
        :func:`build_plan`.
    leaf_engine:
        One of :data:`LEAF_ENGINES`; selects the functional dataflow used
        for leaf inner NTTs (all produce identical results).
    use_karatsuba:
        Forwarded to the tensor leaf engine (§IV-A-4 ablation).
    """

    def __init__(self, tables: NttTables, plan: NttPlan = None, *,
                 leaf_engine: str = "tensor", use_karatsuba: bool = False):
        if leaf_engine not in LEAF_ENGINES:
            raise ValueError(
                f"unknown leaf engine {leaf_engine!r}; choose from "
                f"{LEAF_ENGINES}"
            )
        self.tables = tables
        self.plan = plan if plan is not None else build_plan(tables.n)
        if self.plan.n != tables.n:
            raise ValueError(
                f"plan is for size {self.plan.n}, tables for {tables.n}"
            )
        self.leaf_engine = leaf_engine
        self.use_karatsuba = use_karatsuba
        self.reducer = BarrettReducer(tables.modulus)
        self.last_stats: ExecutionStats = ExecutionStats()
        self._dft_cache: Dict[tuple, np.ndarray] = {}

    # -- public API ---------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Negacyclic forward NTT over the last axis (natural order)."""
        scaled = self.tables.mont.mul_vec(
            x.astype(np.uint64, copy=False), self.tables.psi_pows_mont
        )
        self.last_stats = ExecutionStats()
        return self._execute(scaled, self.plan, self.tables.omega)

    def inverse(self, x: np.ndarray) -> np.ndarray:
        """Negacyclic inverse NTT over the last axis."""
        self.last_stats = ExecutionStats()
        raw = self._execute(
            x.astype(np.uint64, copy=False), self.plan, self.tables.omega_inv
        )
        unscaled = self.tables.mont.mul_vec(
            raw, self.tables.psi_inv_pows_mont
        )
        n_inv = np.uint64(self.tables.n_inv)
        return self.reducer.mul_vec(unscaled, n_inv)

    def forward_cyclic(self, x: np.ndarray) -> np.ndarray:
        """Cyclic forward NTT (no negacyclic pre-scale)."""
        self.last_stats = ExecutionStats()
        return self._execute(
            x.astype(np.uint64, copy=False), self.plan, self.tables.omega
        )

    # -- execution ------------------------------------------------------------

    def _execute(self, x: np.ndarray, plan: NttPlan, omega: int) -> np.ndarray:
        if x.shape[-1] != plan.n:
            raise ValueError(
                f"last axis {x.shape[-1]} does not match plan size {plan.n}"
            )
        if plan.is_leaf:
            return self._leaf(x, plan.n, omega)
        n1, n2 = plan.n1, plan.n2
        batch = x.shape[:-1]
        a = np.swapaxes(x.reshape(*batch, n2, n1), -1, -2)
        b = self._execute(a, plan.right, pow(omega, n1, self.tables.modulus))
        b = self.reducer.mul_vec(b, self._twiddles(plan.n, n1, n2, omega))
        self.last_stats.record_twiddle(int(np.prod(b.shape)))
        c = self._execute(
            np.swapaxes(b, -1, -2), plan.left,
            pow(omega, n2, self.tables.modulus),
        )
        return np.swapaxes(c, -1, -2).reshape(*batch, plan.n)

    def _leaf(self, x: np.ndarray, size: int, omega: int) -> np.ndarray:
        self.last_stats.record_leaf(size, int(np.prod(x.shape)))
        if self.leaf_engine == "butterfly":
            return butterfly_inner_ntt(x, size, omega, self.reducer)
        dft = self._dft_matrix(size, omega)
        flat = x.reshape(-1, size) if x.ndim == 1 else x
        out = gemm_inner_ntt(
            flat, dft, self.reducer, engine=self.leaf_engine,
            use_karatsuba=self.use_karatsuba,
        )
        return out.reshape(x.shape)

    @returns_view
    def _dft_matrix(self, size: int, omega: int) -> np.ndarray:
        key = (size, omega)
        if key not in self._dft_cache:
            table = _power_table(omega, size, self.tables.modulus)
            idx = np.arange(size, dtype=np.uint64)
            dft = table[(np.outer(idx, idx) % size).astype(np.intp)]
            dft.setflags(write=False)
            self._dft_cache[key] = dft
        return self._dft_cache[key]

    @returns_view
    def _twiddles(self, n: int, n1: int, n2: int, omega: int) -> np.ndarray:
        key = ("tw", n, n1, n2, omega)
        if key not in self._dft_cache:
            pow_table = _power_table(omega, n, self.tables.modulus)
            j1 = np.arange(n1, dtype=np.uint64)[:, None]
            k2 = np.arange(n2, dtype=np.uint64)[None, :]
            tw = pow_table[(j1 * k2) % np.uint64(n)]
            tw.setflags(write=False)
            self._dft_cache[key] = tw
        return self._dft_cache[key]
