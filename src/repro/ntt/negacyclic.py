"""Negacyclic polynomial multiplication through the NTT engines.

The reason NTTs dominate FHE runtime: multiplication in
``Z_q[X]/(X^N + 1)`` is forward-NTT, Hadamard product, inverse-NTT. These
helpers tie the transforms to that use, and are cross-checked against the
O(N^2) schoolbook in tests.
"""

from __future__ import annotations

import numpy as np

from . import radix2
from .tables import NttTables, get_tables


def poly_mul(a: np.ndarray, b: np.ndarray, modulus: int) -> np.ndarray:
    """Product of two polynomials in ``Z_q[X]/(X^N + 1)`` via radix-2 NTT."""
    n = a.shape[-1]
    if b.shape[-1] != n:
        raise ValueError("operand degrees differ")
    tables = get_tables(modulus, n)
    fa = radix2.negacyclic_ntt(a, tables)
    fb = radix2.negacyclic_ntt(b, tables)
    return radix2.negacyclic_intt(pointwise_mul(fa, fb, tables), tables)


def pointwise_mul(fa: np.ndarray, fb: np.ndarray,
                  tables: NttTables) -> np.ndarray:
    """Hadamard product in the evaluation domain."""
    mont = tables.mont
    return mont.mul_vec(mont.to_montgomery_vec(fa), fb)


def poly_add(a: np.ndarray, b: np.ndarray, modulus: int) -> np.ndarray:
    """Coefficient-wise addition mod q."""
    q = np.uint64(modulus)
    s = a.astype(np.uint64, copy=False) + b.astype(np.uint64, copy=False)
    return np.where(s >= q, s - q, s)


def poly_neg(a: np.ndarray, modulus: int) -> np.ndarray:
    """Coefficient-wise negation mod q."""
    q = np.uint64(modulus)
    a = a.astype(np.uint64, copy=False)
    return np.where(a == 0, a, q - a)


def rotate_galois(coeffs: np.ndarray, step: int, modulus: int) -> np.ndarray:
    """Apply the Galois automorphism ``X -> X^(5^step)`` to a polynomial.

    This is the coefficient-domain permutation behind HROTATE: rotating the
    message slots by ``step`` corresponds to the automorphism with exponent
    ``5^step mod 2N`` (negacyclic sign flips included).
    """
    n = coeffs.shape[-1]
    exp = pow(5, step, 2 * n)
    return apply_automorphism(coeffs, exp, modulus)


def conjugate_automorphism(coeffs: np.ndarray, modulus: int) -> np.ndarray:
    """The automorphism ``X -> X^(2N-1)`` (complex conjugation on slots)."""
    n = coeffs.shape[-1]
    return apply_automorphism(coeffs, 2 * n - 1, modulus)


def apply_automorphism(coeffs: np.ndarray, exponent: int,
                       modulus: int) -> np.ndarray:
    """Map ``sum a_j X^j`` to ``sum a_j X^(j*exponent mod 2N)`` in the
    negacyclic ring (an odd ``exponent`` is required for a ring
    automorphism)."""
    n = coeffs.shape[-1]
    if exponent % 2 == 0:
        raise ValueError("automorphism exponent must be odd")
    j = np.arange(n)
    targets = (j * exponent) % (2 * n)
    dest = targets % n
    flip = targets >= n
    out = np.zeros_like(coeffs, dtype=np.uint64)
    vals = coeffs.astype(np.uint64, copy=False)
    q = np.uint64(modulus)
    negated = np.where(vals == 0, vals, q - vals)
    out[..., dest] = np.where(flip, negated, vals)
    return out
