"""Shared graph views over a (possibly already optimized) trace.

All maps are position-based over the trace's *top-level* events; fused
events are opaque nodes that define every constituent eid at their own
position and read their constituents' external dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..ir import TraceEvent


def owner_positions(events: Sequence[TraceEvent]) -> Dict[int, int]:
    """eid (constituents included) -> position of the defining event."""
    owner: Dict[int, int] = {}
    for pos, e in enumerate(events):
        owner[e.eid] = pos
        for c in e.fused:
            owner[c.eid] = pos
    return owner


def event_reads(event: TraceEvent) -> Set[int]:
    """All eids the event (or its constituents) reads, minus internal."""
    if not event.fused:
        return set(event.deps)
    internal = {c.eid for c in event.fused}
    out = set(event.deps)
    for c in event.fused:
        out.update(d for d in c.deps if d not in internal)
    return out


def consumer_positions(events: Sequence[TraceEvent],
                       ) -> Dict[int, List[int]]:
    """eid -> sorted positions of top-level events that read it."""
    cons: Dict[int, Set[int]] = {}
    for pos, e in enumerate(events):
        for d in event_reads(e):
            cons.setdefault(d, set()).add(pos)
    return {eid: sorted(ps) for eid, ps in cons.items()}


def ancestor_positions(events: Sequence[TraceEvent],
                       owner: Dict[int, int]) -> List[Set[int]]:
    """Per position: transitive closure of producer positions."""
    anc: List[Set[int]] = []
    for e in events:
        s: Set[int] = set()
        for d in event_reads(e):
            p = owner.get(d)
            if p is not None:
                s.add(p)
                s |= anc[p]
        anc.append(s)
    return anc


def next_eid(events: Sequence[TraceEvent]) -> int:
    top = max((e.eid for e in events), default=-1)
    sub = max((c.eid for e in events for c in e.fused), default=-1)
    return max(top, sub) + 1


def external_deps(members: Sequence[TraceEvent]) -> Tuple[int, ...]:
    """Union of the members' dependencies outside the member set."""
    internal = {m.eid for m in members}
    out: Set[int] = set()
    for m in members:
        out.update(d for d in m.deps if d not in internal)
    return tuple(sorted(out))
