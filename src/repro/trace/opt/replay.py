"""Replay verification for optimizer passes.

An optimized trace must compute *exactly* what the recording computed —
"replay bit-identical through the functional layer".  The optimizer
never re-executes numpy; instead it proves parity symbolically: every
primitive event gets a **replay token**, a stable hash of its kind,
shape, semantic args, level and the tokens of its data dependencies.
Two events with equal tokens perform the same computation on the same
(transitively identical) inputs, because the functional kernels are
deterministic pure functions of those fields — that is the property the
proxy-ring replay tests in ``tests/trace/test_opt_passes.py`` pin down
by actually re-running the functional layer.

Fused events are transparent here: :meth:`OpTrace.expanded` restores
their constituents verbatim (original eids, deps, shapes), so an
optimized trace and its recording expose the *same* primitive event set
and the legality contract reduces to per-eid token equality plus exact
work-accounting conservation.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Tuple

from ..ir import OpTrace, TraceEvent

#: Per-kind work measure (ring-degree-free units) used by the
#: conservation check: a pass may re-partition work across launches but
#: must not create or destroy any.
_WORK_FIELDS = {
    "ntt": lambda s: s.get("rows", 0),
    "intt": lambda s: s.get("rows", 0),
    "modup": lambda s: s.get("target_primes", 0) * s.get("polys", 1),
    "moddown": lambda s: (s.get("main_primes", 0) + s.get(
        "special_primes", 0)) * s.get("polys", 1),
    "inner_product": lambda s: s.get("primes", 0) * s.get("digits", 1)
    * max(s.get("steps", 1), 1) * s.get("accumulators", 2),
    "automorphism": lambda s: s.get("primes", 0) * s.get("polys", 1),
    "modadd": lambda s: s.get("rows", 0),
    "modmul": lambda s: s.get("rows", 0),
    "tensor_product": lambda s: s.get("rows", 0),
    "divide": lambda s: s.get("rows", 0) * max(s.get("drop", 1), 1),
}


def primitive_events(trace: OpTrace) -> List[TraceEvent]:
    """All primitive events, fused constituents included, in order."""
    out: List[TraceEvent] = []
    for e in trace.events:
        out.extend(e.fused if e.fused else (e,))
    return out


def event_work(event: TraceEvent) -> int:
    """Ring-degree-free work units of one primitive event."""
    fn = _WORK_FIELDS.get(event.kind)
    if fn is None:
        raise ValueError(f"no work measure for kind {event.kind!r}")
    return int(fn(event.shape))


def work_counts(trace: OpTrace) -> Dict[str, int]:
    """Per-kind work totals over the primitive view of ``trace``."""
    out: Dict[str, int] = {}
    for e in primitive_events(trace):
        out[e.kind] = out.get(e.kind, 0) + event_work(e)
    return out


def _token(event: TraceEvent, dep_tokens: Iterable[str]) -> str:
    h = hashlib.blake2b(digest_size=12)
    h.update(repr((
        event.kind, event.level, tuple(sorted(event.shape.items())),
        event.args, event.key, tuple(sorted(dep_tokens)),
    )).encode())
    return h.hexdigest()


def replay_tokens(trace: OpTrace) -> Dict[int, str]:
    """eid -> replay token, over the primitive view of ``trace``.

    Raises ``KeyError`` if any dependency references an eid that no
    primitive event defines — a structural breach the pass pipeline
    treats as a legality failure.
    """
    env: Dict[int, str] = {}
    for e in primitive_events(trace):
        env[e.eid] = _token(e, (env[d] for d in e.deps))
    return env


def sink_signature(trace: OpTrace) -> Tuple[str, ...]:
    """Sorted multiset of sink tokens — the trace's observable outputs.

    A sink is a primitive event whose output no other primitive event
    reads.  Dead-rotation elimination shrinks this set; every other pass
    must preserve it exactly.
    """
    prims = primitive_events(trace)
    tokens = replay_tokens(trace)
    consumed = set()
    for e in prims:
        consumed.update(e.deps)
    return tuple(sorted(
        tokens[e.eid] for e in prims if e.eid not in consumed
    ))
