"""Fusion passes: element-wise chains, twist folding, launch merging.

Three ways this pipeline removes kernel launches without removing work
(the A100 model charges ~3 us of launch overhead per kernel, which PR 5
measured at ~26% of a recorded PE-style bootstrap):

* :class:`FuseElementwisePass` — a producer whose *every* output is read
  by exactly one element-wise consumer folds into it; chains collapse to
  one ``fused_elementwise`` event.  The intermediate write and its
  re-read disappear (the value stays in registers), which is the 100x
  baseline's element-wise fusion.
* :class:`FoldTwistPass` — element-wise work adjacent to an ``ntt`` /
  ``intt`` disappears into the transform's pre/post-twist loops (the
  twist is already an element-wise multiply; the folded op rides the
  same pass).  Rescale's exact-divide feeding the re-NTT is the classic
  case.
* :class:`MergeLaunchesPass` — independent same-kind launches close in
  program order merge into one ``fused_launch`` grid: same total work,
  one launch overhead.  This generalizes the PE merge pass (which only
  merges within one span instance) across operation boundaries, and is
  what "hoisting-aware inner-product merging" means concretely: the
  per-giant-group ``inner_product`` launches of a BSGS linear transform
  share hoisted panes and merge into one wide launch.

Every pass stores the replaced primitive events verbatim in
``TraceEvent.fused`` — consumers keep referencing constituent eids, so
no dependency rewriting happens anywhere and the optimized trace expands
back to the exact recording for replay verification.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir import ELEMENTWISE_KINDS, OpTrace, TraceEvent
from .graphs import (
    ancestor_positions,
    consumer_positions,
    external_deps,
    next_eid,
    owner_positions,
)
from .pipeline import PassStats, TracePass


def _is_primitive(e: TraceEvent) -> bool:
    return not e.fused and "split" not in e.shape


def _rebuild(trace: OpTrace, replacements: Dict[int, Optional[TraceEvent]],
             ) -> OpTrace:
    """New trace with position->event replacements (None drops)."""
    out: List[TraceEvent] = []
    for pos, e in enumerate(trace.events):
        if pos in replacements:
            r = replacements[pos]
            if r is not None:
                out.append(r)
        else:
            out.append(e)
    return dataclasses.replace(trace, events=tuple(out))


class FuseElementwisePass(TracePass):
    """Collapse single-consumer element-wise chains into one launch."""

    name = "fuse-elementwise"

    def __init__(self, kinds: Sequence[str] = ("modadd", "modmul",
                                               "tensor_product"),
                 max_chain: int = 6):
        self.kinds = frozenset(kinds)
        self.max_chain = max_chain

    def _candidate(self, e: TraceEvent) -> bool:
        return e.kind in self.kinds and _is_primitive(e)

    def run(self, trace: OpTrace) -> Tuple[OpTrace, PassStats]:
        events = trace.events
        owner = owner_positions(events)
        cons = consumer_positions(events)
        assigned: Set[int] = set()
        groups: List[Tuple[int, Set[int]]] = []  # (root position, members)
        for pos in range(len(events) - 1, -1, -1):
            e = events[pos]
            if pos in assigned or not self._candidate(e):
                continue
            members = {pos}
            frontier = [pos]
            while frontier and len(members) < self.max_chain:
                y = frontier.pop()
                for d in events[y].deps:
                    p = owner.get(d)
                    if p is None or p in assigned or p in members:
                        continue
                    pe = events[p]
                    # Absorb a producer only when the chain captures its
                    # every output: all consumers sit inside the group.
                    if pe.eid != d or not self._candidate(pe):
                        continue
                    if set(cons.get(pe.eid, ())) != {y}:
                        continue
                    members.add(p)
                    frontier.append(p)
                    if len(members) >= self.max_chain:
                        break
            if len(members) > 1:
                assigned |= members
                groups.append((pos, members))

        if not groups:
            return trace, PassStats(self.name, len(events), len(events))

        fresh = next_eid(events)
        replacements: Dict[int, Optional[TraceEvent]] = {}
        for root_pos, members in groups:
            parts = tuple(sorted((events[p] for p in members),
                                 key=lambda ev: ev.eid))
            root = events[root_pos]
            fused = TraceEvent(
                eid=fresh, kind="fused_elementwise", op=root.op,
                span=root.span, level=root.level,
                shape={"rows": max(p.shape.get("rows", 1) for p in parts),
                       "chain": len(parts)},
                deps=external_deps(parts), fused=parts,
            )
            fresh += 1
            for p in members:
                replacements[p] = fused if p == root_pos else None
        out = _rebuild(trace, replacements)
        return out, PassStats(
            self.name, len(events), len(out.events),
            fused_groups=len(groups),
        )


class FoldTwistPass(TracePass):
    """Fold adjacent element-wise work into ``ntt``/``intt`` twists."""

    name = "fold-twists"

    def run(self, trace: OpTrace) -> Tuple[OpTrace, PassStats]:
        events = trace.events
        owner = owner_positions(events)
        cons = consumer_positions(events)
        assigned: Set[int] = set()
        folds: List[Tuple[int, List[int], List[int]]] = []
        for pos, e in enumerate(events):
            if e.kind not in ("ntt", "intt") or not _is_primitive(e):
                continue
            if pos in assigned:
                continue
            pre: List[int] = []
            for d in e.deps:
                p = owner.get(d)
                if p is None or p in assigned or p in pre:
                    continue
                pe = events[p]
                if (pe.eid == d and pe.kind in ELEMENTWISE_KINDS
                        and _is_primitive(pe)
                        and set(cons.get(pe.eid, ())) == {pos}):
                    pre.append(p)
            post: List[int] = []
            readers = set(cons.get(e.eid, ()))
            if len(readers) == 1:
                c_pos = readers.pop()
                ce = events[c_pos]
                # The consumer's work moves to the transform's position:
                # its other operands must already exist there.
                if (ce.kind in ELEMENTWISE_KINDS and _is_primitive(ce)
                        and c_pos not in assigned
                        and all(owner.get(d, pos) < pos
                                for d in ce.deps if d != e.eid)):
                    post.append(c_pos)
            if pre or post:
                assigned.update(pre)
                assigned.update(post)
                assigned.add(pos)
                folds.append((pos, sorted(pre), post))

        if not folds:
            return trace, PassStats(self.name, len(events), len(events))

        fresh = next_eid(events)
        replacements: Dict[int, Optional[TraceEvent]] = {}
        folded_twists = 0
        for pos, pre, post in folds:
            host = events[pos]
            pre_events = tuple(events[p] for p in pre)
            post_events = tuple(events[p] for p in post)
            parts = pre_events + (host,) + post_events
            shape = dict(host.shape)
            shape["fold_pre"] = len(pre_events)
            shape["fold_post"] = len(post_events)
            folded = TraceEvent(
                eid=fresh, kind=host.kind, op=host.op, span=host.span,
                level=host.level, shape=shape,
                deps=external_deps(parts), fused=parts,
            )
            fresh += 1
            folded_twists += len(pre_events) + len(post_events)
            replacements[pos] = folded
            for p in pre:
                replacements[p] = None
            for p in post:
                replacements[p] = None
        out = _rebuild(trace, replacements)
        return out, PassStats(
            self.name, len(events), len(out.events),
            fused_groups=len(folds),
            notes={"folded_twists": float(folded_twists)},
        )


#: Shape fields that must match for two launches to share one grid.
_MERGE_KEYS = {
    "modadd": (),
    "modmul": (),
    "inner_product": ("primes", "accumulators"),
    "automorphism": ("primes",),
}


class _OpenGroup:
    __slots__ = ("first_pos", "last_pos", "members", "min_consumer")

    def __init__(self, pos: int, min_consumer: float):
        self.first_pos = pos
        self.last_pos = pos
        self.members = [pos]
        self.min_consumer = min_consumer


class MergeLaunchesPass(TracePass):
    """Merge independent same-kind launches into one grid.

    The merged event lands at the *last* member's position; legality
    requires no member's output to be consumed before that point, no
    dependency path between members, and a bounded program-order window
    (so the pass cannot drag a launch arbitrarily far from its data).
    """

    name = "merge-launches"

    def __init__(self, kinds: Sequence[str] = tuple(_MERGE_KEYS),
                 window: int = 16, max_group: int = 8):
        self.kinds = tuple(k for k in kinds if k in _MERGE_KEYS)
        self.window = window
        self.max_group = max_group

    def run(self, trace: OpTrace) -> Tuple[OpTrace, PassStats]:
        events = trace.events
        owner = owner_positions(events)
        cons = consumer_positions(events)
        anc = ancestor_positions(events, owner)
        open_groups: Dict[tuple, List[_OpenGroup]] = {}
        closed: List[List[int]] = []

        def _min_consumer(e: TraceEvent) -> float:
            ps = cons.get(e.eid, ())
            return float(ps[0]) if ps else float("inf")

        for pos, e in enumerate(events):
            if e.kind not in self.kinds or not _is_primitive(e):
                continue
            key = (e.kind,) + tuple(
                e.shape.get(f) for f in _MERGE_KEYS[e.kind]
            )
            placed = False
            for g in open_groups.get(key, []):
                if pos - g.first_pos > self.window:
                    continue
                if len(g.members) >= self.max_group:
                    continue
                if g.min_consumer <= pos:
                    continue
                if any(m in anc[pos] for m in g.members):
                    continue
                g.members.append(pos)
                g.last_pos = pos
                g.min_consumer = min(g.min_consumer, _min_consumer(e))
                placed = True
                break
            if not placed:
                open_groups.setdefault(key, []).append(
                    _OpenGroup(pos, _min_consumer(e))
                )
            # Retire groups that fell out of the window.
            for k, gs in list(open_groups.items()):
                keep = []
                for g in gs:
                    if pos - g.first_pos > self.window:
                        if len(g.members) > 1:
                            closed.append(g.members)
                    else:
                        keep.append(g)
                open_groups[k] = keep
        for gs in open_groups.values():
            closed.extend(g.members for g in gs if len(g.members) > 1)

        if not closed:
            return trace, PassStats(self.name, len(events), len(events))

        fresh = next_eid(events)
        replacements: Dict[int, Optional[TraceEvent]] = {}
        merged_launches = 0
        for members in closed:
            parts = tuple(sorted((events[p] for p in members),
                                 key=lambda ev: ev.eid))
            last = max(members)
            first = events[min(members)]
            fused = TraceEvent(
                eid=fresh, kind="fused_launch", op=first.op,
                span=first.span, level=first.level,
                shape={"launches": len(parts)},
                deps=external_deps(parts), fused=parts,
            )
            fresh += 1
            merged_launches += len(parts) - 1
            for p in members:
                replacements[p] = fused if p == last else None
        out = _rebuild(trace, replacements)
        return out, PassStats(
            self.name, len(events), len(out.events),
            merged_launches=merged_launches,
        )
