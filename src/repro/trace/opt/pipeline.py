"""Pass manager for the trace-DAG optimizer.

Every pass is a pure ``OpTrace -> OpTrace`` transform with a
machine-checkable legality contract, enforced here after each pass when
``verify=True`` (the default — passes are cheap next to lowering):

1. **Structure** — :func:`repro.trace.ir.validate_trace`: kinds in
   vocabulary, deps reference earlier events, fused payloads well formed.
2. **Data deps preserved** — expanding the optimized trace back to
   primitive granularity yields the *same* primitive event set (minus
   events the pass explicitly removed) with per-eid replay tokens
   unchanged, so every surviving computation still sees transitively
   identical inputs (see :mod:`repro.trace.opt.replay`).
3. **Shape accounting conserved** — per-kind work totals over the
   primitive view are exactly ``before == after + removed``: fusion may
   re-partition launches but can neither create nor destroy work.
4. **Removal is dead-or-duplicate only** — a removed event either has a
   token-identical survivor (dedup) or was a sink (dead elimination);
   anything else fails check 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir import OpTrace, TraceEvent, validate_trace
from .replay import replay_tokens, work_counts

__all__ = [
    "OptimizationError", "PassStats", "OptReport", "TracePass",
    "PassPipeline", "optimize_trace", "default_passes",
]


class OptimizationError(ValueError):
    """A pass broke its legality contract (optimizer bug, never data)."""


@dataclass
class PassStats:
    """What one pass did to one trace."""

    name: str
    events_before: int
    events_after: int
    fused_groups: int = 0
    merged_launches: int = 0
    deduped: int = 0
    dead: int = 0
    #: Primitive events the pass removed (duplicates and dead ones) —
    #: the legality check books their work and the report keeps removal
    #: from ever being silent.
    removed: Tuple[TraceEvent, ...] = ()
    notes: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        bits = [f"{self.name}: {self.events_before} -> {self.events_after}"]
        if self.fused_groups:
            bits.append(f"{self.fused_groups} fused")
        if self.merged_launches:
            bits.append(f"{self.merged_launches} merged")
        if self.deduped:
            bits.append(f"{self.deduped} deduped")
        if self.dead:
            bits.append(f"{self.dead} dead")
        for k, v in self.notes.items():
            bits.append(f"{k}={v:g}")
        return ", ".join(bits)


@dataclass
class OptReport:
    """The composed pipeline's ledger."""

    label: str
    passes: List[PassStats] = field(default_factory=list)

    @property
    def events_before(self) -> int:
        return self.passes[0].events_before if self.passes else 0

    @property
    def events_after(self) -> int:
        return self.passes[-1].events_after if self.passes else 0

    def summary(self) -> str:
        lines = [f"optimize({self.label!r}): "
                 f"{self.events_before} -> {self.events_after} events"]
        lines += [f"  {p.summary()}" for p in self.passes]
        return "\n".join(lines)


class TracePass:
    """Base class: a named pure trace transform."""

    name = "pass"

    def run(self, trace: OpTrace) -> Tuple[OpTrace, PassStats]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


def _verify(name: str, before: OpTrace, after: OpTrace,
            stats: PassStats) -> None:
    try:
        validate_trace(after)
    except ValueError as exc:
        raise OptimizationError(f"pass {name!r} broke structure: {exc}")
    try:
        tok_before = replay_tokens(before)
        tok_after = replay_tokens(after)
    except KeyError as exc:
        raise OptimizationError(
            f"pass {name!r}: dependency on undefined event {exc}"
        )
    removed_eids = {e.eid for e in stats.removed}
    expected = set(tok_before) - removed_eids
    got = set(tok_after)
    if got != expected:
        missing = sorted(expected - got)[:5]
        extra = sorted(got - expected)[:5]
        raise OptimizationError(
            f"pass {name!r} changed the primitive event set "
            f"(missing {missing}, extra {extra})"
        )
    for eid in got:
        if tok_after[eid] != tok_before[eid]:
            raise OptimizationError(
                f"pass {name!r} changed the computation of event {eid} "
                "(replay token mismatch)"
            )
    work_before = work_counts(before)
    work_after = work_counts(after)
    for e in stats.removed:
        from .replay import event_work
        work_after[e.kind] = work_after.get(e.kind, 0) + event_work(e)
    if work_before != work_after:
        raise OptimizationError(
            f"pass {name!r} broke work conservation: "
            f"{work_before} != {work_after}"
        )


class PassPipeline:
    """Run passes in order, verifying each one's legality contract."""

    def __init__(self, passes: Sequence[TracePass], *, verify: bool = True):
        self.passes = list(passes)
        self.verify = verify

    def run(self, trace: OpTrace) -> Tuple[OpTrace, OptReport]:
        report = OptReport(label=trace.label)
        current = trace
        for p in self.passes:
            nxt, stats = p.run(current)
            if self.verify:
                _verify(p.name, current, nxt, stats)
            report.passes.append(stats)
            current = nxt
        return current, report


def default_passes() -> List[TracePass]:
    """The standard pipeline, in dependency order: rotations first (so
    fusion cannot hide duplicate automorphisms inside opaque groups),
    twist folding before chain fusion (transforms make better fusion
    hosts than sibling element-wise events), horizontal merging over
    what remains, memory-aware reordering last (a pure permutation)."""
    from .fusion import FoldTwistPass, FuseElementwisePass, MergeLaunchesPass
    from .reorder import PoolReorderPass
    from .rotation import RotationDedupPass

    return [
        RotationDedupPass(),
        FoldTwistPass(),
        FuseElementwisePass(),
        MergeLaunchesPass(),
        PoolReorderPass(),
    ]


def optimize_trace(trace: OpTrace,
                   passes: Optional[Sequence[TracePass]] = None, *,
                   verify: bool = True) -> Tuple[OpTrace, OptReport]:
    """Run the (default or given) pass pipeline over one recording."""
    pipeline = PassPipeline(
        default_passes() if passes is None else passes, verify=verify
    )
    return pipeline.run(trace)
