"""Memory-aware reordering and latency-scored schedule search.

Two layers, both pure permutations (no event or kernel is created,
merged or dropped — replay parity is free by construction):

* :class:`PoolReorderPass` works on the *trace*: a greedy topological
  re-ordering that launches the node freeing the most pool bytes next,
  shrinking the peak :class:`~repro.core.memory_pool.MemoryPool`
  footprint of a double-buffered executor (a buffer is live from its
  producer to its last consumer; the recorded program order routinely
  keeps whole hoisted pane stacks alive across unrelated work).
* :func:`schedule_search` works on the *lowered* :class:`KernelDag`:
  ``run_dag`` launches ready kernels in index order, so the node order
  is the schedule.  The search prices a small set of deterministic
  candidate orders (recorded, critical-path-first, memory-greedy,
  shortest-job-first) and keeps the fastest.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..ir import OpTrace, TraceEvent
from .graphs import event_reads, owner_positions
from .pipeline import PassStats, TracePass

#: Ring-degree-free output size (residue rows written) per event kind.
_OUT_ROWS = {
    "ntt": lambda s: s.get("rows", 0),
    "intt": lambda s: s.get("rows", 0),
    "modup": lambda s: s.get("target_primes", 0) * s.get("polys", 1),
    "moddown": lambda s: s.get("main_primes", 0) * s.get("polys", 1),
    "inner_product": lambda s: s.get("primes", 0)
    * s.get("accumulators", 2) * max(s.get("steps", 1), 1),
    "automorphism": lambda s: s.get("primes", 0) * s.get("polys", 1),
    "modadd": lambda s: s.get("rows", 0),
    "modmul": lambda s: s.get("rows", 0),
    "tensor_product": lambda s: 3 * s.get("rows", 0),
    "divide": lambda s: s.get("rows", 0),
}


def event_output_rows(event: TraceEvent) -> int:
    """Residue rows the event leaves behind for consumers.

    Fused events expose the rows of their internally-unconsumed
    constituents (intermediates elided by fusion hold no pool space).
    """
    if event.fused:
        internal = {c.eid for c in event.fused}
        read_inside: Set[int] = set()
        for c in event.fused:
            read_inside.update(d for d in c.deps if d in internal)
        return sum(event_output_rows(c) for c in event.fused
                   if c.eid not in read_inside)
    fn = _OUT_ROWS.get(event.kind)
    return int(fn(event.shape)) if fn else 0


def trace_pool_peak_rows(trace: OpTrace,
                         order: Optional[Sequence[int]] = None) -> int:
    """Peak live residue rows under producer-to-last-consumer lifetimes.

    ``order`` is a permutation of top-level positions (default: program
    order).  Multiply by ``n * word_bytes`` for bytes at a target ring.
    """
    events = trace.events
    order = list(range(len(events))) if order is None else list(order)
    owner = owner_positions(events)
    remaining: Dict[int, int] = {}
    for e in events:
        for d in event_reads(e):
            p = owner.get(d)
            if p is not None:
                remaining[p] = remaining.get(p, 0) + 1
    live: Dict[int, int] = {}
    peak = 0
    total = 0
    for pos in order:
        e = events[pos]
        rows = event_output_rows(e)
        live[pos] = rows
        total += rows
        peak = max(peak, total)
        for d in event_reads(e):
            p = owner.get(d)
            if p is None:
                continue
            remaining[p] -= 1
            if remaining[p] == 0:
                total -= live.get(p, 0)
    return peak


def _greedy_topo_order(events: Sequence[TraceEvent]) -> List[int]:
    """Topological order that greedily minimizes live pool rows."""
    owner = owner_positions(events)
    preds: List[Set[int]] = []
    consumers: Dict[int, List[int]] = {}
    for pos, e in enumerate(events):
        ps = {owner[d] for d in event_reads(e) if d in owner}
        ps.discard(pos)
        preds.append(ps)
        for p in ps:
            consumers.setdefault(p, []).append(pos)
    remaining = {p: len(cs) for p, cs in consumers.items()}
    out_rows = [event_output_rows(e) for e in events]
    indegree = [len(ps) for ps in preds]
    ready = sorted(p for p, deg in enumerate(indegree) if deg == 0)
    order: List[int] = []
    done: Set[int] = set()
    while ready:
        best = None
        best_key = None
        for pos in ready:
            freed = sum(
                out_rows[p] for p in preds[pos] if remaining.get(p, 0) == 1
                and all(c == pos or c in done
                        for c in consumers.get(p, ()))
            )
            key = (out_rows[pos] - freed, pos)
            if best_key is None or key < best_key:
                best_key = key
                best = pos
        ready.remove(best)
        order.append(best)
        done.add(best)
        for p in preds[best]:
            remaining[p] = remaining.get(p, 1) - 1
        for pos, ps in enumerate(preds):
            if best in ps:
                indegree[pos] -= 1
                if indegree[pos] == 0:
                    ready.append(pos)
        ready.sort()
    if len(order) != len(events):
        raise ValueError("trace contains a dependency cycle")
    return order


class PoolReorderPass(TracePass):
    """Reorder independent events to shrink the peak pool footprint."""

    name = "pool-reorder"

    def run(self, trace: OpTrace) -> Tuple[OpTrace, PassStats]:
        events = trace.events
        before_peak = trace_pool_peak_rows(trace)
        order = _greedy_topo_order(events)
        after_peak = trace_pool_peak_rows(trace, order)
        if after_peak >= before_peak and order != list(range(len(events))):
            # Greedy did not help; keep the recorded order.
            order = list(range(len(events)))
            after_peak = before_peak
        out = dataclasses.replace(
            trace, events=tuple(events[pos] for pos in order)
        )
        return out, PassStats(
            self.name, len(events), len(out.events),
            notes={"pool_peak_rows_before": float(before_peak),
                   "pool_peak_rows_after": float(after_peak)},
        )


# -- schedule search over lowered DAGs --------------------------------------


def schedule_search(dag, device=None, *,
                    strategies: Sequence[str] = ("recorded", "critical",
                                                 "memory", "sjf"),
                    ) -> Tuple[object, Dict[str, float]]:
    """Pick the fastest legal topological order of a lowered DAG.

    Every candidate is a permutation of the same :class:`DagNode` set
    with dependencies re-indexed — ``run_dag`` launches ready nodes in
    index order, so the permutation *is* the schedule.  Returns the best
    :class:`~repro.trace.lowering.KernelDag` and per-strategy latencies.
    """
    from ...gpusim import A100_PCIE_80G, run_dag
    from ...gpusim.engine import simulate_kernel
    from ...gpusim.streams import spec_cache_key

    dev = device if device is not None else (dag.device or A100_PCIE_80G)
    nodes = dag.nodes
    cache: Dict[tuple, float] = {}
    times: List[float] = []
    for nd in nodes:
        key = spec_cache_key(nd.spec)
        t = cache.get(key)
        if t is None:
            t = cache[key] = simulate_kernel(nd.spec, dev).elapsed_us
        times.append(t)

    children: List[List[int]] = [[] for _ in nodes]
    for i, nd in enumerate(nodes):
        for d in nd.deps:
            children[d].append(i)

    def order_for(strategy: str) -> List[int]:
        if strategy == "recorded":
            return list(range(len(nodes)))
        if strategy == "critical":
            cp = [0.0] * len(nodes)
            for i in range(len(nodes) - 1, -1, -1):
                cp[i] = times[i] + max(
                    (cp[c] for c in children[i]), default=0.0
                )
            return _kahn(nodes, lambda i, state: (-cp[i], i))
        if strategy == "sjf":
            return _kahn(nodes, lambda i, state: (times[i], i))
        if strategy == "memory":
            def key(i: int, state: Dict) -> tuple:
                freed = sum(
                    nodes[p].spec.gmem_write_bytes
                    for p in nodes[i].deps
                    if state["remaining"].get(p, 0) == 1
                )
                return (nodes[i].spec.gmem_write_bytes - freed, i)
            return _kahn(nodes, key, track_memory=True)
        raise ValueError(f"unknown schedule strategy {strategy!r}")

    scores: Dict[str, float] = {}
    best_dag = dag
    best_us = None
    for strategy in strategies:
        order = order_for(strategy)
        candidate = permute_dag(dag, order)
        elapsed = run_dag(candidate.to_dag_kernels(), dev).elapsed_us
        scores[strategy] = elapsed
        if best_us is None or elapsed < best_us:
            best_us = elapsed
            best_dag = candidate
    return best_dag, scores


def _kahn(nodes, key: Callable[[int, Dict], tuple], *,
          track_memory: bool = False) -> List[int]:
    indegree = [len(nd.deps) for nd in nodes]
    children: List[List[int]] = [[] for _ in nodes]
    consumers: Dict[int, int] = {}
    for i, nd in enumerate(nodes):
        for d in nd.deps:
            children[d].append(i)
            consumers[d] = consumers.get(d, 0) + 1
    state = {"remaining": dict(consumers)}
    ready = [i for i, deg in enumerate(indegree) if deg == 0]
    order: List[int] = []
    while ready:
        best = min(ready, key=lambda i: key(i, state))
        ready.remove(best)
        order.append(best)
        if track_memory:
            for d in nodes[best].deps:
                state["remaining"][d] -= 1
        for c in children[best]:
            indegree[c] -= 1
            if indegree[c] == 0:
                ready.append(c)
    if len(order) != len(nodes):
        raise ValueError("kernel DAG contains a cycle")
    return order


def permute_dag(dag, order: Sequence[int]):
    """Re-index a :class:`KernelDag` to a new topological order.

    Raises if ``order`` is not a permutation or breaks a dependency
    (a dep must land before its dependent) — the machine-checkable
    legality contract of the schedule search.
    """
    nodes = dag.nodes
    if sorted(order) != list(range(len(nodes))):
        raise ValueError("order is not a permutation of the node set")
    new_index = {old: new for new, old in enumerate(order)}
    new_nodes = []
    for old in order:
        nd = nodes[old]
        deps = tuple(sorted(new_index[d] for d in nd.deps))
        if deps and deps[-1] >= new_index[old]:
            raise ValueError("order violates a dependency edge")
        new_nodes.append(dataclasses.replace(nd, deps=deps))
    return dataclasses.replace(dag, nodes=tuple(new_nodes))
