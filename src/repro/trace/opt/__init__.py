"""Trace-DAG optimizer: a pass-pipeline compiler over recorded runs.

``optimize_trace`` runs the default pipeline — rotation dedup/dead
elimination, twist folding, element-wise chain fusion, horizontal
launch merging, memory-aware reordering — over an
:class:`~repro.trace.ir.OpTrace`; ``schedule_search`` then scores legal
topological orders of the *lowered* DAG by ``run_dag`` latency.  Every
pass is verified against its legality contract (structure, replay
tokens, work conservation; see :mod:`repro.trace.opt.pipeline`), and
``OpTrace.expanded`` restores primitive granularity so tests can replay
an optimized recording bit-identically through the functional layer.

Quick use::

    from repro.trace.opt import optimize_trace, schedule_search
    opt, report = optimize_trace(trace)
    dag = lower_trace(opt, params=params)
    dag, scores = schedule_search(dag)
"""

from .fusion import FoldTwistPass, FuseElementwisePass, MergeLaunchesPass
from .pipeline import (
    OptimizationError,
    OptReport,
    PassPipeline,
    PassStats,
    TracePass,
    default_passes,
    optimize_trace,
)
from .reorder import (
    PoolReorderPass,
    event_output_rows,
    permute_dag,
    schedule_search,
    trace_pool_peak_rows,
)
from .replay import (
    event_work,
    primitive_events,
    replay_tokens,
    sink_signature,
    work_counts,
)
from .rotation import RotationDedupPass, observed_rotation_steps

__all__ = [
    "FoldTwistPass",
    "FuseElementwisePass",
    "MergeLaunchesPass",
    "OptReport",
    "OptimizationError",
    "PassPipeline",
    "PassStats",
    "PoolReorderPass",
    "RotationDedupPass",
    "TracePass",
    "default_passes",
    "event_output_rows",
    "event_work",
    "observed_rotation_steps",
    "optimize_trace",
    "permute_dag",
    "primitive_events",
    "replay_tokens",
    "schedule_search",
    "sink_signature",
    "trace_pool_peak_rows",
    "work_counts",
]
