"""Rotation optimization: duplicate and dead automorphism elimination.

A Galois automorphism is fully determined by its source buffer and its
step (recorded in ``TraceEvent.args``; ``-1`` is conjugation), so two
automorphism events with equal replay tokens — same step, transitively
identical inputs — compute the same permutation.  The pass keeps the
first, drops the rest, and re-points consumers at the survivor; the
legality checker re-derives token equality independently, so a buggy
dedup cannot slip through.

Dead elimination removes automorphism events whose output nothing in
the trace reads — the kernel-level signature of a silently generated
but unused rotation (key) — and reports them in ``PassStats.removed``;
narrowing the observable output set is never silent.

Downstream key-switch work of a deduplicated rotation is deliberately
*not* CSE'd: ``inner_product`` events read key material the recorder
does not track as buffers, so token equality there would not imply
semantic equality.  Duplicate rotations share one gather; their
key-switches stay.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Set, Tuple

from ..ir import OpTrace, TraceEvent
from .graphs import event_reads
from .pipeline import PassStats, TracePass
from .replay import replay_tokens


def observed_rotation_steps(trace: OpTrace) -> List[int]:
    """Slot rotation steps an automorphism event actually applied.

    Sorted and deduplicated; the conjugation sentinel ``-1`` is included
    when a conjugation was observed.  This is what
    :meth:`repro.ckks.bootstrap.Bootstrapper.assert_rotations_consistent`
    audits the generated key set against.
    """
    steps: Set[int] = set()
    for e in trace.events:
        for p in (e.fused if e.fused else (e,)):
            if p.kind == "automorphism":
                steps.update(int(a) for a in p.args)
    steps.discard(0)
    return sorted(steps)


def _rewrite(event: TraceEvent, remap: Dict[int, int]) -> TraceEvent:
    def _deps(deps: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(sorted({remap.get(d, d) for d in deps}))

    if not any(d in remap for d in event.deps) and not any(
            d in remap for c in event.fused for d in c.deps):
        return event
    fused = tuple(
        dataclasses.replace(c, deps=_deps(c.deps)) if any(
            d in remap for d in c.deps) else c
        for c in event.fused
    )
    return dataclasses.replace(event, deps=_deps(event.deps), fused=fused)


class RotationDedupPass(TracePass):
    """Drop duplicate automorphisms; optionally eliminate dead ones."""

    name = "dedup-rotations"

    def __init__(self, eliminate_dead: bool = True):
        self.eliminate_dead = eliminate_dead

    def run(self, trace: OpTrace) -> Tuple[OpTrace, PassStats]:
        events = trace.events
        tokens = replay_tokens(trace)
        survivors: Dict[str, int] = {}
        remap: Dict[int, int] = {}
        drop: Set[int] = set()
        dropped_dups: List[TraceEvent] = []
        for pos, e in enumerate(events):
            if e.kind != "automorphism" or e.fused or "split" in e.shape:
                continue
            tok = tokens[e.eid]
            if tok in survivors:
                remap[e.eid] = survivors[tok]
                drop.add(pos)
                dropped_dups.append(e)
            else:
                survivors[tok] = e.eid

        out_events: List[TraceEvent] = [
            _rewrite(e, remap) if remap else e
            for pos, e in enumerate(events) if pos not in drop
        ]

        removed: List[TraceEvent] = []
        if self.eliminate_dead:
            consumed: Set[int] = set()
            for e in out_events:
                consumed.update(event_reads(e))
            kept: List[TraceEvent] = []
            for e in out_events:
                if (e.kind == "automorphism" and not e.fused
                        and e.eid not in consumed):
                    removed.append(e)
                else:
                    kept.append(e)
            out_events = kept

        out = dataclasses.replace(trace, events=tuple(out_events))
        return out, PassStats(
            self.name, len(events), len(out.events),
            deduped=len(drop), dead=len(removed),
            removed=tuple(dropped_dups) + tuple(removed),
        )
