"""Trace-driven execution: record functional runs, price them as DAGs.

Workflow (see DESIGN.md §10)::

    from repro.trace import record, lower_trace

    with record("hmult", params=ctx.params) as rec:
        ctx.evaluator.hmult(a, b, keys)
    dag = lower_trace(rec.trace, style="pe")
    result = dag.run()          # dependency-aware simulation
    print(result.elapsed_us)

:mod:`~repro.trace.lowering` is imported lazily (PEP 562): the recorder
is imported *by* the instrumented ckks hot paths, while the lowering
imports the core plan builders which import ckks parameters — resolving
``lower_trace`` on first use keeps that cycle open.
"""

from .ir import EVENT_KINDS, OpTrace, TraceEvent
from .recorder import TraceRecorder, active, emit, record, span

__all__ = [
    "EVENT_KINDS",
    "KernelDag",
    "DagNode",
    "OpTrace",
    "STYLES",
    "TraceEvent",
    "TraceRecorder",
    "active",
    "emit",
    "lower_trace",
    "record",
    "span",
]

_LOWERING_NAMES = {"KernelDag", "DagNode", "STYLES", "lower_trace"}


def __getattr__(name: str):
    if name in _LOWERING_NAMES:
        from . import lowering

        return getattr(lowering, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
