"""Trace-driven execution: record functional runs, price them as DAGs.

Workflow (see DESIGN.md §10)::

    from repro.trace import record, lower_trace

    with record("hmult", params=ctx.params) as rec:
        ctx.evaluator.hmult(a, b, keys)
    dag = lower_trace(rec.trace, style="pe")
    result = dag.run()          # dependency-aware simulation
    print(result.elapsed_us)

Optimized workflow (DESIGN.md §12): ``optimize_trace`` runs the
:mod:`~repro.trace.opt` pass pipeline over a recording before lowering,
and ``schedule_search`` picks the fastest legal node order of the
lowered DAG.

:mod:`~repro.trace.lowering` and :mod:`~repro.trace.opt` are imported
lazily (PEP 562): the recorder is imported *by* the instrumented ckks
hot paths, while the lowering imports the core plan builders which
import ckks parameters — resolving ``lower_trace`` on first use keeps
that cycle open.
"""

from .ir import (
    ALL_KINDS,
    ELEMENTWISE_KINDS,
    EVENT_KINDS,
    FUSED_KINDS,
    OpTrace,
    TraceEvent,
    validate_trace,
)
from .recorder import TraceRecorder, active, emit, record, span

__all__ = [
    "ALL_KINDS",
    "ELEMENTWISE_KINDS",
    "EVENT_KINDS",
    "FUSED_KINDS",
    "KernelDag",
    "DagNode",
    "OpTrace",
    "OptReport",
    "STYLES",
    "TraceEvent",
    "TraceRecorder",
    "active",
    "emit",
    "lower_trace",
    "optimize_trace",
    "record",
    "schedule_search",
    "span",
    "validate_trace",
]

_LOWERING_NAMES = {"KernelDag", "DagNode", "STYLES", "lower_trace"}
_OPT_NAMES = {"OptReport", "optimize_trace", "schedule_search"}


def __getattr__(name: str):
    if name in _LOWERING_NAMES:
        from . import lowering

        return getattr(lowering, name)
    if name in _OPT_NAMES:
        from . import opt

        return getattr(opt, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
