"""Trace IR: what one functional CKKS run actually executed.

A :class:`TraceEvent` is one *device-stage* of a homomorphic operation —
an NTT/INTT pass over so-many residue rows, a ModUp/ModDown, a wide-dot
inner product, an automorphism gather, an element-wise kernel — emitted
by the instrumented functional hot paths (:mod:`repro.ckks`) while a
:class:`~repro.trace.recorder.TraceRecorder` is active.  An
:class:`OpTrace` is the ordered list of events of one recording.

Shapes are stored in **ring-degree-free units** (residue rows, prime
counts, digit counts, polynomial counts); the ring degree ``n`` lives
once on the trace.  That is what makes proxy-scale recording work: a
bootstrap recorded functionally at a small proxy ring that shares the
target's modulus-chain structure (``max_level``, ``num_special``,
``dnum``) lowers to full-size kernels by retargeting ``n`` alone — every
level, digit and row count in the trace is already the true one.

Dependencies are *data* dependencies: the recorder maps each read buffer
to the event that last wrote it, so the lowered kernel DAG preserves
exactly the ordering the functional run required and nothing more.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..analysis.annotations import frozen

#: Event kinds the lowering understands (see repro.trace.lowering).
EVENT_KINDS = (
    "ntt",            # forward NTT over `rows` residue rows
    "intt",           # inverse NTT over `rows` residue rows
    "modup",          # basis extension: source_primes -> target_primes, polys
    "moddown",        # ModDown: main_primes/special_primes, polys
    "inner_product",  # keyswitch/wide-dot accumulation: primes, digits[, steps]
    "automorphism",   # gather with sign flips: primes, polys
    "modadd",         # element-wise modular add over `rows` rows
    "modmul",         # element-wise modular multiply over `rows` rows
    "tensor_product", # HMULT d0/d1/d2 kernel over `rows` rows per polynomial
    "divide",         # rescale exact-divide over `rows` output rows, `drop` primes
)


@frozen
@dataclass(frozen=True)
class TraceEvent:
    """One recorded device-stage.

    ``op`` is the ``/``-joined span path ("hmult/keyswitch"); ``span`` is
    the same path with per-instance counters ("hmult#3/keyswitch#4") so
    stages of *different* invocations never blend.  ``shape`` holds the
    ring-degree-free size fields listed per kind in :data:`EVENT_KINDS`,
    plus optional lowering hints (``split``: the PE plan style launches
    this stage as that many independent kernels; ``steps``: batched
    hoisted-rotation multiplicity).
    """

    eid: int
    kind: str
    op: str
    span: str
    level: Optional[int]
    shape: Dict[str, int]
    deps: Tuple[int, ...] = ()

    @property
    def leaf(self) -> str:
        """Innermost span name — the operation this stage belongs to."""
        return self.op.rsplit("/", 1)[-1] if self.op else ""

    @property
    def group(self) -> str:
        """Outermost span name — the workload phase (StC, EvalMod, ...)."""
        return self.op.split("/", 1)[0] if self.op else ""


@frozen
@dataclass(frozen=True)
class OpTrace:
    """One recording: the events of a functional run, in program order."""

    label: str
    n: int
    params: Any = None  # CkksParams of the recorded run (opaque here)
    events: Tuple[TraceEvent, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.events)

    def kind_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def ops(self) -> List[str]:
        """Top-level span names in first-seen order (workload phases)."""
        seen: List[str] = []
        for e in self.events:
            g = e.group
            if g and (not seen or seen[-1] != g) and g not in seen:
                seen.append(g)
        return seen

    def events_for(self, prefix: str) -> List[TraceEvent]:
        """Events whose span path starts with ``prefix``."""
        return [
            e for e in self.events
            if e.op == prefix or e.op.startswith(prefix + "/")
        ]

    def summary(self) -> str:
        counts = self.kind_counts()
        body = ", ".join(f"{k}: {counts[k]}" for k in sorted(counts))
        return (
            f"OpTrace({self.label!r}, n={self.n}, "
            f"{len(self.events)} events: {body})"
        )
