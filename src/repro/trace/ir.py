"""Trace IR: what one functional CKKS run actually executed.

A :class:`TraceEvent` is one *device-stage* of a homomorphic operation —
an NTT/INTT pass over so-many residue rows, a ModUp/ModDown, a wide-dot
inner product, an automorphism gather, an element-wise kernel — emitted
by the instrumented functional hot paths (:mod:`repro.ckks`) while a
:class:`~repro.trace.recorder.TraceRecorder` is active.  An
:class:`OpTrace` is the ordered list of events of one recording.

Shapes are stored in **ring-degree-free units** (residue rows, prime
counts, digit counts, polynomial counts); the ring degree ``n`` lives
once on the trace.  That is what makes proxy-scale recording work: a
bootstrap recorded functionally at a small proxy ring that shares the
target's modulus-chain structure (``max_level``, ``num_special``,
``dnum``) lowers to full-size kernels by retargeting ``n`` alone — every
level, digit and row count in the trace is already the true one.

Dependencies are *data* dependencies: the recorder maps each read buffer
to the event that last wrote it, so the lowered kernel DAG preserves
exactly the ordering the functional run required and nothing more.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from ..analysis.annotations import frozen

#: Event kinds the lowering understands (see repro.trace.lowering).
EVENT_KINDS = (
    "ntt",            # forward NTT over `rows` residue rows
    "intt",           # inverse NTT over `rows` residue rows
    "modup",          # basis extension: source_primes -> target_primes, polys
    "moddown",        # ModDown: main_primes/special_primes, polys
    "inner_product",  # keyswitch/wide-dot accumulation: primes, digits[, steps]
    "automorphism",   # gather with sign flips: primes, polys
    "modadd",         # element-wise modular add over `rows` rows
    "modmul",         # element-wise modular multiply over `rows` rows
    "tensor_product", # HMULT d0/d1/d2 kernel over `rows` rows per polynomial
    "divide",         # rescale exact-divide over `rows` output rows, `drop` primes
)

#: Kinds produced only by the optimizer (:mod:`repro.trace.opt`); each
#: carries its primitive constituents verbatim in ``TraceEvent.fused``.
FUSED_KINDS = (
    "fused_elementwise",  # vertical chain: intermediates elided, one launch
    "fused_launch",       # horizontal merge: independent kernels, one launch
)

#: Kinds the recorder may emit (the primitive vocabulary) plus the fused
#: kinds; :func:`validate_trace` and fhelint's T-KIND rule enforce this.
ALL_KINDS = EVENT_KINDS + FUSED_KINDS

#: Primitive kinds that lower to a single element-wise pass — the fusion
#: candidates (chains of these collapse into one ``fused_elementwise``).
ELEMENTWISE_KINDS = ("modadd", "modmul", "tensor_product", "divide")


@frozen
@dataclass(frozen=True)
class TraceEvent:
    """One recorded device-stage.

    ``op`` is the ``/``-joined span path ("hmult/keyswitch"); ``span`` is
    the same path with per-instance counters ("hmult#3/keyswitch#4") so
    stages of *different* invocations never blend.  ``shape`` holds the
    ring-degree-free size fields listed per kind in :data:`EVENT_KINDS`,
    plus optional lowering hints (``split``: the PE plan style launches
    this stage as that many independent kernels; ``steps``: batched
    hoisted-rotation multiplicity).

    ``args`` carries semantic parameters that shapes cannot express —
    today the slot rotation step(s) of an ``automorphism`` event
    (conjugation is the sentinel ``-1``), which is what lets the
    optimizer prove two rotations identical and the bootstrapper audit
    its key set against what a run actually rotated by.

    ``key`` is the key-material identity of an ``inner_product`` event:
    one recorder-scoped ordinal per switching key the reduction consumed
    (one entry per rotation step for batched hoisting, a single entry
    for a plain key-switch, empty for keyless reductions such as
    plaintext-diagonal wide dots).  Two inner products over identical
    inputs but different evk stacks compute different results, so any
    future cross-``inner_product`` CSE must require equal ``key`` tuples
    — the replay tokens of :mod:`repro.trace.opt.replay` already fold
    the field in.

    ``fused`` is empty on recorded events.  Optimizer-produced events
    (:data:`FUSED_KINDS`, and ``ntt``/``intt`` events that absorbed
    twist work) carry their primitive constituents here *verbatim* —
    original eids, deps and shapes — so an optimized trace expands back
    to primitive granularity for replay verification, and downstream
    events keep referencing constituent eids without any rewriting.

    ``scale`` is the CKKS scale of the ciphertext this stage produced,
    recorded where the emitting operation knows it (element-wise stages
    and the post-rescale NTT).  ``None`` means "not a ciphertext-scale
    boundary" — key-switch interior stages pass their input scale
    through.  The static checker (:mod:`repro.analysis.dagcheck`)
    propagates tags along data deps and verifies consistency at adds,
    divides and tensor products; nothing at runtime consumes the field.
    """

    eid: int
    kind: str
    op: str
    span: str
    level: Optional[int]
    shape: Dict[str, int]
    deps: Tuple[int, ...] = ()
    args: Tuple[int, ...] = ()
    key: Tuple[int, ...] = ()
    fused: Tuple["TraceEvent", ...] = ()
    scale: Optional[float] = None

    @property
    def leaf(self) -> str:
        """Innermost span name — the operation this stage belongs to."""
        return self.op.rsplit("/", 1)[-1] if self.op else ""

    @property
    def group(self) -> str:
        """Outermost span name — the workload phase (StC, EvalMod, ...)."""
        return self.op.split("/", 1)[0] if self.op else ""


@frozen
@dataclass(frozen=True)
class OpTrace:
    """One recording: the events of a functional run, in program order.

    ``rotations`` is the declared rotation-key step set the run's keygen
    provisioned (``-1`` = a conjugation key was generated); ``None``
    means the recording did not declare one.  The static key-audit rule
    checks every ``automorphism`` event's step arguments against it.
    """

    label: str
    n: int
    params: Any = None  # CkksParams of the recorded run (opaque here)
    events: Tuple[TraceEvent, ...] = field(default_factory=tuple)
    rotations: Optional[Tuple[int, ...]] = None

    def __len__(self) -> int:
        return len(self.events)

    def kind_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def ops(self) -> List[str]:
        """Top-level span names in first-seen order (workload phases)."""
        seen: List[str] = []
        for e in self.events:
            g = e.group
            if g and (not seen or seen[-1] != g) and g not in seen:
                seen.append(g)
        return seen

    def events_for(self, prefix: str) -> List[TraceEvent]:
        """Events whose span path starts with ``prefix``."""
        return [
            e for e in self.events
            if e.op == prefix or e.op.startswith(prefix + "/")
        ]

    def summary(self) -> str:
        counts = self.kind_counts()
        body = ", ".join(f"{k}: {counts[k]}" for k in sorted(counts))
        return (
            f"OpTrace({self.label!r}, n={self.n}, "
            f"{len(self.events)} events: {body})"
        )

    def expanded(self) -> "OpTrace":
        """The primitive-granularity view: fused events replaced by their
        constituents, in order.  A recorded trace expands to itself; an
        optimized trace expands to something replay-comparable with the
        recording it came from."""
        out: List[TraceEvent] = []
        for e in self.events:
            out.extend(e.fused if e.fused else (e,))
        return replace(self, events=tuple(out))


def validate_trace(trace: OpTrace) -> OpTrace:
    """Structural validity of a (possibly optimized) trace; chainable.

    Checks, for every event in order: the kind is in :data:`ALL_KINDS`;
    shape values are non-negative ints; every dependency references the
    eid of an *earlier* top-level event or of a constituent carried by an
    earlier fused event; fused constituents are primitive (no nesting),
    element-wise where the kind demands it, and consistent with the
    ``fold_pre``/``fold_post`` accounting on folded transforms.  Raises
    ``ValueError`` on the first violation.
    """
    defined: set = set()
    seen_eids: set = set()
    for pos, e in enumerate(trace.events):
        where = f"event #{pos} (eid {e.eid}, kind {e.kind!r})"
        if e.kind not in ALL_KINDS:
            raise ValueError(f"{where}: unknown kind")
        for k, v in e.shape.items():
            if not isinstance(v, int) or v < 0:
                raise ValueError(f"{where}: shape[{k!r}] = {v!r}")
        for d in e.deps:
            if d not in defined:
                raise ValueError(
                    f"{where}: dep {d} does not reference an earlier event"
                )
        if e.fused:
            if e.kind in ("ntt", "intt"):
                pre = e.shape.get("fold_pre", 0)
                post = e.shape.get("fold_post", 0)
                if pre + post + 1 != len(e.fused):
                    raise ValueError(
                        f"{where}: fold_pre+fold_post+1 != len(fused)"
                    )
                host = e.fused[pre]
                if host.kind != e.kind:
                    raise ValueError(
                        f"{where}: folded host kind {host.kind!r} differs"
                    )
                twists = e.fused[:pre] + e.fused[pre + 1:]
            elif e.kind == "fused_elementwise":
                twists = e.fused
            elif e.kind == "fused_launch":
                twists = ()
            else:
                raise ValueError(f"{where}: kind cannot carry constituents")
            for c in twists:
                if c.kind not in ELEMENTWISE_KINDS:
                    raise ValueError(
                        f"{where}: constituent eid {c.eid} kind {c.kind!r} "
                        "is not element-wise"
                    )
            group_eids = {c.eid for c in e.fused}
            for c in e.fused:
                if c.fused:
                    raise ValueError(
                        f"{where}: constituent eid {c.eid} is itself fused"
                    )
                if c.kind not in EVENT_KINDS:
                    raise ValueError(
                        f"{where}: constituent eid {c.eid} has non-primitive "
                        f"kind {c.kind!r}"
                    )
                for d in c.deps:
                    if d not in defined and d not in group_eids:
                        raise ValueError(
                            f"{where}: constituent eid {c.eid} dep {d} is "
                            "neither earlier nor inside the group"
                        )
        new_eids = (e.eid,) + tuple(c.eid for c in e.fused)
        for eid in new_eids:
            if eid in seen_eids:
                raise ValueError(f"{where}: duplicate eid {eid}")
            seen_eids.add(eid)
        defined.update(new_eids)
    return trace
