"""Lower a recorded :class:`~repro.trace.ir.OpTrace` to a kernel DAG.

One recording, three machine models (mirroring the plan builders the
static layer already has):

* ``"pe"`` — WarpDrive's Parallelism-Enhanced ciphertext-level kernels
  (§IV-C): independent same-kind stages of one operation instance merge
  into a single launch whose grid carries the polynomial dimension, NTT
  stage pairs fold into one launch (:func:`_merge_stages`), and stages
  the PE plan deliberately keeps per-accumulator (the KeySwitch tail)
  honor the recorded ``split`` hint.  This reproduces the Table IX launch
  counts from a functional run instead of a hand-authored list.
* ``"kf"`` — 100x-style kernel-fused polynomial-level launches: every
  stage splits into per-polynomial/per-digit kernels (the ``panes`` and
  ``polys`` hints), NTTs use the WarpDrive engine per pane.
* ``"tensorfhe"`` — like ``"kf"`` but every NTT pane lowers to the
  TensorFHE five-stage plan (35 launches per pane), reproducing the
  launch-count explosion of Table III.

The trace's shapes are ring-degree-free, so the same recording lowers at
any target ring: pass ``params`` of a parameter set sharing the recorded
modulus-chain structure and only ``n`` changes (proxy-scale recording).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.annotations import frozen
from ..core import kernels as K
from ..core.kernels import DEFAULT_GEOMETRY, GeometryConfig
from ..core.ntt_engine import WarpDriveNtt
from ..core.pe_kernel import _merge_stages
from ..gpusim import A100_PCIE_80G, DagKernel, ExecutionResult, GpuSpec, \
    KernelSpec, run_dag
from .ir import OpTrace, TraceEvent

STYLES = ("pe", "kf", "tensorfhe")

#: Kinds that the PE grid merges across a ciphertext's polynomials when
#: the stages are mutually independent (no data path between them).
_MERGEABLE = frozenset(
    {"intt", "ntt", "modadd", "modmul", "divide", "automorphism"}
)


@frozen
@dataclass(frozen=True)
class DagNode:
    """One lowered kernel launch plus its graph context."""

    spec: KernelSpec
    deps: Tuple[int, ...]
    eids: Tuple[int, ...]  # trace events realized by this launch
    op: str                # span path of the primary event
    group: str             # top-level span (workload phase)


@frozen
@dataclass(frozen=True)
class KernelDag:
    """A lowered trace: kernel launches in topological order."""

    nodes: Tuple[DagNode, ...]
    n: int
    style: str
    label: str
    device: Any = None  # GpuSpec the lowering targeted

    @property
    def kernel_count(self) -> int:
        return len(self.nodes)

    @property
    def specs(self) -> List[KernelSpec]:
        return [node.spec for node in self.nodes]

    def to_dag_kernels(self) -> List[DagKernel]:
        return [DagKernel(spec=nd.spec, deps=nd.deps) for nd in self.nodes]

    def run(self, device: Optional[GpuSpec] = None) -> ExecutionResult:
        """Price the DAG on the simulator (dependency-aware overlap)."""
        dev = device if device is not None else self.device
        if dev is None:
            dev = A100_PCIE_80G
        return run_dag(self.to_dag_kernels(), dev)

    def groups(self) -> List[str]:
        """Workload phases in first-seen order."""
        seen: List[str] = []
        for nd in self.nodes:
            if nd.group and nd.group not in seen:
                seen.append(nd.group)
        return seen


class _Group:
    """A set of trace events lowered as one launch (mutable while built)."""

    __slots__ = ("kind", "events", "shape", "op", "span", "first")

    def __init__(self, event: TraceEvent):
        self.kind = event.kind
        self.events = [event]
        self.shape = dict(event.shape)
        self.op = event.op
        self.span = event.span
        self.first = event.eid

    def can_absorb(self, event: TraceEvent) -> bool:
        if event.kind != self.kind or event.span != self.span:
            return False
        s, t = self.shape, event.shape
        if self.kind in ("intt", "ntt", "modadd", "modmul"):
            return True
        if self.kind == "divide":
            return s.get("drop") == t.get("drop")
        if self.kind == "automorphism":
            return s.get("primes") == t.get("primes")
        return False

    def absorb(self, event: TraceEvent) -> None:
        self.events.append(event)
        s, t = self.shape, event.shape
        if self.kind in ("intt", "ntt", "modadd", "modmul", "divide"):
            s["rows"] = s.get("rows", 0) + t.get("rows", 0)
            if "panes" in s or "panes" in t:
                s["panes"] = s.get("panes", 1) + t.get("panes", 1)
        elif self.kind == "automorphism":
            s["polys"] = s.get("polys", 1) + t.get("polys", 1)

    @property
    def eids(self) -> Tuple[int, ...]:
        return tuple(e.eid for e in self.events)

    def external_deps(self) -> Tuple[int, ...]:
        mine = set(self.eids)
        out = set()
        for e in self.events:
            out.update(d for d in e.deps if d not in mine)
        return tuple(sorted(out))


def _event_ancestors(events: Sequence[TraceEvent]) -> Dict[int, frozenset]:
    """Transitive data-dependency closure, keyed by event id."""
    anc: Dict[int, frozenset] = {}
    for e in events:
        s: set = set()
        for d in e.deps:
            s.add(d)
            s |= anc.get(d, frozenset())
        anc[e.eid] = frozenset(s)
    return anc


def _group_events(events: Sequence[TraceEvent], *, merge: bool,
                  ) -> List[_Group]:
    """Partition events into launch groups (PE merge pass when asked).

    Two stages merge only when they share a span instance (same operation
    invocation), have compatible shapes, and neither transitively depends
    on the other — a dependency path means the PE grid cannot run them as
    one launch.
    """
    anc = _event_ancestors(events) if merge else {}
    groups: List[_Group] = []
    open_groups: Dict[Tuple[str, str], List[int]] = {}
    for e in events:
        if merge and e.kind in _MERGEABLE and "split" not in e.shape:
            placed = False
            for gi in open_groups.get((e.span, e.kind), ()):  # noqa: B007
                g = groups[gi]
                if not g.can_absorb(e):
                    continue
                if any(ge in anc[e.eid] for ge in g.eids):
                    continue
                g.absorb(e)
                placed = True
                break
            if placed:
                continue
        groups.append(_Group(e))
        open_groups.setdefault((e.span, e.kind), []).append(len(groups) - 1)
    return groups


def _toposort(groups: List[_Group]) -> List[_Group]:
    """Order groups so dependencies precede dependents.

    Merging places a group at its first member's position, but a later
    member may read a buffer written *after* that position; a stable
    Kahn pass (priority = first event id) restores a valid order.
    """
    eid_to_group: Dict[int, int] = {}
    for gi, g in enumerate(groups):
        for eid in g.eids:
            eid_to_group[eid] = gi
    indegree = [0] * len(groups)
    children: List[List[int]] = [[] for _ in groups]
    for gi, g in enumerate(groups):
        preds = {
            eid_to_group[d] for d in g.external_deps() if d in eid_to_group
        }
        preds.discard(gi)
        indegree[gi] = len(preds)
        for p in preds:
            children[p].append(gi)
    ready = [(groups[gi].first, gi) for gi in range(len(groups))
             if indegree[gi] == 0]
    heapq.heapify(ready)
    order: List[_Group] = []
    while ready:
        _, gi = heapq.heappop(ready)
        order.append(groups[gi])
        for c in children[gi]:
            indegree[c] -= 1
            if indegree[c] == 0:
                heapq.heappush(ready, (groups[c].first, c))
    if len(order) != len(groups):
        raise ValueError("recorded trace contains a dependency cycle")
    return order


def _distribute(total: int, parts: int) -> List[int]:
    base, extra = divmod(int(total), parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


class _Lowerer:
    def __init__(self, *, n: int, style: str, device: GpuSpec,
                 ntt_variant: str, geometry: GeometryConfig, batch: int):
        self.n = n
        self.style = style
        self.device = device
        self.geometry = geometry
        self.batch = batch
        self._wd_ntt = WarpDriveNtt(
            n, variant=ntt_variant, device=device, geometry=geometry
        )
        self._tf_ntt = None
        if style == "tensorfhe":
            from ..baselines.tensorfhe import TensorFheNtt

            self._tf_ntt = TensorFheNtt(n, device=device, geometry=geometry)
        #: (transforms, inverse) -> kernel plan; traces repeat row counts.
        self._ntt_plans: Dict[Tuple[int, bool], List[KernelSpec]] = {}

    # -- NTT stage ------------------------------------------------------
    def _ntt_chain(self, name: str, rows: int, *, inverse: bool,
                   ) -> List[KernelSpec]:
        """Kernels for one NTT pass over ``rows`` residue rows."""
        transforms = rows * self.batch
        if self.style == "tensorfhe":
            plan = self._ntt_plans.get((transforms, False))
            if plan is None:
                plan = self._tf_ntt.kernel_plan(transforms)
                self._ntt_plans[(transforms, False)] = plan
            return [s.renamed(f"{name}.{s.name}") for s in plan]
        plan = self._ntt_plans.get((transforms, inverse))
        if plan is None:
            plan = self._wd_ntt.kernel_plan(transforms, inverse=inverse)
            self._ntt_plans[(transforms, inverse)] = plan
        if self.style == "pe":
            spec = plan[0]
            for extra in plan[1:]:
                spec = _merge_stages(spec, extra)
            return [spec.renamed(name, stage=name)]
        return [s.renamed(f"{name}[{i + 1}/{len(plan)}]")
                for i, s in enumerate(plan)]

    # -- one launch group ----------------------------------------------
    def atoms(self, g: _Group) -> Tuple[List[List[KernelSpec]], str]:
        """Lower one group to launch atoms.

        Returns ``(parts, mode)``: ``parts`` is a list of kernel chains
        (each chain serializes internally); ``mode`` is ``"parallel"``
        (parts are independent) — chains of a single part cover the
        sequential NTT-stage case.
        """
        kind, shape = g.kind, g.shape
        name = f"{_leaf(g.op)}.{kind}"
        split = self._split_count(kind, shape)
        if kind in ("ntt", "intt"):
            rows = shape["rows"]
            parts = []
            for i, r in enumerate(_distribute(rows, split)):
                if r <= 0:
                    continue
                part_name = name if split == 1 else f"{name}[{i}]"
                parts.append(self._ntt_chain(
                    part_name, r, inverse=(kind == "intt")
                ))
            return parts, "parallel"
        parts = []
        for i, spec in enumerate(self._split_specs(kind, shape, name, split)):
            parts.append([spec])
        return parts, "parallel"

    def _split_count(self, kind: str, shape: Dict[str, int]) -> int:
        split = shape.get("split", 1)
        if self.style == "pe":
            return split
        # Polynomial-level styles launch once per pane/polynomial/step.
        panes = shape.get("panes", 0)
        polys = shape.get("polys", 0)
        steps = shape.get("steps", 0)
        if kind in ("ntt", "intt"):
            return max(split, panes, 1)
        if kind == "inner_product":
            return max(split, steps, 1)
        if kind in ("modup", "moddown", "automorphism"):
            return max(split, polys, 1)
        return max(split, 1)

    def _split_specs(self, kind: str, shape: Dict[str, int], name: str,
                     split: int) -> List[KernelSpec]:
        n, b, geo = self.n, self.batch, self.geometry
        specs: List[KernelSpec] = []
        for i in range(split):
            part = name if split == 1 else f"{name}[{i}]"
            if kind == "modup":
                polys = _distribute(shape.get("polys", 1), split)[i]
                if polys <= 0:
                    continue
                specs.append(K.modup_kernel(
                    part, n, shape["source_primes"], shape["target_primes"],
                    polys=polys * b, geometry=geo, stage="ModUp",
                ))
            elif kind == "moddown":
                polys = _distribute(shape.get("polys", 1), split)[i]
                if polys <= 0:
                    continue
                specs.append(K.moddown_kernel(
                    part, n, shape["main_primes"], shape["special_primes"],
                    polys=polys * b, geometry=geo, stage="ModDown",
                ))
            elif kind == "inner_product":
                steps = shape.get("steps", 1)
                per = _distribute(steps, split)[i] if split > 1 else steps
                if per <= 0:
                    continue
                specs.append(K.inner_product_kernel(
                    part, n, shape["primes"] * per * b, shape["digits"],
                    accumulators=shape.get("accumulators", 2),
                    geometry=geo, stage="InProd",
                ))
            elif kind == "automorphism":
                polys = _distribute(shape.get("polys", 2), split)[i]
                if polys <= 0:
                    continue
                specs.append(K.automorphism_kernel(
                    part, n, shape["primes"], polys=polys * b, geometry=geo,
                ))
            elif kind == "modadd":
                rows = _distribute(shape["rows"], split)[i]
                if rows <= 0:
                    continue
                specs.append(K.modadd_kernel(part, n * rows * b,
                                             geometry=geo))
            elif kind == "modmul":
                rows = _distribute(shape["rows"], split)[i]
                if rows <= 0:
                    continue
                specs.append(K.modmul_kernel(part, n * rows * b,
                                             geometry=geo))
            elif kind == "tensor_product":
                rows = _distribute(shape["rows"], split)[i]
                if rows <= 0:
                    continue
                specs.append(K.elementwise_kernel(
                    part, n * rows * b,
                    ops_per_element=4 * 7 + 2 * 2,
                    read_words=4, write_words=3, geometry=geo,
                    stage="TensorProduct",
                ))
            elif kind == "divide":
                rows = _distribute(shape["rows"], split)[i]
                drop = shape.get("drop", 1)
                if rows <= 0:
                    continue
                specs.append(K.elementwise_kernel(
                    part, n * rows * b,
                    ops_per_element=drop * (7 + 2),
                    read_words=1 + drop, write_words=1, geometry=geo,
                    stage="Rescale",
                ))
            else:
                raise ValueError(f"cannot lower trace event kind {kind!r}")
        return specs


def _leaf(op: str) -> str:
    return op.rsplit("/", 1)[-1] if op else "trace"


def _group_label(op: str) -> str:
    return op.split("/", 1)[0] if op else ""


def lower_trace(trace: OpTrace, *, params: Any = None, style: str = "pe",
                device: GpuSpec = A100_PCIE_80G,
                ntt_variant: str = "wd-fuse",
                geometry: GeometryConfig = DEFAULT_GEOMETRY,
                batch: int = 1) -> KernelDag:
    """Translate a recording into a :class:`KernelDag`.

    ``params`` retargets the ring degree: it must share the recorded
    parameter set's modulus-chain structure (``max_level``,
    ``num_special``, ``dnum``) because every prime/digit/row count in the
    trace is taken at face value; only ``n`` is substituted.  ``batch``
    scales every launch to a batch of ciphertexts, exactly as the static
    plan builders do.
    """
    if style not in STYLES:
        raise ValueError(f"unknown lowering style {style!r}; one of {STYLES}")
    n = trace.n
    if params is not None:
        rec = trace.params
        if rec is not None:
            for field_name in ("max_level", "num_special", "dnum",
                               "rescale_primes"):
                a = getattr(rec, field_name, None)
                b = getattr(params, field_name, None)
                if a is not None and b is not None and a != b:
                    raise ValueError(
                        f"cannot retarget trace: {field_name} differs "
                        f"(recorded {a}, target {b}) — the trace's chain "
                        "structure must match the target parameter set"
                    )
        n = params.n
    if not n:
        raise ValueError("trace has no ring degree and no params given")

    lowerer = _Lowerer(n=n, style=style, device=device,
                       ntt_variant=ntt_variant, geometry=geometry,
                       batch=batch)
    groups = _toposort(_group_events(trace.events, merge=(style == "pe")))

    nodes: List[DagNode] = []
    #: eid -> node indices downstream readers must wait on.
    exports: Dict[int, Tuple[int, ...]] = {}
    for g in groups:
        dep_nodes = sorted({
            ni for d in g.external_deps() for ni in exports.get(d, ())
        })
        parts, _ = lowerer.atoms(g)
        tails: List[int] = []
        for chain in parts:
            prev: Optional[int] = None
            for spec in chain:
                deps = (prev,) if prev is not None else tuple(dep_nodes)
                nodes.append(DagNode(
                    spec=spec, deps=tuple(deps), eids=g.eids, op=g.op,
                    group=_group_label(g.op),
                ))
                prev = len(nodes) - 1
            if prev is not None:
                tails.append(prev)
        out = tuple(tails)
        for eid in g.eids:
            exports[eid] = out
    return KernelDag(nodes=tuple(nodes), n=n, style=style,
                     label=trace.label, device=device)
