"""Lower a recorded :class:`~repro.trace.ir.OpTrace` to a kernel DAG.

One recording, three machine models (mirroring the plan builders the
static layer already has):

* ``"pe"`` — WarpDrive's Parallelism-Enhanced ciphertext-level kernels
  (§IV-C): independent same-kind stages of one operation instance merge
  into a single launch whose grid carries the polynomial dimension, NTT
  stage pairs fold into one launch (:func:`_merge_stages`), and stages
  the PE plan deliberately keeps per-accumulator (the KeySwitch tail)
  honor the recorded ``split`` hint.  This reproduces the Table IX launch
  counts from a functional run instead of a hand-authored list.
* ``"kf"`` — 100x-style kernel-fused polynomial-level launches: every
  stage splits into per-polynomial/per-digit kernels (the ``panes`` and
  ``polys`` hints), NTTs use the WarpDrive engine per pane.
* ``"tensorfhe"`` — like ``"kf"`` but every NTT pane lowers to the
  TensorFHE five-stage plan (35 launches per pane), reproducing the
  launch-count explosion of Table III.

The trace's shapes are ring-degree-free, so the same recording lowers at
any target ring: pass ``params`` of a parameter set sharing the recorded
modulus-chain structure and only ``n`` changes (proxy-scale recording).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.annotations import frozen
from ..core import costs
from ..core import kernels as K
from ..core.kernels import DEFAULT_GEOMETRY, GeometryConfig
from ..core.ntt_engine import WarpDriveNtt
from ..core.pe_kernel import _merge_stages
from ..gpusim import A100_PCIE_80G, DagKernel, ExecutionResult, GpuSpec, \
    KernelSpec, run_dag
from .ir import OpTrace, TraceEvent

STYLES = ("pe", "kf", "tensorfhe")

# -- declared tuning knobs (DESIGN.md §14) ----------------------------------

from ..tuning.knobs import Boolean, Choice, KnobSpec, \
    register_knob  # noqa: E402

register_knob(KnobSpec(
    name="machine.style", layer="trace",
    domain=Choice(STYLES), default="pe",
    doc="Machine model traces lower to: WarpDrive PE ciphertext-level "
        "launches, 100x-style kernel-fused, or TensorFHE.",
    observe=lambda pipe: pipe.style,
))
register_knob(KnobSpec(
    name="dagopt.optimize", layer="trace",
    domain=Boolean(), default=False,
    doc="Run the repro.trace.opt pass pipeline over recordings before "
        "lowering (fusion, rotation dedup, twist folding).",
    observe=lambda pipe: pipe.optimize,
))
register_knob(KnobSpec(
    name="dagopt.search", layer="trace",
    domain=Boolean(), default=False,
    doc="Re-order lowered DAGs with schedule_search before pricing.",
    observe=lambda pipe: pipe.search,
))

#: Kinds that the PE grid merges across a ciphertext's polynomials when
#: the stages are mutually independent (no data path between them).
_MERGEABLE = frozenset(
    {"intt", "ntt", "modadd", "modmul", "divide", "automorphism"}
)


@frozen
@dataclass(frozen=True)
class DagNode:
    """One lowered kernel launch plus its graph context."""

    spec: KernelSpec
    deps: Tuple[int, ...]
    eids: Tuple[int, ...]  # trace events realized by this launch
    op: str                # span path of the primary event
    group: str             # top-level span (workload phase)


@frozen
@dataclass(frozen=True)
class KernelDag:
    """A lowered trace: kernel launches in topological order."""

    nodes: Tuple[DagNode, ...]
    n: int
    style: str
    label: str
    device: Any = None  # GpuSpec the lowering targeted

    @property
    def kernel_count(self) -> int:
        return len(self.nodes)

    @property
    def specs(self) -> List[KernelSpec]:
        return [node.spec for node in self.nodes]

    def to_dag_kernels(self) -> List[DagKernel]:
        return [DagKernel(spec=nd.spec, deps=nd.deps) for nd in self.nodes]

    def run(self, device: Optional[GpuSpec] = None) -> ExecutionResult:
        """Price the DAG on the simulator (dependency-aware overlap)."""
        dev = device if device is not None else self.device
        if dev is None:
            dev = A100_PCIE_80G
        return run_dag(self.to_dag_kernels(), dev)

    def groups(self) -> List[str]:
        """Workload phases in first-seen order."""
        seen: List[str] = []
        for nd in self.nodes:
            if nd.group and nd.group not in seen:
                seen.append(nd.group)
        return seen


class _Group:
    """A set of trace events lowered as one launch (mutable while built)."""

    __slots__ = ("kind", "events", "shape", "op", "span", "first")

    def __init__(self, event: TraceEvent):
        self.kind = event.kind
        self.events = [event]
        self.shape = dict(event.shape)
        self.op = event.op
        self.span = event.span
        self.first = event.eid

    def can_absorb(self, event: TraceEvent) -> bool:
        if event.kind != self.kind or event.span != self.span:
            return False
        # Optimizer-produced fused events already chose their launch
        # boundary; the PE grid merge must not re-partition them.
        if event.fused or self.events[0].fused:
            return False
        s, t = self.shape, event.shape
        if self.kind in ("intt", "ntt", "modadd", "modmul"):
            return True
        if self.kind == "divide":
            return s.get("drop") == t.get("drop")
        if self.kind == "automorphism":
            return s.get("primes") == t.get("primes")
        return False

    def absorb(self, event: TraceEvent) -> None:
        self.events.append(event)
        s, t = self.shape, event.shape
        if self.kind in ("intt", "ntt", "modadd", "modmul", "divide"):
            s["rows"] = s.get("rows", 0) + t.get("rows", 0)
            if "panes" in s or "panes" in t:
                s["panes"] = s.get("panes", 1) + t.get("panes", 1)
        elif self.kind == "automorphism":
            s["polys"] = s.get("polys", 1) + t.get("polys", 1)

    @property
    def eids(self) -> Tuple[int, ...]:
        return tuple(e.eid for e in self.events)

    @property
    def all_eids(self) -> Tuple[int, ...]:
        """Event ids realized by this launch, constituents included.

        Consumers of an event swallowed by a fused launch still name the
        constituent eid in their deps; exporting every covered id keeps
        the eid->node map total.
        """
        out: List[int] = []
        for e in self.events:
            out.append(e.eid)
            out.extend(c.eid for c in e.fused)
        return tuple(out)

    def external_deps(self) -> Tuple[int, ...]:
        mine = set(self.all_eids)
        out = set()
        for e in self.events:
            out.update(d for d in e.deps if d not in mine)
        return tuple(sorted(out))


def _event_ancestors(events: Sequence[TraceEvent]) -> Dict[int, frozenset]:
    """Transitive data-dependency closure, keyed by event id.

    A fused event's constituents resolve to the fused event itself:
    depending on a constituent is depending on the launch that realizes
    it, so the closure stays connected across optimizer-fused nodes.
    """
    anc: Dict[int, frozenset] = {}
    owner: Dict[int, int] = {}
    for e in events:
        for c in e.fused:
            owner[c.eid] = e.eid
        s: set = set()
        for d in e.deps:
            t = owner.get(d, d)
            s.add(t)
            s |= anc.get(t, frozenset())
        fs = frozenset(s)
        anc[e.eid] = fs
        for c in e.fused:
            anc[c.eid] = fs
    return anc


def _group_events(events: Sequence[TraceEvent], *, merge: bool,
                  ) -> List[_Group]:
    """Partition events into launch groups (PE merge pass when asked).

    Two stages merge only when they share a span instance (same operation
    invocation), have compatible shapes, and neither transitively depends
    on the other — a dependency path means the PE grid cannot run them as
    one launch.
    """
    anc = _event_ancestors(events) if merge else {}
    groups: List[_Group] = []
    open_groups: Dict[Tuple[str, str], List[int]] = {}
    for e in events:
        if merge and e.kind in _MERGEABLE and "split" not in e.shape \
                and not e.fused:
            placed = False
            for gi in open_groups.get((e.span, e.kind), ()):  # noqa: B007
                g = groups[gi]
                if not g.can_absorb(e):
                    continue
                if any(ge in anc[e.eid] for ge in g.eids):
                    continue
                g.absorb(e)
                placed = True
                break
            if placed:
                continue
        groups.append(_Group(e))
        open_groups.setdefault((e.span, e.kind), []).append(len(groups) - 1)
    return groups


def _toposort(groups: List[_Group]) -> List[_Group]:
    """Order groups so dependencies precede dependents.

    Merging places a group at its first member's position, but a later
    member may read a buffer written *after* that position; a stable
    Kahn pass (priority = first event id) restores a valid order.
    """
    eid_to_group: Dict[int, int] = {}
    for gi, g in enumerate(groups):
        for eid in g.all_eids:
            eid_to_group[eid] = gi
    indegree = [0] * len(groups)
    children: List[List[int]] = [[] for _ in groups]
    for gi, g in enumerate(groups):
        preds = {
            eid_to_group[d] for d in g.external_deps() if d in eid_to_group
        }
        preds.discard(gi)
        indegree[gi] = len(preds)
        for p in preds:
            children[p].append(gi)
    ready = [(groups[gi].first, gi) for gi in range(len(groups))
             if indegree[gi] == 0]
    heapq.heapify(ready)
    order: List[_Group] = []
    while ready:
        _, gi = heapq.heappop(ready)
        order.append(groups[gi])
        for c in children[gi]:
            indegree[c] -= 1
            if indegree[c] == 0:
                heapq.heappush(ready, (groups[c].first, c))
    if len(order) != len(groups):
        raise ValueError("recorded trace contains a dependency cycle")
    return order


def _distribute(total: int, parts: int) -> List[int]:
    base, extra = divmod(int(total), parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


class _Lowerer:
    def __init__(self, *, n: int, style: str, device: GpuSpec,
                 ntt_variant: str, geometry: GeometryConfig, batch: int):
        self.n = n
        self.style = style
        self.device = device
        self.geometry = geometry
        self.batch = batch
        self._wd_ntt = WarpDriveNtt(
            n, variant=ntt_variant, device=device, geometry=geometry
        )
        self._tf_ntt = None
        if style == "tensorfhe":
            from ..baselines.tensorfhe import TensorFheNtt

            self._tf_ntt = TensorFheNtt(n, device=device, geometry=geometry)
        #: (transforms, inverse) -> kernel plan; traces repeat row counts.
        self._ntt_plans: Dict[Tuple[int, bool], List[KernelSpec]] = {}

    # -- NTT stage ------------------------------------------------------
    def _ntt_chain(self, name: str, rows: int, *, inverse: bool,
                   ) -> List[KernelSpec]:
        """Kernels for one NTT pass over ``rows`` residue rows."""
        transforms = rows * self.batch
        if self.style == "tensorfhe":
            plan = self._ntt_plans.get((transforms, False))
            if plan is None:
                plan = self._tf_ntt.kernel_plan(transforms)
                self._ntt_plans[(transforms, False)] = plan
            return [s.renamed(f"{name}.{s.name}") for s in plan]
        plan = self._ntt_plans.get((transforms, inverse))
        if plan is None:
            plan = self._wd_ntt.kernel_plan(transforms, inverse=inverse)
            self._ntt_plans[(transforms, inverse)] = plan
        if self.style == "pe":
            spec = plan[0]
            for extra in plan[1:]:
                spec = _merge_stages(spec, extra)
            return [spec.renamed(name, stage=name)]
        return [s.renamed(f"{name}[{i + 1}/{len(plan)}]")
                for i, s in enumerate(plan)]

    # -- one launch group ----------------------------------------------
    def atoms(self, g: _Group) -> Tuple[List[List[KernelSpec]], str]:
        """Lower one group to launch atoms.

        Returns ``(parts, mode)``: ``parts`` is a list of kernel chains
        (each chain serializes internally); ``mode`` is ``"parallel"``
        (parts are independent) — chains of a single part cover the
        sequential NTT-stage case.
        """
        kind, shape = g.kind, g.shape
        name = f"{_leaf(g.op)}.{kind}"
        if len(g.events) == 1 and g.events[0].fused:
            return self._fused_atoms(g.events[0], name)
        split = self._split_count(kind, shape)
        if kind in ("ntt", "intt"):
            rows = shape["rows"]
            parts = []
            for i, r in enumerate(_distribute(rows, split)):
                if r <= 0:
                    continue
                part_name = name if split == 1 else f"{name}[{i}]"
                parts.append(self._ntt_chain(
                    part_name, r, inverse=(kind == "intt")
                ))
            return parts, "parallel"
        parts = []
        for i, spec in enumerate(self._split_specs(kind, shape, name, split)):
            parts.append([spec])
        return parts, "parallel"

    def _split_count(self, kind: str, shape: Dict[str, int]) -> int:
        split = shape.get("split", 1)
        if self.style == "pe":
            return split
        # Polynomial-level styles launch once per pane/polynomial/step.
        panes = shape.get("panes", 0)
        polys = shape.get("polys", 0)
        steps = shape.get("steps", 0)
        if kind in ("ntt", "intt"):
            return max(split, panes, 1)
        if kind == "inner_product":
            return max(split, steps, 1)
        if kind in ("modup", "moddown", "automorphism"):
            return max(split, polys, 1)
        return max(split, 1)

    def _split_specs(self, kind: str, shape: Dict[str, int], name: str,
                     split: int) -> List[KernelSpec]:
        n, b, geo = self.n, self.batch, self.geometry
        specs: List[KernelSpec] = []
        for i in range(split):
            part = name if split == 1 else f"{name}[{i}]"
            if kind == "modup":
                polys = _distribute(shape.get("polys", 1), split)[i]
                if polys <= 0:
                    continue
                specs.append(K.modup_kernel(
                    part, n, shape["source_primes"], shape["target_primes"],
                    polys=polys * b, geometry=geo, stage="ModUp",
                ))
            elif kind == "moddown":
                polys = _distribute(shape.get("polys", 1), split)[i]
                if polys <= 0:
                    continue
                specs.append(K.moddown_kernel(
                    part, n, shape["main_primes"], shape["special_primes"],
                    polys=polys * b, geometry=geo, stage="ModDown",
                ))
            elif kind == "inner_product":
                steps = shape.get("steps", 1)
                per = _distribute(steps, split)[i] if split > 1 else steps
                if per <= 0:
                    continue
                specs.append(K.inner_product_kernel(
                    part, n, shape["primes"] * per * b, shape["digits"],
                    accumulators=shape.get("accumulators", 2),
                    geometry=geo, stage="InProd",
                ))
            elif kind == "automorphism":
                polys = _distribute(shape.get("polys", 2), split)[i]
                if polys <= 0:
                    continue
                specs.append(K.automorphism_kernel(
                    part, n, shape["primes"], polys=polys * b, geometry=geo,
                ))
            elif kind == "modadd":
                rows = _distribute(shape["rows"], split)[i]
                if rows <= 0:
                    continue
                specs.append(K.modadd_kernel(part, n * rows * b,
                                             geometry=geo))
            elif kind == "modmul":
                rows = _distribute(shape["rows"], split)[i]
                if rows <= 0:
                    continue
                specs.append(K.modmul_kernel(part, n * rows * b,
                                             geometry=geo))
            elif kind == "tensor_product":
                rows = _distribute(shape["rows"], split)[i]
                if rows <= 0:
                    continue
                specs.append(K.elementwise_kernel(
                    part, n * rows * b,
                    ops_per_element=4 * 7 + 2 * 2,
                    read_words=4, write_words=3, geometry=geo,
                    stage="TensorProduct",
                ))
            elif kind == "divide":
                rows = _distribute(shape["rows"], split)[i]
                drop = shape.get("drop", 1)
                if rows <= 0:
                    continue
                specs.append(K.elementwise_kernel(
                    part, n * rows * b,
                    ops_per_element=drop * (7 + 2),
                    read_words=1 + drop, write_words=1, geometry=geo,
                    stage="Rescale",
                ))
            else:
                raise ValueError(f"cannot lower trace event kind {kind!r}")
        return specs

    # -- optimizer-fused events ----------------------------------------
    def _fused_atoms(self, event: TraceEvent, name: str,
                     ) -> Tuple[List[List[KernelSpec]], str]:
        """Lower an optimizer-produced fused event (DESIGN.md §12)."""
        if event.kind == "fused_elementwise":
            return [[self._fused_elementwise_spec(event, name)]], "parallel"
        if event.kind == "fused_launch":
            return [[self._fused_launch_spec(event, name)]], "parallel"
        if event.kind in ("ntt", "intt"):
            return [self._folded_ntt_chain(event, name)], "parallel"
        raise ValueError(
            f"cannot lower fused trace event kind {event.kind!r}"
        )

    def _fused_elementwise_spec(self, event: TraceEvent, name: str,
                                ) -> KernelSpec:
        """One launch for a fused element-wise chain.

        The grid covers the widest constituent; narrower links contribute
        fractional per-element work.  Intermediates consumed inside the
        chain stay in registers, so their writes and the matching
        re-reads drop out of the traffic totals.
        """
        max_rows = max(c.shape.get("rows", 1) for c in event.fused)
        internal = {c.eid for c in event.fused}
        read_inside: set = set()
        for c in event.fused:
            read_inside.update(d for d in c.deps if d in internal)
        ops = reads = writes = 0.0
        for c in event.fused:
            frac = c.shape.get("rows", 1) / max_rows
            o, r, w = _EW_COSTS[c.kind](c.shape)
            ops += o * frac
            reads += r * frac
            if c.eid in read_inside:
                reads -= w * frac  # written and re-read in registers
            else:
                writes += w * frac
        return K.elementwise_kernel(
            name, self.n * max_rows * self.batch,
            ops_per_element=ops, read_words=max(reads, 0.0),
            write_words=writes, geometry=self.geometry,
            stage="FusedElementwise", fused=len(event.fused),
        )

    def _fused_launch_spec(self, event: TraceEvent, name: str,
                           ) -> KernelSpec:
        """Concatenate independent constituents into one launch grid."""
        specs: List[KernelSpec] = []
        for c in event.fused:
            split = self._split_count(c.kind, c.shape)
            sub = f"{name}+{c.kind}{c.eid}"
            specs.extend(self._split_specs(c.kind, c.shape, sub, split))
        merged = specs[0]
        for s in specs[1:]:
            merged = _concat_specs(merged, s)
        return merged.renamed(name, fused=len(event.fused)).validate()

    def _folded_ntt_chain(self, event: TraceEvent, name: str,
                          ) -> List[KernelSpec]:
        """NTT/INTT chain with twist work folded into its end stages."""
        pre_n = event.shape.get("fold_pre", 0)
        host = event.fused[pre_n]
        chain = list(self._ntt_chain(
            name, host.shape["rows"], inverse=(event.kind == "intt")
        ))
        chain[0] = _fold_twist(chain[0], event.fused[:pre_n],
                               n=self.n, b=self.batch, side="pre")
        chain[-1] = _fold_twist(chain[-1], event.fused[pre_n + 1:],
                                n=self.n, b=self.batch, side="post")
        return chain


#: (ops_per_element, read_words, write_words) of each element-wise kind,
#: matching the builders ``_split_specs`` uses for the unfused events.
_EW_COSTS = {
    "modadd": lambda s: (costs.MODADD_OPS, 2.0, 1.0),
    "modmul": lambda s: (costs.BARRETT_MULMOD_OPS, 2.0, 1.0),
    "tensor_product": lambda s: (4 * 7 + 2 * 2, 4.0, 3.0),
    "divide": lambda s: (s.get("drop", 1) * (7 + 2),
                         1.0 + s.get("drop", 1), 1.0),
}


def _concat_specs(a: KernelSpec, b: KernelSpec) -> KernelSpec:
    """Fuse two independent launches into one grid (horizontal merge).

    Work, traffic and blocks add (the merged grid carries both);
    per-block resources take the max, throughput derates take the min.
    """
    hints = dict(b.stall_hints)
    for k, v in a.stall_hints.items():
        hints[k] = max(hints.get(k, 0.0), v)
    return replace(
        a,
        blocks=a.blocks + b.blocks,
        warps_per_block=max(a.warps_per_block, b.warps_per_block),
        int32_ops=a.int32_ops + b.int32_ops,
        tensor_macs=a.tensor_macs + b.tensor_macs,
        gmem_read_bytes=a.gmem_read_bytes + b.gmem_read_bytes,
        gmem_write_bytes=a.gmem_write_bytes + b.gmem_write_bytes,
        smem_read_bytes=a.smem_read_bytes + b.smem_read_bytes,
        smem_write_bytes=a.smem_write_bytes + b.smem_write_bytes,
        smem_per_block_bytes=max(a.smem_per_block_bytes,
                                 b.smem_per_block_bytes),
        regs_per_thread=max(a.regs_per_thread, b.regs_per_thread),
        barriers=max(a.barriers, b.barriers),
        gmem_round_trips=max(a.gmem_round_trips, b.gmem_round_trips),
        coalescing=min(a.coalescing, b.coalescing),
        efficiency=min(a.efficiency, b.efficiency),
        stall_hints=hints,
    )


def _fold_twist(spec: KernelSpec, members: Sequence[TraceEvent], *,
                n: int, b: int, side: str) -> KernelSpec:
    """Fold element-wise twist work into one end of an NTT chain.

    A pre-twist's output (``w`` words/element) fed the host's input, so
    folding elides that round trip and only the member's *extra* operand
    reads remain; a post-twist re-read the host's one output word and
    writes ``w`` of its own.
    """
    if not members:
        return spec
    ops = rd = wr = 0.0
    for c in members:
        elements = n * c.shape.get("rows", 1) * b
        o, r, w = _EW_COSTS[c.kind](c.shape)
        ops += o * elements
        if side == "pre":
            rd += (r - w) * elements
        else:
            rd += (r - 1.0) * elements
            wr += (w - 1.0) * elements
    word = K.WORD_BYTES
    return replace(
        spec,
        int32_ops=spec.int32_ops + ops,
        gmem_read_bytes=max(spec.gmem_read_bytes + rd * word, 0.0),
        gmem_write_bytes=max(spec.gmem_write_bytes + wr * word, 0.0),
        tags={**spec.tags, f"fold_{side}": len(members)},
    ).validate()


def _leaf(op: str) -> str:
    return op.rsplit("/", 1)[-1] if op else "trace"


def _group_label(op: str) -> str:
    return op.split("/", 1)[0] if op else ""


def lower_trace(trace: OpTrace, *, params: Any = None, style: str = "pe",
                device: GpuSpec = A100_PCIE_80G,
                ntt_variant: str = "wd-fuse",
                geometry: GeometryConfig = DEFAULT_GEOMETRY,
                batch: int = 1) -> KernelDag:
    """Translate a recording into a :class:`KernelDag`.

    ``params`` retargets the ring degree: it must share the recorded
    parameter set's modulus-chain structure (``max_level``,
    ``num_special``, ``dnum``) because every prime/digit/row count in the
    trace is taken at face value; only ``n`` is substituted.  ``batch``
    scales every launch to a batch of ciphertexts, exactly as the static
    plan builders do.
    """
    if style not in STYLES:
        raise ValueError(f"unknown lowering style {style!r}; one of {STYLES}")
    n = trace.n
    if params is not None:
        rec = trace.params
        if rec is not None:
            for field_name in ("max_level", "num_special", "dnum",
                               "rescale_primes"):
                a = getattr(rec, field_name, None)
                b = getattr(params, field_name, None)
                if a is not None and b is not None and a != b:
                    raise ValueError(
                        f"cannot retarget trace: {field_name} differs "
                        f"(recorded {a}, target {b}) — the trace's chain "
                        "structure must match the target parameter set"
                    )
        n = params.n
    if not n:
        raise ValueError("trace has no ring degree and no params given")

    lowerer = _Lowerer(n=n, style=style, device=device,
                       ntt_variant=ntt_variant, geometry=geometry,
                       batch=batch)
    groups = _toposort(_group_events(trace.events, merge=(style == "pe")))

    nodes: List[DagNode] = []
    #: eid -> node indices downstream readers must wait on.
    exports: Dict[int, Tuple[int, ...]] = {}
    for g in groups:
        dep_nodes = sorted({
            ni for d in g.external_deps() for ni in exports.get(d, ())
        })
        parts, _ = lowerer.atoms(g)
        tails: List[int] = []
        for chain in parts:
            prev: Optional[int] = None
            for spec in chain:
                deps = (prev,) if prev is not None else tuple(dep_nodes)
                nodes.append(DagNode(
                    spec=spec, deps=tuple(deps), eids=g.all_eids, op=g.op,
                    group=_group_label(g.op),
                ))
                prev = len(nodes) - 1
            if prev is not None:
                tails.append(prev)
        out = tuple(tails)
        for eid in g.all_eids:
            exports[eid] = out
    return KernelDag(nodes=tuple(nodes), n=n, style=style,
                     label=trace.label, device=device)
