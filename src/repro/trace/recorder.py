"""Context-wide trace recorder for the functional CKKS layer.

The instrumented hot paths call the module-level :func:`emit` / :func:`span`
hooks.  When no recording is active both are near-free no-ops (one global
load and a ``None`` check), so the numerical layer pays nothing outside
``with record(...)`` blocks.

Dependency resolution is by buffer identity: every emitted event registers
the Python ``id`` of the objects it writes (ciphertexts expand to their
polynomials, polynomials to their backing arrays), and later reads resolve
against that map.  The recorder pins every registered object in a keepalive
list so ids cannot be recycled mid-recording.  Reads that resolve to no
writer are external inputs — the lowered DAG treats those events as sources.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .ir import OpTrace, TraceEvent

_ACTIVE: Optional["TraceRecorder"] = None


def _buffer_keys(obj: Any) -> Iterator[int]:
    """Identity keys under which a value is tracked.

    Ciphertext-likes (``c0``/``c1``) recurse into both polynomials;
    plaintext-likes (``poly``) recurse into the polynomial; RnsPoly-likes
    expose both the wrapper and the backing ``data`` array, so a
    dependency is found whether the reader saw the wrapper or the array.
    """
    c0 = getattr(obj, "c0", None)
    if c0 is not None and hasattr(obj, "c1"):
        yield from _buffer_keys(c0)
        yield from _buffer_keys(obj.c1)
        return
    poly = getattr(obj, "poly", None)
    if poly is not None and hasattr(obj, "scale"):
        yield from _buffer_keys(poly)
        return
    yield id(obj)
    data = getattr(obj, "data", None)
    if isinstance(data, np.ndarray):
        yield id(data)


class _Span:
    """Context manager pushing one named span onto the recorder stack."""

    __slots__ = ("_rec", "_name", "_level")

    def __init__(self, rec: "TraceRecorder", name: str, level: Optional[int]):
        self._rec = rec
        self._name = name
        self._level = level

    def __enter__(self) -> "_Span":
        self._rec._push(self._name, self._level)
        return self

    def __exit__(self, *exc: Any) -> bool:
        self._rec._pop()
        return False


class _NullSpan:
    """Span stand-in used when no recording is active."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class TraceRecorder:
    """Collects :class:`TraceEvent` objects from instrumented code."""

    def __init__(self, label: str = "", params: Any = None,
                 n: Optional[int] = None):
        self.label = label
        self.params = params
        self.n = int(n if n is not None else getattr(params, "n", 0))
        self.events: List[TraceEvent] = []
        # span stack entries: (name, instance_tag, default_level)
        self._stack: List[Tuple[str, str, Optional[int]]] = []
        self._counts: Dict[str, int] = {}
        self._writers: Dict[int, int] = {}
        self._keepalive: List[Any] = []
        #: id(key object) -> recorder-scoped key-material ordinal.
        self._key_ids: Dict[int, int] = {}

    # -- span management -------------------------------------------------
    def span(self, name: str, level: Optional[int] = None) -> _Span:
        return _Span(self, name, level)

    def _push(self, name: str, level: Optional[int]) -> None:
        parent = self._stack[-1][1] if self._stack else ""
        key = f"{parent}/{name}" if parent else name
        seq = self._counts.get(key, 0)
        self._counts[key] = seq + 1
        self._stack.append((name, f"{key}#{seq}", level))

    def _pop(self) -> None:
        self._stack.pop()

    # -- key-material identity -------------------------------------------
    def key_id(self, key_obj: Any) -> int:
        """Stable ordinal for one piece of key material.

        Ordinals are assigned in first-seen order and scoped to this
        recording, so equal ids mean *the same* switching key object was
        consumed (the property a cross-``inner_product`` CSE pass needs).
        The object is pinned in the keepalive list so its ``id`` cannot
        be recycled mid-recording.
        """
        ordinal = self._key_ids.get(id(key_obj))
        if ordinal is None:
            ordinal = len(self._key_ids)
            self._key_ids[id(key_obj)] = ordinal
            self._keepalive.append(key_obj)
        return ordinal

    # -- event emission --------------------------------------------------
    def emit(self, kind: str, *, level: Optional[int] = None,
             reads: Sequence[Any] = (), writes: Sequence[Any] = (),
             deps: Iterable[int] = (),
             args: Sequence[int] = (),
             key_material: Sequence[Any] = (),
             scale: Optional[float] = None, **shape: int) -> int:
        if level is None:
            for _, _, lvl in reversed(self._stack):
                if lvl is not None:
                    level = lvl
                    break
        dep_set = set(int(d) for d in deps)
        for obj in reads:
            for key in _buffer_keys(obj):
                eid = self._writers.get(key)
                if eid is not None:
                    dep_set.add(eid)
        eid = len(self.events)
        dep_set.discard(eid)
        op_path = "/".join(name for name, _, _ in self._stack)
        span_key = self._stack[-1][1] if self._stack else ""
        event = TraceEvent(
            eid=eid,
            kind=kind,
            op=op_path,
            span=span_key,
            level=level,
            shape={k: int(v) for k, v in shape.items()},
            deps=tuple(sorted(dep_set)),
            args=tuple(int(a) for a in args),
            key=tuple(self.key_id(k) for k in key_material),
            scale=float(scale) if scale is not None else None,
        )
        self.events.append(event)
        for obj in writes:
            self._keepalive.append(obj)
            for key in _buffer_keys(obj):
                self._writers[key] = eid
        if self.n == 0:
            self.n = _infer_n(writes) or _infer_n(reads) or 0
        return eid

    @property
    def trace(self) -> OpTrace:
        return OpTrace(label=self.label, n=self.n, params=self.params,
                       events=tuple(self.events))


def _infer_n(objs: Sequence[Any]) -> int:
    for obj in objs:
        n = getattr(obj, "n", None)
        if isinstance(n, (int, np.integer)) and n > 0:
            return int(n)
        data = getattr(obj, "data", obj)
        shape = getattr(data, "shape", None)
        if shape:
            return int(shape[-1])
    return 0


# -- module-level hooks (what instrumented code calls) --------------------

def active() -> Optional[TraceRecorder]:
    """The recorder currently collecting events, or ``None``."""
    return _ACTIVE


def emit(kind: str, **kwargs: Any) -> Optional[int]:
    """Emit one event into the active recorder; no-op when inactive."""
    rec = _ACTIVE
    if rec is None:
        return None
    return rec.emit(kind, **kwargs)


def span(name: str, level: Optional[int] = None):
    """Open a named span in the active recorder; no-op when inactive."""
    rec = _ACTIVE
    if rec is None:
        return _NULL_SPAN
    return rec.span(name, level)


@contextmanager
def record(label: str = "", params: Any = None, n: Optional[int] = None):
    """Record every instrumented operation executed inside the block.

    Yields the :class:`TraceRecorder`; read ``rec.trace`` afterwards.
    Recordings do not nest — a second ``record`` inside an active one
    raises rather than silently splitting the event stream.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("trace recording is already active; "
                           "recordings do not nest")
    rec = TraceRecorder(label, params=params, n=n)
    _ACTIVE = rec
    try:
        yield rec
    finally:
        _ACTIVE = None
