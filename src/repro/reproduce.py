"""One-shot reproduction summary: ``python -m repro.reproduce``.

Runs the headline experiments (no pytest needed) and prints paper-style
tables with the published numbers alongside. For the full set of tables
and figures run ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import sys

from .analysis import (dagcheck_gate_summary, format_table,
                       lint_gate_summary)
from .baselines import TensorFheNtt, cpu_ntt_throughput_kops
from .baselines.published import TABLE_VII_NTT_KOPS, TABLE_VIII_LATENCY_US
from .ckks import ParameterSets
from .core import VARIANTS, OperationScheduler, WarpDriveNtt


def ntt_summary() -> str:
    sets = ["SET-A", "SET-B", "SET-C", "SET-D", "SET-E"]
    rows = []
    wd_row, tf_row = ["WarpDrive (sim)"], ["TensorFHE (sim)"]
    for s in sets:
        n = ParameterSets.by_name(s).n
        wd_row.append(round(WarpDriveNtt(n).throughput_kops(1024)))
        tf_row.append(round(TensorFheNtt(n).throughput_kops(1024), 1))
    rows.append(tf_row)
    rows.append(["  paper"] + [TABLE_VII_NTT_KOPS["TensorFHE"][s]
                               for s in sets])
    rows.append(wd_row)
    rows.append(["  paper"] + [TABLE_VII_NTT_KOPS["WarpDrive"][s]
                               for s in sets])
    rows.append(
        ["CPU (sim)"]
        + [round(cpu_ntt_throughput_kops(ParameterSets.by_name(s).n), 2)
           if ParameterSets.by_name(s).n <= 2**14 else None
           for s in sets]
    )
    return format_table(["scheme"] + sets, rows,
                        title="NTT throughput, KOPS (Table VII)")


def variant_summary() -> str:
    n = 2**16
    rows = [
        [v, round(WarpDriveNtt(n, variant=v).throughput_kops(1024))]
        for v in VARIANTS
    ]
    return format_table(
        ["variant", "KOPS"], rows,
        title="NTT variants at N=2^16 (Fig. 6) — fused beats single-pipe",
    )


def hmult_summary() -> str:
    sets = ["SET-C", "SET-D", "SET-E"]
    rows = []
    sim = ["WarpDrive HMULT us (sim)"]
    for s in sets:
        sim.append(round(
            OperationScheduler(ParameterSets.by_name(s)).latency_us("hmult")
        ))
    rows.append(sim)
    rows.append(
        ["  paper"]
        + [TABLE_VIII_LATENCY_US["HMULT"]["WarpDrive"][s] for s in sets]
    )
    return format_table(["metric"] + sets, rows,
                        title="HMULT latency (Table VIII)")


def trace_summary() -> str:
    from .gpusim import profile_cache_stats
    from .workloads import (
        HOISTED_ROTATION_FACTOR,
        derived_hoisted_rotation_factor,
        simulate_bootstrap,
        simulate_recorded_bootstrap,
    )

    set_c = OperationScheduler(ParameterSets.set_c())
    boot = OperationScheduler(ParameterSets.boot())
    hand = simulate_bootstrap(scheduler=boot, hoisting="static")
    rec = simulate_recorded_bootstrap(scheduler=boot)
    cache = profile_cache_stats()
    rows = [
        ["hoisting factor (SET-C)",
         round(derived_hoisted_rotation_factor(set_c), 3),
         HOISTED_ROTATION_FACTOR],
        ["Boot total ms", round(rec.total_ms, 1), round(hand.total_ms, 1)],
        ["profile cache hit/miss",
         f"{cache['hits']}/{cache['misses']}", None],
    ]
    return format_table(
        ["metric", "traced", "hand-counted"], rows,
        title="Trace-driven pricing vs hand counts (DESIGN.md §10)",
        col_width=14,
    )


def dagopt_summary() -> str:
    """Trace-DAG optimizer results (DESIGN.md §12).

    Reads ``BENCH_dagopt.json`` when the benchmark has been run;
    otherwise optimizes the recorded SET-C bootstrap live at proxy scale
    (mirroring how :func:`~repro.analysis.lint_gate_summary` degrades
    gracefully without a saved baseline).
    """
    import json
    import os

    rows = []
    path = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                        "BENCH_dagopt.json")
    if os.path.exists(path):
        with open(path) as fh:
            data = json.load(fh)
        for w in data["workloads"]:
            rows.append([
                w["name"], round(w["baseline_us"], 1),
                round(w["best_us"], 1), f"{w['speedup']:.2f}x",
                f"{w['kernels_before']}->{w['kernels_after']}",
            ])
        title = "Trace-DAG optimizer (BENCH_dagopt.json)"
    else:
        from .trace import lower_trace
        from .trace.opt import optimize_trace, schedule_search
        from .workloads import record_bootstrap_trace

        tr = record_bootstrap_trace()
        opt, _ = optimize_trace(tr)
        base = lower_trace(tr, style="pe")
        od = lower_trace(opt, style="pe")
        base_us = base.run().elapsed_us
        _, scores = schedule_search(od)
        best = min(scores.values())
        rows.append([
            "SET-C boot (proxy)", round(base_us, 1), round(best, 1),
            f"{base_us / best:.2f}x",
            f"{base.kernel_count}->{od.kernel_count}",
        ])
        title = "Trace-DAG optimizer (live proxy run; see bench_dagopt)"
    return format_table(
        ["workload", "recorded us", "optimized us", "speedup", "kernels"],
        rows, title=title, col_width=13,
    )


def serving_summary() -> str:
    """Multi-GPU serving results (DESIGN.md §13).

    Reads ``BENCH_serving.json`` when the benchmark has been run;
    otherwise simulates one small boot-only fleet sweep live.
    """
    import json
    import os

    rows = []
    path = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                        "BENCH_serving.json")
    if os.path.exists(path):
        with open(path) as fh:
            data = json.load(fh)
        for w in data["scaling"]:
            for f in w["fleets"]:
                rows.append([
                    w["workload"], f["gpus"],
                    round(f["throughput_jobs_per_s"], 1),
                    round(f["p99_us"] / 1e3, 1),
                    f"x{f['throughput_jobs_per_s'] / w['fleets'][0]['throughput_jobs_per_s']:.2f}",
                ])
        title = (
            "Multi-GPU serving (BENCH_serving.json; memory-aware p99 "
            f"x{data['headline']['memory_aware_vs_round_robin_p99']:.2f} "
            "vs round-robin, dagopt thr "
            f"x{data['headline']['dagopt_throughput_gain']:.2f})"
        )
    else:
        from .serving import ServingConfig, ServingSimulator, default_catalog

        catalog = default_catalog(("boot",))
        base = None
        for gpus in (1, 2, 4):
            rep = ServingSimulator(ServingConfig(
                gpus=gpus, kinds=("boot",), rate_per_s=800.0,
                horizon_us=300_000.0, seed=0), catalog).run()
            thr = rep.throughput_jobs_per_s
            base = thr if base is None else base
            rows.append([
                "boot-only", gpus, round(thr, 1),
                round(rep.latency["p99_us"] / 1e3, 1),
                f"x{thr / base:.2f}",
            ])
        title = "Multi-GPU serving (live run; see bench_serving)"
    return format_table(
        ["workload", "gpus", "jobs/s", "p99 ms", "scaling"],
        rows, title=title, col_width=11,
    )


def gym_summary() -> str:
    """Knob-space search results (DESIGN.md §14).

    Reads ``BENCH_gym.json`` when the benchmark has been run; otherwise
    runs one short live hill-climb over a cheap op-level workload so the
    summary still shows the declared-knob search working end to end.
    The ``backend`` row surfaces the env-declared knob that replaced the
    bare ``REPRO_BACKEND`` lookup.
    """
    import json
    import os

    from .tuning import knob_default

    rows = []
    path = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                        "BENCH_gym.json")
    if os.path.exists(path):
        with open(path) as fh:
            data = json.load(fh)
        for r in data["searchers"]:
            rows.append([
                r["searcher"], r["evaluations"],
                round(r["baseline_latency_us"], 1),
                round(r["best_latency_us"], 1),
                f"{r['baseline_latency_us'] / r['best_latency_us']:.2f}x",
            ])
        title = (
            f"Tuning gym on {data['workload']} (BENCH_gym.json; "
            f"{data['best_searcher']} beats hand-picked config "
            f"{data['speedup_vs_hand_picked']:.2f}x, seed-deterministic)"
        )
    else:
        from .gym import TuningEnv, hill_climb

        result = hill_climb(TuningEnv("op:hmult"), steps=6, seed=0)
        rows.append([
            result.searcher, result.evaluations,
            round(result.baseline_latency_us, 1),
            round(result.best_latency_us, 1),
            f"{result.baseline_latency_us / result.best_latency_us:.2f}x",
        ])
        title = "Tuning gym on op:hmult (live run; see bench_gym)"
    rows.append(["backend knob", None, None, None,
                 knob_default("backend")])
    return format_table(
        ["searcher", "evals", "baseline us", "best us", "gain"],
        rows, title=title, col_width=12,
    )


def main(argv=None) -> int:
    print("WarpDrive reproduction — headline results")
    print("=" * 64)
    for section in (ntt_summary, variant_summary, hmult_summary,
                    trace_summary, dagopt_summary, serving_summary,
                    gym_summary, lint_gate_summary, dagcheck_gate_summary):
        print()
        print(section())
    print()
    print("Full tables/figures: pytest benchmarks/ --benchmark-only")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
