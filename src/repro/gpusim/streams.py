"""Stream-level scheduling of kernel sequences.

Models what the paper observes about CUDA streams (§III-A, §IV-C-2):
kernels in one stream serialize; kernels in different streams overlap only
when together they fit in the SM array — the large grids of FHE kernels
occupy every SM, so multi-stream launches degenerate to serial execution
("stages 2 and 4, which utilize multiple streams, are executed serially on
the GPU due to the large number of SMs used").
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .device import GpuSpec
from .engine import KernelProfile, simulate_kernel
from .kernel import KernelSpec


@dataclass
class TimelineEntry:
    """One executed kernel instance on the device timeline.

    ``index``/``deps`` are populated by :func:`run_dag` (node index in the
    launch graph and the node indices it waited on); stream-based runs
    leave them at their defaults.
    """

    profile: KernelProfile
    stream: int
    start_us: float
    end_us: float
    index: int = -1
    deps: Tuple[int, ...] = ()

    @property
    def name(self) -> str:
        return self.profile.spec.name

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


@dataclass
class ExecutionResult:
    """Full result of scheduling one launch graph."""

    entries: List[TimelineEntry] = field(default_factory=list)
    device: Optional[GpuSpec] = None

    @property
    def elapsed_us(self) -> float:
        return max((e.end_us for e in self.entries), default=0.0)

    @property
    def kernel_count(self) -> int:
        return len(self.entries)

    @property
    def profiles(self) -> List[KernelProfile]:
        return [e.profile for e in self.entries]

    def total_stalls(self):
        merged = None
        for e in self.entries:
            merged = (
                e.profile.stalls
                if merged is None
                else merged.merged_with(e.profile.stalls)
            )
        return merged

    def by_name(self) -> Dict[str, List[TimelineEntry]]:
        groups: Dict[str, List[TimelineEntry]] = {}
        for e in self.entries:
            groups.setdefault(e.name, []).append(e)
        return groups


def run_serial(kernels: Sequence[KernelSpec], device: GpuSpec,
               ) -> ExecutionResult:
    """Execute kernels back-to-back in a single stream."""
    return run_streams([list(kernels)], device)


def run_streams(streams: Sequence[Sequence[KernelSpec]], device: GpuSpec,
                ) -> ExecutionResult:
    """Event-driven scheduling of multiple streams sharing the SM array.

    A kernel starts when its stream's predecessor finished and enough SMs
    are free (``sm_used = min(blocks, sm_count)``). Grids that span the
    device therefore serialize even across streams, reproducing the
    observation in §III-A.
    """
    result = ExecutionResult(device=device)
    profiles = [
        [simulate_kernel(k, device) for k in stream] for stream in streams
    ]
    stream_ready = [0.0] * len(streams)
    next_idx = [0] * len(streams)
    #: (end_time_us, sm_count) of currently running kernels.
    running: List[tuple] = []
    now = 0.0

    def free_sms(at: float) -> int:
        return device.sm_count - sum(
            sms for end, sms in running if end > at
        )

    pending = sum(len(s) for s in streams)
    while pending:
        progressed = False
        for sid, stream in enumerate(profiles):
            i = next_idx[sid]
            if i >= len(stream):
                continue
            prof = stream[i]
            sms_needed = prof.occupancy.sm_used
            # A kernel is runnable once its stream predecessor has finished
            # (ready times are event points, so the loop below always lands
            # `now` exactly on them — a stream whose predecessor finishes
            # mid-step resumes at its true ready time) and its grid fits in
            # the free SMs.
            if stream_ready[sid] <= now and free_sms(now) >= sms_needed:
                end = now + prof.elapsed_us
                running.append((end, sms_needed))
                result.entries.append(
                    TimelineEntry(
                        profile=prof, stream=sid, start_us=now, end_us=end
                    )
                )
                stream_ready[sid] = end
                next_idx[sid] += 1
                pending -= 1
                progressed = True
        if pending and not progressed:
            # Advance time to the next completion or stream-ready event.
            horizon = [end for end, _ in running if end > now]
            horizon += [t for t in stream_ready if t > now]
            if not horizon:
                raise RuntimeError("scheduler deadlock (no runnable kernel)")
            now = min(horizon)
            running = [(end, sms) for end, sms in running if end > now]
    return result


def spec_cache_key(spec: KernelSpec) -> tuple:
    """Full value identity of a spec (KernelSpec holds dicts, so the
    key spells it out by hand); two specs with equal keys profile
    identically on a given device."""
    s = spec
    return (
        s.name, s.blocks, s.warps_per_block, s.int32_ops,
        s.tensor_macs, s.gmem_read_bytes, s.gmem_write_bytes,
        s.smem_read_bytes, s.smem_write_bytes, s.smem_per_block_bytes,
        s.regs_per_thread, s.barriers, s.coalescing, s.efficiency,
        s.gmem_round_trips, tuple(sorted(s.stall_hints.items())),
        tuple(sorted(s.tags.items())),
    )


#: Cumulative hit/miss counters of :func:`run_dag`'s kernel-profile
#: cache, in the ``all_cache_stats`` convention (PR 1).
_PROFILE_CACHE = {"hits": 0, "misses": 0, "runs": 0, "currsize": 0}


def profile_cache_stats() -> Dict[str, int]:
    """Counters of the per-``run_dag`` kernel-profile cache.

    ``hits``/``misses`` accumulate across calls; ``currsize`` is the
    distinct-spec count of the most recent run and ``runs`` the number
    of :func:`run_dag` invocations (the cache is rebuilt per run — specs
    are only guaranteed profile-identical for one device).
    """
    return dict(_PROFILE_CACHE)


def reset_cache_stats() -> None:
    """Zero the process-global profile-cache counters.

    Multi-run simulations (the serving layer prices thousands of DAGs
    per experiment) call this between experiments so hit/miss counts
    describe one run instead of accumulating across the process — the
    same scoping problem :func:`profile_cache_stats`'s ``runs`` counter
    only papers over.
    """
    for k in _PROFILE_CACHE:
        _PROFILE_CACHE[k] = 0


class cache_stats_scope:
    """Context manager giving one block its own cache-stat window.

    Counters are zeroed on entry and *restored cumulatively* on exit
    (outer totals keep counting through the block); read the block's own
    numbers with :func:`profile_cache_stats` before leaving, or from the
    ``stats`` attribute afterwards.
    """

    def __enter__(self) -> "cache_stats_scope":
        self._outer = profile_cache_stats()
        reset_cache_stats()
        self.stats: Dict[str, int] = {}
        return self

    def __exit__(self, *exc) -> bool:
        self.stats = profile_cache_stats()
        for k in ("hits", "misses", "runs"):
            _PROFILE_CACHE[k] = self._outer[k] + self.stats[k]
        return False


@dataclass(frozen=True)
class DagKernel:
    """One node of a dependency-aware launch graph.

    ``deps`` are indices into the node sequence handed to :func:`run_dag`
    and must point at earlier nodes (the sequence is a topological order,
    which is what a recorded trace naturally provides).
    """

    spec: KernelSpec
    deps: Tuple[int, ...] = ()


def run_dag(nodes: Sequence[DagKernel], device: GpuSpec) -> ExecutionResult:
    """Event-driven scheduling of a kernel DAG sharing the SM array.

    The overlap rule is the same as :func:`run_streams` (§III-A): a node
    is runnable once every dependency has finished *and* its grid fits in
    the free SMs — full-device grids therefore serialize even though the
    graph would allow them to overlap. Runnable nodes launch in index
    order (the recording's program order), so results are deterministic.

    Lanes in the returned timeline are not caller-chosen streams but a
    greedy assignment (each kernel takes the lowest lane idle at its start
    time), purely so renderers can draw overlap.
    """
    nodes = list(nodes)
    children: List[List[int]] = [[] for _ in nodes]
    indegree = [0] * len(nodes)
    for i, node in enumerate(nodes):
        for d in node.deps:
            if not 0 <= d < i:
                raise ValueError(
                    f"node {i} depends on {d}; dependencies must reference "
                    "earlier nodes (topological order)"
                )
            children[d].append(i)
        indegree[i] = len(node.deps)
    # Traced DAGs repeat specs heavily (split parts, per-step launches);
    # price each distinct spec once. KernelSpec holds dicts, so the key
    # spells out the full identity by hand.
    profile_cache: Dict[tuple, KernelProfile] = {}
    profiles = []
    for node in nodes:
        key = spec_cache_key(node.spec)
        prof = profile_cache.get(key)
        if prof is None:
            prof = profile_cache[key] = simulate_kernel(node.spec, device)
            _PROFILE_CACHE["misses"] += 1
        else:
            _PROFILE_CACHE["hits"] += 1
        profiles.append(prof)
    _PROFILE_CACHE["runs"] += 1
    _PROFILE_CACHE["currsize"] = len(profile_cache)
    result = ExecutionResult(device=device)

    #: dep-free nodes awaiting launch, popped in index order.
    ready: List[int] = [i for i, deg in enumerate(indegree) if deg == 0]
    heapq.heapify(ready)
    #: (end_time_us, node_index, sm_count) of currently running kernels.
    running: List[Tuple[float, int, int]] = []
    #: display lanes: free lane indices / (busy-until, lane) of busy ones.
    free_lanes: List[int] = []
    busy_lanes: List[Tuple[float, int]] = []
    num_lanes = 0
    busy_sms = 0
    now = 0.0

    while ready or running:
        while busy_lanes and busy_lanes[0][0] <= now:
            _, lane = heapq.heappop(busy_lanes)
            heapq.heappush(free_lanes, lane)
        # Launch every ready node whose grid fits, in index order (the
        # recording's program order); the rest wait for the next event.
        deferred: List[int] = []
        while ready:
            i = heapq.heappop(ready)
            prof = profiles[i]
            sms_needed = prof.occupancy.sm_used
            if device.sm_count - busy_sms < sms_needed:
                deferred.append(i)
                continue
            end = now + prof.elapsed_us
            if free_lanes:
                lane = heapq.heappop(free_lanes)
            else:
                lane = num_lanes
                num_lanes += 1
            heapq.heappush(busy_lanes, (end, lane))
            heapq.heappush(running, (end, i, sms_needed))
            busy_sms += sms_needed
            result.entries.append(
                TimelineEntry(
                    profile=prof, stream=lane, start_us=now, end_us=end,
                    index=i, deps=tuple(nodes[i].deps),
                )
            )
        for i in deferred:
            heapq.heappush(ready, i)
        if not ready and not running:
            break
        if not running:
            raise RuntimeError("scheduler deadlock (no runnable kernel)")
        now = running[0][0]
        while running and running[0][0] <= now:
            _, i, sms_needed = heapq.heappop(running)
            busy_sms -= sms_needed
            for child in children[i]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    heapq.heappush(ready, child)
    return result
