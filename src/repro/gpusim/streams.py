"""Stream-level scheduling of kernel sequences.

Models what the paper observes about CUDA streams (§III-A, §IV-C-2):
kernels in one stream serialize; kernels in different streams overlap only
when together they fit in the SM array — the large grids of FHE kernels
occupy every SM, so multi-stream launches degenerate to serial execution
("stages 2 and 4, which utilize multiple streams, are executed serially on
the GPU due to the large number of SMs used").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .device import GpuSpec
from .engine import KernelProfile, simulate_kernel
from .kernel import KernelSpec


@dataclass
class TimelineEntry:
    """One executed kernel instance on the device timeline."""

    profile: KernelProfile
    stream: int
    start_us: float
    end_us: float

    @property
    def name(self) -> str:
        return self.profile.spec.name

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


@dataclass
class ExecutionResult:
    """Full result of scheduling one launch graph."""

    entries: List[TimelineEntry] = field(default_factory=list)
    device: Optional[GpuSpec] = None

    @property
    def elapsed_us(self) -> float:
        return max((e.end_us for e in self.entries), default=0.0)

    @property
    def kernel_count(self) -> int:
        return len(self.entries)

    @property
    def profiles(self) -> List[KernelProfile]:
        return [e.profile for e in self.entries]

    def total_stalls(self):
        merged = None
        for e in self.entries:
            merged = (
                e.profile.stalls
                if merged is None
                else merged.merged_with(e.profile.stalls)
            )
        return merged

    def by_name(self) -> Dict[str, List[TimelineEntry]]:
        groups: Dict[str, List[TimelineEntry]] = {}
        for e in self.entries:
            groups.setdefault(e.name, []).append(e)
        return groups


def run_serial(kernels: Sequence[KernelSpec], device: GpuSpec,
               ) -> ExecutionResult:
    """Execute kernels back-to-back in a single stream."""
    return run_streams([list(kernels)], device)


def run_streams(streams: Sequence[Sequence[KernelSpec]], device: GpuSpec,
                ) -> ExecutionResult:
    """Event-driven scheduling of multiple streams sharing the SM array.

    A kernel starts when its stream's predecessor finished and enough SMs
    are free (``sm_used = min(blocks, sm_count)``). Grids that span the
    device therefore serialize even across streams, reproducing the
    observation in §III-A.
    """
    result = ExecutionResult(device=device)
    profiles = [
        [simulate_kernel(k, device) for k in stream] for stream in streams
    ]
    stream_ready = [0.0] * len(streams)
    next_idx = [0] * len(streams)
    #: (end_time_us, sm_count) of currently running kernels.
    running: List[tuple] = []
    now = 0.0

    def free_sms(at: float) -> int:
        return device.sm_count - sum(
            sms for end, sms in running if end > at
        )

    pending = sum(len(s) for s in streams)
    while pending:
        progressed = False
        for sid, stream in enumerate(profiles):
            i = next_idx[sid]
            if i >= len(stream):
                continue
            prof = stream[i]
            sms_needed = prof.occupancy.sm_used
            # A kernel is runnable once its stream predecessor has finished
            # (ready times are event points, so the loop below always lands
            # `now` exactly on them — a stream whose predecessor finishes
            # mid-step resumes at its true ready time) and its grid fits in
            # the free SMs.
            if stream_ready[sid] <= now and free_sms(now) >= sms_needed:
                end = now + prof.elapsed_us
                running.append((end, sms_needed))
                result.entries.append(
                    TimelineEntry(
                        profile=prof, stream=sid, start_us=now, end_us=end
                    )
                )
                stream_ready[sid] = end
                next_idx[sid] += 1
                pending -= 1
                progressed = True
        if pending and not progressed:
            # Advance time to the next completion or stream-ready event.
            horizon = [end for end, _ in running if end > now]
            horizon += [t for t in stream_ready if t > now]
            if not horizon:
                raise RuntimeError("scheduler deadlock (no runnable kernel)")
            now = min(horizon)
            running = [(end, sms) for end, sms in running if end > now]
    return result
