"""The Nsight Compute stall taxonomy used throughout the evaluation.

Definitions follow the NVIDIA Nsight Compute documentation (the paper's
measurement tool, §V-B) and Table II's footnote, which classes *LG
Throttle, Long Scoreboard, MIO Throttle, Short Scoreboard, Drain and IMC
Miss* as memory-related:

- ``LG_THROTTLE`` — the load/store input queue is full; the warp cannot
  even issue its next local/global memory instruction. Symptomatic of an
  extreme memory-to-compute instruction ratio (TensorFHE's bit-split
  kernel).
- ``LONG_SCOREBOARD`` — waiting on the scoreboard for data from L2/DRAM
  (long-latency loads).
- ``MIO_THROTTLE`` — the memory-IO instruction queue (shared memory among
  others) is full.
- ``SHORT_SCOREBOARD`` — waiting on data from shared memory.
- ``DRAIN`` / ``IMC_MISS`` — write drain on exit / immediate-constant miss
  (minor; grouped with memory stalls as in the paper).
- ``MATH_THROTTLE`` — an execution pipe (INT/tensor) is saturated.
- ``BARRIER`` — waiting at ``__syncthreads``.
- ``NOT_SELECTED`` — eligible but another warp was issued (healthy
  oversubscription).
- ``WAIT`` — fixed-latency dependency wait (ALU pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict


class StallReason(str, Enum):
    LG_THROTTLE = "lg_throttle"
    LONG_SCOREBOARD = "long_scoreboard"
    MIO_THROTTLE = "mio_throttle"
    SHORT_SCOREBOARD = "short_scoreboard"
    DRAIN = "drain"
    IMC_MISS = "imc_miss"
    MATH_THROTTLE = "math_throttle"
    BARRIER = "barrier"
    NOT_SELECTED = "not_selected"
    WAIT = "wait"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: The categories Table II's footnote counts as memory-access-related.
MEMORY_RELATED = frozenset(
    {
        StallReason.LG_THROTTLE,
        StallReason.LONG_SCOREBOARD,
        StallReason.MIO_THROTTLE,
        StallReason.SHORT_SCOREBOARD,
        StallReason.DRAIN,
        StallReason.IMC_MISS,
    }
)


@dataclass
class StallBreakdown:
    """Warp-cycle stall totals per reason for one kernel (or aggregate)."""

    cycles: Dict[StallReason, float] = field(default_factory=dict)

    def add(self, reason: StallReason, amount: float) -> None:
        if amount < 0:
            raise ValueError("stall cycles cannot be negative")
        self.cycles[reason] = self.cycles.get(reason, 0.0) + amount

    @property
    def total(self) -> float:
        return sum(self.cycles.values())

    @property
    def memory_related(self) -> float:
        return sum(
            v for k, v in self.cycles.items() if k in MEMORY_RELATED
        )

    @property
    def memory_related_fraction(self) -> float:
        total = self.total
        return self.memory_related / total if total else 0.0

    def fraction(self, reason: StallReason) -> float:
        total = self.total
        return self.cycles.get(reason, 0.0) / total if total else 0.0

    def merged_with(self, other: "StallBreakdown") -> "StallBreakdown":
        out = StallBreakdown(dict(self.cycles))
        for reason, amount in other.cycles.items():
            out.add(reason, amount)
        return out
