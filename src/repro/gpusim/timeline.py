"""ASCII rendering of kernel execution timelines (Figure 1)."""

from __future__ import annotations

from typing import List

from .streams import ExecutionResult


def render_timeline(result: ExecutionResult, *, width: int = 72,
                    title: str = "") -> str:
    """Render an execution timeline as fixed-width ASCII art.

    One row per stream; each kernel is a labelled bar spanning its
    start..end interval, mirroring the kernel-timeline panels of Fig. 1.
    """
    if not result.entries:
        return "(empty timeline)"
    total = result.elapsed_us
    streams = sorted({e.stream for e in result.entries})
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"total: {total:.1f} us")
    scale = (width - 10) / total if total > 0 else 0.0
    for sid in streams:
        row = [" "] * (width - 10)
        for e in result.entries:
            if e.stream != sid:
                continue
            lo = int(e.start_us * scale)
            hi = max(lo + 1, int(e.end_us * scale))
            hi = min(hi, len(row))
            label = _shorten(e.name, hi - lo)
            for pos in range(lo, hi):
                row[pos] = "="
            for offset, ch in enumerate(label):
                if lo + offset < len(row):
                    row[lo + offset] = ch
        lines.append(f"s{sid:<2d} |" + "".join(row) + "|")
    return "\n".join(lines)


def summarize(result: ExecutionResult) -> str:
    """Per-kernel line summary: name, span, binding resource."""
    lines = [
        f"{'kernel':<28} {'stream':>6} {'start':>9} {'end':>9} "
        f"{'us':>8}  bound by"
    ]
    for e in sorted(result.entries, key=lambda x: x.start_us):
        lines.append(
            f"{e.name:<28} {e.stream:>6} {e.start_us:>9.1f} "
            f"{e.end_us:>9.1f} {e.duration_us:>8.1f}  {e.profile.bound_by}"
        )
    return "\n".join(lines)


def _shorten(name: str, space: int) -> str:
    if space <= 1:
        return ""
    return name[: space - 1]


def to_chrome_trace(result: ExecutionResult) -> dict:
    """Export a timeline as a Chrome tracing (chrome://tracing /
    Perfetto) JSON object — one complete event per kernel, one "thread"
    per stream, with the binding resource and occupancy as arguments.

    Entries produced by :func:`~repro.gpusim.streams.run_dag` carry their
    launch-graph dependencies; those become flow events (arrows between
    slices in Perfetto), so the pictured overlap can be read against the
    data hazards that constrain it."""
    events = []
    by_index = {e.index: e for e in result.entries if e.index >= 0}
    flow_id = 0
    for e in result.entries:
        prof = e.profile
        args = {
            "bound_by": prof.bound_by,
            "blocks": prof.spec.blocks,
            "sm_used": prof.occupancy.sm_used,
            "resident_warps_per_sm":
                prof.occupancy.resident_warps_per_sm,
            "stall_per_issued":
                round(prof.stall_cycles_per_issued, 2),
        }
        # Optimizer provenance (trace/opt): fused chains and folded
        # twists tag their specs; surface them so before/after trace
        # pairs diff meaningfully in Perfetto.
        for tag in ("fused", "fold_pre", "fold_post"):
            if tag in prof.spec.tags:
                args[tag] = prof.spec.tags[tag]
        events.append({
            "name": e.name,
            "ph": "X",  # complete event
            "ts": e.start_us,
            "dur": e.duration_us,
            "pid": 0,
            "tid": e.stream,
            "args": args,
        })
        for dep in e.deps:
            src = by_index.get(dep)
            if src is None:
                continue
            flow_id += 1
            events.append({
                "name": "dep", "cat": "dep", "ph": "s", "id": flow_id,
                "ts": src.end_us, "pid": 0, "tid": src.stream,
            })
            events.append({
                "name": "dep", "cat": "dep", "ph": "f", "bp": "e",
                "id": flow_id, "ts": e.start_us, "pid": 0, "tid": e.stream,
            })
    meta = [
        {"name": "process_name", "ph": "M", "pid": 0,
         "args": {"name": result.device.name if result.device else "gpu"}}
    ]
    for sid in sorted({e.stream for e in result.entries}):
        meta.append({
            "name": "thread_name", "ph": "M", "pid": 0, "tid": sid,
            "args": {"name": f"stream {sid}"},
        })
    return {"traceEvents": meta + events, "displayTimeUnit": "ns"}


def save_chrome_trace(result: ExecutionResult, path: str) -> None:
    """Write :func:`to_chrome_trace` output as a JSON file."""
    import json

    with open(path, "w") as fh:
        json.dump(to_chrome_trace(result), fh, indent=1)
