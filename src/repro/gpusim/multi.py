"""Multi-device fleet layer over the single-GPU simulator.

One :class:`GpuFleet` holds N :class:`FleetDevice` instances — each a
:class:`~repro.gpusim.device.GpuSpec` with its own HBM admission ledger
(a :class:`~repro.core.memory_pool.MemoryPool`) and its own execution
timeline.  A device executes admitted batches serially in FIFO order
(the §III-A observation scaled up: one FHE batch occupies the whole SM
array, so a device is a single-server queue), with each batch's service
time priced by :func:`~repro.gpusim.streams.run_dag` over the batch's
lowered kernel DAG.  The openFHE-GPU ``GPUSetup(numGPUs)`` API is the
shape of this abstraction: devices are homogeneous by default but any
mix of specs is accepted.

The fleet is driven by a discrete-event loop (see
:mod:`repro.serving.simulator`): ``admit`` reserves HBM and enqueues,
``complete`` retires the finished batch, frees its reservation and
starts the next queued one.  Both return the batch(es) that *started*
so the caller can schedule their completion events.  All state changes
happen at caller-provided simulation times — the fleet never invents
time — which is what makes whole-fleet runs deterministic.

:func:`fleet_to_chrome_trace` exports the per-device timelines as one
Perfetto JSON: one process per device, batch slices on the execution
thread, and counter tracks for HBM-in-use and queue depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.memory_pool import Allocation, MemoryPool
from .device import A100_PCIE_80G, GpuSpec

#: Default device memory when the caller does not size it explicitly —
#: the A100-PCIE-80G of the paper's testbed.
DEFAULT_HBM_BYTES = 80 * 1024**3


@dataclass
class FleetEntry:
    """One batch that ran to completion on one fleet device."""

    device: int
    label: str
    kind: str
    batch: int
    enqueued_us: float
    start_us: float
    end_us: float
    hbm_bytes: int
    jobs: Tuple[int, ...] = ()

    @property
    def service_us(self) -> float:
        return self.end_us - self.start_us

    @property
    def queue_wait_us(self) -> float:
        return self.start_us - self.enqueued_us


@dataclass
class FleetJob:
    """One schedulable unit (a ciphertext batch) while inside the fleet.

    ``service_us`` is the batch's priced :func:`run_dag` latency on the
    target device; ``hbm_bytes`` the working-set reservation admission
    control charges against the device pool — either the S_max formula
    or, when the catalog runs ``hbm_model="certified"``, the static
    liveness certificate of the priced DAG.  ``certified_hbm_bytes``
    carries that certificate regardless, so pool admission can audit
    the reservation against it (a reservation below the certificate is
    an overcommit the D-HBM rule flags).  ``payload`` is opaque to the
    fleet (the serving layer stores its batch record there).
    """

    label: str
    service_us: float
    hbm_bytes: int
    certified_hbm_bytes: int = 0
    kind: str = ""
    batch: int = 1
    jobs: Tuple[int, ...] = ()
    payload: Any = None
    device: int = -1
    enqueued_us: float = -1.0
    start_us: float = -1.0
    end_us: float = -1.0
    _alloc: Optional[Allocation] = field(default=None, repr=False)


class FleetDevice:
    """One simulated GPU of the fleet: spec + HBM pool + FIFO queue."""

    def __init__(self, spec: GpuSpec, index: int,
                 hbm_bytes: int = DEFAULT_HBM_BYTES):
        self.spec = spec
        self.index = index
        self.hbm_bytes = int(hbm_bytes)
        #: Per-device HBM admission ledger (§IV-D-1 pool, fleet-scoped).
        self.pool = MemoryPool(self.hbm_bytes)
        self.queue: List[FleetJob] = []
        self.running: Optional[FleetJob] = None
        self.busy_us = 0.0
        self.entries: List[FleetEntry] = []

    @property
    def hbm_in_use(self) -> int:
        return self.pool.in_use

    @property
    def hbm_free(self) -> int:
        return self.pool.free

    @property
    def queue_depth(self) -> int:
        return len(self.queue) + (1 if self.running is not None else 0)

    def outstanding_us(self, now: float) -> float:
        """Work committed to this device but not yet finished."""
        total = sum(w.service_us for w in self.queue)
        if self.running is not None:
            total += max(self.running.end_us - now, 0.0)
        return total

    def fits(self, hbm_bytes: int) -> bool:
        return self.pool.fits(hbm_bytes)

    def utilization(self, horizon_us: float) -> float:
        return self.busy_us / horizon_us if horizon_us > 0 else 0.0


@dataclass
class FleetResult:
    """Everything a finished fleet simulation produced."""

    devices: List[FleetDevice]
    #: (t_us, device, hbm_in_use_bytes, queue_depth) samples at events.
    counters: List[Tuple[float, int, int, int]]

    @property
    def entries(self) -> List[FleetEntry]:
        out = [e for d in self.devices for e in d.entries]
        out.sort(key=lambda e: (e.start_us, e.device))
        return out

    @property
    def makespan_us(self) -> float:
        return max((e.end_us for d in self.devices for e in d.entries),
                   default=0.0)

    def utilizations(self, horizon_us: Optional[float] = None
                     ) -> List[float]:
        h = horizon_us if horizon_us is not None else self.makespan_us
        return [d.utilization(h) for d in self.devices]


class GpuFleet:
    """N simulated devices behind one admission/execution interface."""

    def __init__(self, num_devices: int = 1,
                 spec: GpuSpec = A100_PCIE_80G, *,
                 hbm_bytes: int = DEFAULT_HBM_BYTES,
                 specs: Optional[Sequence[GpuSpec]] = None):
        if specs is not None:
            self.devices = [
                FleetDevice(s, i, hbm_bytes) for i, s in enumerate(specs)
            ]
        else:
            if num_devices < 1:
                raise ValueError("fleet needs at least one device")
            self.devices = [
                FleetDevice(spec, i, hbm_bytes)
                for i in range(num_devices)
            ]
        self.counters: List[Tuple[float, int, int, int]] = []
        self.rejections = 0

    def __len__(self) -> int:
        return len(self.devices)

    # -- admission --------------------------------------------------------
    def admit(self, job: FleetJob, device: int, now: float
              ) -> Tuple[bool, Optional[FleetJob]]:
        """Reserve HBM for ``job`` on ``device`` and enqueue it.

        Returns ``(admitted, started)``: ``admitted`` is whether the
        reservation fit (on ``False`` the job is left untouched,
        ``rejections`` increments, and the caller retries later — the
        per-device :class:`MemoryPool` is never driven past capacity);
        ``started`` is the job that began *running* as a result
        (``job`` itself on an idle device, else ``None``).
        """
        dev = self.devices[device]
        if not dev.pool.fits(job.hbm_bytes):
            self.rejections += 1
            return False, None
        job._alloc = dev.pool.allocate(job.hbm_bytes, tag=job.label)
        job.device = device
        job.enqueued_us = now
        dev.queue.append(job)
        self._sample(dev, now)
        return True, self._maybe_start(dev, now)

    def complete(self, job: FleetJob, now: float) -> Optional[FleetJob]:
        """Retire ``job`` at its end time; start the next queued batch."""
        dev = self.devices[job.device]
        if dev.running is not job:
            raise RuntimeError(
                f"device {dev.index} is not running {job.label!r}"
            )
        dev.running = None
        dev.busy_us += job.service_us
        dev.pool.release(job._alloc)
        job._alloc = None
        dev.entries.append(FleetEntry(
            device=dev.index, label=job.label, kind=job.kind,
            batch=job.batch, enqueued_us=job.enqueued_us,
            start_us=job.start_us, end_us=job.end_us,
            hbm_bytes=job.hbm_bytes, jobs=job.jobs,
        ))
        self._sample(dev, now)
        return self._maybe_start(dev, now)

    def _maybe_start(self, dev: FleetDevice, now: float
                     ) -> Optional[FleetJob]:
        if dev.running is not None or not dev.queue:
            return None
        job = dev.queue.pop(0)
        job.start_us = now
        job.end_us = now + job.service_us
        dev.running = job
        return job

    def _sample(self, dev: FleetDevice, now: float) -> None:
        self.counters.append(
            (now, dev.index, dev.hbm_in_use, dev.queue_depth)
        )

    # -- queries ----------------------------------------------------------
    def least_loaded(self, now: float, *,
                     fitting: Optional[int] = None) -> Optional[int]:
        """Device index with the least outstanding work.

        ``fitting``: only consider devices whose free HBM admits that
        many bytes; returns ``None`` when no device qualifies.  Ties
        break by device index, so placement is deterministic.
        """
        best, best_load = None, float("inf")
        for dev in self.devices:
            if fitting is not None and not dev.fits(fitting):
                continue
            load = dev.outstanding_us(now)
            if load < best_load - 1e-9:
                best, best_load = dev.index, load
        return best

    def result(self) -> FleetResult:
        return FleetResult(devices=list(self.devices),
                           counters=list(self.counters))


# -- Perfetto export ------------------------------------------------------


def fleet_to_chrome_trace(result: FleetResult) -> dict:
    """Chrome-tracing JSON of a whole fleet run.

    One process per device (named after its spec), batch slices on
    thread 0, plus two counter tracks per device: HBM in use (MiB) and
    queue depth.  Open in chrome://tracing or Perfetto.
    """
    events: List[dict] = []
    for dev in result.devices:
        events.append({
            "name": "process_name", "ph": "M", "pid": dev.index,
            "args": {"name": f"gpu{dev.index} ({dev.spec.name})"},
        })
        events.append({
            "name": "thread_name", "ph": "M", "pid": dev.index, "tid": 0,
            "args": {"name": "batches"},
        })
        for e in dev.entries:
            events.append({
                "name": e.label, "ph": "X", "ts": e.start_us,
                "dur": e.service_us, "pid": e.device, "tid": 0,
                "args": {
                    "kind": e.kind, "batch": e.batch,
                    "jobs": len(e.jobs),
                    "queue_wait_us": round(e.queue_wait_us, 2),
                    "hbm_mb": round(e.hbm_bytes / 2**20, 1),
                },
            })
    for t, device, hbm, depth in result.counters:
        events.append({
            "name": "HBM in use (MiB)", "ph": "C", "ts": t,
            "pid": device, "args": {"mib": round(hbm / 2**20, 1)},
        })
        events.append({
            "name": "queue depth", "ph": "C", "ts": t,
            "pid": device, "args": {"batches": depth},
        })
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def save_fleet_trace(result: FleetResult, path: str) -> None:
    """Write :func:`fleet_to_chrome_trace` output as a JSON file."""
    import json

    with open(path, "w") as fh:
        json.dump(fleet_to_chrome_trace(result), fh, indent=1)
