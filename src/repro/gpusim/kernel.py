"""Kernel descriptors — the interface between algorithms and the simulator.

A :class:`KernelSpec` states *what a kernel does* in hardware terms: its
launch geometry, total operation counts per execution-pipe class, and its
memory traffic by space. The lowering code in :mod:`repro.core` and
:mod:`repro.baselines` builds these from honest counts of what each
algorithm actually computes and moves; the engine then prices them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from .stalls import StallReason

#: Scalar INT8 MACs performed by one warp-level MMA instruction
#: (m16n16k16: 16*16*16 = 4096 MACs).
MACS_PER_MMA = 4096

#: Bytes one fully-coalesced warp-level global access moves (32 x 4B).
BYTES_PER_GMEM_INSTR = 128

#: Bytes one warp-level shared-memory access moves.
BYTES_PER_SMEM_INSTR = 128

#: Lanes per warp.
WARP_SIZE = 32


@dataclass(frozen=True)
class KernelSpec:
    """A complete cost description of one GPU kernel launch.

    All operation and byte counts are *kernel-wide totals*.

    Attributes
    ----------
    name:
        Display name (appears in timelines and profiles).
    blocks, warps_per_block:
        Launch geometry. ``threads = blocks * warps_per_block * 32``.
    int32_ops:
        Scalar INT32 ALU operations executed on CUDA cores.
    tensor_macs:
        Scalar INT8 multiply-accumulates executed on tensor cores.
    gmem_read_bytes / gmem_write_bytes:
        Off-chip (DRAM-backed) traffic.
    smem_read_bytes / smem_write_bytes:
        On-chip shared-memory traffic.
    smem_per_block_bytes:
        Static shared-memory footprint (limits occupancy).
    regs_per_thread:
        Register footprint (limits occupancy).
    barriers:
        ``__syncthreads`` count per block.
    coalescing:
        Fraction of peak efficiency of global accesses in (0, 1]; strided
        access patterns move the same payload in more transactions.
    efficiency:
        Pipeline efficiency in (0, 1]: the achieved fraction of the
        roofline bound, covering second-order effects (dependency chains,
        bank conflicts, scheduling gaps) below the model's resolution.
        Calibrated constants; every use is documented in EXPERIMENTS.md.
    gmem_round_trips:
        Dependent global-memory round trips on the critical path of one
        thread (drives latency-bound behaviour at low occupancy).
    stall_hints:
        Optional prior on the issue-stall distribution, keyed by
        :class:`~repro.gpusim.stalls.StallReason` values with fractional
        weights summing to at most 1. Lowering code that knows a
        kernel's dominant stall (e.g. LG throttle for the four-step
        transpose) can record it here for reports; the engine's own
        breakdown stays authoritative.
    tags:
        Free-form labels used by reports (e.g. ``{"stage": "GEMM"}``).
    """

    name: str
    blocks: int
    warps_per_block: int
    int32_ops: float = 0.0
    tensor_macs: float = 0.0
    gmem_read_bytes: float = 0.0
    gmem_write_bytes: float = 0.0
    smem_read_bytes: float = 0.0
    smem_write_bytes: float = 0.0
    smem_per_block_bytes: int = 0
    regs_per_thread: int = 64
    barriers: int = 0
    coalescing: float = 1.0
    efficiency: float = 1.0
    gmem_round_trips: int = 1
    stall_hints: Dict[str, float] = field(default_factory=dict)
    tags: Dict[str, str] = field(default_factory=dict)

    def validate(self) -> "KernelSpec":
        """Schema-check the descriptor and return it (chainable).

        Construction sites write ``KernelSpec(...).validate()`` so a
        nonsensical geometry, a negative count or an unknown stall name
        fails next to the numbers that produced it; the engine
        re-validates at submit time as a backstop for specs assembled
        via :func:`dataclasses.replace`.
        """
        if self.blocks < 1 or self.warps_per_block < 1:
            raise ValueError("kernel must launch at least one warp")
        if not 0.0 < self.coalescing <= 1.0:
            raise ValueError("coalescing must be in (0, 1]")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")
        for fname in (
            "int32_ops", "tensor_macs", "gmem_read_bytes",
            "gmem_write_bytes", "smem_read_bytes", "smem_write_bytes",
            "smem_per_block_bytes", "barriers",
        ):
            if getattr(self, fname) < 0:
                raise ValueError(f"{fname} must be non-negative")
        if self.regs_per_thread < 1:
            raise ValueError("regs_per_thread must be at least 1")
        if self.gmem_round_trips < 0:
            raise ValueError("gmem_round_trips must be non-negative")
        known = {reason.value for reason in StallReason}
        for name, fraction in self.stall_hints.items():
            if name not in known:
                raise ValueError(
                    f"unknown stall pipe {name!r} in stall_hints "
                    f"(known: {sorted(known)})"
                )
            if fraction < 0:
                raise ValueError(f"stall_hints[{name!r}] must be >= 0")
        if sum(self.stall_hints.values()) > 1.0 + 1e-9:
            raise ValueError("stall_hints fractions must sum to <= 1")
        return self

    def __post_init__(self):
        self.validate()

    # -- derived counts ------------------------------------------------------

    @property
    def total_warps(self) -> int:
        return self.blocks * self.warps_per_block

    @property
    def threads(self) -> int:
        return self.total_warps * WARP_SIZE

    @property
    def gmem_bytes(self) -> float:
        return self.gmem_read_bytes + self.gmem_write_bytes

    @property
    def smem_bytes(self) -> float:
        return self.smem_read_bytes + self.smem_write_bytes

    @property
    def alu_warp_instructions(self) -> float:
        """Warp-level INT32 instructions (32 lanes each)."""
        return self.int32_ops / WARP_SIZE

    @property
    def mma_warp_instructions(self) -> float:
        return self.tensor_macs / MACS_PER_MMA

    @property
    def gmem_warp_instructions(self) -> float:
        """Warp-level global load/store instructions, inflated by poor
        coalescing (more transactions for the same payload)."""
        return self.gmem_bytes / (BYTES_PER_GMEM_INSTR * self.coalescing)

    @property
    def smem_warp_instructions(self) -> float:
        return self.smem_bytes / BYTES_PER_SMEM_INSTR

    @property
    def warp_instructions(self) -> float:
        """All issued warp instructions."""
        return (
            self.alu_warp_instructions
            + self.mma_warp_instructions
            + self.gmem_warp_instructions
            + self.smem_warp_instructions
            + self.barriers * self.total_warps  # bar.sync, one per warp
        )

    @property
    def memory_instruction_fraction(self) -> float:
        """Share of issued instructions that are LSU-bound — the
        compute-to-memory balance that drives LG-throttle behaviour."""
        total = self.warp_instructions
        if total == 0:
            return 0.0
        return (
            self.gmem_warp_instructions + self.smem_warp_instructions
        ) / total

    def scaled(self, factor: float) -> "KernelSpec":
        """A copy with all work and traffic multiplied by ``factor``
        (geometry unchanged) — used when batching identical payloads."""
        return replace(
            self,
            int32_ops=self.int32_ops * factor,
            tensor_macs=self.tensor_macs * factor,
            gmem_read_bytes=self.gmem_read_bytes * factor,
            gmem_write_bytes=self.gmem_write_bytes * factor,
            smem_read_bytes=self.smem_read_bytes * factor,
            smem_write_bytes=self.smem_write_bytes * factor,
        )

    def renamed(self, name: str, **tags) -> "KernelSpec":
        return replace(self, name=name, tags={**self.tags, **tags})
