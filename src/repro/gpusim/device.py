"""GPU device models for the analytic timing simulator.

Each :class:`GpuSpec` captures the architectural parameters the WarpDrive
paper reasons about: SM count and clock, the four SM sub-partitions ("SPs"
in the paper's terminology), INT32 CUDA-core lanes, INT8 tensor-core MAC
throughput, the SMEM/L2/DRAM hierarchy with latencies, scheduler issue
width, and kernel launch overhead.

Numbers for the A100 follow the NVIDIA A100 whitepaper (GA100): 108 SMs,
64 INT32 lanes/SM, 4 tensor cores/SM with 624 INT8 TOPS (dense) at
1.41 GHz => 2048 INT8 MACs/cycle/SM, 192 KB unified L1/SMEM (164 KB usable
as SMEM), 40 MB L2, HBM2e at 1935 GB/s on the PCIE-80G part. The V100 and
MI100 entries model the platforms of the 100x and GME baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class GpuSpec:
    """Architectural parameters of one GPU model."""

    name: str
    sm_count: int
    clock_ghz: float
    #: SM sub-partitions — the "SPs" of the paper (warp schedulers).
    subpartitions_per_sm: int
    #: INT32 ALU lanes per SM (CUDA cores usable for 32-bit integer math).
    int32_lanes_per_sm: int
    #: INT8 MACs per cycle per SM across all tensor cores (0 = no TCs).
    tensor_int8_macs_per_cycle_per_sm: int
    #: Usable shared memory per SM, bytes.
    smem_per_sm_bytes: int
    #: Shared-memory bandwidth per SM, bytes per cycle.
    smem_bytes_per_cycle_per_sm: int
    #: DRAM bandwidth, GB/s.
    dram_gbps: float
    #: Latencies in core cycles.
    dram_latency_cycles: int
    smem_latency_cycles: int
    #: Warp instructions the LSU can accept per cycle per SM.
    lsu_issue_per_cycle_per_sm: float
    #: Max resident warps per SM (occupancy ceiling).
    max_warps_per_sm: int
    #: Registers per SM (32-bit).
    registers_per_sm: int
    #: Kernel launch + teardown overhead, microseconds.
    launch_overhead_us: float
    #: Resident warps per SM needed to fully hide DRAM latency.
    warps_to_hide_dram: int = 16
    #: SMs that must be active to saturate DRAM bandwidth (a single SM can
    #: only sustain a slice of device bandwidth; drives the low-utilization
    #: behaviour of small grids that §III-C measures).
    dram_saturation_sms: int = 60

    @property
    def schedulers_per_sm(self) -> int:
        """One warp scheduler per SM sub-partition."""
        return self.subpartitions_per_sm

    @property
    def dram_bytes_per_cycle(self) -> float:
        """Device-wide DRAM bytes per core cycle."""
        return self.dram_gbps / self.clock_ghz

    @property
    def int32_ops_per_cycle(self) -> int:
        """Device-wide INT32 operations per cycle."""
        return self.sm_count * self.int32_lanes_per_sm

    @property
    def tensor_macs_per_cycle(self) -> int:
        """Device-wide INT8 tensor MACs per cycle."""
        return self.sm_count * self.tensor_int8_macs_per_cycle_per_sm

    @property
    def launch_overhead_cycles(self) -> float:
        return self.launch_overhead_us * self.clock_ghz * 1e3

    def cycles_to_us(self, cycles: float) -> float:
        """Convert core cycles to microseconds."""
        return cycles / (self.clock_ghz * 1e3)

    def us_to_cycles(self, us: float) -> float:
        return us * self.clock_ghz * 1e3

    def with_overrides(self, **kwargs) -> "GpuSpec":
        """A copy with selected fields replaced (for sensitivity studies)."""
        return replace(self, **kwargs)


#: NVIDIA A100-PCIE-80G — WarpDrive's evaluation platform (Table V).
A100_PCIE_80G = GpuSpec(
    name="NVIDIA A100-PCIE-80G",
    sm_count=108,
    clock_ghz=1.41,
    subpartitions_per_sm=4,
    int32_lanes_per_sm=64,
    tensor_int8_macs_per_cycle_per_sm=2048,
    smem_per_sm_bytes=164 * 1024,
    smem_bytes_per_cycle_per_sm=128,
    dram_gbps=1935.0,
    dram_latency_cycles=466,
    smem_latency_cycles=29,
    lsu_issue_per_cycle_per_sm=4.0,
    max_warps_per_sm=64,
    registers_per_sm=65536,
    launch_overhead_us=3.0,
)

#: NVIDIA A100-SXM-40G — TensorFHE's platform; same SM array, HBM2 at
#: 1555 GB/s.
A100_SXM_40G = A100_PCIE_80G.with_overrides(
    name="NVIDIA A100-SXM-40G", dram_gbps=1555.0
)

#: NVIDIA V100 — 100x's platform: 80 SMs, no INT8 tensor path usable for
#: NTT (FP16 tensor cores only), HBM2 at 900 GB/s.
V100 = GpuSpec(
    name="NVIDIA V100",
    sm_count=80,
    clock_ghz=1.38,
    subpartitions_per_sm=4,
    int32_lanes_per_sm=64,
    tensor_int8_macs_per_cycle_per_sm=0,
    smem_per_sm_bytes=96 * 1024,
    smem_bytes_per_cycle_per_sm=128,
    dram_gbps=900.0,
    dram_latency_cycles=440,
    smem_latency_cycles=28,
    lsu_issue_per_cycle_per_sm=4.0,
    max_warps_per_sm=64,
    registers_per_sm=65536,
    launch_overhead_us=3.5,
)

#: NVIDIA H100 (SXM) — the §VI-B generality target: 132 SMs at 1.98 GHz,
#: 4th-gen tensor cores (1979 dense INT8 TOPS => ~3786 MACs/cycle/SM),
#: 228 KB SMEM/SM, HBM3 at 3350 GB/s. The tensor:CUDA power ratio nearly
#: doubles vs the A100, which shifts the WD-FUSE warp balance.
H100_SXM = GpuSpec(
    name="NVIDIA H100-SXM",
    sm_count=132,
    clock_ghz=1.98,
    subpartitions_per_sm=4,
    int32_lanes_per_sm=64,
    tensor_int8_macs_per_cycle_per_sm=3786,
    smem_per_sm_bytes=228 * 1024,
    smem_bytes_per_cycle_per_sm=128,
    dram_gbps=3350.0,
    dram_latency_cycles=550,
    smem_latency_cycles=29,
    lsu_issue_per_cycle_per_sm=4.0,
    max_warps_per_sm=64,
    registers_per_sm=65536,
    launch_overhead_us=2.5,
)

#: AMD MI100 — GME baseline platform: 120 CUs, 1.2 TB/s HBM2.
MI100 = GpuSpec(
    name="AMD MI100",
    sm_count=120,
    clock_ghz=1.50,
    subpartitions_per_sm=4,
    int32_lanes_per_sm=64,
    tensor_int8_macs_per_cycle_per_sm=1024,
    smem_per_sm_bytes=64 * 1024,
    smem_bytes_per_cycle_per_sm=128,
    dram_gbps=1229.0,
    dram_latency_cycles=500,
    smem_latency_cycles=30,
    lsu_issue_per_cycle_per_sm=4.0,
    max_warps_per_sm=40,
    registers_per_sm=65536,
    launch_overhead_us=4.0,
)

KNOWN_DEVICES = {
    spec.name: spec
    for spec in (A100_PCIE_80G, A100_SXM_40G, H100_SXM, V100, MI100)
}


# -- declared tuning knobs (DESIGN.md §14) ----------------------------------
#
# The device layer owns the machine model and its headline resource
# counts.  ``None`` for a count keeps the chosen model's own value; an
# explicit count is applied through ``GpuSpec.with_overrides`` (the
# sensitivity-study mechanism) when ``build_pipeline`` materializes the
# device — so SM/TC scaling studies are plain knob assignments.

from ..tuning.knobs import (  # noqa: E402  (registry import is dep-free)
    Choice, IntRange, KnobSpec, register_knob,
)

register_knob(KnobSpec(
    name="gpu.model", layer="gpusim",
    domain=Choice(tuple(KNOWN_DEVICES)), default=A100_PCIE_80G.name,
    doc="GPU machine model the simulator prices against.",
    observe=lambda pipe: pipe.device.name,
))
register_knob(KnobSpec(
    name="gpu.sm_count", layer="gpusim",
    domain=IntRange(4, 512, optional=True, grid=(54, 80, 108, 132, 216)),
    default=None,
    doc="Override the model's SM count (None keeps the model's own).",
    observe=lambda pipe: pipe.device.sm_count,
))
register_knob(KnobSpec(
    name="gpu.tensor_macs_per_sm", layer="gpusim",
    domain=IntRange(0, 8192, optional=True, grid=(0, 1024, 2048, 3786)),
    default=None,
    doc="Override INT8 tensor MACs/cycle/SM (None keeps the model's "
        "own; 0 disables the tensor-core path).",
    observe=lambda pipe: pipe.device.tensor_int8_macs_per_cycle_per_sm,
))
