"""Nsight-Compute-style reporting over simulated kernel profiles.

Formats the metrics the paper reports: stall cycles per issued instruction
and their category breakdown (Table II, Fig. 5), compute/memory throughput
utilization (Tables III, IX, X), and kernel counts (Table IX).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .engine import KernelProfile
from .stalls import MEMORY_RELATED, StallBreakdown, StallReason


@dataclass
class AggregateMetrics:
    """Roll-up of a group of kernel profiles (e.g. one operation)."""

    kernel_count: int
    total_cycles: float
    total_us: float
    issued_instructions: float
    stalls: StallBreakdown
    #: Time-weighted average utilizations (%).
    compute_utilization: float
    memory_utilization: float

    @property
    def stall_cycles_per_issued(self) -> float:
        if self.issued_instructions == 0:
            return 0.0
        return self.stalls.total / self.issued_instructions

    @property
    def memory_stall_fraction(self) -> float:
        return self.stalls.memory_related_fraction


def aggregate(profiles: Sequence[KernelProfile]) -> AggregateMetrics:
    """Combine kernel profiles into operation-level metrics."""
    if not profiles:
        raise ValueError("cannot aggregate zero profiles")
    stalls = StallBreakdown()
    for p in profiles:
        stalls = stalls.merged_with(p.stalls)
    total_cycles = sum(p.total_cycles for p in profiles)
    exec_cycles = sum(p.exec_cycles for p in profiles)
    compute = sum(
        p.compute_throughput_utilization * p.exec_cycles for p in profiles
    ) / exec_cycles
    memory = sum(
        p.memory_throughput_utilization * p.exec_cycles for p in profiles
    ) / exec_cycles
    return AggregateMetrics(
        kernel_count=len(profiles),
        total_cycles=total_cycles,
        total_us=sum(p.elapsed_us for p in profiles),
        issued_instructions=sum(p.issued_instructions for p in profiles),
        stalls=stalls,
        compute_utilization=compute,
        memory_utilization=memory,
    )


def stall_table(profiles_by_stage: Dict[str, Sequence[KernelProfile]],
                ) -> str:
    """Render a Table II-style stall report, one column per stage."""
    stages = list(profiles_by_stage)
    aggs = {s: aggregate(profiles_by_stage[s]) for s in stages}
    rows: List[str] = []
    header = f"{'metric':<38}" + "".join(f"{s:>16}" for s in stages)
    rows.append(header)
    rows.append(
        f"{'Stall cycles / issued instruction':<38}"
        + "".join(f"{aggs[s].stall_cycles_per_issued:>16.1f}" for s in stages)
    )
    rows.append(
        f"{'Memory-related pipeline stalls (%)':<38}"
        + "".join(
            f"{100 * aggs[s].memory_stall_fraction:>16.1f}" for s in stages
        )
    )
    for reason in (StallReason.LG_THROTTLE, StallReason.LONG_SCOREBOARD,
                   StallReason.SHORT_SCOREBOARD, StallReason.MIO_THROTTLE):
        rows.append(
            f"{'  ' + reason.value + ' (%)':<38}"
            + "".join(
                f"{100 * aggs[s].stalls.fraction(reason):>16.1f}"
                for s in stages
            )
        )
    return "\n".join(rows)


def scheduler_cycles_breakdown(profiles: Sequence[KernelProfile],
                               ) -> Dict[str, float]:
    """Fig. 5-style breakdown: 'selected' (issued) plus stall categories,
    in absolute warp-cycles."""
    agg = aggregate(profiles)
    out: Dict[str, float] = {"selected": agg.issued_instructions}
    for reason, cycles in agg.stalls.cycles.items():
        out[reason.value] = cycles
    return out


def utilization_table(metrics_by_config: Dict[str, AggregateMetrics],
                      *, label: str = "config") -> str:
    """Render a Table IX/X-style utilization comparison."""
    rows = [
        f"{label:<24} {'kernels':>8} {'compute %':>10} {'memory %':>10} "
        f"{'us':>10}"
    ]
    for name, m in metrics_by_config.items():
        rows.append(
            f"{name:<24} {m.kernel_count:>8} {m.compute_utilization:>10.1f} "
            f"{m.memory_utilization:>10.1f} {m.total_us:>10.1f}"
        )
    return "\n".join(rows)


def memory_related_names() -> List[str]:
    """Names of the stall categories counted as memory-related."""
    return sorted(r.value for r in MEMORY_RELATED)
