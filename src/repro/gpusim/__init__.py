"""Analytic GPU timing simulator — the paper's A100 testbed, substituted.

Lowered kernel plans (:class:`KernelSpec`) are priced by a roofline+latency
model (:func:`simulate_kernel`), scheduled over streams
(:func:`run_streams`), and reported with Nsight-Compute-style metrics
(:mod:`profiler`). See DESIGN.md §1 for why this substitution preserves
the paper's comparisons.
"""

from .device import (
    A100_PCIE_80G,
    A100_SXM_40G,
    H100_SXM,
    KNOWN_DEVICES,
    MI100,
    V100,
    GpuSpec,
)
from .engine import (
    KernelProfile,
    Occupancy,
    compute_occupancy,
    simulate_kernel,
)
from .kernel import (
    BYTES_PER_GMEM_INSTR,
    BYTES_PER_SMEM_INSTR,
    MACS_PER_MMA,
    WARP_SIZE,
    KernelSpec,
)
from .profiler import (
    AggregateMetrics,
    aggregate,
    scheduler_cycles_breakdown,
    stall_table,
    utilization_table,
)
from .stalls import MEMORY_RELATED, StallBreakdown, StallReason
from .streams import (
    DagKernel,
    ExecutionResult,
    TimelineEntry,
    cache_stats_scope,
    profile_cache_stats,
    reset_cache_stats,
    run_dag,
    run_serial,
    run_streams,
    spec_cache_key,
)
from .timeline import (
    render_timeline,
    save_chrome_trace,
    summarize,
    to_chrome_trace,
)

# Imported last: the fleet layer pulls in repro.core (for the per-device
# MemoryPool ledger), whose own init re-enters this package and needs
# the engine/stream names above to be bound already.
from .multi import (  # noqa: E402
    FleetDevice,
    FleetEntry,
    FleetResult,
    GpuFleet,
    fleet_to_chrome_trace,
    save_fleet_trace,
)

__all__ = [
    "A100_PCIE_80G",
    "A100_SXM_40G",
    "AggregateMetrics",
    "BYTES_PER_GMEM_INSTR",
    "BYTES_PER_SMEM_INSTR",
    "DagKernel",
    "ExecutionResult",
    "FleetDevice",
    "FleetEntry",
    "FleetResult",
    "GpuFleet",
    "GpuSpec",
    "H100_SXM",
    "KNOWN_DEVICES",
    "KernelProfile",
    "KernelSpec",
    "MACS_PER_MMA",
    "MEMORY_RELATED",
    "MI100",
    "Occupancy",
    "StallBreakdown",
    "StallReason",
    "TimelineEntry",
    "V100",
    "WARP_SIZE",
    "aggregate",
    "cache_stats_scope",
    "compute_occupancy",
    "fleet_to_chrome_trace",
    "profile_cache_stats",
    "render_timeline",
    "reset_cache_stats",
    "run_dag",
    "save_fleet_trace",
    "run_serial",
    "run_streams",
    "save_chrome_trace",
    "scheduler_cycles_breakdown",
    "spec_cache_key",
    "simulate_kernel",
    "stall_table",
    "summarize",
    "to_chrome_trace",
    "utilization_table",
]
