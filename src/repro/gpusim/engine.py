"""The analytic kernel-pricing engine.

Given a :class:`~repro.gpusim.kernel.KernelSpec` and a
:class:`~repro.gpusim.device.GpuSpec`, :func:`simulate_kernel` produces a
:class:`KernelProfile`: elapsed time, the binding resource, Nsight-style
stall attribution and throughput utilizations.

Model
-----
1. **Occupancy** — resident blocks per SM from shared-memory, register and
   warp-slot limits; ``sm_used = min(blocks, sm_count)``.
2. **Throughput roofline** — device-cycles needed by each resource
   (INT32 pipes, tensor pipes, instruction issue, LSU issue, SMEM
   bandwidth, DRAM bandwidth). DRAM bandwidth additionally saturates only
   when enough SMs participate (``dram_saturation_sms``) — this is what
   makes small polynomial-level grids underuse the machine (§III-C).
3. **Latency correction** — memory time is divided by a hiding factor
   ``min(1, resident_warps / warps_to_hide)``: too few resident warps
   expose DRAM/SMEM latency instead of bandwidth.
4. **Elapsed** = max over corrected resource times, plus launch overhead.
5. **Stall attribution** — total warp-resident cycles minus issued
   instructions is distributed over the Nsight categories with pressure
   weights derived from the same resource times (LSU saturation ->
   LG Throttle, DRAM wait -> Long Scoreboard, SMEM wait -> Short
   Scoreboard/MIO, pipe saturation -> Math Throttle, ...).

Every step uses only quantities derivable from the kernel's honest
operation counts, so comparisons between kernel plans (the paper's tables)
reflect algorithmic differences, not tuning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .device import GpuSpec
from .kernel import KernelSpec
from .stalls import StallBreakdown, StallReason

#: Resident warps per SM that fully hide shared-memory latency.
_WARPS_TO_HIDE_SMEM = 4

#: Max resident blocks per SM (hardware limit on current architectures).
_MAX_BLOCKS_PER_SM = 32


@dataclass
class Occupancy:
    """Resolved occupancy of one kernel on one device."""

    blocks_per_sm: int
    resident_warps_per_sm: int
    sm_used: int
    waves: float
    limited_by: str


@dataclass
class KernelProfile:
    """Simulated execution profile of a single kernel launch."""

    spec: KernelSpec
    device: GpuSpec
    occupancy: Occupancy
    #: Device-cycles demanded by each resource (throughput view).
    resource_cycles: Dict[str, float]
    #: The resource that bounds execution.
    bound_by: str
    #: Execution cycles excluding launch overhead.
    exec_cycles: float
    #: Launch + teardown overhead cycles.
    overhead_cycles: float
    issued_instructions: float
    stalls: StallBreakdown = field(default_factory=StallBreakdown)

    @property
    def total_cycles(self) -> float:
        return self.exec_cycles + self.overhead_cycles

    @property
    def elapsed_us(self) -> float:
        return self.device.cycles_to_us(self.total_cycles)

    @property
    def exec_us(self) -> float:
        return self.device.cycles_to_us(self.exec_cycles)

    @property
    def stall_cycles_per_issued(self) -> float:
        if self.issued_instructions == 0:
            return 0.0
        return self.stalls.total / self.issued_instructions

    @property
    def compute_throughput_utilization(self) -> float:
        """Nsight 'Compute (SM) Throughput' analogue: busiest execution
        pipe's demand over elapsed execution time, as a percentage."""
        busiest = max(
            self.resource_cycles["int32"], self.resource_cycles["tensor"],
            self.resource_cycles["issue"],
        )
        return 100.0 * busiest / self.exec_cycles if self.exec_cycles else 0.0

    @property
    def memory_throughput_utilization(self) -> float:
        """Nsight 'Memory Throughput' analogue: busiest memory subsystem
        (DRAM, SMEM, LSU) over elapsed execution time, as a percentage."""
        busiest = max(
            self.resource_cycles["dram"], self.resource_cycles["smem"],
            self.resource_cycles["lsu"],
        )
        return 100.0 * busiest / self.exec_cycles if self.exec_cycles else 0.0


def compute_occupancy(spec: KernelSpec, device: GpuSpec) -> Occupancy:
    """Resolve resident blocks/warps per SM and grid waves."""
    limits = {"hardware": _MAX_BLOCKS_PER_SM}
    if spec.smem_per_block_bytes > 0:
        limits["shared memory"] = max(
            1, device.smem_per_sm_bytes // spec.smem_per_block_bytes
        )
        if spec.smem_per_block_bytes > device.smem_per_sm_bytes:
            raise ValueError(
                f"kernel {spec.name!r} requests {spec.smem_per_block_bytes}B "
                f"of shared memory; device offers {device.smem_per_sm_bytes}B"
            )
    limits["warp slots"] = max(
        1, device.max_warps_per_sm // spec.warps_per_block
    )
    regs_per_block = spec.regs_per_thread * spec.warps_per_block * 32
    if regs_per_block > 0:
        limits["registers"] = max(1, device.registers_per_sm // regs_per_block)
    limited_by = min(limits, key=limits.get)
    blocks_per_sm = max(1, min(limits.values()))
    sm_used = min(spec.blocks, device.sm_count)
    waves = spec.blocks / (blocks_per_sm * device.sm_count)
    resident = min(
        blocks_per_sm * spec.warps_per_block, device.max_warps_per_sm
    )
    # A grid smaller than one full wave resides entirely at once.
    if spec.blocks < blocks_per_sm * device.sm_count:
        per_sm_blocks = -(-spec.blocks // sm_used)
        resident = min(resident, per_sm_blocks * spec.warps_per_block)
    return Occupancy(
        blocks_per_sm=blocks_per_sm,
        resident_warps_per_sm=resident,
        sm_used=sm_used,
        waves=max(1.0, waves),
        limited_by=limited_by,
    )


def simulate_kernel(spec: KernelSpec, device: GpuSpec) -> KernelProfile:
    """Price one kernel launch; see the module docstring for the model."""
    spec.validate()
    occ = compute_occupancy(spec, device)
    sm_used = occ.sm_used

    # --- throughput roofline -------------------------------------------------
    t_int = spec.int32_ops / (device.int32_lanes_per_sm * sm_used)
    if spec.tensor_macs > 0 and device.tensor_int8_macs_per_cycle_per_sm == 0:
        raise ValueError(
            f"kernel {spec.name!r} uses tensor cores but device "
            f"{device.name!r} has none usable for INT8"
        )
    t_tensor = (
        spec.tensor_macs
        / (device.tensor_int8_macs_per_cycle_per_sm * sm_used)
        if spec.tensor_macs
        else 0.0
    )
    per_sm_dram = device.dram_bytes_per_cycle / device.dram_saturation_sms
    achievable_dram = min(
        device.dram_bytes_per_cycle, per_sm_dram * sm_used
    )
    t_dram = spec.gmem_bytes / achievable_dram if spec.gmem_bytes else 0.0
    t_smem = (
        spec.smem_bytes / (device.smem_bytes_per_cycle_per_sm * sm_used)
        if spec.smem_bytes
        else 0.0
    )
    t_issue = spec.warp_instructions / (device.schedulers_per_sm * sm_used)
    t_lsu = (
        spec.gmem_warp_instructions + spec.smem_warp_instructions
    ) / (device.lsu_issue_per_cycle_per_sm * sm_used)

    # --- latency correction ---------------------------------------------------
    hide_dram = min(1.0, occ.resident_warps_per_sm / device.warps_to_hide_dram)
    hide_smem = min(1.0, occ.resident_warps_per_sm / _WARPS_TO_HIDE_SMEM)
    eff_dram = t_dram / hide_dram if t_dram else 0.0
    # A handful of dependent round trips per wave cannot be pipelined away.
    latency_floor = (
        spec.gmem_round_trips * device.dram_latency_cycles * occ.waves
        if spec.gmem_bytes
        else 0.0
    )
    eff_dram = max(eff_dram, latency_floor)
    eff_smem = t_smem / hide_smem if t_smem else 0.0

    resources = {
        "int32": t_int,
        "tensor": t_tensor,
        "dram": eff_dram,
        "smem": eff_smem,
        "issue": t_issue,
        "lsu": t_lsu,
    }
    bound_by = max(resources, key=resources.get)
    exec_cycles = max(resources.values()) / spec.efficiency
    if exec_cycles <= 0:
        exec_cycles = 1.0  # an empty kernel still occupies the pipeline

    profile = KernelProfile(
        spec=spec,
        device=device,
        occupancy=occ,
        resource_cycles=resources,
        bound_by=bound_by,
        exec_cycles=exec_cycles,
        overhead_cycles=device.launch_overhead_cycles,
        issued_instructions=spec.warp_instructions,
    )
    profile.stalls = _attribute_stalls(spec, device, occ, resources,
                                       exec_cycles)
    return profile


def _attribute_stalls(spec: KernelSpec, device: GpuSpec, occ: Occupancy,
                      resources: Dict[str, float],
                      exec_cycles: float) -> StallBreakdown:
    """Distribute non-issuing warp cycles over the Nsight categories."""
    warp_cycles = exec_cycles * occ.resident_warps_per_sm * occ.sm_used
    issued = spec.warp_instructions
    stall_total = max(0.0, warp_cycles - issued)
    breakdown = StallBreakdown()
    if stall_total == 0:
        return breakdown

    def frac(name: str) -> float:
        return resources[name] / exec_cycles if exec_cycles else 0.0

    mem_instr_frac = spec.memory_instruction_fraction
    total_instr = spec.warp_instructions
    gmem_instr_frac = (
        spec.gmem_warp_instructions / total_instr if total_instr else 0.0
    )
    # LG Throttle: the local/global queue backs up when nearly every
    # issued instruction targets global memory and the kernel is
    # memory-bound (TensorFHE's bit-split kernels). Shared-memory pressure
    # shows up as MIO Throttle / Short Scoreboard instead, per Nsight's
    # taxonomy. Long Scoreboard: waits on in-flight DRAM data, dominant
    # when memory waits punctuate compute.
    mem_bound = max(frac("dram"), frac("lsu"))
    weights: Dict[StallReason, float] = {}
    weights[StallReason.LG_THROTTLE] = (
        (gmem_instr_frac ** 2) * mem_bound
        * (6.0 if gmem_instr_frac > 0.4 else 0.6)
    )
    weights[StallReason.LONG_SCOREBOARD] = frac("dram") * max(
        0.15, 1.0 - mem_instr_frac
    )
    weights[StallReason.SHORT_SCOREBOARD] = frac("smem") * 0.6
    weights[StallReason.MIO_THROTTLE] = frac("smem") * 0.4
    weights[StallReason.MATH_THROTTLE] = max(frac("int32"), frac("tensor")) * 0.5
    weights[StallReason.WAIT] = max(frac("int32"), frac("tensor")) * 0.25
    weights[StallReason.BARRIER] = (
        0.1 if spec.barriers else 0.0
    ) * min(1.0, spec.barriers / 8.0)
    weights[StallReason.DRAIN] = 0.02 if spec.gmem_write_bytes else 0.0
    weights[StallReason.IMC_MISS] = 0.01
    # Healthy oversubscription: warps ready but another was selected.
    extra_warps = max(
        0.0, occ.resident_warps_per_sm - 2 * device.schedulers_per_sm
    )
    weights[StallReason.NOT_SELECTED] = (
        0.3 * extra_warps / max(1, occ.resident_warps_per_sm)
    ) * (issued / warp_cycles if warp_cycles else 0.0) * 10.0

    total_weight = sum(weights.values())
    if total_weight == 0:
        breakdown.add(StallReason.NOT_SELECTED, stall_total)
        return breakdown
    for reason, weight in weights.items():
        if weight > 0:
            breakdown.add(reason, stall_total * weight / total_weight)
    return breakdown
