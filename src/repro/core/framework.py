"""The WarpDrive framework facade (§IV-D).

Ties everything together the way the paper's runtime does:

* **Initialization phase** — derive the prime chain and twiddle tables,
  size and allocate the memory pool (``S_max``), pick the NTT kernel shape
  (single vs dual kernel from ``N*w <= S_shared``) and the launch geometry
  (``T = C*W*32``), and resolve the tensor/CUDA warp allocation from the
  device's pipe ratio.
* **Execution** — expose per-operation latency/throughput through the
  scheduler, and functional CKKS execution through :class:`CkksContext`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..ckks import CkksContext, CkksParams
from ..gpusim import A100_PCIE_80G, GpuSpec
from .kernels import GeometryConfig
from .memory_pool import MemoryPool, max_working_set_bytes
from .ntt_engine import VARIANTS
from .scheduler import OperationScheduler
from .warp_allocation import WarpAllocation, default_allocation


@dataclass
class FrameworkConfig:
    """Resolved configuration of one WarpDrive instance."""

    params: CkksParams
    device: GpuSpec
    ntt_variant: str
    geometry: GeometryConfig
    warp_allocation: WarpAllocation
    dual_kernel_ntt: bool
    memory_pool_bytes: int


class WarpDriveFramework:
    """User-facing entry point mirroring the paper's runtime.

    >>> fw = WarpDriveFramework(ParameterSets.set_c())
    >>> fw.op_latency_us("hmult")      # simulated A100 latency
    >>> fw.context()                   # functional CKKS (small rings)
    """

    def __init__(self, params: CkksParams, *,
                 device: GpuSpec = A100_PCIE_80G,
                 ntt_variant: str = "wd-fuse",
                 threads_per_block: int = None,
                 batch_size: int = 1,
                 available_memory_bytes: int = 80 * 1024**3):
        if ntt_variant not in VARIANTS:
            raise ValueError(f"unknown NTT variant {ntt_variant!r}")
        self.params = params
        self.device = device
        self.batch_size = batch_size

        # §IV-D-2: T = C * W * 32 with W = 2 warps per SP by default.
        if threads_per_block is None:
            threads_per_block = device.subpartitions_per_sm * 2 * 32
        self.geometry = GeometryConfig(threads_per_block=threads_per_block)

        self.warp_allocation = default_allocation(device)
        self.scheduler = OperationScheduler(
            params, device=device, ntt_variant=ntt_variant,
            geometry=self.geometry,
        )
        self.ntt = self.scheduler.ntt
        self.pool = MemoryPool.for_params(
            params, batch_size=batch_size,
            available_bytes=available_memory_bytes,
        )
        self.config = FrameworkConfig(
            params=params,
            device=device,
            ntt_variant=ntt_variant,
            geometry=self.geometry,
            warp_allocation=self.warp_allocation,
            dual_kernel_ntt=self.ntt.uses_dual_kernel,
            memory_pool_bytes=self.pool.capacity,
        )
        self._context = None

    # -- performance layer -----------------------------------------------------------

    def op_latency_us(self, op: str, *, level: int = None,
                      batch: int = None) -> float:
        """Simulated amortized latency of a homomorphic operation."""
        return self.scheduler.latency_us(
            op, level=level, batch=batch or self.batch_size
        )

    def op_throughput_kops(self, op: str, *, level: int = None,
                           batch: int = None) -> float:
        return self.scheduler.throughput_kops(
            op, level=level, batch=batch or self.batch_size
        )

    def ntt_throughput_kops(self, batch: int = 1024) -> float:
        """N-point NTT throughput (the Table VII metric)."""
        return self.ntt.throughput_kops(batch)

    def op_profile(self, op: str, **kw) -> Dict[str, object]:
        return self.scheduler.profile(op, **kw)

    # -- functional layer -----------------------------------------------------------

    def context(self, *, seed: int = None) -> CkksContext:
        """Functional CKKS context (lazy; heavy for large N)."""
        if self._context is None:
            self._context = CkksContext.create(self.params, seed=seed)
        return self._context

    # -- introspection -----------------------------------------------------------------

    def describe(self) -> str:
        cfg = self.config
        lines = [
            f"WarpDrive on {cfg.device.name}",
            f"  parameters      : {cfg.params.name or 'custom'} "
            f"(N=2^{cfg.params.n.bit_length() - 1}, L={cfg.params.max_level}, "
            f"K={cfg.params.num_special}, dnum={cfg.params.dnum})",
            f"  NTT variant     : {cfg.ntt_variant} "
            f"({'dual' if cfg.dual_kernel_ntt else 'single'}-kernel, "
            f"plan {self.ntt.plan.describe()})",
            f"  threads/block   : {cfg.geometry.threads_per_block} "
            f"(tensor warps {cfg.warp_allocation.tensor_warps}, "
            f"CUDA warps {cfg.warp_allocation.cuda_warps})",
            f"  memory pool     : {cfg.memory_pool_bytes / 1024**2:.0f} MiB "
            f"(S_max {max_working_set_bytes(self.params, batch_size=self.batch_size) / 1024**2:.0f} MiB)",
        ]
        return "\n".join(lines)

    @staticmethod
    def supported_ops() -> List[str]:
        from .scheduler import HOMOMORPHIC_OPS

        return list(HOMOMORPHIC_OPS)
