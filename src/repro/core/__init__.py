"""WarpDrive core: the paper's contribution, as a library.

- :mod:`.ntt_engine` — WarpDrive-NTT and its five variants (§IV-A/B);
- :mod:`.warp_allocation` — tensor/CUDA warp co-scheduling (§IV-B-3);
- :mod:`.pe_kernel` — parallelism-enhanced ciphertext-level kernels (§IV-C);
- :mod:`.scheduler` — homomorphic-operation lowering to kernel plans;
- :mod:`.framework` — the §IV-D runtime facade;
- :mod:`.memory_pool` / :mod:`.kernels` / :mod:`.costs` — supporting
  pieces (S_max pool, kernel builders, instruction-cost model).
"""

from .costs import NttWorkCounts, plan_work_counts
from .framework import FrameworkConfig, WarpDriveFramework
from .kernels import DEFAULT_GEOMETRY, WORD_BYTES, GeometryConfig
from .memory_pool import MemoryPool, max_working_set_bytes
from .ntt_engine import (
    VARIANTS,
    WarpDriveNtt,
    batched_rns_forward,
    batched_rns_inverse,
)
from .pe_kernel import PeKeySwitchPlan
from .scheduler import HOMOMORPHIC_OPS, OperationScheduler
from .warp_allocation import (
    WarpAllocation,
    balance_fraction,
    default_allocation,
    fused_times,
)

__all__ = [
    "DEFAULT_GEOMETRY",
    "FrameworkConfig",
    "GeometryConfig",
    "HOMOMORPHIC_OPS",
    "MemoryPool",
    "NttWorkCounts",
    "OperationScheduler",
    "PeKeySwitchPlan",
    "VARIANTS",
    "batched_rns_forward",
    "batched_rns_inverse",
    "WORD_BYTES",
    "WarpAllocation",
    "WarpDriveFramework",
    "WarpDriveNtt",
    "balance_fraction",
    "default_allocation",
    "fused_times",
    "max_working_set_bytes",
    "plan_work_counts",
]
