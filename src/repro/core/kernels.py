"""Kernel builders: honest hardware cost descriptors for FHE primitives.

Every builder converts an algorithmic workload (how many elements, which
modular operations, how many bytes in and out) into a
:class:`~repro.gpusim.KernelSpec` using the geometry rules of §IV-D-2:
``T = 256`` threads per block by default, ``N_t = 8`` coefficients per
thread for NTT kernels and 1 for element-wise kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpusim import KernelSpec
from . import costs

#: GPU word size of the paper's implementation (bytes).
WORD_BYTES = 4

#: Default pipeline efficiency of element-wise / conversion kernels:
#: real kernels land near half the analytic roofline (calibrated once
#: against Table VIII's HADD row; see EXPERIMENTS.md). Applied uniformly
#: to WarpDrive and baseline kernels alike so ratios stay honest.
DEFAULT_KERNEL_EFFICIENCY = 0.5


@dataclass(frozen=True)
class GeometryConfig:
    """Launch-geometry knobs (Fig. 7 sweeps threads_per_block)."""

    threads_per_block: int = 256
    #: Coefficients per thread in NTT kernels (tensor tile height).
    ntt_coeffs_per_thread: int = 8

    @property
    def warps_per_block(self) -> int:
        return max(1, self.threads_per_block // 32)

    def blocks_for(self, elements: int, per_thread: int = 1) -> int:
        per_block = self.threads_per_block * per_thread
        return max(1, -(-elements // per_block))


DEFAULT_GEOMETRY = GeometryConfig()

# -- declared tuning knobs (DESIGN.md §14) ----------------------------------
#
# The kernel layer owns launch geometry (the Fig. 7 sweep axis).

from ..tuning.knobs import Choice, KnobSpec, register_knob  # noqa: E402

register_knob(KnobSpec(
    name="geometry.threads_per_block", layer="core",
    domain=Choice((64, 128, 256, 512, 1024)),
    default=DEFAULT_GEOMETRY.threads_per_block,
    doc="Threads per block of every lowered kernel (Fig. 7 sweep).",
    observe=lambda pipe: pipe.geometry.threads_per_block,
))
register_knob(KnobSpec(
    name="geometry.ntt_coeffs_per_thread", layer="core",
    domain=Choice((2, 4, 8, 16)),
    default=DEFAULT_GEOMETRY.ntt_coeffs_per_thread,
    doc="Coefficients per thread in NTT kernels (tensor tile height).",
    observe=lambda pipe: pipe.geometry.ntt_coeffs_per_thread,
))


def elementwise_kernel(name: str, elements: int, *, ops_per_element: float,
                       read_words: float, write_words: float,
                       geometry: GeometryConfig = DEFAULT_GEOMETRY,
                       coalescing: float = 1.0,
                       efficiency: float = DEFAULT_KERNEL_EFFICIENCY,
                       **tags) -> KernelSpec:
    """An element-wise modular-arithmetic kernel (HADD, Hadamard, ...)."""
    return KernelSpec(
        name=name,
        blocks=geometry.blocks_for(elements),
        warps_per_block=geometry.warps_per_block,
        int32_ops=elements * ops_per_element,
        gmem_read_bytes=read_words * elements * WORD_BYTES,
        gmem_write_bytes=write_words * elements * WORD_BYTES,
        coalescing=coalescing,
        efficiency=efficiency,
        regs_per_thread=40,
        tags={"kind": "elementwise", **tags},
    ).validate()


def modmul_kernel(name: str, elements: int, *, operands: int = 2,
                  geometry: GeometryConfig = DEFAULT_GEOMETRY,
                  **tags) -> KernelSpec:
    """Pointwise Barrett modular multiplication over ``elements`` values."""
    return elementwise_kernel(
        name, elements,
        ops_per_element=costs.BARRETT_MULMOD_OPS,
        read_words=operands, write_words=1, geometry=geometry, **tags,
    )


def modadd_kernel(name: str, elements: int, *,
                  geometry: GeometryConfig = DEFAULT_GEOMETRY,
                  **tags) -> KernelSpec:
    """Pointwise modular addition over ``elements`` values."""
    return elementwise_kernel(
        name, elements, ops_per_element=costs.MODADD_OPS,
        read_words=2, write_words=1, geometry=geometry, **tags,
    )


def modup_kernel(name: str, n: int, source_primes: int, target_primes: int,
                 polys: int = 1, *,
                 geometry: GeometryConfig = DEFAULT_GEOMETRY,
                 efficiency: float = DEFAULT_KERNEL_EFFICIENCY,
                 **tags) -> KernelSpec:
    """Fast basis extension of ``polys`` polynomials.

    Work per coefficient: ``source`` products for the ``y_i`` terms plus a
    ``source x target`` accumulation of ``y_i * (Q/q_i mod t)`` products —
    all Barrett multiplies on CUDA cores.
    """
    coeff_ops = (
        source_primes * costs.BARRETT_MULMOD_OPS
        + source_primes * target_primes
        * (costs.BARRETT_MULMOD_OPS + costs.MODADD_OPS)
    )
    elements = n * polys
    return KernelSpec(
        name=name,
        blocks=geometry.blocks_for(elements * target_primes),
        warps_per_block=geometry.warps_per_block,
        int32_ops=elements * coeff_ops,
        gmem_read_bytes=elements * source_primes * WORD_BYTES,
        gmem_write_bytes=elements * target_primes * WORD_BYTES,
        efficiency=efficiency,
        regs_per_thread=64,
        tags={"kind": "modup", **tags},
    ).validate()


def moddown_kernel(name: str, n: int, main_primes: int, special_primes: int,
                   polys: int = 1, *,
                   geometry: GeometryConfig = DEFAULT_GEOMETRY,
                   efficiency: float = DEFAULT_KERNEL_EFFICIENCY,
                   **tags) -> KernelSpec:
    """ModDown: extension of the special part plus subtract-and-scale."""
    coeff_ops = (
        special_primes * costs.BARRETT_MULMOD_OPS
        + special_primes * main_primes
        * (costs.BARRETT_MULMOD_OPS + costs.MODADD_OPS)
        + main_primes * (costs.BARRETT_MULMOD_OPS + costs.MODADD_OPS)
    )
    elements = n * polys
    total_primes = main_primes + special_primes
    return KernelSpec(
        name=name,
        blocks=geometry.blocks_for(elements * main_primes),
        warps_per_block=geometry.warps_per_block,
        int32_ops=elements * coeff_ops,
        gmem_read_bytes=elements * total_primes * WORD_BYTES,
        gmem_write_bytes=elements * main_primes * WORD_BYTES,
        efficiency=efficiency,
        regs_per_thread=64,
        tags={"kind": "moddown", **tags},
    ).validate()


def inner_product_kernel(name: str, n: int, primes: int, digits: int,
                         accumulators: int = 2, *,
                         geometry: GeometryConfig = DEFAULT_GEOMETRY,
                         efficiency: float = DEFAULT_KERNEL_EFFICIENCY,
                         **tags) -> KernelSpec:
    """KeySwitch inner product: accumulate digit x evk over all digits.

    Reads ``digits`` extended digit polynomials and ``accumulators*digits``
    key polynomials; the 100x profile (Table III) shows this kernel as the
    memory-throughput-saturated one, which emerges here from its high
    bytes-per-op ratio.
    """
    elements = n * primes
    ops = digits * accumulators * (
        costs.BARRETT_MULMOD_OPS + costs.MODADD_OPS
    )
    reads = elements * digits * (1 + accumulators) * WORD_BYTES
    return KernelSpec(
        name=name,
        blocks=geometry.blocks_for(elements),
        warps_per_block=geometry.warps_per_block,
        int32_ops=elements * ops,
        gmem_read_bytes=reads,
        gmem_write_bytes=elements * accumulators * WORD_BYTES,
        efficiency=efficiency,
        regs_per_thread=56,
        tags={"kind": "inner_product", **tags},
    ).validate()


def automorphism_kernel(name: str, n: int, primes: int, polys: int = 2, *,
                        geometry: GeometryConfig = DEFAULT_GEOMETRY,
                        **tags) -> KernelSpec:
    """Coefficient permutation with sign flips (HROTATE's data movement).

    The gather pattern is index-scrambled, so coalescing suffers — the
    reason rotations are memory-unfriendly on real GPUs."""
    elements = n * primes * polys
    return elementwise_kernel(
        name, elements, ops_per_element=6,
        read_words=1, write_words=1, geometry=geometry, coalescing=0.5,
        **tags,
    )
