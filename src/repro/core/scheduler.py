"""Lowering of homomorphic operations to WarpDrive kernel plans.

Each homomorphic operation of §II-A becomes a short list of PE kernels
(one launch per pipeline stage, every launch covering the whole
ciphertext). The plans are priced by the GPU simulator; the functional
layer (:mod:`repro.ckks`) proves the same pipelines numerically.
"""

from __future__ import annotations

from typing import Dict, List

from ..ckks.params import CkksParams
from ..gpusim import (
    A100_PCIE_80G,
    ExecutionResult,
    GpuSpec,
    KernelSpec,
    run_serial,
)
from . import kernels as K
from .kernels import DEFAULT_GEOMETRY, GeometryConfig
from .ntt_engine import WarpDriveNtt
from .pe_kernel import PeKeySwitchPlan

HOMOMORPHIC_OPS = ("hadd", "hsub", "pmult", "hmult", "hrotate", "rescale",
                   "keyswitch")


class OperationScheduler:
    """Builds and prices kernel plans for one parameter set."""

    def __init__(self, params: CkksParams, *,
                 device: GpuSpec = A100_PCIE_80G,
                 ntt_variant: str = "wd-fuse",
                 geometry: GeometryConfig = DEFAULT_GEOMETRY):
        self.params = params
        self.device = device
        self.geometry = geometry
        self.ntt = WarpDriveNtt(
            params.n, variant=ntt_variant, device=device, geometry=geometry
        )

    # -- plans ------------------------------------------------------------------

    def plan(self, op: str, *, level: int = None,
             batch: int = 1) -> List[KernelSpec]:
        level = self.params.max_level if level is None else level
        builder = {
            "hadd": self._plan_hadd,
            "hsub": self._plan_hadd,
            "pmult": self._plan_pmult,
            "hmult": self._plan_hmult,
            "hrotate": self._plan_hrotate,
            "rescale": self._plan_rescale,
            "keyswitch": self._plan_keyswitch,
        }.get(op)
        if builder is None:
            raise ValueError(
                f"unknown operation {op!r}; one of {HOMOMORPHIC_OPS}"
            )
        return builder(level, batch)

    def simulate(self, op: str, *, level: int = None,
                 batch: int = 1) -> ExecutionResult:
        return run_serial(self.plan(op, level=level, batch=batch),
                          self.device)

    def latency_us(self, op: str, *, level: int = None,
                   batch: int = 1) -> float:
        """Amortized per-ciphertext latency of ``op``."""
        return self.simulate(op, level=level, batch=batch).elapsed_us / batch

    def throughput_kops(self, op: str, *, level: int = None,
                        batch: int = 1) -> float:
        return 1e3 / self.latency_us(op, level=level, batch=batch)

    def kernel_count(self, op: str, *, level: int = None) -> int:
        return len(self.plan(op, level=level))

    # -- per-op builders -----------------------------------------------------------

    def _elements(self, level: int, batch: int, polys: int = 2) -> int:
        return self.params.n * (level + 1) * batch * polys

    def _plan_hadd(self, level: int, batch: int) -> List[KernelSpec]:
        # One PE kernel adds both polynomials of both operands.
        return [
            K.modadd_kernel(
                "hadd", self._elements(level, batch), geometry=self.geometry
            )
        ]

    def _plan_pmult(self, level: int, batch: int) -> List[KernelSpec]:
        # ct (2 polys) x pt (1 poly), eval domain: one Hadamard kernel.
        return [
            K.modmul_kernel(
                "pmult", self._elements(level, batch),
                geometry=self.geometry,
            )
        ]

    def _plan_keyswitch(self, level: int, batch: int) -> List[KernelSpec]:
        return PeKeySwitchPlan(
            self.params, level, ntt=self.ntt, geometry=self.geometry,
            batch=batch,
        ).kernels()

    def _plan_hmult(self, level: int, batch: int) -> List[KernelSpec]:
        # Tensor products d0, d1, d2 in one PE kernel (reads both
        # ciphertexts once), then KeySwitch(d2) and the rescale.
        n_elems = self._elements(level, batch, polys=1)
        plan = [
            K.elementwise_kernel(
                "hmult.tensor_product", n_elems,
                ops_per_element=4 * 7 + 2 * 2,  # 4 products, 2 adds
                read_words=4, write_words=3, geometry=self.geometry,
            )
        ]
        plan += self._plan_keyswitch(level, batch)
        plan += self._plan_rescale(level, batch)
        return plan

    def _plan_hrotate(self, level: int, batch: int) -> List[KernelSpec]:
        plan = [
            K.automorphism_kernel(
                "hrotate.automorphism", self.params.n, level + 1,
                polys=2 * batch, geometry=self.geometry,
            )
        ]
        plan += self._plan_keyswitch(level, batch)
        return plan

    def _plan_rescale(self, level: int, batch: int) -> List[KernelSpec]:
        # INTT both polys, exact-divide against the dropped prime(s), NTT
        # back — one PE kernel per stage.
        drop = self.params.rescale_primes
        lvl = level + 1
        n = self.params.n
        ntt_batch = 2 * lvl * batch
        intt = self.ntt.kernel_plan(ntt_batch, inverse=True)
        ntt = self.ntt.kernel_plan(2 * (lvl - drop) * batch, inverse=False)
        divide = K.elementwise_kernel(
            "rescale.divide", n * (lvl - drop) * 2 * batch,
            ops_per_element=drop * (7 + 2),
            read_words=1 + drop, write_words=1, geometry=self.geometry,
        )
        return [
            k.renamed("rescale.intt") for k in intt
        ] + [divide] + [k.renamed("rescale.ntt") for k in ntt]

    # -- profiles ---------------------------------------------------------------------

    def profile(self, op: str, *, level: int = None,
                batch: int = 1) -> Dict[str, object]:
        """Summary dict used by the benchmark harness tables."""
        result = self.simulate(op, level=level, batch=batch)
        from ..gpusim import aggregate

        agg = aggregate(result.profiles)
        return {
            "op": op,
            "kernels": result.kernel_count,
            "latency_us": result.elapsed_us / batch,
            "compute_util": agg.compute_utilization,
            "memory_util": agg.memory_utilization,
        }
