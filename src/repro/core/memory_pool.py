"""GPU memory-pool model (§IV-D-1).

WarpDrive allocates one pool at initialization to avoid per-kernel
allocation overhead. The pool is sized by the maximum working set of a
ciphertext during KeySwitch::

    S_max = l * N * dnum * (l + k) * BS * w

capped by the device's available memory. The model tracks allocations so
tests can verify reuse (no allocation churn during operation streams).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..ckks.params import CkksParams


def max_working_set_bytes(params: CkksParams, *, batch_size: int = 1,
                          word_bytes: int = 4) -> int:
    """The paper's ``S_max`` formula for the KeySwitch working set."""
    l = params.max_level
    return (
        l * params.n * params.dnum * (l + params.num_special)
        * batch_size * word_bytes
    )


@dataclass
class Allocation:
    offset: int
    size: int
    tag: str


class MemoryPool:
    """Bump allocator with explicit reset, mirroring the framework's
    per-operation reuse of one preallocated slab.

    The serving layer additionally uses one pool per simulated device as
    the HBM admission ledger: batches :meth:`allocate` their working set
    on admission and :meth:`release` it on completion.  Releases reclaim
    the bump cursor down to the highest still-live allocation, so the
    FIFO completion order of a serially-executing device returns memory
    exactly; out-of-order releases leave a hole until the neighbors
    retire (which only ever *over*-accounts — capacity is never
    exceeded)."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError("pool capacity must be positive")
        self.capacity = capacity_bytes
        self._cursor = 0
        self._live: List[Allocation] = []
        self.stats: Dict[str, int] = {
            "allocations": 0, "resets": 0, "releases": 0, "peak_bytes": 0,
        }

    @classmethod
    def for_params(cls, params: CkksParams, *, batch_size: int = 1,
                   word_bytes: int = 4,
                   available_bytes: int = 80 * 1024**3) -> "MemoryPool":
        """Pool sized to min(S_max, available memory) per §IV-D-1.

        ``word_bytes`` defaults to the paper's 32-bit GPU words; the
        functional host mirror stores residues as uint64, so tests
        accounting live numpy buffers pass ``word_bytes=8``.
        """
        want = max_working_set_bytes(
            params, batch_size=batch_size, word_bytes=word_bytes
        )
        return cls(min(want, available_bytes))

    def allocate(self, size: int, tag: str = "") -> Allocation:
        if size <= 0:
            raise ValueError("allocation size must be positive")
        aligned = (size + 255) // 256 * 256
        if self._cursor + aligned > self.capacity:
            raise MemoryError(
                f"pool exhausted: {self._cursor + aligned} > {self.capacity}"
            )
        alloc = Allocation(self._cursor, aligned, tag)
        self._cursor += aligned
        self._live.append(alloc)
        self.stats["allocations"] += 1
        self.stats["peak_bytes"] = max(self.stats["peak_bytes"], self._cursor)
        return alloc

    def fits(self, size: int) -> bool:
        """Whether :meth:`allocate` of ``size`` would succeed right now."""
        if size <= 0:
            return False
        aligned = (size + 255) // 256 * 256
        return self._cursor + aligned <= self.capacity

    def release(self, alloc: Allocation) -> None:
        """Return one live allocation to the pool.

        The cursor rewinds to the end of the highest remaining live
        allocation, so trailing holes are reclaimed immediately and
        interior holes as soon as everything above them releases.
        """
        try:
            self._live.remove(alloc)
        except ValueError:
            raise ValueError(
                f"allocation {alloc.tag!r} @{alloc.offset} is not live"
            ) from None
        self._cursor = max(
            (a.offset + a.size for a in self._live), default=0
        )
        self.stats["releases"] += 1

    def reset(self) -> None:
        """Release everything (between homomorphic operations)."""
        self._cursor = 0
        self._live.clear()
        self.stats["resets"] += 1

    @property
    def in_use(self) -> int:
        return self._cursor

    @property
    def free(self) -> int:
        return self.capacity - self._cursor
