"""GPU memory-pool model (§IV-D-1).

WarpDrive allocates one pool at initialization to avoid per-kernel
allocation overhead. The pool is sized by the maximum working set of a
ciphertext during KeySwitch::

    S_max = l * N * dnum * (l + k) * BS * w

capped by the device's available memory. The model tracks allocations so
tests can verify reuse (no allocation churn during operation streams).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ckks.params import CkksParams


def max_working_set_bytes(params: CkksParams, *, batch_size: int = 1,
                          word_bytes: int = 4) -> int:
    """The paper's ``S_max`` formula for the KeySwitch working set."""
    l = params.max_level
    return (
        l * params.n * params.dnum * (l + params.num_special)
        * batch_size * word_bytes
    )


@dataclass
class Allocation:
    offset: int
    size: int
    tag: str


class MemoryPool:
    """First-fit slab allocator with explicit reset, mirroring the
    framework's per-operation reuse of one preallocated slab.

    The serving layer additionally uses one pool per simulated device as
    the HBM admission ledger: batches :meth:`allocate` their working set
    on admission and :meth:`release` it on completion.  ``in_use`` is
    the byte sum of live allocations, so every release returns its bytes
    immediately regardless of order — in particular the FIFO completion
    order of a serially-executing device.  New allocations go into the
    first gap that fits (gaps coalesce as neighbors retire), so capacity
    is never exceeded and a bounded pool sustains unbounded streaming
    traffic."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError("pool capacity must be positive")
        self.capacity = capacity_bytes
        #: Live allocations, sorted by offset.
        self._live: List[Allocation] = []
        self._in_use = 0
        self.stats: Dict[str, int] = {
            "allocations": 0, "resets": 0, "releases": 0, "peak_bytes": 0,
        }

    @classmethod
    def for_params(cls, params: CkksParams, *, batch_size: int = 1,
                   word_bytes: int = 4,
                   available_bytes: int = 80 * 1024**3) -> "MemoryPool":
        """Pool sized to min(S_max, available memory) per §IV-D-1.

        ``word_bytes`` defaults to the paper's 32-bit GPU words; the
        functional host mirror stores residues as uint64, so tests
        accounting live numpy buffers pass ``word_bytes=8``.
        """
        want = max_working_set_bytes(
            params, batch_size=batch_size, word_bytes=word_bytes
        )
        return cls(min(want, available_bytes))

    def _find_spot(self, aligned: int) -> Optional[Tuple[int, int]]:
        """First gap holding ``aligned`` bytes: (offset, insert index)."""
        prev_end = 0
        for i, a in enumerate(self._live):
            if a.offset - prev_end >= aligned:
                return prev_end, i
            prev_end = a.offset + a.size
        if self.capacity - prev_end >= aligned:
            return prev_end, len(self._live)
        return None

    def allocate(self, size: int, tag: str = "") -> Allocation:
        if size <= 0:
            raise ValueError("allocation size must be positive")
        aligned = (size + 255) // 256 * 256
        spot = self._find_spot(aligned)
        if spot is None:
            raise MemoryError(
                f"pool exhausted: no gap for {aligned} bytes "
                f"({self.capacity - self._in_use} free of {self.capacity})"
            )
        offset, index = spot
        alloc = Allocation(offset, aligned, tag)
        self._live.insert(index, alloc)
        self._in_use += aligned
        self.stats["allocations"] += 1
        self.stats["peak_bytes"] = max(self.stats["peak_bytes"], self._in_use)
        return alloc

    def fits(self, size: int) -> bool:
        """Whether :meth:`allocate` of ``size`` would succeed right now."""
        if size <= 0:
            return False
        aligned = (size + 255) // 256 * 256
        return self._find_spot(aligned) is not None

    def release(self, alloc: Allocation) -> None:
        """Return one live allocation to the pool.

        Its bytes come back immediately (``in_use`` drops by the
        allocation's aligned size); the gap it leaves coalesces with any
        free neighbors and is reusable by the next :meth:`allocate`.
        """
        try:
            self._live.remove(alloc)
        except ValueError:
            raise ValueError(
                f"allocation {alloc.tag!r} @{alloc.offset} is not live"
            ) from None
        self._in_use -= alloc.size
        self.stats["releases"] += 1

    def reset(self) -> None:
        """Release everything (between homomorphic operations)."""
        self._live.clear()
        self._in_use = 0
        self.stats["resets"] += 1

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def free(self) -> int:
        return self.capacity - self._in_use
