"""Tensor/CUDA warp allocation (§IV-B-3, §IV-D-3, Fig. 3).

Within one block, warps split between tensor-core work and CUDA-core work;
because all warps of a block land on the same SM, pairing 4 tensor warps
with 4 CUDA warps covers the SM's 4 sub-partitions with both kinds of work,
letting the two pipes overlap. The *fraction* of inner-NTT work assigned to
each side is chosen from the pipes' relative throughput for their assigned
instruction mix — the "Core Utilization Optimization" of §IV-D-3.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpusim.device import GpuSpec


@dataclass(frozen=True)
class WarpAllocation:
    """Resolved allocation for one fused NTT kernel."""

    tensor_warps: int
    cuda_warps: int
    #: Fraction of inner-NTT work on tensor cores (0..1).
    tensor_fraction: float

    @property
    def warps_per_block(self) -> int:
        return self.tensor_warps + self.cuda_warps


def default_allocation(device: GpuSpec) -> WarpAllocation:
    """The paper's 4 + 4 split: one tensor and one CUDA warp per SP."""
    per_side = device.subpartitions_per_sm
    return WarpAllocation(
        tensor_warps=per_side, cuda_warps=per_side,
        tensor_fraction=0.5,
    )


def balance_fraction(device: GpuSpec, *, tensor_macs_per_unit: float,
                     cuda_ops_per_unit: float,
                     cuda_fixed_ops: float = 0.0) -> float:
    """Work fraction ``f`` for tensor cores that equalizes pipe times.

    One "unit" of inner-NTT work costs ``tensor_macs_per_unit`` INT8 MACs
    on the tensor path or ``cuda_ops_per_unit`` INT32 ops on the CUDA
    path; ``cuda_fixed_ops`` is CUDA work that exists regardless of the
    split (bit split/merge, twiddles, reductions). Solving
    ``f*Tm/Rt = (1-f)*Co/Rc + Cf/Rc`` for ``f``::

        f = (Co + Cf) / (Tm * Rc/Rt + Co)

    Returns a fraction clipped to [0, 1]; 1 means the CUDA side has no
    spare capacity and everything stays on tensor cores.
    """
    rt = device.tensor_macs_per_cycle
    rc = device.int32_ops_per_cycle
    if rt == 0:
        return 0.0
    tensor_time_full = tensor_macs_per_unit / rt
    cuda_time_full = cuda_ops_per_unit / rc
    fixed = cuda_fixed_ops / rc
    denominator = tensor_time_full + cuda_time_full
    if denominator == 0:
        return 1.0
    f = (cuda_time_full + fixed) / denominator
    return min(1.0, max(0.0, f))


def fused_times(device: GpuSpec, fraction: float, *,
                tensor_macs: float, cuda_gemm_ops: float,
                cuda_fixed_ops: float) -> dict:
    """Pipe times (cycles, device-wide) of a fused kernel at ``fraction``.

    Used by ablation benchmarks to show the fused max() beating either
    single-pipe time — the §IV-B headline.
    """
    rt = device.tensor_macs_per_cycle or float("inf")
    rc = device.int32_ops_per_cycle
    t_tensor = fraction * tensor_macs / rt
    t_cuda = ((1.0 - fraction) * cuda_gemm_ops + cuda_fixed_ops) / rc
    return {
        "tensor": t_tensor,
        "cuda": t_cuda,
        "fused": max(t_tensor, t_cuda),
        "tensor_only": tensor_macs / rt + cuda_fixed_ops / rc,
        "cuda_only": (cuda_gemm_ops + cuda_fixed_ops) / rc,
    }
