"""Shared operation-cost constants and plan-derived NTT work counts.

Everything the simulator charges is derived from these counts, which come
from two sources:

* per-primitive instruction costs of 32-bit modular arithmetic on INT32
  CUDA cores (a Barrett product is two 32x32 multiplies producing hi/lo
  words, a multiply by mu in two halves, shifts and a correcting subtract;
  Montgomery saves roughly 10% — the §IV-A-4 measurement);
* per-NTT operation counts derived from the decomposition plan, matching
  the closed forms of Table IV on balanced trees and generalizing them to
  unbalanced trees such as (16x16)x16.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ntt.decompose import NttPlan

#: INT32 instructions per 32-bit Barrett modular multiplication
#: (IMAD-fused: two 32x32 hi/lo products, the mu product halves, shifts
#: and a correcting subtract, several fused into IMAD forms).
BARRETT_MULMOD_OPS = 7
#: INT32 instructions per 32-bit Montgomery modular multiplication
#: (the ~10% win of §IV-A-4, used inside NTTs).
MONTGOMERY_MULMOD_OPS = 6
#: INT32 instructions per modular addition/subtraction.
MODADD_OPS = 2
#: INT32 instructions to extract one uint8 limb (one shift-mask).
BIT_SPLIT_OPS = 1
#: INT32 instructions to fold one limb partial product into the merge
#: accumulator (IMAD with a shifted operand plus bookkeeping).
BIT_MERGE_OPS = 3
#: INT32 instructions per standalone modular reduction of an accumulator.
MODRED_OPS = 3
#: uint8 limb GEMMs per 32-bit modular GEMM (schoolbook; Karatsuba = 9).
LIMB_GEMMS = 16
#: INT32 instructions per butterfly: register-resident high-radix
#: butterflies fuse the Montgomery product's IMADs with the add/sub pair.
BUTTERFLY_OPS = 5


@dataclass(frozen=True)
class NttWorkCounts:
    """Operation counts for ONE n-point NTT under a decomposition plan.

    ``ew_mul`` counts the scalar multiplications inside inner-NTT GEMMs
    (before limb expansion); the tensor path multiplies this by
    :data:`LIMB_GEMMS` to get INT8 MACs.
    """

    n: int
    ew_mul: int
    mod_mul: int
    mod_red: int
    bit_dec_mer: int
    leaf_steps: int
    butterfly_count: int

    @property
    def tensor_macs(self) -> int:
        """INT8 MACs when the GEMMs run on tensor cores."""
        return self.ew_mul * LIMB_GEMMS

    def cuda_gemm_ops(self) -> int:
        """INT32 ops when the same GEMMs run as 32-bit CUDA GEMM
        (multiply-reduce-accumulate, no bit splitting needed)."""
        return self.ew_mul * (MONTGOMERY_MULMOD_OPS + 1)

    def support_ops(self, *, include_bit_ops: bool) -> int:
        """INT32 ops around the GEMMs: twiddle Hadamards, reductions and
        (for the tensor path) the limb split/merge work."""
        ops = (
            self.mod_mul * MONTGOMERY_MULMOD_OPS
            + self.mod_red * MODRED_OPS
            + self.n * MONTGOMERY_MULMOD_OPS  # psi pre/post scale
        )
        if include_bit_ops:
            ops += self.bit_dec_mer * (BIT_SPLIT_OPS + BIT_MERGE_OPS) // 2
        return ops

    def butterfly_ops(self) -> int:
        """INT32 ops when the whole NTT runs as a monolithic high-radix
        butterfly network (twiddle Hadamards fold into butterfly twiddles;
        only the negacyclic psi scale remains separate)."""
        return (
            self.butterfly_count * BUTTERFLY_OPS
            + self.n * MONTGOMERY_MULMOD_OPS
        )


def plan_work_counts(plan: NttPlan) -> NttWorkCounts:
    """Derive one NTT's operation counts from its decomposition plan.

    On balanced trees these reproduce Table IV exactly:
    ``ew_mul = N * sum(leaf dims)``, ``mod_mul = N * internal nodes``,
    ``mod_red = N * leaf steps``, ``bit_dec_mer = N * (2*leaf_steps - 2)``.
    """
    n = plan.n
    leaf_sizes = plan.leaf_sizes()
    leaf_steps = len(leaf_sizes)
    internal = _internal_nodes(plan)
    import math

    return NttWorkCounts(
        n=n,
        ew_mul=n * sum(leaf_sizes),
        mod_mul=n * internal,
        mod_red=n * max(2, leaf_steps),
        bit_dec_mer=n * max(2, 2 * leaf_steps - 2),
        leaf_steps=leaf_steps,
        butterfly_count=(n // 2) * int(math.log2(n)),
    )


def _internal_nodes(plan: NttPlan) -> int:
    if plan.is_leaf:
        return 0
    return 1 + _internal_nodes(plan.left) + _internal_nodes(plan.right)
