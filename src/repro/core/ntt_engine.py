"""WarpDrive-NTT: the five execution variants of §V-A.

* **WD-Tensor** — warp-level tensor-core GEMM inner NTTs (uint8 limbs),
  CUDA cores handling split/merge, twiddle Hadamards and reductions;
* **WD-CUDA** — the same GEMM structure executed as 32-bit GEMM on INT32
  CUDA cores (no bit splitting);
* **WD-FTC** — WD-Tensor and WD-CUDA fused: both pipes run GEMMs;
* **WD-BO** — high-radix butterfly inner NTTs on CUDA cores;
* **WD-FUSE** — WD-Tensor and WD-BO fused: tensor warps run limb GEMMs
  while CUDA warps run butterflies on their share of the batch
  (the paper's default: it beats every single-pipe variant).

Each variant provides (a) a *functional* executor (bit-exact, via
:mod:`repro.ntt`) and (b) a *kernel plan* priced by the GPU simulator.
Geometry follows §IV-D-2 (T=256, N_t=8, single kernel when the polynomial
fits shared memory, dual kernel otherwise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..analysis.annotations import returns_view
from ..gpusim import A100_PCIE_80G, ExecutionResult, GpuSpec, KernelSpec, run_serial
from ..ntt import (
    HierarchicalNtt,
    NttTables,
    batched_negacyclic_intt,
    batched_negacyclic_ntt,
    build_plan,
    get_twiddle_stack,
)
from . import costs
from .kernels import DEFAULT_GEOMETRY, WORD_BYTES, GeometryConfig
from .warp_allocation import WarpAllocation, balance_fraction, default_allocation

VARIANTS = ("wd-tensor", "wd-cuda", "wd-ftc", "wd-bo", "wd-fuse")

# -- declared tuning knobs (DESIGN.md §14) ----------------------------------

from ..tuning.knobs import Choice, KnobSpec, register_knob  # noqa: E402

register_knob(KnobSpec(
    name="ntt.variant", layer="ntt",
    domain=Choice(VARIANTS), default="wd-fuse",
    doc="NTT execution strategy (Fig. 6): tensor-core GEMM, CUDA "
        "butterflies, fused tensor+CUDA, or balanced-offload hybrids.",
    observe=lambda pipe: pipe.scheduler.ntt.variant,
))


def batched_rns_forward(data: np.ndarray, moduli, n: int) -> np.ndarray:
    """Batched fast-NTT entry point: forward-transform every residue row
    of a ``(num_primes, N)`` matrix in one vectorized pass.

    Every WarpDrive variant routes through this kernel on the functional
    side — the variants are bit-identical in output and differ only in the
    kernel plans the simulator prices.
    """
    return batched_negacyclic_ntt(data, get_twiddle_stack(tuple(moduli), n))


def batched_rns_inverse(data: np.ndarray, moduli, n: int) -> np.ndarray:
    """Batched inverse counterpart of :func:`batched_rns_forward`."""
    return batched_negacyclic_intt(data, get_twiddle_stack(tuple(moduli), n))

#: Functional leaf engine per variant (fused variants verify via tensor —
#: all engines are bit-identical, see tests).
_FUNCTIONAL_ENGINE = {
    "wd-tensor": "tensor",
    "wd-cuda": "cuda-gemm",
    "wd-ftc": "tensor",
    "wd-bo": "butterfly",
    "wd-fuse": "tensor",
}

#: INT32 instructions per 32-bit GEMM MAC on CUDA cores: one IMAD plus
#: amortized lazy reduction.
_CUDA_GEMM_OPS_PER_MAC = 1.3

#: Twiddle-related extra global traffic, as a fraction of the data
#: payload. Matrix-form twiddles (GEMM paths) reload small tiles; vector
#: twiddles (butterfly) are lighter; fusing staggers the two streams'
#: read windows (§IV-B-2), shaving a little more.
_TWIDDLE_TRAFFIC = {
    "wd-tensor": 0.12,
    "wd-cuda": 0.12,
    "wd-ftc": 0.12,
    "wd-bo": 0.04,
    "wd-fuse": 0.06,
}

#: Global silicon-gap calibration: real NTT kernels achieve well under
#: half of the analytic roofline (instruction-dependency chains, bank
#: conflicts, tail effects). One scalar, applied to every variant alike so
#: all variant/baseline *ratios* are untouched; calibrated once against
#: Table VII absolute KOPS. Documented in EXPERIMENTS.md.
_SILICON_GAP = 0.40

#: Relative pipeline efficiency per variant — achieved fraction of the
#: roofline, on top of the global silicon gap. Calibrated against the
#: paper's own ablation (Fig. 6): fused variants overlap pipes best; pure
#: CUDA GEMM suffers the RAW-dependency stalls TensorFHE reports.
_PIPELINE_EFFICIENCY = {
    "wd-tensor": 0.92 * _SILICON_GAP,
    "wd-cuda": 0.80 * _SILICON_GAP,
    "wd-ftc": 0.85 * _SILICON_GAP,
    "wd-bo": 0.88 * _SILICON_GAP,
    "wd-fuse": 0.96 * _SILICON_GAP,
}


@dataclass
class NttKernelCosts:
    """Resolved per-batch cost inputs for one variant."""

    int32_ops: float
    tensor_macs: float
    smem_bytes: float
    twiddle_traffic_factor: float
    allocation: WarpAllocation


class WarpDriveNtt:
    """One (N, variant, device) NTT engine."""

    def __init__(self, n: int, *, variant: str = "wd-fuse",
                 device: GpuSpec = A100_PCIE_80G,
                 geometry: GeometryConfig = DEFAULT_GEOMETRY,
                 use_karatsuba: bool = False,
                 silicon_gap: float = None):
        """``silicon_gap`` overrides the global calibration scalar (the
        robustness benchmark sweeps it to show orderings are stable)."""
        if variant not in VARIANTS:
            raise ValueError(f"unknown variant {variant!r}; one of {VARIANTS}")
        self.n = n
        self.variant = variant
        self.device = device
        self.geometry = geometry
        self.use_karatsuba = use_karatsuba
        self.efficiency = _PIPELINE_EFFICIENCY[variant]
        if silicon_gap is not None:
            if not 0.0 < silicon_gap <= 1.0:
                raise ValueError("silicon_gap must be in (0, 1]")
            self.efficiency = (
                _PIPELINE_EFFICIENCY[variant] / _SILICON_GAP * silicon_gap
            )
            self.efficiency = min(1.0, self.efficiency)
        self.plan = build_plan(n)
        self.counts = costs.plan_work_counts(self.plan)
        self._executors = {}

    # -- functional execution ---------------------------------------------------

    @returns_view
    def executor(self, tables: NttTables) -> HierarchicalNtt:
        key = tables.modulus
        if key not in self._executors:
            self._executors[key] = HierarchicalNtt(
                tables, plan=self.plan,
                leaf_engine=_FUNCTIONAL_ENGINE[self.variant],
                use_karatsuba=self.use_karatsuba,
            )
        return self._executors[key]

    def forward(self, x: np.ndarray, tables: NttTables) -> np.ndarray:
        """Bit-exact negacyclic forward NTT (functional layer)."""
        return self.executor(tables).forward(x)

    def inverse(self, x: np.ndarray, tables: NttTables) -> np.ndarray:
        return self.executor(tables).inverse(x)

    # -- batched RNS execution ---------------------------------------------------
    #
    # All functional variants are bit-identical (the leaf engines differ
    # only in *how* they are priced, not in what they compute — see
    # tests/ntt), so every variant routes its whole-polynomial fast path
    # through one vectorized kernel over the ``(num_primes, N)`` residue
    # matrix. This is the entry point the CKKS layer's RnsPoly conversions
    # share with the simulator-facing variants.

    def forward_rns(self, data: np.ndarray, moduli) -> np.ndarray:
        """Forward negacyclic NTT of a full ``(num_primes, N)`` matrix."""
        return batched_rns_forward(data, moduli, self.n)

    def inverse_rns(self, data: np.ndarray, moduli) -> np.ndarray:
        """Inverse negacyclic NTT of a full ``(num_primes, N)`` matrix."""
        return batched_rns_inverse(data, moduli, self.n)

    # -- performance layer -----------------------------------------------------------

    @property
    def uses_dual_kernel(self) -> bool:
        """§IV-D-2: dual-kernel when one polynomial exceeds shared memory."""
        return self.n * WORD_BYTES > self.device.smem_per_sm_bytes

    def kernel_plan(self, batch: int = 1, *, inverse: bool = False,
                    ) -> List[KernelSpec]:
        """Kernel launches for a batch of ``batch`` independent NTTs."""
        if batch < 1:
            raise ValueError("batch must be >= 1")
        c = self._variant_costs(batch)
        stages = 2 if self.uses_dual_kernel else 1
        name = f"{self.variant}-{'intt' if inverse else 'ntt'}"
        data_bytes = batch * self.n * WORD_BYTES
        kernels = []
        for stage in range(stages):
            kernels.append(
                KernelSpec(
                    name=f"{name}[{stage + 1}/{stages}]",
                    blocks=self.geometry.blocks_for(
                        batch * self.n, self.geometry.ntt_coeffs_per_thread
                    ),
                    warps_per_block=c.allocation.warps_per_block,
                    int32_ops=c.int32_ops / stages,
                    tensor_macs=c.tensor_macs / stages,
                    gmem_read_bytes=data_bytes
                    * (1 + c.twiddle_traffic_factor),
                    gmem_write_bytes=data_bytes,
                    smem_read_bytes=c.smem_bytes / stages / 2,
                    smem_write_bytes=c.smem_bytes / stages / 2,
                    smem_per_block_bytes=self._smem_per_block(),
                    barriers=self.counts.leaf_steps * 2,
                    efficiency=self.efficiency,
                    regs_per_thread=96,
                    tags={"variant": self.variant, "n": str(self.n)},
                ).validate()
            )
        return kernels

    def simulate(self, batch: int = 1024) -> ExecutionResult:
        return run_serial(self.kernel_plan(batch), self.device)

    def throughput_kops(self, batch: int = 1024) -> float:
        """Thousands of N-point NTTs per second at the given batch size."""
        elapsed_us = self.simulate(batch).elapsed_us
        return batch / elapsed_us * 1e3

    def latency_us(self, batch: int = 1) -> float:
        return self.simulate(batch).elapsed_us

    # -- internals ----------------------------------------------------------------

    def _variant_costs(self, batch: int) -> NttKernelCosts:
        cts = self.counts
        alloc = default_allocation(self.device)
        tw = _TWIDDLE_TRAFFIC[self.variant]
        # Shared-memory traffic: step intermediates plus GEMM operand
        # streams (registers absorb 3/4 — the §IV-A-3 optimization keeps
        # MMA fragments in the per-thread registers [59] maps out).
        step_bytes = cts.leaf_steps * 2 * self.n * WORD_BYTES
        gemm_operand_bytes = cts.tensor_macs * 0.125 * 0.25

        if self.variant == "wd-tensor":
            limbs = 9 if self.use_karatsuba else costs.LIMB_GEMMS
            macs = cts.ew_mul * limbs
            ints = cts.support_ops(include_bit_ops=True)
            smem = step_bytes + gemm_operand_bytes
        elif self.variant == "wd-cuda":
            macs = 0.0
            ints = (
                cts.ew_mul * _CUDA_GEMM_OPS_PER_MAC
                + cts.support_ops(include_bit_ops=False)
            )
            smem = step_bytes + cts.ew_mul * 2 * 0.5
            alloc = WarpAllocation(0, 8, 0.0)
        elif self.variant == "wd-bo":
            macs = 0.0
            ints = self._butterfly_ints()
            smem = step_bytes
            alloc = WarpAllocation(0, 8, 0.0)
        elif self.variant == "wd-ftc":
            f = balance_fraction(
                self.device,
                tensor_macs_per_unit=cts.ew_mul * costs.LIMB_GEMMS,
                cuda_ops_per_unit=cts.ew_mul * _CUDA_GEMM_OPS_PER_MAC,
                cuda_fixed_ops=cts.support_ops(include_bit_ops=True),
            )
            macs = f * cts.ew_mul * costs.LIMB_GEMMS
            ints = (
                (1 - f) * cts.ew_mul * _CUDA_GEMM_OPS_PER_MAC
                + cts.support_ops(include_bit_ops=True)
            )
            smem = step_bytes + gemm_operand_bytes
            alloc = WarpAllocation(4, 4, f)
        else:  # wd-fuse
            f = balance_fraction(
                self.device,
                tensor_macs_per_unit=cts.ew_mul * costs.LIMB_GEMMS,
                cuda_ops_per_unit=self._butterfly_ints(),
            )
            # Fraction f of the batch runs the tensor path (with its
            # support work), 1-f runs butterflies on the CUDA warps.
            macs = f * cts.ew_mul * costs.LIMB_GEMMS
            ints = (
                f * cts.support_ops(include_bit_ops=True)
                + (1 - f) * self._butterfly_ints()
            )
            smem = f * (step_bytes + gemm_operand_bytes) \
                + (1 - f) * step_bytes
            alloc = WarpAllocation(4, 4, f)

        return NttKernelCosts(
            int32_ops=ints * batch,
            tensor_macs=macs * batch,
            smem_bytes=smem * batch,
            twiddle_traffic_factor=tw,
            allocation=alloc,
        )

    def _butterfly_ints(self) -> float:
        """INT32 ops of the butterfly path, including per-stage shuffle
        bookkeeping of the high-radix layout."""
        cts = self.counts
        stage_overhead = 2.0 * self.n * cts.leaf_steps
        return cts.butterfly_ops() + stage_overhead

    def _smem_per_block(self) -> int:
        """Tile of T * N_t coefficients (double-buffered limbs) plus
        twiddle matrices."""
        tile = (
            self.geometry.threads_per_block
            * self.geometry.ntt_coeffs_per_thread
            * WORD_BYTES
        )
        twiddles = 16 * 1024
        return min(2 * tile + twiddles, self.device.smem_per_sm_bytes)
