"""Parallelism-Enhanced (PE) kernel design (§IV-C, Fig. 4).

Previous GPU FHE implementations launch kernels at the *polynomial* level:
KeySwitch over ``dnum`` digits becomes dozens of launches, each too small
to fill the machine (Table III). WarpDrive's PE kernels add the polynomial
dimension to the kernel grid, so one launch processes every polynomial of
a ciphertext (and, when batching, every ciphertext).

This module builds the fixed 11-kernel PE KeySwitch plan of Table IX and
the PE forms of the other homomorphic-operation kernels. The kernel-fused
(KF) polynomial-level plan it replaces lives in
:mod:`repro.baselines.hundredx`.
"""

from __future__ import annotations

from typing import List

from ..ckks.params import CkksParams
from ..gpusim import KernelSpec
from . import kernels as K
from .kernels import DEFAULT_GEOMETRY, GeometryConfig
from .ntt_engine import WarpDriveNtt


class PeKeySwitchPlan:
    """The 11-kernel ciphertext-level KeySwitch of Table IX.

    Kernel list (one launch each, every launch covering all digits /
    polynomials via the PE grid dimension):

    1.  INTT of the input polynomial (all level primes at once);
    2.  ModUp — all ``dnum`` digits extended in one kernel;
    3.  NTT of all extended digits;
    4.  InnerProduct accumulating both output polynomials;
    5.  INTT of accumulator 0;
    6.  INTT of accumulator 1;
    7.  ModDown of accumulator 0;
    8.  ModDown of accumulator 1;
    9.  NTT of output 0;
    10. NTT of output 1;
    11. Final combine (add key-switched parts into the result ciphertext).
    """

    KERNEL_COUNT = 11

    def __init__(self, params: CkksParams, level: int, *, ntt: WarpDriveNtt,
                 geometry: GeometryConfig = DEFAULT_GEOMETRY,
                 batch: int = 1):
        if not 0 <= level <= params.max_level:
            raise ValueError(f"level {level} out of range")
        self.params = params
        self.level = level
        self.ntt = ntt
        self.geometry = geometry
        self.batch = batch

    @property
    def level_primes(self) -> int:
        return self.level + 1

    @property
    def extended_primes(self) -> int:
        return self.level_primes + self.params.num_special

    @property
    def active_digits(self) -> int:
        """Digits with at least one prime present at this level."""
        alpha = -(-self.params.num_primes // self.params.dnum)
        return min(self.params.dnum, -(-self.level_primes // alpha))

    def kernels(self) -> List[KernelSpec]:
        n = self.params.n
        b = self.batch
        digits = self.active_digits
        ext = self.extended_primes
        lvl = self.level_primes
        special = self.params.num_special
        geo = self.geometry

        def merged_ntt(name: str, transforms: int,
                       inverse: bool) -> KernelSpec:
            plan = self.ntt.kernel_plan(transforms * b, inverse=inverse)
            spec = plan[0]
            for extra in plan[1:]:
                spec = _merge_stages(spec, extra)
            return spec.renamed(name, stage=name)

        return [
            merged_ntt("ks.intt_input", lvl, inverse=True),
            K.modup_kernel(
                "ks.modup", n, -(-lvl // digits), ext, polys=digits * b,
                geometry=geo, stage="ModUp",
            ),
            merged_ntt("ks.ntt_digits", digits * ext, inverse=False),
            K.inner_product_kernel(
                "ks.inner_product", n, ext * b, digits, geometry=geo,
                stage="InProd",
            ),
            merged_ntt("ks.intt_acc0", ext, inverse=True),
            merged_ntt("ks.intt_acc1", ext, inverse=True),
            K.moddown_kernel("ks.moddown0", n, lvl, special, polys=b,
                             geometry=geo, stage="ModDown"),
            K.moddown_kernel("ks.moddown1", n, lvl, special, polys=b,
                             geometry=geo, stage="ModDown"),
            merged_ntt("ks.ntt_out0", lvl, inverse=False),
            merged_ntt("ks.ntt_out1", lvl, inverse=False),
            K.modadd_kernel("ks.combine", 2 * n * lvl * b, geometry=geo,
                            stage="Combine"),
        ]


def _merge_stages(a: KernelSpec, b: KernelSpec) -> KernelSpec:
    """Fold a dual-kernel NTT's stages into one PE launch descriptor.

    The PE design keeps the launch count at 11 regardless of N; for
    N = 2^16 the two NTT stages execute as one kernel with a grid-wide
    sync, so their work and traffic add.
    """
    from dataclasses import replace

    return replace(
        a,
        int32_ops=a.int32_ops + b.int32_ops,
        tensor_macs=a.tensor_macs + b.tensor_macs,
        gmem_read_bytes=a.gmem_read_bytes + b.gmem_read_bytes,
        gmem_write_bytes=a.gmem_write_bytes + b.gmem_write_bytes,
        smem_read_bytes=a.smem_read_bytes + b.smem_read_bytes,
        smem_write_bytes=a.smem_write_bytes + b.smem_write_bytes,
        barriers=a.barriers + b.barriers + 1,
    )
