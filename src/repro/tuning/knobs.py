"""The declarative tuning-knob registry (DESIGN.md §14).

Every layer of the stack exposes performance/co-design knobs — ``dnum``
in the CKKS parameters, ``fft_factored``/``fuse`` in the bootstrap,
NTT variant and launch geometry, the GPU machine model, lowering style,
batch size, compute backend.  Before this module they were smeared
across constructors as ad-hoc kwargs whose defaults were duplicated (and
drifted — the schedule layer's ``fuse`` default diverged from
``BootstrapConfig``'s once already).  Now each owning module *declares*
its knobs here at import time::

    register_knob(KnobSpec(
        name="boot.fuse", layer="ckks", domain=IntRange(1, 8), default=1,
        doc="Level-collapse this many adjacent FFT radix factors.",
        observe=lambda pipe: pipe.boot_config.fuse,
    ))

and reads its own defaults back through :func:`knob_default` — one
source of truth, so two layers can never disagree about a default again
(:func:`overriding_default` lets tests prove it).  A flat
:class:`~repro.tuning.config.TuningConfig` assignment over these names
materializes a fully configured stack via
:func:`~repro.tuning.config.build_pipeline`, and :mod:`repro.gym`
searches the registry's domains as its action space.

This module is import-cycle-free by construction: it depends on nothing
inside :mod:`repro`, while the declaring modules import only this file.
Registry accessors lazily import the declaring modules
(:func:`ensure_registered`) so the registry is complete no matter which
corner of the library was imported first.
"""

from __future__ import annotations

import importlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

#: Modules that declare knobs at import time.  Only the *names* live
#: here — every domain and default is owned by the declaring module.
DECLARING_MODULES: Tuple[str, ...] = (
    "repro.ckks.params",
    "repro.ckks.bootstrap",
    "repro.workloads.schedules",
    "repro.workloads.recorded",
    "repro.core.kernels",
    "repro.core.ntt_engine",
    "repro.gpusim.device",
    "repro.trace.lowering",
    "repro.serving.simulator",
    "repro.backend.base",
)


class UnknownKnob(KeyError):
    """Lookup of a knob name no layer declared."""


class KnobDomainError(ValueError):
    """A knob assignment outside its declared domain."""


# ---------------------------------------------------------------------------
# Domains
# ---------------------------------------------------------------------------


class Domain:
    """Value domain of one knob: membership plus a finite search grid."""

    def contains(self, value: Any) -> bool:
        raise NotImplementedError

    def points(self) -> Tuple[Any, ...]:
        """Finite, ordered grid the gym searches over (a subset of the
        domain; membership is *not* limited to these points)."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Choice(Domain):
    """An explicit finite set of admissible values."""

    values: Tuple[Any, ...]

    def contains(self, value: Any) -> bool:
        return value in self.values

    def points(self) -> Tuple[Any, ...]:
        return self.values

    def describe(self) -> str:
        return "{" + ", ".join(repr(v) for v in self.values) + "}"


@dataclass(frozen=True)
class Boolean(Domain):
    """``False``/``True`` (kept distinct from ``Choice`` so tooling can
    render flags as flags)."""

    def contains(self, value: Any) -> bool:
        return isinstance(value, bool)

    def points(self) -> Tuple[Any, ...]:
        return (False, True)

    def describe(self) -> str:
        return "{False, True}"


@dataclass(frozen=True)
class IntRange(Domain):
    """Integers in ``[lo, hi]``; ``optional=True`` also admits ``None``
    (the "inherit from the owning layer" sentinel).

    ``grid`` overrides the search points; without it small ranges
    enumerate and wide ones take a power-of-two-ish subsample.
    """

    lo: int
    hi: int
    optional: bool = False
    grid: Optional[Tuple[int, ...]] = None

    def contains(self, value: Any) -> bool:
        if value is None:
            return self.optional
        return (isinstance(value, int) and not isinstance(value, bool)
                and self.lo <= value <= self.hi)

    def points(self) -> Tuple[Any, ...]:
        if self.grid is not None:
            pts: Tuple[Any, ...] = self.grid
        elif self.hi - self.lo <= 16:
            pts = tuple(range(self.lo, self.hi + 1))
        else:
            v, pts_list = self.lo, []
            while v < self.hi:
                pts_list.append(v)
                v = max(v + 1, v * 2)
            pts_list.append(self.hi)
            pts = tuple(pts_list)
        return ((None,) + pts) if self.optional else pts

    def describe(self) -> str:
        opt = " | None" if self.optional else ""
        return f"[{self.lo}, {self.hi}]{opt}"


@dataclass(frozen=True)
class FloatRange(Domain):
    """Floats in ``[lo, hi]``; integers coerce (``6`` is a fine 6.0)."""

    lo: float
    hi: float
    grid: Optional[Tuple[float, ...]] = None

    def contains(self, value: Any) -> bool:
        return (isinstance(value, (int, float))
                and not isinstance(value, bool)
                and self.lo <= float(value) <= self.hi)

    def points(self) -> Tuple[Any, ...]:
        if self.grid is not None:
            return self.grid
        mid = (self.lo + self.hi) / 2.0
        return (self.lo, mid, self.hi)

    def describe(self) -> str:
        return f"[{self.lo}, {self.hi}]"


# ---------------------------------------------------------------------------
# KnobSpec + registry
# ---------------------------------------------------------------------------


@dataclass
class KnobSpec:
    """One declared tuning knob.

    ``observe`` maps a built :class:`~repro.tuning.config.Pipeline` back
    to the value this knob materialized as — the round-trip contract the
    property suite checks for every registered knob: assigning an
    in-domain, non-``None`` value must be observable on the built object.
    ``default_factory`` (e.g. the backend knob reading ``REPRO_BACKEND``)
    wins over ``default`` when set.
    """

    name: str
    layer: str
    domain: Domain
    doc: str
    default: Any = None
    default_factory: Optional[Callable[[], Any]] = None
    observe: Optional[Callable[[Any], Any]] = None

    def resolve_default(self) -> Any:
        if self.name in _DEFAULT_OVERRIDES:
            return _DEFAULT_OVERRIDES[self.name]
        if self.default_factory is not None:
            return self.default_factory()
        return self.default

    def validate(self, value: Any) -> Any:
        if not self.domain.contains(value):
            raise KnobDomainError(
                f"knob {self.name!r} ({self.layer}): value {value!r} "
                f"outside domain {self.domain.describe()}"
            )
        return value


_REGISTRY: Dict[str, KnobSpec] = {}
_DEFAULT_OVERRIDES: Dict[str, Any] = {}
_ensured = False


def register_knob(spec: KnobSpec) -> KnobSpec:
    """Declare (or re-declare, on module reload) one knob.

    A re-declaration must come from the same layer — two layers claiming
    one name is exactly the default-duplication this registry exists to
    kill, so it raises.
    """
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing.layer != spec.layer:
        raise ValueError(
            f"knob {spec.name!r} already declared by layer "
            f"{existing.layer!r}; {spec.layer!r} must not redeclare it"
        )
    if spec.default_factory is None:
        spec.validate(spec.default)
    _REGISTRY[spec.name] = spec
    return spec


def ensure_registered() -> None:
    """Import every declaring module once so the registry is complete."""
    global _ensured
    if _ensured:
        return
    _ensured = True
    for module in DECLARING_MODULES:
        importlib.import_module(module)


def all_knobs() -> Dict[str, KnobSpec]:
    """Name -> spec for every declared knob, in declaration order."""
    ensure_registered()
    return dict(_REGISTRY)


def knob(name: str) -> KnobSpec:
    ensure_registered()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownKnob(
            f"unknown knob {name!r}; declared knobs: {known}"
        ) from None


def knob_default(name: str) -> Any:
    """The single source of truth for a knob's default value.

    Layer code reads its own defaults through this call (never a literal
    copy), so every consumer — ``BootstrapConfig``, the hand-counted
    schedules, ``build_pipeline`` — agrees by construction.
    """
    spec = _REGISTRY.get(name)
    if spec is not None:  # fast path: declaring module already imported
        return spec.resolve_default()
    return knob(name).resolve_default()


def defaults() -> Dict[str, Any]:
    """Flat default assignment over every registered knob."""
    return {name: spec.resolve_default()
            for name, spec in all_knobs().items()}


@contextmanager
def overriding_default(name: str, value: Any) -> Iterator[None]:
    """Temporarily override one knob's default (tests only).

    The no-drift regression tests use this to prove every consumer of a
    default reads the registry: override it, observe *all* layers move.
    """
    spec = knob(name)
    spec.validate(value)
    had, old = name in _DEFAULT_OVERRIDES, _DEFAULT_OVERRIDES.get(name)
    _DEFAULT_OVERRIDES[name] = value
    try:
        yield
    finally:
        if had:
            _DEFAULT_OVERRIDES[name] = old
        else:
            _DEFAULT_OVERRIDES.pop(name, None)


def render_registry() -> str:
    """Human-readable knob table (the ``python -m repro.gym --knobs``
    output)."""
    rows = []
    for name, spec in all_knobs().items():
        rows.append(
            f"{name:32s} {spec.layer:10s} "
            f"default={spec.resolve_default()!r:12} "
            f"domain={spec.domain.describe()}"
        )
    return "\n".join(rows)
