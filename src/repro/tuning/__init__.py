"""Declarative tuning-knob layer (DESIGN.md §14).

Each layer of the stack *declares* its knobs — name, owning layer,
domain, default, doc, and an ``observe`` hook — in a central registry
(:mod:`repro.tuning.knobs`), and reads its own defaults back through
:func:`knob_default` so no default is ever duplicated across layers.
A flat :class:`TuningConfig` assignment over those names materializes a
complete configured stack through one :func:`build_pipeline` call, and
:mod:`repro.gym` searches the declared domains as its action space.
"""

from .config import Pipeline, TuningConfig, build_pipeline
from .knobs import (
    Boolean,
    Choice,
    Domain,
    FloatRange,
    IntRange,
    KnobDomainError,
    KnobSpec,
    UnknownKnob,
    all_knobs,
    defaults,
    ensure_registered,
    knob,
    knob_default,
    overriding_default,
    register_knob,
    render_registry,
)

__all__ = [
    "Boolean",
    "Choice",
    "Domain",
    "FloatRange",
    "IntRange",
    "KnobDomainError",
    "KnobSpec",
    "Pipeline",
    "TuningConfig",
    "UnknownKnob",
    "all_knobs",
    "build_pipeline",
    "defaults",
    "ensure_registered",
    "knob",
    "knob_default",
    "overriding_default",
    "register_knob",
    "render_registry",
]
