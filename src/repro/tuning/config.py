"""Flat tuning configuration -> fully materialized pipeline.

A :class:`TuningConfig` is a flat assignment over the declared knob
names (see :mod:`repro.tuning.knobs`); :func:`build_pipeline` turns it
into one complete, consistent stack — CKKS parameters, bootstrap
config, GPU machine model, launch geometry, NTT variant and an
:class:`~repro.core.scheduler.OperationScheduler` wired from all of
them — in a single call.  Unassigned knobs resolve to their declaring
layer's default, so ``build_pipeline()`` with no arguments is exactly
the stack every example in this repo used to construct by hand.

Validation happens in two stages, both at build time:

* declared-domain checks (:meth:`TuningConfig.validate`) raise
  :class:`~repro.tuning.knobs.KnobDomainError` for any assignment
  outside its knob's domain;
* cross-knob constraints are delegated to the owning layers — e.g. an
  explicit ``ckks.dnum`` is re-checked against the chosen set's
  ``[1, L+1]`` bound by ``CkksParams.__post_init__``.

``to_dict()`` snapshots the *effective* assignment (every knob, default
or not); feeding that snapshot back through :meth:`TuningConfig.from_dict`
rebuilds a pipeline that prices bit-identically — the reproducibility
contract the gym's trajectory logs rely on.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

from .knobs import all_knobs, ensure_registered, knob, knob_default

__all__ = ["TuningConfig", "Pipeline", "build_pipeline"]


class TuningConfig:
    """An immutable flat assignment ``knob name -> value``.

    Unknown names raise :class:`~repro.tuning.knobs.UnknownKnob`
    immediately; domain membership is checked by :meth:`validate`
    (called from :func:`build_pipeline`), so a config object can hold a
    tentative out-of-domain point but can never be *built*.
    """

    __slots__ = ("_assignments",)

    def __init__(self, assignments: Optional[Mapping[str, Any]] = None,
                 **kwargs: Any):
        merged: Dict[str, Any] = dict(assignments or {})
        merged.update(kwargs)
        for name in merged:
            knob(name)  # raises UnknownKnob with the declared-name list
        object.__setattr__(self, "_assignments", dict(merged))

    # -- mapping-ish access ------------------------------------------------

    def __getitem__(self, name: str) -> Any:
        return self.value(name)

    def value(self, name: str) -> Any:
        """The effective value of ``name``: explicit assignment if
        present, else the declaring layer's (possibly env-derived)
        default."""
        if name in self._assignments:
            return self._assignments[name]
        return knob_default(name)

    @property
    def explicit(self) -> Dict[str, Any]:
        """Only the explicitly assigned knobs (a copy)."""
        return dict(self._assignments)

    def __contains__(self, name: str) -> bool:
        return name in self._assignments

    def __iter__(self) -> Iterator[str]:
        return iter(self._assignments)

    def __len__(self) -> int:
        return len(self._assignments)

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, TuningConfig):
            return NotImplemented
        return self._assignments == other._assignments

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v!r}"
                         for k, v in sorted(self._assignments.items()))
        return f"TuningConfig({body})"

    # -- derivation --------------------------------------------------------

    def replace(self, **assignments: Any) -> "TuningConfig":
        """A new config with ``assignments`` overlaid on this one."""
        merged = dict(self._assignments)
        merged.update(assignments)
        return TuningConfig(merged)

    def key(self) -> Tuple[Tuple[str, Any], ...]:
        """Canonical hashable identity of the explicit assignment (the
        gym's evaluation-cache key)."""
        return tuple(sorted(self._assignments.items()))

    # -- whole-assignment views --------------------------------------------

    def effective(self) -> Dict[str, Any]:
        """Every declared knob with its effective value, in declaration
        order."""
        ensure_registered()
        return {name: self.value(name) for name in all_knobs()}

    def to_dict(self) -> Dict[str, Any]:
        """Snapshot of the full effective assignment.

        Round-trip contract: ``TuningConfig.from_dict(cfg.to_dict())``
        builds a pipeline that prices bit-identically to ``cfg``'s, even
        if registry defaults (or ``REPRO_BACKEND``) change in between —
        the snapshot pins *every* knob explicitly.
        """
        return self.effective()

    @classmethod
    def from_dict(cls, assignments: Mapping[str, Any]) -> "TuningConfig":
        return cls(assignments)

    # -- validation --------------------------------------------------------

    def validate(self) -> "TuningConfig":
        """Check the *effective* assignment against every declared
        domain; raises :class:`~repro.tuning.knobs.KnobDomainError` on
        the first violation.  Returns ``self`` for chaining."""
        ensure_registered()
        for name, spec in all_knobs().items():
            spec.validate(self.value(name))
        return self


@dataclasses.dataclass(frozen=True)
class Pipeline:
    """One fully configured stack, materialized from a
    :class:`TuningConfig`.

    Every field is the real object the rest of the library consumes —
    the scheduler is wired from the params/device/variant/geometry
    fields, so pricing through ``pipe.scheduler`` and lowering with
    ``pipe.style`` needs no further configuration.  Knob ``observe``
    hooks read these fields back for the round-trip property tests.
    """

    config: TuningConfig
    params: Any           # repro.ckks.params.CkksParams
    boot_config: Any      # repro.ckks.bootstrap.BootstrapConfig
    device: Any           # repro.gpusim.device.GpuSpec
    geometry: Any         # repro.core.kernels.GeometryConfig
    scheduler: Any        # repro.core.scheduler.OperationScheduler
    style: str
    batch: int
    backend: str
    optimize: bool
    search: bool
    hoisting: str

    def describe(self) -> str:
        """One-line summary for logs and the reproduce report."""
        return (
            f"{self.params.name} on {self.device.name} "
            f"[{self.scheduler.ntt.variant}/{self.style}, "
            f"tpb={self.geometry.threads_per_block}, "
            f"batch={self.batch}, backend={self.backend}"
            f"{', dagopt' if self.optimize else ''}]"
        )


def build_pipeline(config: Optional[TuningConfig] = None,
                   **overrides: Any) -> Pipeline:
    """Materialize a complete configured stack from one flat assignment.

    ``overrides`` are knob assignments overlaid on ``config`` (which
    defaults to the all-defaults config).  All validation fires here:
    unknown names from the overlay, declared-domain violations, and the
    layers' own cross-knob checks (``CkksParams.__post_init__`` for an
    out-of-range ``ckks.dnum``, ``KNOWN_DEVICES`` membership for the
    machine model).
    """
    # Layer imports live here: repro.tuning.knobs must stay dependency-
    # free, and the declaring modules import it — importing them at
    # module scope would re-enter this package during bootstrap.
    from ..ckks.bootstrap import BootstrapConfig
    from ..ckks.params import ParameterSets
    from ..core.kernels import GeometryConfig
    from ..core.scheduler import OperationScheduler
    from ..gpusim.device import KNOWN_DEVICES

    cfg = config if config is not None else TuningConfig()
    if overrides:
        cfg = cfg.replace(**overrides)
    cfg.validate()

    params = ParameterSets.by_name(cfg["params.set"])
    dnum = cfg["ckks.dnum"]
    if dnum is not None and dnum != params.dnum:
        params = dataclasses.replace(params, dnum=dnum)

    boot_config = BootstrapConfig(
        sine_degree=cfg["boot.sine_degree"],
        eval_range=cfg["boot.eval_range"],
        bsgs=cfg["boot.bsgs"],
        fft_factored=cfg["boot.fft_factored"],
        fuse=cfg["boot.fuse"],
    )

    device = KNOWN_DEVICES[cfg["gpu.model"]]
    spec_overrides: Dict[str, Any] = {}
    if cfg["gpu.sm_count"] is not None:
        spec_overrides["sm_count"] = cfg["gpu.sm_count"]
    if cfg["gpu.tensor_macs_per_sm"] is not None:
        spec_overrides["tensor_int8_macs_per_cycle_per_sm"] = \
            cfg["gpu.tensor_macs_per_sm"]
    if spec_overrides:
        device = device.with_overrides(**spec_overrides)

    geometry = GeometryConfig(
        threads_per_block=cfg["geometry.threads_per_block"],
        ntt_coeffs_per_thread=cfg["geometry.ntt_coeffs_per_thread"],
    )
    scheduler = OperationScheduler(
        params, device=device, ntt_variant=cfg["ntt.variant"],
        geometry=geometry,
    )

    return Pipeline(
        config=cfg,
        params=params,
        boot_config=boot_config,
        device=device,
        geometry=geometry,
        scheduler=scheduler,
        style=cfg["machine.style"],
        batch=cfg["serving.batch"],
        backend=cfg["backend"],
        optimize=cfg["dagopt.optimize"],
        search=cfg["dagopt.search"],
        hoisting=cfg["schedule.hoisting"],
    )
