"""Placement and admission policies for the GPU fleet.

A policy answers one question per closed batch: *which device should run
this?*  Three are shipped, ordered by how much fleet state they read:

* :class:`RoundRobin` — rotate through devices, blind to both load and
  memory.  The batch **pins** to its chosen device: if the reservation
  does not fit, it waits for that device (head-of-line blocking — the
  naive baseline's failure mode at high load).
* :class:`LeastLoaded` — shortest-queue-first by outstanding work
  (queued + remaining running microseconds); still memory-blind and
  pinned on rejection.
* :class:`MemoryAware` — least-loaded **among devices whose free HBM
  admits the batch's working set**; when nothing fits the batch stays
  *unpinned* and is re-placed at the next completion, so one full
  device never blocks work that another could take.

Ties break by device index everywhere — placement is deterministic.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from ..gpusim.multi import GpuFleet


class PlacementPolicy:
    """Interface: pick a device index for a batch, or ``None``."""

    name = "abstract"
    #: On admission rejection, does the batch wait for the selected
    #: device (True) or return to the unplaced pool (False)?
    pins = True

    def select(self, fleet: GpuFleet, hbm_bytes: int,
               now: float) -> Optional[int]:
        raise NotImplementedError


class RoundRobin(PlacementPolicy):
    """Rotate through devices regardless of load or memory."""

    name = "round_robin"
    pins = True

    def __init__(self) -> None:
        self._next = 0

    def select(self, fleet: GpuFleet, hbm_bytes: int,
               now: float) -> Optional[int]:
        device = self._next % len(fleet)
        self._next = (self._next + 1) % len(fleet)
        return device


class LeastLoaded(PlacementPolicy):
    """Shortest outstanding work, memory-blind."""

    name = "least_loaded"
    pins = True

    def select(self, fleet: GpuFleet, hbm_bytes: int,
               now: float) -> Optional[int]:
        return fleet.least_loaded(now)


class MemoryAware(PlacementPolicy):
    """Least loaded among devices with room; defer when none fits."""

    name = "memory_aware"
    pins = False

    def select(self, fleet: GpuFleet, hbm_bytes: int,
               now: float) -> Optional[int]:
        return fleet.least_loaded(now, fitting=hbm_bytes)


POLICIES: Dict[str, Type[PlacementPolicy]] = {
    RoundRobin.name: RoundRobin,
    LeastLoaded.name: LeastLoaded,
    MemoryAware.name: MemoryAware,
}


def make_policy(name: str) -> PlacementPolicy:
    """Fresh policy instance by name (policies carry mutable state)."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; one of {sorted(POLICIES)}"
        ) from None
