"""Job catalog: encrypted workloads as priced, batchable kernel DAGs.

A :class:`JobClass` names one servable workload — the recorded trace of
a functional run plus the full-ring parameter set it lowers at.  The
:class:`JobCatalog` prices (kind, batch size, optimized?) combinations
once each through :func:`~repro.trace.lower_trace` → ``run_dag`` and
caches the result, so the discrete-event loop looks service times up in
O(1) no matter how many requests it simulates.

Ciphertext-level batching is the ``batch`` knob of the lowering: a batch
of B requests of one class runs as one DAG whose every launch carries B
ciphertexts, exactly as the static plan builders batch.  Because wide
launches amortize launch overhead and fill the SM array better,
``service_us(B) < B * service_us(1)`` — that gap is what the batching
policy harvests.

``optimized=True`` pre-compiles the recording with the
:mod:`repro.trace.opt` pass pipeline and re-orders the lowered DAG with
``schedule_search`` — the PR-7 dagopt wins surfacing as served
throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..ckks.params import CkksParams, ParameterSets
from ..core.memory_pool import max_working_set_bytes
from ..core.scheduler import OperationScheduler
from ..gpusim import GpuSpec
from ..gpusim.device import A100_PCIE_80G
from ..trace import lower_trace
from ..trace.ir import OpTrace
from ..workloads.recorded import (
    record_bootstrap_trace,
    record_helr_iteration_trace,
    record_resnet_block_trace,
    record_transcipher_block_trace,
)

#: Kinds the default catalog serves, in catalog order.
DEFAULT_JOB_KINDS = ("boot", "helr", "resnet", "aes")


@dataclass(frozen=True)
class JobClass:
    """One servable workload class."""

    name: str
    params: CkksParams
    #: Returns the recorded proxy-scale trace (cached by the recorder).
    recorder: Callable[[], OpTrace]
    #: Ciphertext-batching ceiling the batcher may form.
    max_batch: int = 8
    #: Latency SLO as a multiple of the solo (batch-1) service time;
    #: resolved to microseconds by :meth:`JobCatalog.slo_us`.
    slo_factor: float = 8.0
    description: str = ""


def _default_classes() -> Dict[str, JobClass]:
    return {
        "boot": JobClass(
            name="boot", params=ParameterSets.set_c(),
            recorder=lambda: record_bootstrap_trace(ParameterSets.set_c()),
            description="SET-C slim bootstrap (recorded)",
        ),
        "helr": JobClass(
            name="helr", params=ParameterSets.helr(),
            recorder=record_helr_iteration_trace,
            description="HELR training iteration (recorded)",
        ),
        "resnet": JobClass(
            name="resnet", params=ParameterSets.resnet(),
            recorder=record_resnet_block_trace,
            description="ResNet basic block (recorded)",
        ),
        "aes": JobClass(
            name="aes", params=ParameterSets.aes(),
            recorder=record_transcipher_block_trace,
            description="AES transcipher round block (recorded)",
        ),
    }


@dataclass(frozen=True)
class PricedBatch:
    """One priced (kind, batch, optimized) combination.

    ``hbm_bytes`` is what fleet admission reserves; its source is the
    catalog's ``hbm_model``.  ``certified_hbm_bytes`` always carries the
    static liveness certificate of the priced DAG
    (:func:`repro.analysis.dagcheck.static_hbm_certificate`) so the
    serving layer and the D-HBM audit can consume it either way.
    """

    kind: str
    batch: int
    optimized: bool
    service_us: float
    kernels: int
    hbm_bytes: int
    certified_hbm_bytes: int = 0


class JobCatalog:
    """Prices job classes on one device spec, with caching.

    ``style``/``device`` follow the trace-lowering conventions.  Every
    public query is deterministic; the only expensive calls are the
    first per (kind, batch, optimized) triple.
    """

    def __init__(self, kinds: Sequence[str] = DEFAULT_JOB_KINDS, *,
                 device: GpuSpec = A100_PCIE_80G, style: str = "pe",
                 classes: Optional[Dict[str, JobClass]] = None,
                 hbm_model: str = "formula"):
        if hbm_model not in ("formula", "certified"):
            raise ValueError(
                f"hbm_model must be 'formula' or 'certified', "
                f"got {hbm_model!r}")
        available = classes if classes is not None else _default_classes()
        unknown = set(kinds) - set(available)
        if unknown:
            raise ValueError(
                f"unknown job kind(s) {sorted(unknown)}; "
                f"known: {sorted(available)}"
            )
        self.classes: Dict[str, JobClass] = {
            k: available[k] for k in kinds
        }
        self.device = device
        self.style = style
        #: ``formula`` reserves the paper's S_max working-set estimate;
        #: ``certified`` reserves the static liveness certificate of the
        #: actual priced DAG instead.
        self.hbm_model = hbm_model
        self._traces: Dict[Tuple[str, bool], OpTrace] = {}
        self._prices: Dict[Tuple[str, int, bool], PricedBatch] = {}
        self._schedulers: Dict[str, OperationScheduler] = {}

    @property
    def kinds(self) -> Tuple[str, ...]:
        return tuple(self.classes)

    def _scheduler(self, kind: str) -> OperationScheduler:
        sched = self._schedulers.get(kind)
        if sched is None:
            sched = OperationScheduler(
                self.classes[kind].params, device=self.device
            )
            self._schedulers[kind] = sched
        return sched

    def _trace(self, kind: str, optimized: bool) -> OpTrace:
        cached = self._traces.get((kind, optimized))
        if cached is not None:
            return cached
        trace = self.classes[kind].recorder()
        if optimized:
            from ..trace.opt import optimize_trace

            trace, _ = optimize_trace(trace)
        self._traces[(kind, optimized)] = trace
        return trace

    def price(self, kind: str, batch: int = 1, *,
              optimized: bool = False) -> PricedBatch:
        """Service time and footprint of one batch, cached."""
        cls = self.classes[kind]
        batch = max(1, min(int(batch), cls.max_batch))
        key = (kind, batch, optimized)
        cached = self._prices.get(key)
        if cached is not None:
            return cached

        sched = self._scheduler(kind)
        dag = lower_trace(
            self._trace(kind, optimized), params=sched.params,
            style=self.style, device=self.device,
            ntt_variant=sched.ntt.variant, geometry=sched.geometry,
            batch=batch,
        )
        if optimized:
            from ..trace.opt import schedule_search

            dag, scores = schedule_search(dag, self.device)
            service_us = min(scores.values())
        else:
            service_us = dag.run(self.device).elapsed_us
        from ..analysis.dagcheck.memory import static_hbm_certificate

        certified = int(static_hbm_certificate(dag, self.device).peak_bytes)
        formula = self.working_bytes(kind, batch)
        priced = PricedBatch(
            kind=kind, batch=batch, optimized=optimized,
            service_us=service_us, kernels=dag.kernel_count,
            hbm_bytes=certified if self.hbm_model == "certified"
            else formula,
            certified_hbm_bytes=certified,
        )
        self._prices[key] = priced
        return priced

    def audit_hbm(self, kind: str, batch: int = 1, *,
                  optimized: bool = False):
        """D-HBM audit of one priced batch: findings when the bytes
        admission would reserve undercut the static liveness
        certificate (an overcommitted pool waiting to happen)."""
        from ..analysis.dagcheck.memory import (
            HbmCertificate,
            check_hbm_budget,
        )

        priced = self.price(kind, batch, optimized=optimized)
        cert = HbmCertificate(
            label=f"{kind}/batch{priced.batch}", node_count=priced.kernels,
            peak_bytes=float(priced.certified_hbm_bytes),
        )
        return check_hbm_budget(cert.label, float(priced.hbm_bytes), cert)

    def service_us(self, kind: str, batch: int = 1, *,
                   optimized: bool = False) -> float:
        return self.price(kind, batch, optimized=optimized).service_us

    def working_bytes(self, kind: str, batch: int = 1) -> int:
        """HBM working set one batch reserves on its device: the paper's
        ``S_max`` key-switch working set at the class's parameters plus
        the batch's resident input ciphertexts."""
        params = self.classes[kind].params
        return (
            max_working_set_bytes(params, batch_size=batch)
            + batch * params.ciphertext_bytes()
        )

    def slo_us(self, kind: str) -> float:
        """The class's latency SLO in microseconds."""
        return (
            self.classes[kind].slo_factor * self.service_us(kind, 1)
        )

    def max_batch(self, kind: str) -> int:
        return self.classes[kind].max_batch


def default_catalog(kinds: Sequence[str] = DEFAULT_JOB_KINDS, *,
                    device: GpuSpec = A100_PCIE_80G,
                    style: str = "pe",
                    hbm_model: str = "formula") -> JobCatalog:
    """The standard four-workload catalog (module docstring)."""
    return JobCatalog(kinds, device=device, style=style,
                      hbm_model=hbm_model)
