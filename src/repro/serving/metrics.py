"""Serving metrics: latency percentiles, SLO attainment, fleet report.

Percentiles are computed from **per-job completion times on the
simulated fleet clock** (never wall-clock), with linear interpolation
between order statistics so the same sample always yields the same
value.  The :class:`ServingReport` is a plain-data summary of one
finished simulation — ``to_dict`` round-trips through JSON untouched,
which is what the same-seed determinism test compares.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """q-th percentile (0..100) with linear interpolation; 0 if empty."""
    if not values:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError("percentile q must be in [0, 100]")
    xs = sorted(float(v) for v in values)
    if len(xs) == 1:
        return xs[0]
    pos = (len(xs) - 1) * (q / 100.0)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(xs) - 1)
    frac = pos - lo
    return xs[lo] * (1.0 - frac) + xs[hi] * frac


def latency_stats(latencies_us: Sequence[float]) -> Dict[str, float]:
    """The standard percentile block used everywhere in the report."""
    if not latencies_us:
        return {"count": 0, "mean_us": 0.0, "p50_us": 0.0,
                "p95_us": 0.0, "p99_us": 0.0, "max_us": 0.0}
    return {
        "count": len(latencies_us),
        "mean_us": round(sum(latencies_us) / len(latencies_us), 3),
        "p50_us": round(percentile(latencies_us, 50), 3),
        "p95_us": round(percentile(latencies_us, 95), 3),
        "p99_us": round(percentile(latencies_us, 99), 3),
        "max_us": round(max(latencies_us), 3),
    }


@dataclass
class ServingReport:
    """Everything one serving simulation measured.

    All times are simulated microseconds.  ``throughput_jobs_per_s``
    counts jobs completed within the arrival horizon only, so drain
    work after the last arrival does not flatter it.
    """

    config: Dict[str, Any]
    horizon_us: float
    makespan_us: float
    submitted: int
    completed: int
    completed_by_horizon: int
    throughput_jobs_per_s: float
    latency: Dict[str, float]
    per_kind: Dict[str, Dict[str, float]]
    batches: Dict[str, float]
    queue: Dict[str, float]
    devices: List[Dict[str, float]] = field(default_factory=list)
    rejections: int = 0
    slo_attainment: float = 1.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "config": dict(self.config),
            "horizon_us": self.horizon_us,
            "makespan_us": round(self.makespan_us, 3),
            "submitted": self.submitted,
            "completed": self.completed,
            "completed_by_horizon": self.completed_by_horizon,
            "throughput_jobs_per_s": round(self.throughput_jobs_per_s, 4),
            "latency": dict(self.latency),
            "per_kind": {k: dict(v) for k, v in self.per_kind.items()},
            "batches": dict(self.batches),
            "queue": dict(self.queue),
            "devices": [dict(d) for d in self.devices],
            "rejections": self.rejections,
            "slo_attainment": round(self.slo_attainment, 4),
        }

    def summary(self) -> str:
        """Human-readable multi-line digest."""
        cfg = self.config
        lines = [
            f"serving: {cfg.get('gpus', '?')} GPU(s), "
            f"policy={cfg.get('policy', '?')}, "
            f"arrival={cfg.get('arrival', '?')} "
            f"@ {cfg.get('rate_per_s', '?')}/s, "
            f"optimize={cfg.get('optimize', False)}, "
            f"seed={cfg.get('seed', 0)}",
            f"  jobs: {self.completed}/{self.submitted} completed "
            f"({self.completed_by_horizon} within the "
            f"{self.horizon_us / 1e6:.2f}s horizon) -> "
            f"{self.throughput_jobs_per_s:.2f} jobs/s",
            f"  latency: p50={self.latency['p50_us'] / 1e3:.2f}ms "
            f"p95={self.latency['p95_us'] / 1e3:.2f}ms "
            f"p99={self.latency['p99_us'] / 1e3:.2f}ms "
            f"(SLO attainment {self.slo_attainment * 100:.1f}%)",
            f"  batches: {int(self.batches['count'])} formed, "
            f"mean size {self.batches['mean_size']:.2f}; "
            f"queue depth mean {self.queue['mean_depth']:.2f} "
            f"max {int(self.queue['max_depth'])}; "
            f"admission rejections {self.rejections}",
        ]
        for dev in self.devices:
            lines.append(
                f"  gpu{int(dev['index'])}: "
                f"util {dev['utilization'] * 100:.1f}%  "
                f"busy {dev['busy_us'] / 1e3:.1f}ms  "
                f"batches {int(dev['batches'])}  "
                f"hbm peak {dev['hbm_peak_mib']:.0f} MiB"
            )
        return "\n".join(lines)
