"""Ciphertext-level batching: size- and deadline-triggered batch closure.

Requests of one job class queue per kind; a batch closes (and goes to
placement) when either

* **size trigger** — the queue reaches the batch ceiling (the smaller of
  the policy's ``max_batch`` and the class's ``max_batch``), or
* **deadline trigger** — the oldest queued request has waited
  ``max_wait_us`` (tail latency is bounded even at trickle rates).

The simulator schedules one deadline event per arrival at
``arrival + max_wait_us``; stale deadline events — the request already
left in a size-closed or earlier-flushed batch — are harmless
(``flush_due`` simply returns nothing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple


@dataclass
class Job:
    """One request through its lifetime."""

    jid: int
    kind: str
    arrival_us: float
    completion_us: float = -1.0

    @property
    def latency_us(self) -> float:
        return self.completion_us - self.arrival_us

    @property
    def done(self) -> bool:
        return self.completion_us >= 0


@dataclass(frozen=True)
class BatchingPolicy:
    """Batch-closure knobs.

    ``max_batch=None`` defers to each job class's own ceiling;
    ``max_wait_us`` is the deadline trigger.  ``max_batch=1`` disables
    batching entirely (the no-batching baseline).
    """

    max_batch: Optional[int] = None
    max_wait_us: float = 5000.0


@dataclass
class Batch:
    """A closed batch on its way to (or through) a device."""

    kind: str
    jobs: Tuple[Job, ...]
    formed_us: float

    @property
    def size(self) -> int:
        return len(self.jobs)

    @property
    def label(self) -> str:
        return f"{self.kind} x{self.size}"


class Batcher:
    """Per-kind request queues with size/deadline closure."""

    def __init__(self, policy: BatchingPolicy,
                 batch_ceiling: Callable[[str], int]):
        self.policy = policy
        self._ceiling = batch_ceiling
        self._queues: Dict[str, List[Job]] = {}

    def limit(self, kind: str) -> int:
        ceiling = self._ceiling(kind)
        if self.policy.max_batch is not None:
            ceiling = min(ceiling, self.policy.max_batch)
        return max(1, ceiling)

    @property
    def depth(self) -> int:
        """Requests queued and not yet in a closed batch."""
        return sum(len(q) for q in self._queues.values())

    def add(self, job: Job, now: float) -> Optional[Batch]:
        """Queue one request; returns the batch if this closed one."""
        q = self._queues.setdefault(job.kind, [])
        q.append(job)
        if len(q) >= self.limit(job.kind):
            self._queues[job.kind] = []
            return Batch(kind=job.kind, jobs=tuple(q), formed_us=now)
        return None

    def flush_due(self, now: float) -> List[Batch]:
        """Close every queue whose oldest request has waited out."""
        out: List[Batch] = []
        for kind, q in self._queues.items():
            if q and now - q[0].arrival_us >= self.policy.max_wait_us - 1e-9:
                self._queues[kind] = []
                out.append(Batch(kind=kind, jobs=tuple(q), formed_us=now))
        return out

    def flush_all(self, now: float) -> List[Batch]:
        """Close everything (end of simulation)."""
        out = [
            Batch(kind=kind, jobs=tuple(q), formed_us=now)
            for kind, q in self._queues.items() if q
        ]
        self._queues = {}
        return out
