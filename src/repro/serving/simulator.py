"""Discrete-event serving simulator: arrivals -> batches -> GPU fleet.

One :class:`ServingSimulator` run is a single pass over a time-ordered
event heap with three event kinds:

* **arrival** — a request enters its kind's batching queue; if that
  closes the batch (size trigger) it goes straight to placement, else a
  deadline event is scheduled for the request's own wait bound.
* **deadline** — the batcher flushes every queue whose oldest request
  has waited out ``max_wait_us`` (stale events are no-ops).
* **complete** — a batch retires on its device: per-job completion
  times are recorded, the HBM reservation is freed, the device starts
  its next queued batch, and every batch waiting on admission is
  retried (memory may have just been freed).  Closed-loop clients see
  their completion and schedule their next request.

Ties at one timestamp resolve completions first (free capacity), then
arrivals, then deadlines — fixed, so runs are deterministic.  All
randomness flows through one ``numpy`` generator seeded from
``ServingConfig.seed``: the same config always produces the identical
:class:`~repro.serving.metrics.ServingReport`.

Service times come from the :class:`~repro.serving.jobs.JobCatalog`
(priced ``run_dag`` latencies, cached per (kind, batch, optimized)), so
the event loop itself is O(events) regardless of DAG sizes.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..gpusim.device import A100_PCIE_80G, GpuSpec
from ..gpusim.multi import DEFAULT_HBM_BYTES, FleetJob, FleetResult, GpuFleet
from .arrivals import (
    ArrivalProcess,
    ClosedLoop,
    OpenLoop,
    burst_arrivals,
    poisson_arrivals,
)
from .batcher import Batch, Batcher, BatchingPolicy, Job
from .jobs import DEFAULT_JOB_KINDS, JobCatalog, default_catalog
from .metrics import ServingReport, latency_stats
from .policies import PlacementPolicy, make_policy

# Event tags, in tie-break order at equal timestamps.
_COMPLETE, _ARRIVAL, _DEADLINE = 0, 1, 2


@dataclass(frozen=True)
class ServingConfig:
    """One serving experiment, fully specified (and fully seeded)."""

    gpus: int = 1
    kinds: Tuple[str, ...] = DEFAULT_JOB_KINDS
    #: Relative traffic weights per kind (uniform when ``None``).
    mix: Optional[Tuple[float, ...]] = None
    rate_per_s: float = 10.0
    #: ``poisson`` | ``burst`` (open loop) or ``closed`` (client pool).
    arrival: str = "poisson"
    clients: int = 8
    think_time_us: float = 0.0
    horizon_us: float = 1_000_000.0
    policy: str = "least_loaded"
    max_batch: Optional[int] = None
    max_wait_us: float = 5_000.0
    #: Pre-compile job DAGs with the dagopt pipeline before pricing.
    optimize: bool = False
    seed: int = 0
    hbm_bytes: int = DEFAULT_HBM_BYTES
    #: Per-job reservation source: ``formula`` (S_max working-set
    #: estimate) or ``certified`` (static DAG liveness certificate).
    hbm_model: str = "formula"
    style: str = "pe"
    burst_factor: float = 4.0
    burst_period_us: float = 250_000.0
    burst_duty: float = 0.25

    def to_dict(self) -> Dict[str, Any]:
        return {
            "gpus": self.gpus, "kinds": list(self.kinds),
            "mix": list(self.mix) if self.mix is not None else None,
            "rate_per_s": self.rate_per_s, "arrival": self.arrival,
            "clients": self.clients, "think_time_us": self.think_time_us,
            "horizon_us": self.horizon_us, "policy": self.policy,
            "max_batch": self.max_batch, "max_wait_us": self.max_wait_us,
            "optimize": self.optimize, "seed": self.seed,
            "hbm_bytes": self.hbm_bytes, "hbm_model": self.hbm_model,
            "style": self.style,
            "burst_factor": self.burst_factor,
            "burst_period_us": self.burst_period_us,
            "burst_duty": self.burst_duty,
        }


# -- declared tuning knobs (DESIGN.md §14) ----------------------------------

from ..tuning.knobs import IntRange, KnobSpec, register_knob  # noqa: E402

register_knob(KnobSpec(
    name="serving.batch", layer="serving",
    domain=IntRange(1, 64, grid=(1, 2, 4, 8, 16)), default=1,
    doc="Ciphertext batch size priced per lowered DAG (amortizes launch "
        "overhead; the serving batcher's size trigger).",
    observe=lambda pipe: pipe.batch,
))


class ServingSimulator:
    """Drives one :class:`ServingConfig` through the event loop.

    Pass a shared :class:`JobCatalog` to amortize trace pricing across
    many runs (the benchmark sweeps hundreds of configs against one
    catalog); otherwise a fresh default catalog is built.
    """

    def __init__(self, config: ServingConfig,
                 catalog: Optional[JobCatalog] = None,
                 spec: GpuSpec = A100_PCIE_80G):
        self.config = config
        self.catalog = catalog if catalog is not None else default_catalog(
            config.kinds, device=spec, style=config.style,
            hbm_model=config.hbm_model,
        )
        self.fleet = GpuFleet(
            config.gpus, spec, hbm_bytes=config.hbm_bytes
        )
        self.policy: PlacementPolicy = make_policy(config.policy)
        self.batcher = Batcher(
            BatchingPolicy(max_batch=config.max_batch,
                           max_wait_us=config.max_wait_us),
            self.catalog.max_batch,
        )
        self.jobs: List[Job] = []
        self._heap: List[Tuple[float, int, int, Any]] = []
        self._seq = itertools.count()
        # Batches admitted nowhere yet: pinned wait per device,
        # unpinned wait in one shared pool (policy.pins decides).
        self._pinned: List[List[FleetJob]] = [
            [] for _ in range(config.gpus)
        ]
        self._deferred: List[FleetJob] = []
        self._batch_sizes: List[int] = []
        self._now = 0.0
        self._depth_integral = 0.0
        self._max_depth = 0
        self._ran = False

    # -- event plumbing ---------------------------------------------------
    def _push(self, t: float, tag: int, payload: Any) -> None:
        # (t, tag, seq): the tag breaks timestamp ties (completions
        # first, so freed HBM is visible to same-instant arrivals), the
        # monotone seq breaks equal-tag ties in insertion order.
        heapq.heappush(self._heap, (t, tag, next(self._seq), payload))

    def _schedule_completion(self, started: Optional[FleetJob]) -> None:
        if started is not None:
            self._push(started.end_us, _COMPLETE, started)

    def _waiting_depth(self) -> int:
        """Requests submitted but not yet running on a device."""
        waiting = self.batcher.depth
        waiting += sum(len(fj.jobs) for q in self._pinned for fj in q)
        waiting += sum(len(fj.jobs) for fj in self._deferred)
        for dev in self.fleet.devices:
            waiting += sum(len(fj.jobs) for fj in dev.queue)
        return waiting

    def _advance(self, t: float) -> None:
        depth = self._waiting_depth()
        self._depth_integral += depth * max(t - self._now, 0.0)
        self._max_depth = max(self._max_depth, depth)
        self._now = max(self._now, t)

    # -- batch placement --------------------------------------------------
    def _fleet_job(self, batch: Batch) -> FleetJob:
        priced = self.catalog.price(
            batch.kind, batch.size, optimized=self.config.optimize
        )
        if priced.hbm_bytes > self.config.hbm_bytes:
            raise ValueError(
                f"batch {batch.label!r} needs "
                f"{priced.hbm_bytes / 2**30:.1f} GiB but devices have "
                f"{self.config.hbm_bytes / 2**30:.1f}; lower max_batch"
            )
        return FleetJob(
            label=batch.label, service_us=priced.service_us,
            hbm_bytes=priced.hbm_bytes,
            certified_hbm_bytes=priced.certified_hbm_bytes,
            kind=batch.kind,
            batch=batch.size, jobs=tuple(j.jid for j in batch.jobs),
            payload=batch,
        )

    def _dispatch(self, batch: Batch, now: float) -> None:
        self._batch_sizes.append(batch.size)
        fj = self._fleet_job(batch)
        device = self.policy.select(self.fleet, fj.hbm_bytes, now)
        if device is None:
            # Unpinned policy found nothing with room: defer, re-place
            # at the next completion.
            self.fleet.rejections += 1
            self._deferred.append(fj)
            return
        admitted, started = self.fleet.admit(fj, device, now)
        if not admitted:
            if self.policy.pins:
                self._pinned[device].append(fj)
            else:
                self._deferred.append(fj)
            return
        self._schedule_completion(started)

    def _retry_waiting(self, now: float) -> None:
        """Re-attempt admission after memory was freed.

        Pre-checks ``fits`` so retries do not inflate the rejection
        counter — a batch is counted rejected once, at dispatch.
        """
        for device, waiting in enumerate(self._pinned):
            while waiting and self.fleet.devices[device].fits(
                    waiting[0].hbm_bytes):
                fj = waiting.pop(0)
                _, started = self.fleet.admit(fj, device, now)
                self._schedule_completion(started)
        progress = True
        while progress and self._deferred:
            progress = False
            for i, fj in enumerate(self._deferred):
                device = self.policy.select(self.fleet, fj.hbm_bytes, now)
                if device is None:
                    continue
                admitted, started = self.fleet.admit(fj, device, now)
                if admitted:
                    self._deferred.pop(i)
                    self._schedule_completion(started)
                    progress = True
                    break

    # -- event handlers ---------------------------------------------------
    def _on_arrival(self, kind: str, now: float) -> None:
        job = Job(jid=len(self.jobs), kind=kind, arrival_us=now)
        self.jobs.append(job)
        closed = self.batcher.add(job, now)
        if closed is not None:
            self._dispatch(closed, now)
        else:
            self._push(now + self.config.max_wait_us, _DEADLINE, None)

    def _on_complete(self, fj: FleetJob, now: float,
                     process: ArrivalProcess,
                     rng: np.random.Generator) -> None:
        batch: Batch = fj.payload
        for job in batch.jobs:
            job.completion_us = now
            follow = process.on_completion(job.kind, now, rng)
            if follow is not None:
                self._push(follow.t_us, _ARRIVAL, follow.kind)
        self._schedule_completion(self.fleet.complete(fj, now))
        self._retry_waiting(now)

    # -- the loop ---------------------------------------------------------
    def _make_process(self) -> ArrivalProcess:
        cfg = self.config
        if cfg.arrival == "poisson":
            return OpenLoop(lambda rng: poisson_arrivals(
                cfg.rate_per_s, cfg.horizon_us, cfg.kinds, rng,
                mix=cfg.mix,
            ))
        if cfg.arrival == "burst":
            return OpenLoop(lambda rng: burst_arrivals(
                cfg.rate_per_s, cfg.horizon_us, cfg.kinds, rng,
                mix=cfg.mix, burst_factor=cfg.burst_factor,
                period_us=cfg.burst_period_us, duty=cfg.burst_duty,
            ))
        if cfg.arrival == "closed":
            return ClosedLoop(
                clients=cfg.clients, kinds=tuple(cfg.kinds), mix=cfg.mix,
                think_time_us=cfg.think_time_us,
                horizon_us=cfg.horizon_us,
            )
        raise ValueError(
            f"unknown arrival process {cfg.arrival!r}; "
            "one of poisson, burst, closed"
        )

    def run(self) -> ServingReport:
        if self._ran:
            raise RuntimeError("simulator instances are single-use")
        self._ran = True
        rng = np.random.default_rng(self.config.seed)
        process = self._make_process()
        for arrival in process.initial(rng):
            self._push(arrival.t_us, _ARRIVAL, arrival.kind)
        while True:
            while self._heap:
                t, tag, _, payload = heapq.heappop(self._heap)
                self._advance(t)
                if tag == _COMPLETE:
                    self._on_complete(payload, t, process, rng)
                elif tag == _ARRIVAL:
                    self._on_arrival(payload, t)
                else:
                    for batch in self.batcher.flush_due(t):
                        self._dispatch(batch, t)
            # Safety drain: anything still queued (e.g. infinite
            # max_wait_us) is flushed at the final clock and the loop
            # resumes to run it down.
            leftovers = self.batcher.flush_all(self._now)
            if not leftovers:
                break
            for batch in leftovers:
                self._dispatch(batch, self._now)
        return self._report()

    def fleet_result(self) -> FleetResult:
        return self.fleet.result()

    # -- reporting --------------------------------------------------------
    def _report(self) -> ServingReport:
        cfg = self.config
        done = [j for j in self.jobs if j.done]
        latencies = [j.latency_us for j in done]
        by_horizon = sum(
            1 for j in done if j.completion_us <= cfg.horizon_us
        )
        per_kind: Dict[str, Dict[str, float]] = {}
        slo_hits = 0
        for kind in cfg.kinds:
            kind_done = [j for j in done if j.kind == kind]
            stats = latency_stats([j.latency_us for j in kind_done])
            slo = self.catalog.slo_us(kind)
            hits = sum(1 for j in kind_done if j.latency_us <= slo)
            slo_hits += hits
            stats["slo_us"] = round(slo, 3)
            stats["slo_attainment"] = round(
                hits / len(kind_done), 4) if kind_done else 1.0
            per_kind[kind] = stats
        makespan = max((j.completion_us for j in done), default=0.0)
        horizon_s = cfg.horizon_us / 1e6
        span = max(makespan, cfg.horizon_us)
        devices = []
        for dev in self.fleet.devices:
            devices.append({
                "index": dev.index,
                "busy_us": round(dev.busy_us, 3),
                "utilization": round(dev.utilization(span), 4),
                "batches": len(dev.entries),
                "hbm_peak_mib": round(
                    dev.pool.stats["peak_bytes"] / 2**20, 1),
            })
        return ServingReport(
            config=cfg.to_dict(),
            horizon_us=cfg.horizon_us,
            makespan_us=makespan,
            submitted=len(self.jobs),
            completed=len(done),
            completed_by_horizon=by_horizon,
            throughput_jobs_per_s=by_horizon / horizon_s,
            latency=latency_stats(latencies),
            per_kind=per_kind,
            batches={
                "count": len(self._batch_sizes),
                "mean_size": round(
                    sum(self._batch_sizes) / len(self._batch_sizes), 3
                ) if self._batch_sizes else 0.0,
                "max_size": max(self._batch_sizes, default=0),
            },
            queue={
                "mean_depth": round(
                    self._depth_integral / span, 3) if span > 0 else 0.0,
                "max_depth": self._max_depth,
            },
            devices=devices,
            rejections=self.fleet.rejections,
            slo_attainment=round(
                slo_hits / len(done), 4) if done else 1.0,
        )


def simulate_serving(config: ServingConfig,
                     catalog: Optional[JobCatalog] = None,
                     spec: GpuSpec = A100_PCIE_80G) -> ServingReport:
    """Run one config through a fresh simulator; see module docstring."""
    return ServingSimulator(config, catalog, spec).run()
