"""FHE serving layer: request-queue simulation over a simulated GPU fleet.

The production-traffic story of the ROADMAP north star, made measurable:
encrypted jobs (HELR iterations, ResNet blocks, SET-C bootstraps, AES
transcipher blocks — each a recorded trace DAG) arrive at configurable
rates, are ciphertext-level batched, and are scheduled across N
simulated A100s (:class:`~repro.gpusim.multi.GpuFleet`), each device
pricing its batches through the existing dependency-aware
:func:`~repro.gpusim.run_dag` with per-device
:class:`~repro.core.memory_pool.MemoryPool` HBM admission control.

Quick use::

    from repro.serving import ServingConfig, simulate_serving
    report = simulate_serving(ServingConfig(
        gpus=4, rate_per_s=20.0, policy="memory_aware", seed=0,
    ))
    print(report.summary())

or from the command line::

    python -m repro.serving --gpus 4 --rate 20

Every stochastic path takes an explicit seed/rng: the same
:class:`ServingConfig` always produces the identical report.
"""

from .arrivals import (
    Arrival,
    ArrivalProcess,
    ClosedLoop,
    OpenLoop,
    burst_arrivals,
    poisson_arrivals,
)
from .batcher import Batch, Batcher, BatchingPolicy
from .jobs import (
    DEFAULT_JOB_KINDS,
    JobClass,
    JobCatalog,
    PricedBatch,
    default_catalog,
)
from .metrics import ServingReport, percentile
from .policies import (
    POLICIES,
    LeastLoaded,
    MemoryAware,
    PlacementPolicy,
    RoundRobin,
    make_policy,
)
from .simulator import ServingConfig, ServingSimulator, simulate_serving

__all__ = [
    "Arrival",
    "ArrivalProcess",
    "Batch",
    "Batcher",
    "BatchingPolicy",
    "ClosedLoop",
    "DEFAULT_JOB_KINDS",
    "JobCatalog",
    "JobClass",
    "LeastLoaded",
    "MemoryAware",
    "OpenLoop",
    "POLICIES",
    "PlacementPolicy",
    "PricedBatch",
    "RoundRobin",
    "ServingConfig",
    "ServingReport",
    "ServingSimulator",
    "burst_arrivals",
    "default_catalog",
    "make_policy",
    "percentile",
    "poisson_arrivals",
    "simulate_serving",
]
