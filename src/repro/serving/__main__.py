"""CLI front door: ``python -m repro.serving --gpus 4 --rate 20``.

Runs one serving simulation and prints the report summary; ``--json``
and ``--trace`` additionally write the machine-readable report and the
per-device Perfetto fleet timeline.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..gpusim.multi import DEFAULT_HBM_BYTES, save_fleet_trace
from .jobs import DEFAULT_JOB_KINDS
from .policies import POLICIES
from .simulator import ServingConfig, ServingSimulator


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="Simulate an FHE serving fleet over gpusim.",
    )
    p.add_argument("--gpus", type=int, default=1,
                   help="fleet size (default 1)")
    p.add_argument("--rate", type=float, default=10.0,
                   help="mean arrival rate, jobs/s (default 10)")
    p.add_argument("--arrival", default="poisson",
                   choices=("poisson", "burst", "closed"),
                   help="arrival process (default poisson)")
    p.add_argument("--clients", type=int, default=8,
                   help="closed-loop client population (default 8)")
    p.add_argument("--think-ms", type=float, default=0.0,
                   help="closed-loop mean think time, ms (default 0)")
    p.add_argument("--horizon-s", type=float, default=1.0,
                   help="arrival horizon, seconds (default 1.0)")
    p.add_argument("--policy", default="least_loaded",
                   choices=sorted(POLICIES),
                   help="placement policy (default least_loaded)")
    p.add_argument("--kinds", default=",".join(DEFAULT_JOB_KINDS),
                   help="comma-separated job kinds "
                        f"(default {','.join(DEFAULT_JOB_KINDS)})")
    p.add_argument("--max-batch", type=int, default=None,
                   help="cap ciphertext batch size (default: per-class)")
    p.add_argument("--max-wait-ms", type=float, default=5.0,
                   help="batching deadline, ms (default 5)")
    p.add_argument("--optimize", action="store_true",
                   help="pre-compile job DAGs with the dagopt pipeline")
    p.add_argument("--seed", type=int, default=0,
                   help="simulation seed (default 0)")
    p.add_argument("--hbm-gb", type=float,
                   default=DEFAULT_HBM_BYTES / 2**30,
                   help="per-device HBM, GiB (default 80)")
    p.add_argument("--hbm-model", default="formula",
                   choices=("formula", "certified"),
                   help="per-job HBM reservation: S_max formula or the "
                        "static dagcheck liveness certificate")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="write the full report as JSON")
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="write the Perfetto fleet timeline JSON")
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    config = ServingConfig(
        gpus=args.gpus,
        kinds=tuple(k.strip() for k in args.kinds.split(",") if k.strip()),
        rate_per_s=args.rate,
        arrival=args.arrival,
        clients=args.clients,
        think_time_us=args.think_ms * 1e3,
        horizon_us=args.horizon_s * 1e6,
        policy=args.policy,
        max_batch=args.max_batch,
        max_wait_us=args.max_wait_ms * 1e3,
        optimize=args.optimize,
        seed=args.seed,
        hbm_bytes=int(args.hbm_gb * 2**30),
        hbm_model=args.hbm_model,
    )
    sim = ServingSimulator(config)
    report = sim.run()
    print(report.summary())
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=1)
        print(f"report -> {args.json}")
    if args.trace:
        save_fleet_trace(sim.fleet_result(), args.trace)
        print(f"fleet timeline -> {args.trace}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
