"""BGV parameter sets.

BGV [13] works over exact integers mod a plaintext modulus ``t``. For
SIMD slot packing ``t`` must be an NTT-friendly prime of the same ring
(``t ≡ 1 mod 2N``) so the plaintext ring splits into N integer slots —
the encoder then reuses the same NTT machinery as everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..numtheory import PrimeChain, build_prime_chain, find_ntt_prime


@dataclass(frozen=True)
class BgvParams:
    """Static parameters of one BGV instantiation."""

    n: int
    max_level: int
    num_special: int = 2
    dnum: int = 2
    #: Bit size of the plaintext prime t (t ≡ 1 mod 2N is derived).
    plain_bits: int = 17
    modulus_bits: int = 28
    base_bits: int = 31
    special_bits: int = 31
    error_std: float = 3.2
    #: Hamming weight of the ternary secret (0 = dense).
    secret_hamming_weight: int = 0
    name: str = ""

    def __post_init__(self):
        if self.n < 8 or self.n & (self.n - 1):
            raise ValueError("ring degree must be a power of two >= 8")
        if self.max_level < 1:
            raise ValueError("need at least one level")
        if self.plain_bits < 2 or self.plain_bits > 30:
            raise ValueError("plaintext prime must be 2..30 bits")

    @property
    def plain_modulus(self) -> int:
        """The NTT-friendly plaintext prime t."""
        return _plain_prime(self.plain_bits, self.n)

    @property
    def num_primes(self) -> int:
        return self.max_level + 1

    def chain(self) -> PrimeChain:
        chain = _chain_for(
            self.n, self.max_level, self.num_special, self.base_bits,
            self.modulus_bits, self.special_bits,
        )
        t = self.plain_modulus
        if t in chain.all_moduli:
            raise ValueError(
                "plaintext prime collided with the modulus chain; pick a "
                "different plain_bits"
            )
        return chain

    @classmethod
    def toy(cls) -> "BgvParams":
        return cls(n=64, max_level=3, num_special=2, dnum=2,
                   plain_bits=17, modulus_bits=26, name="bgv-toy")

    @classmethod
    def small(cls) -> "BgvParams":
        return cls(n=1024, max_level=5, num_special=2, dnum=3,
                   plain_bits=17, modulus_bits=28, name="bgv-small")


@lru_cache(maxsize=32)
def _plain_prime(bits: int, n: int) -> int:
    return find_ntt_prime(bits, n)


@lru_cache(maxsize=32)
def _chain_for(n, max_level, num_special, base_bits, modulus_bits,
               special_bits) -> PrimeChain:
    return build_prime_chain(
        n, num_levels=max_level, num_special=num_special,
        base_bits=base_bits, scale_bits=modulus_bits,
        special_bits=special_bits,
    )
