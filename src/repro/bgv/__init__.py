"""BGV scheme on the WarpDrive substrate (the §VI-B generality claim)."""

from .params import BgvParams
from .scheme import BgvCiphertext, BgvContext

__all__ = ["BgvCiphertext", "BgvContext", "BgvParams"]
