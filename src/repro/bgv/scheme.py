"""Functional BGV on the WarpDrive substrate (§VI-B generality).

The paper argues its NTT and kernel designs carry over to other
RLWE schemes "by incorporating additional logic for homomorphic
operations"; this module is that additional logic for BGV [13]: exact
integer arithmetic mod a plaintext prime ``t``, errors scaled by ``t``,
hybrid key-switching with the t-preserving ModDown, and modulus switching
in place of CKKS rescaling. Every polynomial operation reuses the same
RNS/NTT machinery the CKKS layer runs on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..ckks.keys import KeyGenerator, KeySet
from ..ckks.keyswitch import keyswitch
from ..ckks.poly import RnsPoly
from ..ckks.sampling import sample_error, sample_ternary
from ..ntt import negacyclic_intt, negacyclic_ntt
from ..ntt.tables import get_tables
from ..numtheory import CRTReconstructor, modinv
from ..numtheory.rns import RNSBasis, mod_down_exact_t
from .params import BgvParams


@dataclass
class BgvCiphertext:
    """BGV ciphertext: RLWE pair + level + plaintext scale factor mod t.

    Modulus switching multiplies the message by ``q_last^{-1} mod t``;
    ``plain_scale`` accumulates those factors so decryption can undo them.
    """

    c0: RnsPoly
    c1: RnsPoly
    level: int
    plain_scale: int = 1

    @property
    def moduli(self):
        return self.c0.moduli


class BgvContext:
    """Keygen, encryption and homomorphic evaluation for BGV."""

    def __init__(self, params: BgvParams, *, seed: int = None):
        self.params = params
        self.rng = np.random.default_rng(seed)
        self.t = params.plain_modulus
        chain = params.chain()
        self.q_moduli = tuple(chain.moduli)
        self.p_moduli = tuple(chain.special_primes)
        self._keygen = KeyGenerator(params, self.rng, error_scale=self.t)
        self._tables_t = get_tables(self.t, params.n)

    # -- keys -------------------------------------------------------------------

    def keygen(self) -> KeySet:
        secret = self._keygen.generate_secret()
        return KeySet(
            secret=secret,
            public=self._keygen.generate_public(secret),
            relin=self._keygen.generate_relin(secret),
        )

    # -- encoding (SIMD slots via the NTT mod t) -----------------------------------

    def encode(self, values: Sequence[int]) -> np.ndarray:
        """Pack up to N integer slots into plaintext coefficients mod t."""
        values = np.asarray(values, dtype=np.int64)
        if len(values) > self.params.n:
            raise ValueError(f"at most {self.params.n} slots")
        slots = np.zeros(self.params.n, dtype=np.uint64)
        slots[: len(values)] = np.mod(values, self.t).astype(np.uint64)
        return negacyclic_intt(slots, self._tables_t)

    def decode(self, coeffs: np.ndarray) -> np.ndarray:
        """Coefficients mod t back to integer slots."""
        return negacyclic_ntt(
            coeffs.astype(np.uint64) % np.uint64(self.t), self._tables_t
        ).astype(np.int64)

    # -- encryption -----------------------------------------------------------------

    def encrypt(self, values: Sequence[int], keys: KeySet) -> BgvCiphertext:
        level = self.params.max_level
        moduli = self.q_moduli[: level + 1]
        n = self.params.n
        m = RnsPoly.from_signed(
            self.encode(values).astype(np.int64), moduli
        ).to_eval()
        v = RnsPoly.from_signed(sample_ternary(n, self.rng), moduli
                                ).to_eval()
        e0 = RnsPoly.from_signed(
            sample_error(n, self.rng, std=self.params.error_std) * self.t,
            moduli,
        ).to_eval()
        e1 = RnsPoly.from_signed(
            sample_error(n, self.rng, std=self.params.error_std) * self.t,
            moduli,
        ).to_eval()
        pk_b = keys.public.b.take_primes(range(level + 1))
        pk_a = keys.public.a.take_primes(range(level + 1))
        return BgvCiphertext(
            c0=pk_b * v + e0 + m, c1=pk_a * v + e1, level=level,
        )

    def decrypt(self, ct: BgvCiphertext, keys: KeySet) -> np.ndarray:
        """Decrypt to integer slots (centered representatives mod t)."""
        s = keys.secret.poly.take_primes(range(ct.level + 1))
        phase = (ct.c0 + ct.c1 * s).to_coeff()
        crt = CRTReconstructor(list(phase.moduli))
        coeffs = crt.reconstruct_array(phase.data, signed=True)
        unscale = modinv(ct.plain_scale, self.t)
        reduced = np.array(
            [(int(c) * unscale) % self.t for c in coeffs], dtype=np.uint64
        )
        slots = self.decode(reduced)
        centered = slots.copy()
        centered[centered > self.t // 2] -= self.t
        return centered

    # -- homomorphic operations -------------------------------------------------------

    def hadd(self, a: BgvCiphertext, b: BgvCiphertext) -> BgvCiphertext:
        a, b = self._align(a, b)
        return BgvCiphertext(a.c0 + b.c0, a.c1 + b.c1, a.level,
                             a.plain_scale)

    def hsub(self, a: BgvCiphertext, b: BgvCiphertext) -> BgvCiphertext:
        a, b = self._align(a, b)
        return BgvCiphertext(a.c0 - b.c0, a.c1 - b.c1, a.level,
                             a.plain_scale)

    def negate(self, ct: BgvCiphertext) -> BgvCiphertext:
        return BgvCiphertext(-ct.c0, -ct.c1, ct.level, ct.plain_scale)

    def add_plain(self, ct: BgvCiphertext,
                  values: Sequence[int]) -> BgvCiphertext:
        moduli = ct.moduli
        m = RnsPoly.from_signed(
            self.encode(values).astype(np.int64), moduli
        ).to_eval().mul_scalar(ct.plain_scale)
        return BgvCiphertext(ct.c0 + m, ct.c1.copy(), ct.level,
                             ct.plain_scale)

    def pmult(self, ct: BgvCiphertext,
              values: Sequence[int]) -> BgvCiphertext:
        m = RnsPoly.from_signed(
            self.encode(values).astype(np.int64), ct.moduli
        ).to_eval()
        return BgvCiphertext(ct.c0 * m, ct.c1 * m, ct.level,
                             ct.plain_scale)

    def hmult(self, a: BgvCiphertext, b: BgvCiphertext, keys: KeySet, *,
              mod_switch: bool = True) -> BgvCiphertext:
        """Ciphertext product with relinearization (+ modulus switch)."""
        a, b = self._align(a, b)
        d0 = a.c0 * b.c0
        d1 = (a.c0 * b.c1).fma_(a.c1, b.c0)
        d2 = a.c1 * b.c1
        ks0, ks1 = keyswitch(
            d2, keys.relin, self.p_moduli, plain_modulus=self.t
        )
        ct = BgvCiphertext(
            d0 + ks0, d1 + ks1, a.level,
            (a.plain_scale * b.plain_scale) % self.t,
        )
        return self.mod_switch(ct) if mod_switch else ct

    # -- Galois automorphisms / rotations ---------------------------------------------

    def generate_galois_key(self, keys: KeySet, exponent: int) -> None:
        """Add a switching key for ``X -> X^exponent`` to ``keys``
        (stored in the rotation map under the exponent)."""
        keys.rotation[exponent] = self._keygen.generate_galois(
            keys.secret, exponent
        )

    def slot_permutation(self, exponent: int) -> np.ndarray:
        """The slot permutation induced by ``X -> X^exponent``.

        Slot ``k`` holds ``m(psi^(2k+1))``; the automorphism maps slot
        ``k`` to the value previously at slot ``(e*(2k+1) - 1)/2 mod N``.
        Returns ``perm`` with ``new_slots[k] = old_slots[perm[k]]``.
        """
        n = self.params.n
        if exponent % 2 == 0:
            raise ValueError("automorphism exponent must be odd")
        k = np.arange(n)
        return ((exponent * (2 * k + 1)) % (2 * n) - 1) // 2

    def apply_galois(self, ct: BgvCiphertext, exponent: int,
                     keys: KeySet) -> BgvCiphertext:
        """Homomorphically permute slots via ``X -> X^exponent``."""
        key = keys.rotation.get(exponent)
        if key is None:
            raise KeyError(
                f"no Galois key for exponent {exponent}; call "
                "generate_galois_key first"
            )
        rot0 = ct.c0.to_coeff().automorphism(exponent).to_eval()
        rot1 = ct.c1.to_coeff().automorphism(exponent).to_eval()
        ks0, ks1 = keyswitch(rot1, key, self.p_moduli,
                             plain_modulus=self.t)
        return BgvCiphertext(rot0 + ks0, ks1, ct.level, ct.plain_scale)

    def mod_switch(self, ct: BgvCiphertext) -> BgvCiphertext:
        """Drop the last prime, scaling noise down by ~q_last (BGV's
        noise-management move; the message picks up q_last^{-1} mod t)."""
        if ct.level < 1:
            raise ValueError("already at the lowest level")
        moduli = ct.moduli
        q_last = moduli[-1]
        main = RNSBasis(moduli[:-1])
        special = RNSBasis(moduli[-1:])
        parts = []
        for part in (ct.c0, ct.c1):
            lowered = mod_down_exact_t(
                part.to_coeff().data, main, special, self.t
            )
            parts.append(
                RnsPoly(lowered, moduli[:-1], "coeff").to_eval()
            )
        new_scale = (ct.plain_scale * modinv(q_last % self.t, self.t)) \
            % self.t
        return BgvCiphertext(parts[0], parts[1], ct.level - 1, new_scale)

    # -- internals ------------------------------------------------------------------

    def _align(self, a: BgvCiphertext, b: BgvCiphertext):
        while a.level > b.level:
            a = self.mod_switch(a)
        while b.level > a.level:
            b = self.mod_switch(b)
        if a.plain_scale != b.plain_scale:
            # Equalize message scales with a constant multiplication.
            factor = (a.plain_scale * modinv(b.plain_scale, self.t)) \
                % self.t
            b = BgvCiphertext(
                b.c0.mul_scalar(factor), b.c1.mul_scalar(factor),
                b.level, a.plain_scale,
            )
        return a, b
