"""WarpDrive (HPCA 2025) reproduction.

A functional 32-bit-word RNS-CKKS library with every NTT strategy the paper
describes (tensor-core GEMM with bit splitting, hierarchical decomposition,
high-radix butterflies, fused tensor+CUDA plans), timed by an analytic GPU
simulator (``repro.gpusim``) that reproduces the paper's tables and figures.

Quickstart::

    from repro.ckks import CkksContext, ParameterSets
    ctx = CkksContext.create(ParameterSets.toy())
    keys = ctx.keygen()
    ct = ctx.encrypt([1.5, 2.5, -3.0], keys.public)
    ct2 = ctx.hmult(ct, ct, keys)
    print(ctx.decrypt_decode(ct2, keys.secret)[:3])
"""

__version__ = "1.0.0"
