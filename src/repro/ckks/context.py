"""User-facing CKKS facade.

Bundles parameters, encoder, key generation and the evaluator behind the
handful of calls an application needs; the quickstart example uses nothing
else.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .ciphertext import Ciphertext, Plaintext
from .encoding import Encoder
from .keys import KeyGenerator, KeySet, SecretKey
from .ops import Evaluator
from .params import CkksParams
from .poly import RnsPoly


class CkksContext:
    """One CKKS instantiation: parameters + encoder + evaluator."""

    def __init__(self, params: CkksParams, *, seed: int = None):
        self.params = params
        self.rng = np.random.default_rng(seed)
        self.encoder = Encoder(params)
        self.evaluator = Evaluator(params, self.rng)
        self._keygen = KeyGenerator(params, self.rng)

    @classmethod
    def create(cls, params: CkksParams, *, seed: int = None) -> "CkksContext":
        return cls(params, seed=seed)

    # -- keys ------------------------------------------------------------------

    def keygen(self, *, rotations: List[int] = None,
               conjugation: bool = False) -> KeySet:
        return self._keygen.generate(
            rotations=rotations, conjugation=conjugation
        )

    def add_rotation_key(self, keys: KeySet, step: int) -> None:
        """Generate one more rotation key in place."""
        keys.rotation[step] = self._keygen.generate_rotation(
            keys.secret, step
        )

    # -- encode / encrypt ----------------------------------------------------------

    def encode(self, values: Sequence, *, level: int = None,
               scale: float = None) -> Plaintext:
        level = self.params.max_level if level is None else level
        scale = self.params.scale if scale is None else scale
        coeffs = self.encoder.encode(values, scale)
        moduli = self.evaluator.moduli_at(level)
        return Plaintext(
            poly=RnsPoly.from_signed(coeffs, moduli), scale=scale,
            level=level,
        )

    def encrypt(self, values: Sequence, keys_or_public, *,
                level: int = None, scale: float = None) -> Ciphertext:
        public = getattr(keys_or_public, "public", keys_or_public)
        return self.evaluator.encrypt(
            self.encode(values, level=level, scale=scale), public
        )

    # -- decrypt / decode -----------------------------------------------------------

    def decrypt_decode(self, ct: Ciphertext, secret_or_keys,
                       ) -> np.ndarray:
        """Decrypt and decode to complex slot values."""
        secret = self._as_secret(secret_or_keys)
        coeffs = self.evaluator.decrypt_coefficients(ct, secret)
        return self.encoder.decode(coeffs, ct.scale)

    def decrypt_decode_real(self, ct: Ciphertext, secret_or_keys,
                            ) -> np.ndarray:
        return np.real(self.decrypt_decode(ct, secret_or_keys))

    @staticmethod
    def _as_secret(secret_or_keys) -> SecretKey:
        return getattr(secret_or_keys, "secret", secret_or_keys)

    # -- shortcuts to the evaluator ---------------------------------------------------

    def hadd(self, a, b):
        return self.evaluator.hadd(a, b)

    def hsub(self, a, b):
        return self.evaluator.hsub(a, b)

    def hmult(self, a, b, keys, **kw):
        return self.evaluator.hmult(a, b, keys, **kw)

    def pmult(self, ct, pt):
        return self.evaluator.pmult(ct, pt)

    def hrotate(self, ct, steps, keys):
        return self.evaluator.hrotate(ct, steps, keys)

    def rescale(self, ct):
        return self.evaluator.rescale(ct)

    @property
    def slots(self) -> int:
        return self.params.slots
