"""Approximate comparisons on ciphertexts: sign, max, ReLU.

CKKS has no native comparison; applications approximate ``sign(x)`` with
composite odd polynomials (Cheon et al.), then build ``max``, ``min`` and
``ReLU`` from it — the construction behind the paper's ResNet activation.
This module provides the standard iterated-cubic composite:

    g(x) = 1.5 x - 0.5 x^3        (a contraction toward ±1 on [-1, 1])
    sign(x) ~ g∘g∘...∘g (x)

Each composition costs 2 levels; ``rounds`` trades depth for sharpness.
Inputs must lie in [-1, 1].
"""

from __future__ import annotations

import numpy as np

from .ciphertext import Ciphertext
from .keys import KeySet
from .ops import Evaluator


def approx_sign(ev: Evaluator, ct: Ciphertext, keys: KeySet, *,
                rounds: int = 3) -> Ciphertext:
    """``sign(x)`` for x in [-1, 1] via iterated ``1.5x - 0.5x^3``."""
    if rounds < 1:
        raise ValueError("need at least one composition round")
    out = ct
    for _ in range(rounds):
        out = _sign_round(ev, out, keys)
    return out


def _sign_round(ev: Evaluator, ct: Ciphertext, keys: KeySet) -> Ciphertext:
    sq = ev.hmult(ct, ct, keys)                        # x^2
    cube = ev.hmult(sq, ev.level_down(ct, sq.level), keys)  # x^3
    term1 = ev.rescale(ev.pmult_scalar(ct, 1.5))
    term3 = ev.rescale(ev.pmult_scalar(cube, 0.5))
    return ev.hsub_matched(
        ev.level_down(term1, min(term1.level, term3.level)),
        ev.level_down(term3, min(term1.level, term3.level)),
    )


def approx_relu(ev: Evaluator, ct: Ciphertext, keys: KeySet, *,
                rounds: int = 3) -> Ciphertext:
    """``relu(x) = x * (1 + sign(x)) / 2`` for x in [-1, 1]."""
    sign = approx_sign(ev, ct, keys, rounds=rounds)
    half_sign = ev.rescale(ev.pmult_scalar(sign, 0.5))
    gate = ev.add_scalar(half_sign, 0.5)        # ~ indicator(x > 0)
    return ev.hmult(ev.level_down(ct, gate.level), gate, keys)


def approx_max(ev: Evaluator, a: Ciphertext, b: Ciphertext, keys: KeySet,
               *, rounds: int = 3) -> Ciphertext:
    """``max(a, b) = (a + b)/2 + |a - b|/2`` with ``|x| = x * sign(x)``.

    Inputs (and their difference) must lie in [-1, 1]."""
    diff = ev.hsub(a, b)
    sign = approx_sign(ev, diff, keys, rounds=rounds)
    abs_diff = ev.hmult(ev.level_down(diff, sign.level), sign, keys)
    mean = ev.rescale(ev.pmult_scalar(ev.hadd(a, b), 0.5))
    half_abs = ev.rescale(ev.pmult_scalar(abs_diff, 0.5))
    lvl = min(mean.level, half_abs.level)
    return ev.hadd_matched(
        ev.level_down(mean, lvl), ev.level_down(half_abs, lvl)
    )


def sign_reference(x: np.ndarray, *, rounds: int = 3) -> np.ndarray:
    """Plaintext mirror of :func:`approx_sign` (the test oracle)."""
    out = np.asarray(x, dtype=float)
    for _ in range(rounds):
        out = 1.5 * out - 0.5 * out**3
    return out


def levels_for_sign(rounds: int) -> int:
    """Depth of the composite sign: 3 levels per round (x^2, then x^3 one
    level deeper, then the coefficient combination's rescale)."""
    return 3 * rounds
