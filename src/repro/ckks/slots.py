"""Slot-manipulation utilities: the packing idioms applications live on.

Masking, replication, slot reductions and encrypted inner products — the
small moves every CKKS application (HELR's reductions, ResNet's channel
sums, private statistics) composes. All are built from the public
evaluator operations, so their costs are visible to the scheduler.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .ciphertext import Ciphertext
from .context import CkksContext
from .keys import KeySet


class SlotOps:
    """Slot utilities bound to a context."""

    def __init__(self, ctx: CkksContext):
        self.ctx = ctx
        self.ev = ctx.evaluator

    # -- masking ------------------------------------------------------------------

    def mask(self, ct: Ciphertext, positions: Sequence[int],
             *, rescale: bool = True) -> Ciphertext:
        """Zero every slot except ``positions`` (one PMULT by a 0/1 mask)."""
        m = np.zeros(self.ctx.slots)
        m[list(positions)] = 1.0
        pt = self.ctx.encode(m, level=ct.level)
        out = self.ev.pmult(ct, pt)
        return self.ev.rescale(out) if rescale else out

    def select(self, a: Ciphertext, b: Ciphertext,
               positions: Sequence[int]) -> Ciphertext:
        """Slot-wise merge: ``a`` at ``positions``, ``b`` elsewhere."""
        mask_a = self.mask(a, positions)
        others = [i for i in range(self.ctx.slots)
                  if i not in set(positions)]
        mask_b = self.mask(b, others)
        return self.ev.hadd_matched(mask_a, mask_b)

    # -- reductions -----------------------------------------------------------------

    def sum_all(self, ct: Ciphertext, keys: KeySet) -> Ciphertext:
        """Every slot becomes the sum of all slots (log2(s) rotations).

        Needs power-of-two rotation keys."""
        step = 1
        while step < self.ctx.slots:
            ct = self.ev.hadd(
                ct, self.ev.hrotate(ct, step, keys)
            )
            step *= 2
        return ct

    def sum_blocks(self, ct: Ciphertext, block: int,
                   keys: KeySet) -> Ciphertext:
        """Each slot becomes the sum of its length-``block`` window
        (slots j..j+block-1, cyclic); block must be a power of two. The
        block-start slots then hold contiguous block sums."""
        if block & (block - 1) or block < 1:
            raise ValueError("block must be a power of two")
        step = 1
        while step < block:
            ct = self.ev.hadd(ct, self.ev.hrotate(ct, step, keys))
            step *= 2
        return ct

    def average_all(self, ct: Ciphertext, keys: KeySet) -> Ciphertext:
        total = self.sum_all(ct, keys)
        return self.ev.rescale(
            self.ev.pmult_scalar(total, 1.0 / self.ctx.slots)
        )

    # -- products --------------------------------------------------------------------

    def inner_product(self, a: Ciphertext, b: Ciphertext,
                      keys: KeySet) -> Ciphertext:
        """Encrypted dot product: every slot holds <a, b>."""
        prod = self.ev.hmult(a, b, keys)
        return self.sum_all(prod, keys)

    def replicate(self, ct: Ciphertext, position: int,
                  keys: KeySet) -> Ciphertext:
        """Broadcast one slot's value to every slot.

        Mask to the single slot, then rotation-double: after log2(s)
        add-rotate rounds the value fills the vector."""
        masked = self.mask(ct, [position])
        step = 1
        while step < self.ctx.slots:
            masked = self.ev.hadd(
                masked, self.ev.hrotate(masked, step, keys)
            )
            step *= 2
        return masked

    @staticmethod
    def required_rotations(slots: int) -> Sequence[int]:
        """Power-of-two steps used by the reductions here."""
        steps = []
        s = 1
        while s < slots:
            steps.append(s)
            s *= 2
        return steps
