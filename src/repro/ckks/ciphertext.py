"""Ciphertext and plaintext containers."""

from __future__ import annotations

from dataclasses import dataclass

from .poly import EVAL, RnsPoly


@dataclass
class Plaintext:
    """An encoded message: one RNS polynomial plus its scale."""

    poly: RnsPoly
    scale: float
    level: int

    @property
    def n(self) -> int:
        return self.poly.n


@dataclass
class Ciphertext:
    """An RLWE ciphertext ``(c0, c1)`` with level and scale bookkeeping.

    Both components live in the eval domain over the level's modulus chain
    ``q_0..q_level``. ``Dec(ct) = c0 + c1 * s ≈ scale * message``.
    """

    c0: RnsPoly
    c1: RnsPoly
    level: int
    scale: float

    def __post_init__(self):
        if self.c0.moduli != self.c1.moduli:
            raise ValueError("ciphertext components disagree on moduli")
        if self.c0.domain != EVAL or self.c1.domain != EVAL:
            raise ValueError("ciphertext components must be in eval domain")
        if len(self.c0.moduli) != self.level + 1:
            raise ValueError(
                f"level {self.level} implies {self.level + 1} primes, "
                f"found {len(self.c0.moduli)}"
            )
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    @property
    def n(self) -> int:
        return self.c0.n

    @property
    def moduli(self):
        return self.c0.moduli

    def copy(self) -> "Ciphertext":
        return Ciphertext(self.c0.copy(), self.c1.copy(), self.level,
                          self.scale)

    def size_bytes(self, *, word_bytes: int = 4) -> int:
        """In-memory footprint at the paper's 32-bit word size."""
        return 2 * (self.level + 1) * self.n * word_bytes
