"""Shared helpers of the key-switch family.

``keyswitch.py`` and ``hoisting.py`` both restrict full-chain key
polynomials to the current level, enumerate the digits present at that
level, and accumulate digit-times-key inner products. These helpers used
to be copy-pasted between the two modules; they live here once, together
with the batched building blocks the fused pipelines share: the per-level
stacked key-row cache and the wide-accumulator inner product that mirrors
the paper's tensor-core MAC kernels (§IV-C).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..analysis.annotations import bounded, returns_view
from ..backend import active_backend
from ..numtheory.barrett import BatchBarrettReducer
from .keys import KeySwitchKey
from .poly import RnsPoly


def full_chain_length(ksk: KeySwitchKey) -> int:
    """Number of ciphertext-chain primes the key covers (max digit index+1)."""
    return max(i for digit in ksk.digits for i in digit) + 1


def level_row_indices(num_level: int, full_len: int,
                      num_total: int) -> List[int]:
    """Row indices restricting a full-chain ``q_0..q_full ++ p_0..p_K``
    polynomial to the current level's primes plus the special primes."""
    num_special = num_total - full_len
    return list(range(num_level)) + list(
        range(full_len, full_len + num_special)
    )


def select_level_rows(key_poly: RnsPoly, num_level: int,
                      full_len: int) -> RnsPoly:
    """Restrict a full-chain key polynomial to level + special rows."""
    return key_poly.take_primes(
        level_row_indices(num_level, full_len, key_poly.num_primes)
    )


def present_digits(digits: Sequence[Sequence[int]],
                   num_level: int) -> Tuple[List[List[int]], List[int]]:
    """``(groups, digit_indices)`` for the digits alive at this level.

    ``groups[g]`` lists the in-level prime indices of the ``g``-th present
    digit; ``digit_indices[g]`` is its original digit number (needed to
    pick the matching evk pair). Digits whose primes are all gone at low
    levels are skipped, exactly as level-aware GPU implementations do.
    """
    groups: List[List[int]] = []
    indices: List[int] = []
    for j, digit in enumerate(digits):
        present = [i for i in digit if i < num_level]
        if present:
            groups.append(present)
            indices.append(j)
    return groups, indices


@returns_view
def stacked_key_rows(ksk: KeySwitchKey, num_level: int, *,
                     t_layout: bool = False
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """``(b_stack, a_stack)``: the key's evk rows restricted to the level,
    stacked per present digit into ``(num_level + K, G, N)`` tensors —
    the operand layout of the batched inner product.

    ``t_layout`` returns the digit-innermost ``(num_level + K, N, G)``
    transpose instead, matching the stacked NTT's working layout so the
    inner product reduces over a contiguous axis.

    The stacks depend only on ``(key, num_level, layout)``, so they are
    built once and cached on the key (read-only views; BSGS transforms and
    bootstrap CoeffToSlot hit the same rotation keys at the same level
    repeatedly).
    """
    cache_key = (num_level, t_layout)
    cached = ksk._row_cache.get(cache_key)
    if cached is not None:
        return cached
    full_len = full_chain_length(ksk)
    _, digit_indices = present_digits(ksk.digits, num_level)
    rows = level_row_indices(
        num_level, full_len, ksk.pairs[0][0].num_primes
    )
    b_stack = np.stack(
        [ksk.pairs[j][0].data[rows] for j in digit_indices], axis=1
    )
    a_stack = np.stack(
        [ksk.pairs[j][1].data[rows] for j in digit_indices], axis=1
    )
    if t_layout:
        b_stack = np.ascontiguousarray(b_stack.transpose(0, 2, 1))
        a_stack = np.ascontiguousarray(a_stack.transpose(0, 2, 1))
    b_stack.setflags(write=False)
    a_stack.setflags(write=False)
    ksk._row_cache[cache_key] = (b_stack, a_stack)
    return b_stack, a_stack


@bounded(assume=True, out_q=1, max_lanes=1 << 20,
         params={"ext": {"bits": 32}, "rows": {"q": 1}})
def wide_dot(ext: np.ndarray, rows: np.ndarray,
             reducer: BatchBarrettReducer, *,
             lane_axis: int = -2) -> np.ndarray:
    """``sum_g ext[..g..] * rows[..g..] mod q`` without per-digit
    reduction — the host mirror of a tensor-core MAC tile.

    Operands are ``(P, ..., G, N)`` tensors (prime axis leading, digit
    axis ``lane_axis``; pass ``lane_axis=-1`` for the digit-innermost
    ``(P, N, G)`` layout the stacked NTT works in). ``rows`` must be
    canonical; ``ext`` may be *lazy* — any representatives ``< 2**32``
    give the same result, so the stacked NTT can skip its final
    canonicalization.

    The split-accumulate kernel lives in the active backend
    (:mod:`repro.backend`): each ``< 2**63`` product splits into 32-bit
    halves which accumulate exactly in uint64 over the digit axis (safe
    for G up to ~2**25), and the partial sums fold with
    ``(hi mod q) * (2**32 mod q) + lo``. The result is canonical and
    bit-identical to the reference ``acc = acc + reduce(ext_g * rows_g)``
    chain on every backend.
    """
    return active_backend().wide_dot(ext, rows, reducer.q_row(),
                                     lane_axis=lane_axis)


@bounded(out_q=1,
         params={"ext_eval": {"bits": 32}, "b_stack": {"q": 1},
                 "a_stack": {"q": 1}})
def stacked_inner_product(ext_eval: np.ndarray, b_stack: np.ndarray,
                          a_stack: np.ndarray,
                          reducer: BatchBarrettReducer, *,
                          lane_axis: int = -2
                          ) -> Tuple[np.ndarray, np.ndarray]:
    """KeySwitch InnerProduct against both evk components in one shape:
    ``(acc0, acc1) = (ext . b, ext . a)`` reduced over the digit axis."""
    return wide_dot(ext_eval, b_stack, reducer, lane_axis=lane_axis), \
        wide_dot(ext_eval, a_stack, reducer, lane_axis=lane_axis)
