"""Functional 32-bit-word RNS-CKKS — the scheme the paper accelerates.

High-level entry point::

    from repro.ckks import CkksContext, ParameterSets
    ctx = CkksContext.create(ParameterSets.toy(), seed=0)
    keys = ctx.keygen()
    ct = ctx.encrypt([1.0, 2.0], keys)
    print(ctx.decrypt_decode_real(ctx.hmult(ct, ct, keys), keys)[:2])
"""

from .ciphertext import Ciphertext, Plaintext
from .compare import approx_max, approx_relu, approx_sign
from .context import CkksContext
from .encoding import Encoder
from .hoisting import hoisted_rotations, hoisted_rotations_looped
from .linear_transform import LinearTransform
from .polyeval import PolynomialEvaluator
from .slots import SlotOps
from .keys import KeyGenerator, KeySet, KeySwitchKey, PublicKey, SecretKey
from .keyswitch import keyswitch, keyswitch_looped
from .noise import NoiseEstimator, NoiseState, measured_noise_bits
from .ops import Evaluator
from .params import CkksParams, ParameterSets
from .poly import COEFF, EVAL, RnsPoly
from .rescale import rescale_poly
from .rns_context import RnsContext, all_cache_stats, get_rns_context
from .sampling import sample_error, sample_ternary, sample_uniform
from .serialize import (
    deserialize_ciphertext,
    deserialize_plaintext,
    serialize_ciphertext,
    serialize_plaintext,
)

__all__ = [
    "COEFF",
    "Ciphertext",
    "CkksContext",
    "CkksParams",
    "EVAL",
    "Encoder",
    "Evaluator",
    "KeyGenerator",
    "KeySet",
    "KeySwitchKey",
    "LinearTransform",
    "NoiseEstimator",
    "NoiseState",
    "PolynomialEvaluator",
    "RnsContext",
    "SlotOps",
    "all_cache_stats",
    "get_rns_context",
    "approx_max",
    "approx_relu",
    "approx_sign",
    "ParameterSets",
    "Plaintext",
    "PublicKey",
    "RnsPoly",
    "SecretKey",
    "deserialize_ciphertext",
    "deserialize_plaintext",
    "hoisted_rotations",
    "hoisted_rotations_looped",
    "keyswitch",
    "keyswitch_looped",
    "measured_noise_bits",
    "rescale_poly",
    "sample_error",
    "sample_ternary",
    "sample_uniform",
    "serialize_ciphertext",
    "serialize_plaintext",
]
