"""Hoisted rotations (Halevi-Shoup hoisting).

BSGS linear transforms — CoeffToSlot, convolutions, matrix-vector
products — rotate the *same* ciphertext by many steps. The expensive part
of each rotation is the key-switch ModUp (basis extension of every
digit); hoisting performs it **once** and shares the extended digits
across all rotations, because the Galois automorphism acts
coefficient-wise and therefore commutes with the (coefficient-wise) basis
extension.

The NTT of the extended digits is shared as well: the automorphism is
applied in the *evaluation* domain, where it is a pure slot permutation
(output slot ``k`` of the negacyclic NTT holds ``x(psi^(2k+1))``, so
``X -> X^t`` maps slot ``k`` to ``((t*(2k+1)) mod 2N) / 2`` — no sign
flips), and that permutation fuses into the inner product's loads: the
kernel streams the digit stack per step anyway, so gathering through the
table is an addressing mode, not an extra pass. Per extra rotation only
the inner product and the ModDown remain, exactly the accounting behind
the workload layer's hoisted-rotation discount. Those per-step parts are batched across all
requested steps too: the inner products reduce against per-step evk row
stacks in one wide-accumulator pass, and every accumulator (both
components of every step) shares one INTT → ModDown → NTT tail. The c0
leg never leaves the evaluation domain at all.

:func:`hoisted_rotations_looped` preserves the per-step pipeline as the
bit-exactness oracle; tests also verify each hoisted rotation decrypts to
the same message as a plain HROTATE.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..analysis.annotations import bounded
from ..trace.recorder import emit as _temit, span as _tspan
from ..ntt.stacked import (
    get_shoup_stack,
    stacked_negacyclic_intt,
    stacked_negacyclic_ntt,
)
from ..numtheory.rns import (
    RNSBasis,
    extend_basis,
    extend_basis_stacked,
    mod_down,
)
from .ciphertext import Ciphertext
from .keys import KeySet
from .ks_common import (
    full_chain_length,
    present_digits,
    select_level_rows,
    stacked_inner_product,
    stacked_key_rows,
)
from .ops import Evaluator
from .poly import COEFF, EVAL, RnsPoly


def _eval_automorphism_tables(steps: Sequence[int], n: int) -> np.ndarray:
    """Stacked eval-domain gather tables for ``X -> X^(5^s)``.

    The negacyclic NTT's output slot ``k`` holds the evaluation at
    ``psi^(2k+1)``, so the automorphism with odd exponent ``t`` permutes
    slots by ``k -> ((t * (2k+1)) mod 2N) >> 1`` — a pure gather with no
    sign flips, bit-exact against ``INTT -> coeff automorphism -> NTT``.
    Returns ``src`` of shape ``(num_steps, n)`` with
    ``out[s, k] = x[src[s, k]]``.
    """
    two_n = 2 * n
    k = np.arange(n)
    src = np.empty((len(steps), n), dtype=np.intp)
    for s_idx, step in enumerate(steps):
        exponent = pow(5, step, two_n)
        src[s_idx] = (exponent * (2 * k + 1)) % two_n >> 1
    return src


@bounded()
def hoisted_rotations(ev: Evaluator, ct: Ciphertext, steps: Sequence[int],
                      keys: KeySet) -> Dict[int, Ciphertext]:
    """Rotate ``ct`` by every step in ``steps``, sharing one ModUp and
    batching the per-step tail across all steps.

    Requires a rotation key for each step. Returns ``{step: rotated}``.
    Bit-identical to :func:`hoisted_rotations_looped`. Step ``0`` is a
    passthrough — the input ciphertext itself — so BSGS callers can hand
    the whole baby-step list over without special-casing the identity.
    """
    steps = list(steps)
    passthrough = 0 in steps
    steps = [s for s in steps if s]
    missing = [s for s in steps if s not in keys.rotation]
    if missing:
        raise KeyError(f"missing rotation keys for steps {missing}")
    if not steps:
        return {0: ct} if passthrough else {}
    num_steps = len(steps)

    level_moduli = ct.moduli
    num_level = len(level_moduli)
    special = tuple(ev.p_moduli)
    target_moduli = level_moduli + special
    target_basis = RNSBasis(target_moduli)
    n = ct.n
    num_target = len(target_moduli)

    stack_level = get_shoup_stack(level_moduli, n)
    stack_target = get_shoup_stack(target_moduli, n)

    with _tspan("hoisted_rotations", level=ct.level):
        # --- the hoisted part: decompose, extend AND transform c1 once -----
        any_key = keys.rotation[steps[0]]
        groups, _ = present_digits(any_key.digits, num_level)
        c1_coeff = stacked_negacyclic_intt(ct.c1.data, stack_level)
        _temit("intt", rows=num_level, reads=(ct,), writes=(c1_coeff,))
        ext = extend_basis_stacked(
            c1_coeff, groups, RNSBasis(level_moduli), target_basis,
        )  # (L+K, G, N)
        num_digits = ext.shape[1]
        _temit("modup", source_primes=max(len(g) for g in groups),
               target_primes=num_target, polys=num_digits,
               reads=(c1_coeff,), writes=(ext,))

        # One stacked NTT over the digits, shared by every step (the
        # automorphism moves to the eval domain below). Lazy output: both
        # the gather and the wide-accumulator inner product accept < 2q
        # representatives, so the kernel skips its canonicalization.
        ext_eval = stacked_negacyclic_ntt(ext, stack_target, lazy=True)
        _temit("ntt", rows=num_target * num_digits, panes=num_digits,
               reads=(ext,), writes=(ext_eval,))

        # --- every step's automorphism as one eval-domain gather -----------
        # The gather is *fused into the inner product's loads*: the kernel
        # already streams the full digit stack per step, and reading it
        # through the permutation table costs index arithmetic, not a
        # separate gmem round trip. The numpy expression below is the
        # functional stand-in for that addressing mode, so no kernel is
        # emitted for it — the inner product event depends directly on the
        # shared digit NTT.
        src = _eval_automorphism_tables(steps, n)
        rot_eval = np.ascontiguousarray(
            ext_eval[:, :, src].transpose(0, 2, 1, 3)
        )  # (L+K, S, G, N)

        # --- inner products against every step's key, one wide reduction ---
        key_stacks = [stacked_key_rows(keys.rotation[s], num_level)
                      for s in steps]
        b_stack = np.stack(
            [ks[0] for ks in key_stacks], axis=1
        )  # (L+K, S, G, N)
        a_stack = np.stack([ks[1] for ks in key_stacks], axis=1)
        acc0, acc1 = stacked_inner_product(
            rot_eval, b_stack, a_stack, target_basis.batch
        )  # each (L+K, S, N)
        _temit("inner_product", primes=num_target, digits=num_digits,
               accumulators=2, steps=num_steps, reads=(ext_eval,),
               writes=(acc0, acc1),
               key_material=tuple(keys.rotation[s] for s in steps))

        # --- batched tail: INTT + ModDown + NTT of every accumulator -------
        acc = np.concatenate([acc0, acc1], axis=1)  # (L+K, 2S, N)
        acc_coeff = stacked_negacyclic_intt(acc, stack_target)
        _temit("intt", rows=2 * num_steps * num_target,
               panes=2 * num_steps, reads=(acc0, acc1), writes=(acc_coeff,))
        lowered = mod_down(
            acc_coeff, RNSBasis(level_moduli), RNSBasis(special)
        )  # (L, 2S, N)
        _temit("moddown", main_primes=num_level,
               special_primes=len(special), polys=2 * num_steps,
               reads=(acc_coeff,), writes=(lowered,))
        parts = stacked_negacyclic_ntt(lowered, stack_level)
        _temit("ntt", rows=2 * num_steps * num_level, panes=2 * num_steps,
               reads=(lowered,), writes=(parts,))

        # --- c0 leg: eval-domain gathers only (no transforms at all) -------
        rot0_eval = ct.c0.data[:, src]  # (L, S, N)
        _temit("automorphism", primes=num_level, polys=num_steps,
               reads=(ct,), writes=(rot0_eval,), args=tuple(steps),
               scale=ct.scale)

        out: Dict[int, Ciphertext] = {}
        for s_idx, step in enumerate(steps):
            part0 = RnsPoly(
                np.ascontiguousarray(parts[:, s_idx]), level_moduli, EVAL
            )
            part1 = RnsPoly(
                np.ascontiguousarray(parts[:, num_steps + s_idx]),
                level_moduli, EVAL,
            )
            rot0_poly = RnsPoly(
                np.ascontiguousarray(rot0_eval[:, s_idx]), level_moduli, EVAL
            )
            out[step] = Ciphertext(
                rot0_poly + part0, part1, ct.level, ct.scale
            )
        _temit("modadd", rows=num_steps * num_level,
               reads=(parts, rot0_eval), writes=tuple(out.values()),
               scale=ct.scale)
    if passthrough:
        out[0] = ct
    return out


def hoisted_rotations_looped(ev: Evaluator, ct: Ciphertext,
                             steps: Sequence[int],
                             keys: KeySet) -> Dict[int, Ciphertext]:
    """The per-step reference pipeline (pre-batching implementation).

    Kept as the bit-exactness oracle for :func:`hoisted_rotations` and as
    the baseline of ``benchmarks/bench_keyswitch.py``. Loop-invariant work
    is hoisted out of the inner loops: the full chain length is computed
    once, and each step's evk row selections once before its digit loop
    (they depend only on the key and the level, not on the digit pass).
    """
    steps = list(steps)
    passthrough = 0 in steps
    steps = [s for s in steps if s]
    missing = [s for s in steps if s not in keys.rotation]
    if missing:
        raise KeyError(f"missing rotation keys for steps {missing}")
    if not steps:
        return {0: ct} if passthrough else {}

    level_moduli = ct.moduli
    num_level = len(level_moduli)
    special = ev.p_moduli
    target_moduli = level_moduli + tuple(special)
    target_basis = RNSBasis(target_moduli)
    n = ct.n
    two_n = 2 * n

    # --- the hoisted part: decompose + extend c1 once -----------------------
    c1_coeff = ct.c1.to_coeff()
    any_key = keys.rotation[steps[0]]
    full_len = full_chain_length(any_key)
    groups, digit_indices = present_digits(any_key.digits, num_level)
    extended_digits: List[RnsPoly] = []
    for present in groups:
        sub = c1_coeff.take_primes(present)
        ext = extend_basis(sub.data, RNSBasis(sub.moduli), target_basis)
        extended_digits.append(RnsPoly(ext, target_moduli, COEFF))

    c0_coeff = ct.c0.to_coeff()
    main = RNSBasis(level_moduli)
    special_basis = RNSBasis(tuple(special))

    out: Dict[int, Ciphertext] = {}
    for step in steps:
        exponent = pow(5, step, two_n)
        ksk = keys.rotation[step]
        # Key-row selections depend only on (key, level): one pass per
        # step, outside the digit loop.
        rows = [
            (select_level_rows(ksk.pairs[j][0], num_level, full_len),
             select_level_rows(ksk.pairs[j][1], num_level, full_len))
            for j in digit_indices
        ]
        acc0 = RnsPoly.zero(target_moduli, n, EVAL)
        acc1 = RnsPoly.zero(target_moduli, n, EVAL)
        for ext_poly, (b_rows, a_rows) in zip(extended_digits, rows):
            # Automorphism commutes with the extension: permute the
            # already-extended digit, then NTT.
            rotated_digit = ext_poly.automorphism(exponent).to_eval()
            acc0 = acc0 + rotated_digit * b_rows
            acc1 = acc1 + rotated_digit * a_rows
        parts = []
        for acc in (acc0, acc1):
            lowered = mod_down(acc.to_coeff().data, main, special_basis)
            parts.append(
                RnsPoly(lowered, level_moduli, COEFF).to_eval()
            )
        rot0 = c0_coeff.automorphism(exponent).to_eval()
        out[step] = Ciphertext(
            rot0 + parts[0], parts[1], ct.level, ct.scale
        )
    if passthrough:
        out[0] = ct
    return out
