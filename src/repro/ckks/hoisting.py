"""Hoisted rotations (Halevi-Shoup hoisting).

BSGS linear transforms — CoeffToSlot, convolutions, matrix-vector
products — rotate the *same* ciphertext by many steps. The expensive part
of each rotation is the key-switch ModUp (basis extension of every
digit); hoisting performs it **once** and shares the extended digits
across all rotations, because the Galois automorphism acts
coefficient-wise and therefore commutes with the (coefficient-wise) basis
extension.

Per extra rotation only the automorphism, the NTTs of the permuted
digits, the inner product and the ModDown remain — the cost ratio the
workload schedules model as ``HOISTED_ROTATION_FACTOR``.

This module implements hoisting *functionally*; tests verify each hoisted
rotation decrypts to the same message as a plain HROTATE.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..numtheory.rns import RNSBasis, extend_basis, mod_down
from .ciphertext import Ciphertext
from .keys import KeySet
from .ops import Evaluator
from .poly import COEFF, EVAL, RnsPoly


def hoisted_rotations(ev: Evaluator, ct: Ciphertext, steps: Sequence[int],
                      keys: KeySet) -> Dict[int, Ciphertext]:
    """Rotate ``ct`` by every step in ``steps``, sharing one ModUp.

    Requires a rotation key for each step. Returns ``{step: rotated}``.
    """
    missing = [s for s in steps if s not in keys.rotation]
    if missing:
        raise KeyError(f"missing rotation keys for steps {missing}")
    if not steps:
        return {}

    level_moduli = ct.moduli
    num_level = len(level_moduli)
    special = ev.p_moduli
    target_moduli = level_moduli + tuple(special)
    target_basis = RNSBasis(target_moduli)
    n = ct.n
    two_n = 2 * n

    # --- the hoisted part: decompose + extend c1 once -----------------------
    c1_coeff = ct.c1.to_coeff()
    any_key = keys.rotation[steps[0]]
    extended_digits: List[RnsPoly] = []
    digit_indices: List[int] = []
    for j, digit in enumerate(any_key.digits):
        present = [i for i in digit if i < num_level]
        if not present:
            continue
        sub = c1_coeff.take_primes(present)
        ext = extend_basis(sub.data, RNSBasis(sub.moduli), target_basis)
        extended_digits.append(RnsPoly(ext, target_moduli, COEFF))
        digit_indices.append(j)

    c0_coeff = ct.c0.to_coeff()
    main = RNSBasis(level_moduli)
    special_basis = RNSBasis(tuple(special))

    out: Dict[int, Ciphertext] = {}
    for step in steps:
        exponent = pow(5, step, two_n)
        ksk = keys.rotation[step]
        acc0 = RnsPoly.zero(target_moduli, n, EVAL)
        acc1 = RnsPoly.zero(target_moduli, n, EVAL)
        for ext_poly, j in zip(extended_digits, digit_indices):
            # Automorphism commutes with the extension: permute the
            # already-extended digit, then NTT.
            rotated_digit = ext_poly.automorphism(exponent).to_eval()
            b_j, a_j = ksk.pairs[j]
            b_rows = _level_rows(b_j, num_level, _full_len(ksk))
            a_rows = _level_rows(a_j, num_level, _full_len(ksk))
            acc0 = acc0 + rotated_digit * b_rows
            acc1 = acc1 + rotated_digit * a_rows
        parts = []
        for acc in (acc0, acc1):
            lowered = mod_down(acc.to_coeff().data, main, special_basis)
            parts.append(
                RnsPoly(lowered, level_moduli, COEFF).to_eval()
            )
        rot0 = c0_coeff.automorphism(exponent).to_eval()
        out[step] = Ciphertext(
            rot0 + parts[0], parts[1], ct.level, ct.scale
        )
    return out


def _full_len(ksk) -> int:
    return max(i for digit in ksk.digits for i in digit) + 1


def _level_rows(key_poly: RnsPoly, num_level: int, full_len: int) -> RnsPoly:
    num_special = key_poly.num_primes - full_len
    indices = list(range(num_level)) + list(
        range(full_len, full_len + num_special)
    )
    return key_poly.take_primes(indices)
