"""Hoisted rotations (Halevi-Shoup hoisting).

BSGS linear transforms — CoeffToSlot, convolutions, matrix-vector
products — rotate the *same* ciphertext by many steps. The expensive part
of each rotation is the key-switch ModUp (basis extension of every
digit); hoisting performs it **once** and shares the extended digits
across all rotations, because the Galois automorphism acts
coefficient-wise and therefore commutes with the (coefficient-wise) basis
extension.

Per extra rotation only the automorphism, the NTTs of the permuted
digits, the inner product and the ModDown remain — and this module
batches *those* across all requested steps too, mirroring how the
batched key-switch fuses the digit loop: every step's automorphism is one
gather from shared index tables, all ``steps * dnum`` permuted digits
ride a single stacked NTT, the inner products reduce against per-step
evk row stacks in one wide-accumulator pass, and every accumulator (both
components of every step) shares one INTT → ModDown → NTT tail.

:func:`hoisted_rotations_looped` preserves the per-step pipeline as the
bit-exactness oracle; tests also verify each hoisted rotation decrypts to
the same message as a plain HROTATE.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..analysis.annotations import bounded
from ..ntt.stacked import (
    get_shoup_stack,
    stacked_negacyclic_intt,
    stacked_negacyclic_ntt,
)
from ..numtheory.rns import (
    RNSBasis,
    extend_basis,
    extend_basis_stacked,
    mod_down,
)
from .ciphertext import Ciphertext
from .keys import KeySet
from .ks_common import (
    full_chain_length,
    present_digits,
    select_level_rows,
    stacked_inner_product,
    stacked_key_rows,
)
from .ops import Evaluator
from .poly import COEFF, EVAL, RnsPoly


def _automorphism_tables(steps: Sequence[int],
                         n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Stacked gather tables for the rotation automorphisms ``X -> X^(5^s)``.

    Returns ``(src, flip)`` of shape ``(num_steps, n)`` such that
    ``out[k] = flip[s, k] ? q - x[src[s, k]] : x[src[s, k]]`` reproduces
    :meth:`RnsPoly.automorphism` for step ``s`` — the scatter of the
    per-step implementation turned into a gather, so one fancy-indexing
    pass permutes every (digit, step) pane at once.
    """
    two_n = 2 * n
    j = np.arange(n)
    src = np.empty((len(steps), n), dtype=np.intp)
    flip = np.empty((len(steps), n), dtype=bool)
    for s_idx, step in enumerate(steps):
        exponent = pow(5, step, two_n)
        targets = (j * exponent) % two_n
        dest = targets % n
        src[s_idx, dest] = j
        flip[s_idx, dest] = targets >= n
    return src, flip


@bounded()
def hoisted_rotations(ev: Evaluator, ct: Ciphertext, steps: Sequence[int],
                      keys: KeySet) -> Dict[int, Ciphertext]:
    """Rotate ``ct`` by every step in ``steps``, sharing one ModUp and
    batching the per-step tail across all steps.

    Requires a rotation key for each step. Returns ``{step: rotated}``.
    Bit-identical to :func:`hoisted_rotations_looped`. Step ``0`` is a
    passthrough — the input ciphertext itself — so BSGS callers can hand
    the whole baby-step list over without special-casing the identity.
    """
    steps = list(steps)
    passthrough = 0 in steps
    steps = [s for s in steps if s]
    missing = [s for s in steps if s not in keys.rotation]
    if missing:
        raise KeyError(f"missing rotation keys for steps {missing}")
    if not steps:
        return {0: ct} if passthrough else {}
    num_steps = len(steps)

    level_moduli = ct.moduli
    num_level = len(level_moduli)
    special = tuple(ev.p_moduli)
    target_moduli = level_moduli + special
    target_basis = RNSBasis(target_moduli)
    n = ct.n
    num_target = len(target_moduli)

    stack_level = get_shoup_stack(level_moduli, n)
    stack_target = get_shoup_stack(target_moduli, n)

    # --- the hoisted part: decompose + extend c1 once -----------------------
    # Canonical residues here: the automorphism's sign flip (q - x) needs
    # reduced values, unlike the keyswitch path which can stay lazy.
    any_key = keys.rotation[steps[0]]
    groups, _ = present_digits(any_key.digits, num_level)
    c1_coeff = stacked_negacyclic_intt(ct.c1.data, stack_level)
    ext = extend_basis_stacked(
        c1_coeff, groups, RNSBasis(level_moduli), target_basis,
    )  # (L+K, G, N)
    num_digits = ext.shape[1]

    # --- every step's automorphism as one gather ---------------------------
    src, flip = _automorphism_tables(steps, n)
    q_col = target_basis.batch.q_col(3)
    ext_neg = np.where(ext == 0, ext, q_col - ext)
    rotated = np.where(
        flip[None, None, :, :], ext_neg[:, :, src], ext[:, :, src]
    )  # (L+K, G, S, N)
    rotated = np.ascontiguousarray(rotated.transpose(0, 2, 1, 3))

    # --- one stacked NTT over all (step, digit) panes ----------------------
    # Lazy output: the wide-accumulator inner product below accepts < 2q
    # representatives, so the kernel skips its canonicalization pass.
    rot_eval = stacked_negacyclic_ntt(
        rotated.reshape(num_target, num_steps * num_digits, n), stack_target,
        lazy=True,
    ).reshape(num_target, num_steps, num_digits, n)

    # --- inner products against every step's key, one wide reduction ------
    key_stacks = [stacked_key_rows(keys.rotation[s], num_level)
                  for s in steps]
    b_stack = np.stack([ks[0] for ks in key_stacks], axis=1)  # (L+K, S, G, N)
    a_stack = np.stack([ks[1] for ks in key_stacks], axis=1)
    acc0, acc1 = stacked_inner_product(
        rot_eval, b_stack, a_stack, target_basis.batch
    )  # each (L+K, S, N)

    # --- batched tail: INTT + ModDown + NTT of every accumulator -----------
    acc = np.concatenate([acc0, acc1], axis=1)  # (L+K, 2S, N)
    acc_coeff = stacked_negacyclic_intt(acc, stack_target)
    lowered = mod_down(
        acc_coeff, RNSBasis(level_moduli), RNSBasis(special)
    )  # (L, 2S, N)
    parts = stacked_negacyclic_ntt(lowered, stack_level)

    # --- c0 leg: all automorphism gathers + one NTT ------------------------
    c0_coeff = stacked_negacyclic_intt(ct.c0.data, stack_level)
    q_col_l = RNSBasis(level_moduli).batch.q_col(2)
    c0_neg = np.where(c0_coeff == 0, c0_coeff, q_col_l - c0_coeff)
    rot0 = np.where(flip[None], c0_neg[:, src], c0_coeff[:, src])
    rot0_eval = stacked_negacyclic_ntt(rot0, stack_level)  # (L, S, N)

    out: Dict[int, Ciphertext] = {}
    for s_idx, step in enumerate(steps):
        part0 = RnsPoly(
            np.ascontiguousarray(parts[:, s_idx]), level_moduli, EVAL
        )
        part1 = RnsPoly(
            np.ascontiguousarray(parts[:, num_steps + s_idx]),
            level_moduli, EVAL,
        )
        rot0_poly = RnsPoly(
            np.ascontiguousarray(rot0_eval[:, s_idx]), level_moduli, EVAL
        )
        out[step] = Ciphertext(
            rot0_poly + part0, part1, ct.level, ct.scale
        )
    if passthrough:
        out[0] = ct
    return out


def hoisted_rotations_looped(ev: Evaluator, ct: Ciphertext,
                             steps: Sequence[int],
                             keys: KeySet) -> Dict[int, Ciphertext]:
    """The per-step reference pipeline (pre-batching implementation).

    Kept as the bit-exactness oracle for :func:`hoisted_rotations` and as
    the baseline of ``benchmarks/bench_keyswitch.py``. Loop-invariant work
    is hoisted out of the inner loops: the full chain length is computed
    once, and each step's evk row selections once before its digit loop
    (they depend only on the key and the level, not on the digit pass).
    """
    steps = list(steps)
    passthrough = 0 in steps
    steps = [s for s in steps if s]
    missing = [s for s in steps if s not in keys.rotation]
    if missing:
        raise KeyError(f"missing rotation keys for steps {missing}")
    if not steps:
        return {0: ct} if passthrough else {}

    level_moduli = ct.moduli
    num_level = len(level_moduli)
    special = ev.p_moduli
    target_moduli = level_moduli + tuple(special)
    target_basis = RNSBasis(target_moduli)
    n = ct.n
    two_n = 2 * n

    # --- the hoisted part: decompose + extend c1 once -----------------------
    c1_coeff = ct.c1.to_coeff()
    any_key = keys.rotation[steps[0]]
    full_len = full_chain_length(any_key)
    groups, digit_indices = present_digits(any_key.digits, num_level)
    extended_digits: List[RnsPoly] = []
    for present in groups:
        sub = c1_coeff.take_primes(present)
        ext = extend_basis(sub.data, RNSBasis(sub.moduli), target_basis)
        extended_digits.append(RnsPoly(ext, target_moduli, COEFF))

    c0_coeff = ct.c0.to_coeff()
    main = RNSBasis(level_moduli)
    special_basis = RNSBasis(tuple(special))

    out: Dict[int, Ciphertext] = {}
    for step in steps:
        exponent = pow(5, step, two_n)
        ksk = keys.rotation[step]
        # Key-row selections depend only on (key, level): one pass per
        # step, outside the digit loop.
        rows = [
            (select_level_rows(ksk.pairs[j][0], num_level, full_len),
             select_level_rows(ksk.pairs[j][1], num_level, full_len))
            for j in digit_indices
        ]
        acc0 = RnsPoly.zero(target_moduli, n, EVAL)
        acc1 = RnsPoly.zero(target_moduli, n, EVAL)
        for ext_poly, (b_rows, a_rows) in zip(extended_digits, rows):
            # Automorphism commutes with the extension: permute the
            # already-extended digit, then NTT.
            rotated_digit = ext_poly.automorphism(exponent).to_eval()
            acc0 = acc0 + rotated_digit * b_rows
            acc1 = acc1 + rotated_digit * a_rows
        parts = []
        for acc in (acc0, acc1):
            lowered = mod_down(acc.to_coeff().data, main, special_basis)
            parts.append(
                RnsPoly(lowered, level_moduli, COEFF).to_eval()
            )
        rot0 = c0_coeff.automorphism(exponent).to_eval()
        out[step] = Ciphertext(
            rot0 + parts[0], parts[1], ct.level, ct.scale
        )
    if passthrough:
        out[0] = ct
    return out
