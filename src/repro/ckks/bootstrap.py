"""Slim CKKS bootstrapping [14], [26] — the Boot workload's core.

Pipeline for a real-valued ciphertext that has exhausted its levels::

    SlotToCoeff -> ModRaise -> CoeffToSlot -> EvalMod

* **SlotToCoeff** moves the message from slots into polynomial
  coefficients (one homomorphic linear transform, BSGS + hoisting via
  :mod:`repro.ckks.linear_transform`).
* **ModRaise** reinterprets the level-0 residues over the full modulus
  chain; the plaintext becomes ``m + q0 * I(X)`` with a small integer
  polynomial ``I``.
* **CoeffToSlot** moves the (noisy) coefficients back into slots (two
  linear transforms plus a conjugation).
* **EvalMod** removes ``q0 * I`` by evaluating
  ``(q0 / 2pi) * sin(2pi x / q0)`` as a Chebyshev polynomial
  (:mod:`repro.ckks.polyeval`).

The linear-transform matrices are derived numerically from the encoder
(they are the canonical-embedding DFT halves), so this module works for
any power-of-two ring degree; tests run it on toy rings, the benchmark
harness prices its operation schedule at N = 2^16.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .ciphertext import Ciphertext
from .context import CkksContext
from .keys import KeySet
from .linear_transform import LinearTransform
from .polyeval import PolynomialEvaluator
from .poly import RnsPoly


@dataclass
class BootstrapConfig:
    """Tunables of the slim bootstrap."""

    #: Chebyshev degree of the sine approximation.
    sine_degree: int = 63
    #: Half-width of the EvalMod input range in q0 units; must exceed the
    #: ModRaise overflow bound ~ (hamming_weight + 1) / 2.
    eval_range: float = 6.5
    #: Use BSGS linear transforms (sqrt-many rotation keys) vs the plain
    #: diagonal method.
    bsgs: bool = True


class Bootstrapper:
    """Bootstraps ciphertexts of one context.

    Needs the rotation keys listed by :meth:`required_rotations` plus the
    conjugation key.
    """

    def __init__(self, ctx: CkksContext, config: BootstrapConfig = None):
        self.ctx = ctx
        self.config = config or BootstrapConfig()
        self.slots = ctx.params.slots
        u0, p1, p2 = _embedding_matrices(ctx)
        self._stc = LinearTransform(ctx, u0, bsgs=self.config.bsgs)
        self._cts1 = LinearTransform(ctx, p1, bsgs=self.config.bsgs)
        self._cts2 = LinearTransform(ctx, p2, bsgs=self.config.bsgs)
        self._polyeval = PolynomialEvaluator(ctx.evaluator)
        self._cheb_coeffs = self._fit_sine()

    def required_rotations(self) -> List[int]:
        """Union of the three transforms' rotation steps."""
        steps = set()
        for lt in (self._stc, self._cts1, self._cts2):
            steps.update(lt.required_rotations())
        return sorted(steps)

    @staticmethod
    def required_rotations_for(params, *, bsgs: bool = True) -> List[int]:
        """Rotation steps needed, without building a context first.

        Conservative: the embedding matrices are dense, so BSGS uses every
        baby step below sqrt(slots) and every giant multiple.
        """
        import math

        s = params.slots
        if not bsgs:
            return list(range(1, s))
        baby = max(1, int(math.isqrt(s)))
        steps = set(range(1, baby))
        steps.update(g * baby for g in range(1, -(-s // baby)))
        return sorted(steps)

    # -- public API ---------------------------------------------------------------

    def bootstrap(self, ct: Ciphertext, keys: KeySet) -> Ciphertext:
        """Refresh a (low-level, real-message) ciphertext to a high level."""
        ev = self.ctx.evaluator
        # 1. SlotToCoeff: message into coefficients.
        ct = self.slot_to_coeff(ct, keys)
        # 2. Down to the base prime, then raise onto the full chain. The
        #    raw residues represent the message at this scale — EvalMod
        #    must measure them in q0 units relative to it.
        ct = ev.level_down(ct, 0)
        raised_scale = ct.scale
        ct = self.mod_raise(ct)
        # 3. CoeffToSlot: noisy coefficients back to slots.
        ct = self.coeff_to_slot(ct, keys)
        # 4. EvalMod: strip the q0*I term.
        return self.eval_mod(ct, keys, raised_scale=raised_scale)

    # -- stages ------------------------------------------------------------------

    def slot_to_coeff(self, ct: Ciphertext, keys: KeySet) -> Ciphertext:
        """Linear transform with U0: new slots = U0 z, whose underlying
        polynomial has the message in its low coefficients."""
        return self._stc.apply(ct, keys)

    def mod_raise(self, ct: Ciphertext) -> Ciphertext:
        """Lift level-0 residues to the full chain (plaintext gains q0*I)."""
        if ct.level != 0:
            raise ValueError("mod_raise expects a level-0 ciphertext")
        ev = self.ctx.evaluator
        q0 = ev.q_moduli[0]
        full = ev.q_moduli
        out = []
        for part in (ct.c0, ct.c1):
            row = part.to_coeff().data[0]
            centered = row.astype(np.int64)
            centered[centered > q0 // 2] -= q0
            out.append(RnsPoly.from_signed(centered, full).to_eval())
        return Ciphertext(
            out[0], out[1], self.ctx.params.max_level, ct.scale
        )

    def coeff_to_slot(self, ct: Ciphertext, keys: KeySet) -> Ciphertext:
        """Slots become the low-half coefficients: P1 z + P2 conj(z)."""
        ev = self.ctx.evaluator
        conj = ev.conjugate(ct, keys)
        part1 = self._cts1.apply(ct, keys)
        part2 = self._cts2.apply(conj, keys)
        return ev.hadd_matched(part1, part2)

    def eval_mod(self, ct: Ciphertext, keys: KeySet, *,
                 raised_scale: float) -> Ciphertext:
        """Evaluate (1/2pi) sin(2pi u) on u = coefficients/q0.

        ``raised_scale`` is the scale the raw residues carried when they
        were mod-raised: the CtS output decodes to ``coeffs/raised_scale``,
        so reading it in q0 units means declaring the scale
        ``ct.scale * q0 / raised_scale``.
        """
        ev = self.ctx.evaluator
        q0 = ev.q_moduli[0]
        ct = Ciphertext(
            ct.c0, ct.c1, ct.level, ct.scale * float(q0) / raised_scale
        )
        # Normalize to the Chebyshev domain x = u / R, choosing the
        # plaintext scale so the rescaled result lands exactly back on
        # Delta (otherwise Chebyshev squaring amplifies the q0-sized
        # scale).
        r = self.config.eval_range
        q_drop = ev.q_moduli[ct.level]
        norm_scale = self.ctx.params.scale * q_drop / ct.scale
        ct_x = ev.rescale(ev.pmult_scalar(ct, 1.0 / r, scale=norm_scale))
        result = self._polyeval.eval_chebyshev(
            ct_x, self._cheb_coeffs, keys
        )
        # Slots now hold ~ m/q0; declare the scale that decodes them back
        # to the original message units.
        return Ciphertext(
            result.c0, result.c1, result.level,
            result.scale * raised_scale / float(q0),
        )

    # -- sine fit -------------------------------------------------------------------

    def _fit_sine(self) -> np.ndarray:
        r = self.config.eval_range

        def f(x):
            return np.sin(2 * np.pi * x * r) / (2 * np.pi)

        return PolynomialEvaluator.chebyshev_fit(
            f, self.config.sine_degree, domain=(-1, 1)
        )


def _embedding_matrices(ctx: CkksContext):
    """Derive U0 (decode low half) and the CoeffToSlot inverses P1/P2
    numerically from the encoder's decode map."""
    n = ctx.params.n
    s = ctx.params.slots
    encoder = ctx.encoder
    decode_matrix = np.empty((s, n), dtype=np.complex128)
    for k in range(n):
        unit = np.zeros(n)
        unit[k] = 1.0
        decode_matrix[:, k] = encoder.decode(unit, scale=1.0)
    u0 = decode_matrix[:, :s]
    u1 = decode_matrix[:, s:]
    # Solve [z; conj(z)] = [[U0, U1]; [conj(U0), conj(U1)]] [m_lo; m_hi]
    # for m_lo: the top half of the inverse gives P1 (acting on z) and P2
    # (acting on conj(z)).
    big = np.block([[u0, u1], [np.conj(u0), np.conj(u1)]])
    inv = np.linalg.inv(big)
    return u0, inv[:s, :s], inv[:s, s:]
