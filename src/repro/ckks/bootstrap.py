"""Slim CKKS bootstrapping [14], [26] — the Boot workload's core.

Pipeline for a real-valued ciphertext that has exhausted its levels::

    SlotToCoeff -> ModRaise -> CoeffToSlot -> EvalMod

* **SlotToCoeff** moves the message from slots into polynomial
  coefficients (one homomorphic linear transform, BSGS + hoisting via
  :mod:`repro.ckks.linear_transform`).
* **ModRaise** reinterprets the level-0 residues over the full modulus
  chain; the plaintext becomes ``m + q0 * I(X)`` with a small integer
  polynomial ``I``.
* **CoeffToSlot** moves the (noisy) coefficients back into slots (two
  linear transforms plus a conjugation).
* **EvalMod** removes ``q0 * I`` by evaluating
  ``(q0 / 2pi) * sin(2pi x / q0)`` as a Chebyshev polynomial
  (:mod:`repro.ckks.polyeval`).

The linear-transform matrices are derived numerically from the encoder
(they are the canonical-embedding DFT halves), so this module works for
any power-of-two ring degree; tests run it on toy rings, the benchmark
harness prices its operation schedule at N = 2^16.

**FFT factorization** (``BootstrapConfig.fft_factored``): the embedding
matrix obeys ``U0[j, k] = zeta^(5^j * k)`` (with ``zeta = exp(i*pi/N)``
and ``U1 = i * U0``), so it Cooley-Tukey-factors into ``log2(s)`` radix-2
butterfly factors, each with at most 3 non-zero generalized diagonals
``{0, h, s-h}``::

    U0 = B_1 @ B_2 @ ... @ B_m @ R          (R = bit-reversal)

SlotToCoeff then applies the ``B`` factors only (coefficients land in
bit-reversed order) and CoeffToSlot applies their scaled adjoints
``B_r^H / (2s)^(1/m)`` followed by ``y + conj(y)`` (``P2 = conj(P1)``
collapses the conjugate leg into one conjugation).  The two bit
reversals cancel through the coefficient-wise ModRaise, so the full
bootstrap needs no permutation at all — O(log s) cheap transforms
instead of one dense one.  The ``fuse`` knob level-collapses ``k``
adjacent factors into one (fewer levels, more diagonals per stage).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import reduce
from typing import List, Tuple

import numpy as np

from ..trace.recorder import emit as _temit, span as _tspan
from ..tuning.knobs import (Boolean, FloatRange, IntRange, KnobSpec,
                            knob_default, register_knob)
from .ciphertext import Ciphertext
from .context import CkksContext
from .keys import KeySet
from .linear_transform import LinearTransform
from .polyeval import PolynomialEvaluator
from .poly import RnsPoly

# -- declared tuning knobs (DESIGN.md §14) ----------------------------------
#
# The bootstrap layer owns the slim-bootstrap tunables.  Their single
# source of truth is the registry: ``BootstrapConfig`` and the
# hand-counted schedule layer (``workloads.bootstrap_workload``) both
# read defaults through :func:`~repro.tuning.knobs.knob_default`, so the
# two can never drift apart again (the ``fuse`` default did once,
# pre-PR-3 — see tests/tuning/test_no_drift.py).

register_knob(KnobSpec(
    name="boot.sine_degree", layer="ckks",
    domain=IntRange(7, 255, grid=(15, 31, 63, 127)), default=63,
    doc="Chebyshev degree of the EvalMod sine approximation.",
    observe=lambda pipe: pipe.boot_config.sine_degree,
))
register_knob(KnobSpec(
    name="boot.eval_range", layer="ckks",
    domain=FloatRange(1.0, 64.0, grid=(4.5, 6.5, 12.5)), default=6.5,
    doc="Half-width of the EvalMod input range in q0 units.",
    observe=lambda pipe: pipe.boot_config.eval_range,
))
register_knob(KnobSpec(
    name="boot.bsgs", layer="ckks",
    domain=Boolean(), default=True,
    doc="BSGS linear transforms (sqrt-many rotation keys) vs plain "
        "diagonal method on the dense path.",
    observe=lambda pipe: pipe.boot_config.bsgs,
))
register_knob(KnobSpec(
    name="boot.fft_factored", layer="ckks",
    domain=Boolean(), default=False,
    doc="Run StC/CtS as O(log s) sparse radix factors instead of one "
        "dense transform each.",
    observe=lambda pipe: pipe.boot_config.fft_factored,
))
register_knob(KnobSpec(
    name="boot.fuse", layer="ckks",
    domain=IntRange(1, 8), default=1,
    doc="Level-collapse this many adjacent FFT radix factors into one "
        "stage (fft_factored only).",
    observe=lambda pipe: pipe.boot_config.fuse,
))


@dataclass
class BootstrapConfig:
    """Tunables of the slim bootstrap.

    Field defaults are *not* literals: each resolves from the declared
    knob registry (``boot.*``), the same source the schedule layer
    reads, so a default changed in one place moves everywhere.
    """

    #: Chebyshev degree of the sine approximation.
    sine_degree: int = field(
        default_factory=lambda: knob_default("boot.sine_degree"))
    #: Half-width of the EvalMod input range in q0 units; must exceed the
    #: ModRaise overflow bound ~ (hamming_weight + 1) / 2.
    eval_range: float = field(
        default_factory=lambda: knob_default("boot.eval_range"))
    #: Use BSGS linear transforms (sqrt-many rotation keys) vs the plain
    #: diagonal method (dense path only).
    bsgs: bool = field(default_factory=lambda: knob_default("boot.bsgs"))
    #: Run SlotToCoeff/CoeffToSlot as O(log s) sparse radix factors
    #: instead of one dense transform each.  Requires the input
    #: ciphertext to carry at least ``stc_levels`` levels.
    fft_factored: bool = field(
        default_factory=lambda: knob_default("boot.fft_factored"))
    #: Level-collapse this many adjacent radix factors into one stage
    #: (fft_factored only): fewer levels consumed, up to ``3**fuse``
    #: diagonals per stage.
    fuse: int = field(default_factory=lambda: knob_default("boot.fuse"))


def special_fft_factors(slots: int) -> List[np.ndarray]:
    """The radix-2 butterfly factors ``[B_1, ..., B_m]`` of the
    slot-embedding DFT: ``U0 = B_1 @ ... @ B_m @ R``.

    Factor ``B_r`` is block-diagonal with ``2**(r-1)`` butterfly blocks of
    size ``L = s / 2**(r-1)``; block entries ``(j, j) = 1``,
    ``(j, j+h) = c_j``, ``(j+h, j) = 1``, ``(j+h, j+h) = -c_j`` with
    ``h = L/2`` and twiddle ``c_j = exp(i*pi*(5^j mod 4L) / 2L)`` — at
    most 3 non-zero generalized diagonals ``{0, h, s-h}`` each.
    """
    if slots & (slots - 1):
        raise ValueError("special FFT factors need power-of-two slots")
    m = slots.bit_length() - 1
    factors = []
    for r in range(1, m + 1):
        length = slots >> (r - 1)
        half = length // 2
        j = np.arange(half)
        exps = np.array([pow(5, int(t), 4 * length) for t in j])
        twiddle = np.exp(1j * np.pi * exps / (2 * length))
        mat = np.zeros((slots, slots), dtype=np.complex128)
        for off in range(0, slots, length):
            rows = off + j
            mat[rows, rows] = 1.0
            mat[rows, rows + half] = twiddle
            mat[rows + half, rows] = 1.0
            mat[rows + half, rows + half] = -twiddle
        factors.append(mat)
    return factors


def _fuse_stages(stages: List[np.ndarray], fuse: int) -> List[np.ndarray]:
    """Collapse ``fuse`` adjacent stage matrices (application order) into
    their products — the level-collapse knob."""
    if fuse < 1:
        raise ValueError(f"fuse must be >= 1, got {fuse}")
    if fuse == 1:
        return stages
    out = []
    for i in range(0, len(stages), fuse):
        grp = stages[i:i + fuse]
        # Applied grp[0] first: the collapsed matrix is grp[-1] @ ... @
        # grp[0].
        out.append(reduce(lambda acc, mat: mat @ acc, grp))
    return out


def factored_stage_matrices(slots: int, fuse: int = 1
                            ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """``(stc_stages, cts_stages)`` in application order.

    SlotToCoeff applies ``B_m, ..., B_1`` (product ``U0 @ R``: the message
    lands in bit-reversed coefficient order); CoeffToSlot applies
    ``B_1^H, ..., B_m^H`` each scaled by ``(2s)^(-1/m)`` (product
    ``R @ P1``); the plain transform's conjugate leg ``P2 = conj(P1)`` is
    recovered as ``y + conj(y)`` after the chain.  The two bit reversals
    cancel through ModRaise, which acts per coefficient.
    """
    base = special_fft_factors(slots)
    m = len(base)
    shrink = (2.0 * slots) ** (-1.0 / m)
    stc = list(reversed(base))
    cts = [b.conj().T * shrink for b in base]
    return _fuse_stages(stc, fuse), _fuse_stages(cts, fuse)


class Bootstrapper:
    """Bootstraps ciphertexts of one context.

    Needs the rotation keys listed by :meth:`required_rotations` plus the
    conjugation key.
    """

    def __init__(self, ctx: CkksContext, config: BootstrapConfig = None):
        self.ctx = ctx
        self.config = config or BootstrapConfig()
        self.slots = ctx.params.slots
        if self.config.fft_factored:
            stc_mats, cts_mats = factored_stage_matrices(
                self.slots, self.config.fuse
            )
            # Sparse radix stages: a handful of diagonals each, so the
            # plain diagonal method beats BSGS (whose giant rotations
            # would outnumber the diagonals).
            self._stc_stages = [
                LinearTransform(ctx, m, bsgs=False) for m in stc_mats
            ]
            self._cts_stages = [
                LinearTransform(ctx, m, bsgs=False) for m in cts_mats
            ]
            self._transforms = self._stc_stages + self._cts_stages
        else:
            u0, p1, p2 = _embedding_matrices(ctx)
            self._stc = LinearTransform(ctx, u0, bsgs=self.config.bsgs)
            self._cts1 = LinearTransform(ctx, p1, bsgs=self.config.bsgs)
            self._cts2 = LinearTransform(ctx, p2, bsgs=self.config.bsgs)
            self._transforms = [self._stc, self._cts1, self._cts2]
        self._polyeval = PolynomialEvaluator(ctx.evaluator)
        self._cheb_coeffs = self._fit_sine()

    @property
    def stc_levels(self) -> int:
        """Levels SlotToCoeff consumes — the minimum level of the input
        ciphertext (one per factored stage; one for the dense path)."""
        return len(self._stc_stages) if self.config.fft_factored else 1

    def required_rotations(self) -> List[int]:
        """Union of every transform's rotation steps — sorted and
        deduplicated, so the key set never generates a step twice."""
        steps = set()
        for lt in self._transforms:
            steps.update(lt.required_rotations())
        return sorted(steps)

    @staticmethod
    def required_rotations_for(params, *, bsgs: bool = True,
                               fft_factored: bool = False,
                               fuse: int = 1) -> List[int]:
        """Rotation steps needed, without building a context first.

        Conservative supersets in both modes: the dense embedding matrices
        use every baby step below sqrt(slots) and every giant multiple;
        a factored stage's diagonals sit inside the sumset of its fused
        factors' butterfly offsets ``{0, h_r, s - h_r}`` (computed
        analytically — no dense factor matrices, so this stays cheap at
        production slot counts like 2^15).
        """
        import math

        s = params.slots
        if fft_factored:
            if fuse < 1:
                raise ValueError(f"fuse must be >= 1, got {fuse}")
            m = s.bit_length() - 1
            halves = [s >> r for r in range(1, m + 1)]
            steps = set()
            # StC fuses reversed factors, CtS forward ones (the adjoint
            # negates offsets, which maps {h, s-h} to itself).
            for order in (halves[::-1], halves):
                for i in range(0, len(order), fuse):
                    offs = {0}
                    for h in order[i:i + fuse]:
                        offs = {(a + d) % s
                                for a in offs for d in (0, h, s - h)}
                    steps.update(offs)
            steps.discard(0)
            return sorted(steps)
        if not bsgs:
            return list(range(1, s))
        baby = max(1, int(math.isqrt(s)))
        steps = set(range(1, baby))
        steps.update(g * baby for g in range(1, -(-s // baby)))
        return sorted(steps)

    def assert_rotations_consistent(self, trace) -> List[int]:
        """Check a recorded run against the declared key requirements.

        Verifies the containment chain the key-generation story relies
        on: every automorphism step *observed* in ``trace`` (conjugation
        aside) must be a step :meth:`required_rotations` declared, and
        every declared step must sit inside the analytic superset of
        :meth:`required_rotations_for` — a trace needing an undeclared
        key means keygen under-provisioned; a declared step outside the
        superset means the static estimate diverged from the built
        transforms. Returns the observed steps, sorted.
        """
        from ..trace.opt.rotation import observed_rotation_steps

        observed = [s for s in observed_rotation_steps(trace) if s != -1]
        declared = set(self.required_rotations())
        missing = sorted(set(observed) - declared)
        if missing:
            raise AssertionError(
                f"trace {trace.label!r} rotates by undeclared steps "
                f"{missing}; required_rotations() is not a superset of "
                "the recorded run"
            )
        superset = set(self.required_rotations_for(
            self.ctx.params, bsgs=self.config.bsgs,
            fft_factored=self.config.fft_factored, fuse=self.config.fuse,
        ))
        stray = sorted(declared - superset)
        if stray:
            raise AssertionError(
                f"required_rotations() declares steps {stray} outside "
                "the analytic superset of required_rotations_for()"
            )
        return sorted(set(observed))

    # -- public API ---------------------------------------------------------------

    def bootstrap(self, ct: Ciphertext, keys: KeySet) -> Ciphertext:
        """Refresh a (low-level, real-message) ciphertext to a high level."""
        ev = self.ctx.evaluator
        # 1. SlotToCoeff: message into coefficients.
        ct = self.slot_to_coeff(ct, keys)
        # 2. Down to the base prime, then raise onto the full chain. The
        #    raw residues represent the message at this scale — EvalMod
        #    must measure them in q0 units relative to it.
        ct = ev.level_down(ct, 0)
        raised_scale = ct.scale
        ct = self.mod_raise(ct)
        # 3. CoeffToSlot: noisy coefficients back to slots.
        ct = self.coeff_to_slot(ct, keys)
        # 4. EvalMod: strip the q0*I term.
        return self.eval_mod(ct, keys, raised_scale=raised_scale)

    # -- stages ------------------------------------------------------------------

    def slot_to_coeff(self, ct: Ciphertext, keys: KeySet) -> Ciphertext:
        """Linear transform with U0: new slots = U0 z, whose underlying
        polynomial has the message in its low coefficients.

        Factored mode chains the radix stages ``B_m, ..., B_1`` — the
        message lands in *bit-reversed* coefficient order, which the
        factored CoeffToSlot undoes (ModRaise in between is
        coefficient-wise, so the permutation rides through it).
        """
        with _tspan("StC", level=ct.level):
            if not self.config.fft_factored:
                return self._stc.apply(ct, keys)
            if ct.level < len(self._stc_stages):
                raise ValueError(
                    f"factored SlotToCoeff needs level >= "
                    f"{len(self._stc_stages)}, got {ct.level}"
                )
            for stage in self._stc_stages:
                ct = stage.apply(ct, keys)
            return ct

    def mod_raise(self, ct: Ciphertext) -> Ciphertext:
        """Lift level-0 residues to the full chain (plaintext gains q0*I)."""
        if ct.level != 0:
            raise ValueError("mod_raise expects a level-0 ciphertext")
        ev = self.ctx.evaluator
        q0 = ev.q_moduli[0]
        full = ev.q_moduli
        with _tspan("ModRaise", level=self.ctx.params.max_level):
            out = []
            for part in (ct.c0, ct.c1):
                row = part.to_coeff().data[0]
                centered = row.astype(np.int64)
                centered[centered > q0 // 2] -= q0
                out.append(RnsPoly.from_signed(centered, full).to_eval())
            raised = Ciphertext(
                out[0], out[1], self.ctx.params.max_level, ct.scale
            )
            # Priced like the hand-counted schedules do: one element-wise
            # pass writing both raised polynomials over the full chain.
            _temit("modadd", rows=2 * len(full), reads=(ct,),
                   writes=(raised,), scale=raised.scale)
        return raised

    def coeff_to_slot(self, ct: Ciphertext, keys: KeySet) -> Ciphertext:
        """Slots become the low-half coefficients: P1 z + P2 conj(z).

        Factored mode chains the adjoint stages (product ``R @ P1``) once
        and recovers the conjugate leg as ``y + conj(y)`` — since
        ``P2 = conj(P1)``, that equals ``R (P1 z + P2 conj(z))``, and the
        bit reversal cancels the one SlotToCoeff introduced.
        """
        ev = self.ctx.evaluator
        with _tspan("CtS", level=ct.level):
            if not self.config.fft_factored:
                conj = ev.conjugate(ct, keys)
                part1 = self._cts1.apply(ct, keys)
                part2 = self._cts2.apply(conj, keys)
                return ev.hadd_matched(part1, part2)
            for stage in self._cts_stages:
                ct = stage.apply(ct, keys)
            return ev.hadd_matched(ct, ev.conjugate(ct, keys))

    def eval_mod(self, ct: Ciphertext, keys: KeySet, *,
                 raised_scale: float) -> Ciphertext:
        """Evaluate (1/2pi) sin(2pi u) on u = coefficients/q0.

        ``raised_scale`` is the scale the raw residues carried when they
        were mod-raised: the CtS output decodes to ``coeffs/raised_scale``,
        so reading it in q0 units means declaring the scale
        ``ct.scale * q0 / raised_scale``.
        """
        ev = self.ctx.evaluator
        q0 = ev.q_moduli[0]
        with _tspan("EvalMod", level=ct.level):
            ct = Ciphertext(
                ct.c0, ct.c1, ct.level, ct.scale * float(q0) / raised_scale
            )
            # Normalize to the Chebyshev domain x = u / R, choosing the
            # plaintext scale so the rescaled result lands exactly back on
            # Delta (otherwise Chebyshev squaring amplifies the q0-sized
            # scale).
            r = self.config.eval_range
            q_drop = ev.q_moduli[ct.level]
            norm_scale = self.ctx.params.scale * q_drop / ct.scale
            ct_x = ev.rescale(
                ev.pmult_scalar(ct, 1.0 / r, scale=norm_scale)
            )
            result = self._polyeval.eval_chebyshev(
                ct_x, self._cheb_coeffs, keys
            )
            # Slots now hold ~ m/q0; declare the scale that decodes them
            # back to the original message units.
            return Ciphertext(
                result.c0, result.c1, result.level,
                result.scale * raised_scale / float(q0),
            )

    # -- sine fit -------------------------------------------------------------------

    def _fit_sine(self) -> np.ndarray:
        r = self.config.eval_range

        def f(x):
            return np.sin(2 * np.pi * x * r) / (2 * np.pi)

        return PolynomialEvaluator.chebyshev_fit(
            f, self.config.sine_degree, domain=(-1, 1)
        )


def _embedding_matrices(ctx: CkksContext):
    """Derive U0 (decode low half) and the CoeffToSlot inverses P1/P2
    numerically from the encoder's decode map."""
    n = ctx.params.n
    s = ctx.params.slots
    encoder = ctx.encoder
    decode_matrix = np.empty((s, n), dtype=np.complex128)
    for k in range(n):
        unit = np.zeros(n)
        unit[k] = 1.0
        decode_matrix[:, k] = encoder.decode(unit, scale=1.0)
    u0 = decode_matrix[:, :s]
    u1 = decode_matrix[:, s:]
    # Solve [z; conj(z)] = [[U0, U1]; [conj(U0), conj(U1)]] [m_lo; m_hi]
    # for m_lo: the top half of the inverse gives P1 (acting on z) and P2
    # (acting on conj(z)).
    big = np.block([[u0, u1], [np.conj(u0), np.conj(u1)]])
    inv = np.linalg.inv(big)
    return u0, inv[:s, :s], inv[:s, s:]
