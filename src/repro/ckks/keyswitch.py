"""Hybrid key-switching: ModUp, InnerProduct, ModDown.

This is the paper's costliest homomorphic primitive — the kernel sequence
whose utilization Tables III and IX profile (NTT, ModUp, INTT, ModDown,
InProd). The functional pipeline here mirrors those exact stages:

1. INTT the input polynomial to the coefficient domain;
2. **ModUp**: per digit, fast-basis-extend the digit's residues to the full
   ``Q_l * P`` basis;
3. NTT the extended digits;
4. **InnerProduct**: accumulate ``digit * evk_j`` over digits (eval domain);
5. INTT the accumulators;
6. **ModDown**: divide by ``P`` with rounding, back to ``Q_l``;
7. NTT the results back to the eval domain.

Every stage runs through the batched RNS engine: the (I)NTTs transform
the whole ``(num_primes, N)`` matrix in one vectorized pass (RnsPoly's
domain conversions), and ModUp/ModDown vectorize across all target
primes at once (:mod:`repro.numtheory.rns`) — only the digit loop, whose
trip count is ``dnum``, remains Python.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..numtheory.rns import RNSBasis, extend_basis, mod_down, mod_down_exact_t
from .keys import KeySwitchKey
from .poly import COEFF, EVAL, RnsPoly


def keyswitch(d: RnsPoly, ksk: KeySwitchKey, special_moduli: Tuple[int, ...],
              *, plain_modulus: int = None) -> Tuple[RnsPoly, RnsPoly]:
    """Switch the polynomial ``d`` (eval domain, level basis) to the key
    encrypted in ``ksk``, returning the eval-domain pair ``(ks0, ks1)``
    with ``ks0 + ks1*s ≈ d*s'``.

    ``special_moduli`` are the K special primes; ``ksk`` rows cover the
    full chain ``q_0..q_L ++ p_0..p_(K-1)`` while ``d`` covers only the
    current level's primes — lower levels simply skip the absent digit
    primes, exactly as level-aware GPU implementations do.

    ``plain_modulus``: when set (BGV/BFV), ModDown preserves residues mod
    ``t`` (Gentry-Halevi-Smart rounding) instead of plain flooring.
    """
    if d.domain != EVAL:
        raise ValueError("keyswitch input must be in eval domain")
    level_moduli = d.moduli
    num_level = len(level_moduli)
    target_moduli = level_moduli + tuple(special_moduli)
    target_basis = RNSBasis(target_moduli)
    n = d.n

    d_coeff = d.to_coeff()  # stage 1: INTT

    acc0 = RnsPoly.zero(target_moduli, n, EVAL)
    acc1 = RnsPoly.zero(target_moduli, n, EVAL)
    full_len = _full_chain_length(ksk)
    for j, digit in enumerate(ksk.digits):
        present = [i for i in digit if i < num_level]
        if not present:
            continue
        sub = d_coeff.take_primes(present)
        extended = extend_basis(          # stage 2: ModUp
            sub.data, RNSBasis(sub.moduli), target_basis
        )
        ext_poly = RnsPoly(extended, target_moduli, COEFF).to_eval()  # 3: NTT
        b_j, a_j = ksk.pairs[j]
        b_rows = _select_level_rows(b_j, num_level, full_len)
        a_rows = _select_level_rows(a_j, num_level, full_len)
        acc0 = acc0 + ext_poly * b_rows   # stage 4: InnerProduct
        acc1 = acc1 + ext_poly * a_rows

    main = RNSBasis(level_moduli)
    special = RNSBasis(tuple(special_moduli))
    out = []
    for acc in (acc0, acc1):
        coeff = acc.to_coeff()            # stage 5: INTT
        if plain_modulus is None:
            lowered = mod_down(coeff.data, main, special)  # 6: ModDown
        else:
            lowered = mod_down_exact_t(
                coeff.data, main, special, plain_modulus
            )
        out.append(RnsPoly(lowered, level_moduli, COEFF).to_eval())  # 7: NTT
    return out[0], out[1]


def _full_chain_length(ksk: KeySwitchKey) -> int:
    """Number of ciphertext-chain primes the key covers (max digit index+1)."""
    return max(i for digit in ksk.digits for i in digit) + 1


def _select_level_rows(key_poly: RnsPoly, num_level: int,
                       full_len: int) -> RnsPoly:
    """Restrict a full-chain key polynomial to level + special rows."""
    num_special = key_poly.num_primes - full_len
    indices: List[int] = list(range(num_level)) + list(
        range(full_len, full_len + num_special)
    )
    return key_poly.take_primes(indices)
