"""Hybrid key-switching: ModUp, InnerProduct, ModDown.

This is the paper's costliest homomorphic primitive — the kernel sequence
whose utilization Tables III and IX profile (NTT, ModUp, INTT, ModDown,
InProd). The functional pipeline here mirrors those exact stages:

1. INTT the input polynomial to the coefficient domain;
2. **ModUp**: fast-basis-extend every digit's residues to the full
   ``Q_l * P`` basis;
3. NTT the extended digits;
4. **InnerProduct**: accumulate ``digit * evk_j`` over digits (eval domain);
5. INTT the accumulators;
6. **ModDown**: divide by ``P`` with rounding, back to ``Q_l``;
7. NTT the results back to the eval domain.

PR 1 vectorized each stage *within* one polynomial (across primes); this
module also fuses the ``dnum`` digit loop — the ciphertext-level
parallelism WarpDrive's PE kernels exploit (§IV-C):

* ModUp emits the whole ``(L+K, dnum, N)`` digit tensor in one pass
  (:func:`~repro.numtheory.rns.extend_basis_stacked`), lazily when digits
  are single primes;
* one stacked Shoup-kernel NTT transforms all ``dnum * (L+K)`` rows
  (:mod:`repro.ntt.stacked`);
* the InnerProduct is a single einsum-style wide-accumulator reduction
  against the stacked evk rows (:func:`~.ks_common.stacked_inner_product`)
  — no per-digit ``acc = acc + ext * rows`` temporaries;
* both accumulators ride one batched INTT → ModDown → NTT tail.

:func:`keyswitch_looped` preserves the per-digit pipeline as the
bit-exactness oracle; the batched path returns identical polynomials
(property-tested across levels, dnum values and both ModDown branches).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..analysis.annotations import bounded
from ..trace.recorder import emit as _temit, span as _tspan
from ..ntt.stacked import (
    get_shoup_stack,
    stacked_negacyclic_intt,
    stacked_negacyclic_ntt,
)
from ..numtheory.rns import (
    RNSBasis,
    extend_basis,
    extend_basis_stacked,
    mod_down,
    mod_down_exact_t,
)
from .keys import KeySwitchKey
from .ks_common import (
    full_chain_length,
    present_digits,
    select_level_rows,
    stacked_inner_product,
    stacked_key_rows,
)
from .poly import COEFF, EVAL, RnsPoly


@bounded()
def keyswitch(d: RnsPoly, ksk: KeySwitchKey, special_moduli: Tuple[int, ...],
              *, plain_modulus: int = None,
              pool=None) -> Tuple[RnsPoly, RnsPoly]:
    """Switch the polynomial ``d`` (eval domain, level basis) to the key
    encrypted in ``ksk``, returning the eval-domain pair ``(ks0, ks1)``
    with ``ks0 + ks1*s ≈ d*s'``.

    ``special_moduli`` are the K special primes; ``ksk`` rows cover the
    full chain ``q_0..q_L ++ p_0..p_(K-1)`` while ``d`` covers only the
    current level's primes — lower levels simply skip the absent digit
    primes, exactly as level-aware GPU implementations do.

    ``plain_modulus``: when set (BGV/BFV), ModDown preserves residues mod
    ``t`` (Gentry-Halevi-Smart rounding) instead of plain flooring.

    ``pool``: optional :class:`~repro.core.memory_pool.MemoryPool`; when
    given, every stage buffer of the batched pipeline is accounted against
    it (reset first), so tests can assert the working set stays within the
    paper's ``S_max`` budget. The transient MAC product tensor of the
    inner product is not charged — on the GPU it lives in tensor-core
    accumulators, never in pool memory.

    Bit-identical to :func:`keyswitch_looped` (the per-digit reference).
    """
    if d.domain != EVAL:
        raise ValueError("keyswitch input must be in eval domain")
    level_moduli = d.moduli
    num_level = len(level_moduli)
    target_moduli = level_moduli + tuple(special_moduli)
    target_basis = RNSBasis(target_moduli)
    n = d.n

    groups, _ = present_digits(ksk.digits, num_level)
    if not groups:  # no digit survives at this level: result is zero
        zero = RnsPoly.zero(level_moduli, n, EVAL)
        return zero, zero.copy()

    stack_level = get_shoup_stack(level_moduli, n)
    stack_target = get_shoup_stack(target_moduli, n)
    if pool is not None:
        pool.reset()

    num_target = len(target_moduli)
    num_digits = len(groups)
    with _tspan("keyswitch", level=num_level - 1):
        d_coeff = stacked_negacyclic_intt(d.data, stack_level)  # 1: INTT
        _temit("intt", rows=num_level, reads=(d,), writes=(d_coeff,))

        # stage 2: ModUp — the whole (L+K, dnum', N) digit tensor in one
        # pass. Single-prime digits (alpha == 1, the paper's dnum = L+1
        # sets) stay lazy: the stacked NTT reduces them for free in its
        # pre-twist.
        ext = extend_basis_stacked(
            d_coeff, groups, RNSBasis(level_moduli), target_basis, lazy=True,
        )
        _temit("modup", source_primes=max(len(g) for g in groups),
               target_primes=num_target, polys=num_digits,
               reads=(d_coeff,), writes=(ext,))
        if pool is not None:
            pool.allocate(ext.nbytes, "modup_digits")

        # stage 3: NTT — all dnum'*(L+K) rows in one stacked pass. The
        # output stays *lazy* (< 2q) and in the kernel's digit-innermost
        # (L+K, N, G) layout: the wide-accumulator inner product tolerates
        # 32-bit representatives and reduces over the contiguous digit
        # axis, so both the canonicalization and the transpose back are
        # skipped.
        ext_eval = stacked_negacyclic_ntt(
            ext, stack_target, lazy=True, t_out=True
        )
        _temit("ntt", rows=num_digits * num_target, panes=num_digits,
               reads=(ext,), writes=(ext_eval,))
        if pool is not None:
            pool.allocate(ext_eval.nbytes, "ntt_digits")

        # stage 4: InnerProduct — one wide-accumulator reduction over the
        # digit axis against the per-level evk row stacks (cached on key).
        b_stack, a_stack = stacked_key_rows(ksk, num_level, t_layout=True)
        acc = np.stack(
            stacked_inner_product(
                ext_eval, b_stack, a_stack, target_basis.batch, lane_axis=-1
            ),
            axis=1,
        )
        _temit("inner_product", primes=num_target, digits=num_digits,
               accumulators=2, reads=(ext_eval,), writes=(acc,),
               key_material=(ksk,))
        if pool is not None:
            pool.allocate(acc.nbytes, "inner_product")

        # stages 5-7: both accumulators share one INTT, ModDown and NTT.
        # The PE plan keeps these per-accumulator (Table IX kernels 5-10),
        # so the events carry split=2.
        acc_coeff = stacked_negacyclic_intt(acc, stack_target)
        _temit("intt", rows=2 * num_target, panes=2, split=2,
               reads=(acc,), writes=(acc_coeff,))
        main = RNSBasis(level_moduli)
        special = RNSBasis(tuple(special_moduli))
        if plain_modulus is None:
            lowered = mod_down(acc_coeff, main, special)
        else:
            lowered = mod_down_exact_t(
                acc_coeff, main, special, plain_modulus
            )
        _temit("moddown", main_primes=num_level,
               special_primes=len(special_moduli), polys=2, split=2,
               reads=(acc_coeff,), writes=(lowered,))
        if pool is not None:
            pool.allocate(lowered.nbytes, "mod_down")

        out = stacked_negacyclic_ntt(lowered, stack_level)
        if pool is not None:
            pool.allocate(out.nbytes, "keyswitch_out")
        res0 = RnsPoly(np.ascontiguousarray(out[:, 0]), level_moduli, EVAL)
        res1 = RnsPoly(np.ascontiguousarray(out[:, 1]), level_moduli, EVAL)
        _temit("ntt", rows=2 * num_level, panes=2, split=2,
               reads=(lowered,), writes=(out, res0, res1))
        return res0, res1


def keyswitch_looped(d: RnsPoly, ksk: KeySwitchKey,
                     special_moduli: Tuple[int, ...],
                     *, plain_modulus: int = None
                     ) -> Tuple[RnsPoly, RnsPoly]:
    """The per-digit reference pipeline (pre-batching implementation).

    Runs ModUp, NTT and the inner-product accumulation one digit at a
    time. Kept verbatim as the bit-exactness oracle for :func:`keyswitch`
    and as the baseline of ``benchmarks/bench_keyswitch.py``.
    """
    if d.domain != EVAL:
        raise ValueError("keyswitch input must be in eval domain")
    level_moduli = d.moduli
    num_level = len(level_moduli)
    target_moduli = level_moduli + tuple(special_moduli)
    target_basis = RNSBasis(target_moduli)
    n = d.n

    d_coeff = d.to_coeff()  # stage 1: INTT

    acc0 = RnsPoly.zero(target_moduli, n, EVAL)
    acc1 = RnsPoly.zero(target_moduli, n, EVAL)
    full_len = full_chain_length(ksk)
    for j, digit in enumerate(ksk.digits):
        present = [i for i in digit if i < num_level]
        if not present:
            continue
        sub = d_coeff.take_primes(present)
        extended = extend_basis(          # stage 2: ModUp
            sub.data, RNSBasis(sub.moduli), target_basis
        )
        ext_poly = RnsPoly(extended, target_moduli, COEFF).to_eval()  # 3: NTT
        b_j, a_j = ksk.pairs[j]
        b_rows = select_level_rows(b_j, num_level, full_len)
        a_rows = select_level_rows(a_j, num_level, full_len)
        acc0 = acc0 + ext_poly * b_rows   # stage 4: InnerProduct
        acc1 = acc1 + ext_poly * a_rows

    main = RNSBasis(level_moduli)
    special = RNSBasis(tuple(special_moduli))
    out = []
    for acc in (acc0, acc1):
        coeff = acc.to_coeff()            # stage 5: INTT
        if plain_modulus is None:
            lowered = mod_down(coeff.data, main, special)  # 6: ModDown
        else:
            lowered = mod_down_exact_t(
                coeff.data, main, special, plain_modulus
            )
        out.append(RnsPoly(lowered, level_moduli, COEFF).to_eval())  # 7: NTT
    return out[0], out[1]
