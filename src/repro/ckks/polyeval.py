"""Homomorphic polynomial evaluation (power and Chebyshev bases).

Polynomial approximation is how CKKS computes every non-linearity: the
bootstrap's sine, HELR's sigmoid, ResNet's minimax ReLU. This module
provides a reusable evaluator:

* **Chebyshev basis** — numerically stable on [-1, 1]; terms built with
  the product recurrence ``T_(m+n) = 2 T_m T_n - T_(|m-n|)`` so the
  multiplicative depth is ``ceil(log2(degree))``;
* **power basis** — ``x^k`` by square-and-multiply, same depth bound;
* automatic level alignment and scale matching throughout (the fiddly
  part of CKKS polynomial evaluation).

All methods consume ``keys`` for relinearization; inputs are assumed to
lie in the basis' natural domain ([-1, 1] for Chebyshev).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from .ciphertext import Ciphertext
from .keys import KeySet
from .ops import Evaluator

#: Coefficients below this threshold are dropped (they are beneath CKKS
#: noise anyway and each one costs a PMULT).
COEFF_EPSILON = 1e-13


class PolynomialEvaluator:
    """Evaluates polynomials on ciphertexts with managed scales/levels."""

    def __init__(self, evaluator: Evaluator):
        self.ev = evaluator

    # -- Chebyshev basis ------------------------------------------------------------

    def eval_chebyshev(self, ct_x: Ciphertext, coeffs: Sequence[float],
                       keys: KeySet) -> Ciphertext:
        """``sum_i coeffs[i] * T_i(x)`` for x in [-1, 1]."""
        coeffs = np.asarray(coeffs, dtype=np.float64)
        if len(coeffs) == 0:
            raise ValueError("empty coefficient vector")
        memo: Dict[int, Ciphertext] = {1: ct_x}
        acc = None
        for i, c in enumerate(coeffs):
            if i == 0 or abs(c) < COEFF_EPSILON:
                continue
            term = self.ev.pmult_scalar(
                self._cheb(i, memo, keys), float(c)
            )
            acc = term if acc is None else self.ev.hadd_matched(acc, term)
        if acc is None:
            # A constant polynomial.
            return self.ev.add_scalar(
                self.ev.pmult_scalar(ct_x, 0.0), float(coeffs[0])
            )
        acc = self.ev.rescale(acc)
        if abs(coeffs[0]) >= COEFF_EPSILON:
            acc = self.ev.add_scalar(acc, float(coeffs[0]))
        return acc

    def _cheb(self, i: int, memo: Dict[int, Ciphertext],
              keys: KeySet) -> Ciphertext:
        if i in memo:
            return memo[i]
        m = i // 2
        n = i - m
        prod = self.ev.hmult(self._cheb(m, memo, keys),
                             self._cheb(n, memo, keys), keys)
        doubled = self.ev.pmult_scalar(prod, 2.0, scale=1.0)
        d = abs(m - n)
        if d == 0:
            term = self.ev.add_scalar(doubled, -1.0)
        else:
            term = self.ev.hsub_matched(doubled, self._cheb(d, memo, keys))
        memo[i] = term
        return term

    # -- power basis -----------------------------------------------------------------

    def eval_power(self, ct_x: Ciphertext, coeffs: Sequence[float],
                   keys: KeySet) -> Ciphertext:
        """``sum_i coeffs[i] * x^i`` (square-and-multiply powers)."""
        coeffs = np.asarray(coeffs, dtype=np.float64)
        if len(coeffs) == 0:
            raise ValueError("empty coefficient vector")
        memo: Dict[int, Ciphertext] = {1: ct_x}
        acc = None
        for i, c in enumerate(coeffs):
            if i == 0 or abs(c) < COEFF_EPSILON:
                continue
            term = self.ev.pmult_scalar(
                self._power(i, memo, keys), float(c)
            )
            acc = term if acc is None else self.ev.hadd_matched(acc, term)
        if acc is None:
            return self.ev.add_scalar(
                self.ev.pmult_scalar(ct_x, 0.0), float(coeffs[0])
            )
        acc = self.ev.rescale(acc)
        if abs(coeffs[0]) >= COEFF_EPSILON:
            acc = self.ev.add_scalar(acc, float(coeffs[0]))
        return acc

    def _power(self, i: int, memo: Dict[int, Ciphertext],
               keys: KeySet) -> Ciphertext:
        if i in memo:
            return memo[i]
        m = i // 2
        n = i - m
        memo[i] = self.ev.hmult(self._power(m, memo, keys),
                                self._power(n, memo, keys), keys)
        return memo[i]

    # -- convenience fits ---------------------------------------------------------------

    @staticmethod
    def chebyshev_fit(func, degree: int, *,
                      domain=(-1.0, 1.0)) -> np.ndarray:
        """Chebyshev interpolation coefficients of ``func`` on ``domain``
        (callers rescale inputs into [-1, 1] themselves)."""
        from numpy.polynomial import chebyshev as _cheb

        lo, hi = domain

        def g(x):
            return func((x + 1) / 2 * (hi - lo) + lo)

        return _cheb.Chebyshev.interpolate(g, degree, domain=[-1, 1]).coef
