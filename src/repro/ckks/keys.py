"""Key generation: secret/public keys and hybrid key-switching keys.

Key-switching follows the hybrid (gadget) scheme of Han-Ki [26] that the
paper implements: the ciphertext primes are partitioned into ``dnum``
digits; the switching key for a source secret ``s'`` holds, per digit
``j``, an RLWE encryption under ``s`` of ``P * T_j * s'`` over the extended
basis ``Q*P``, where ``T_j`` is the CRT basis element of digit ``j`` and
``P`` the special-prime product.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..numtheory import modinv
from ..numtheory.rns import RNSBasis, digit_partition
from .params import CkksParams
from .poly import EVAL, RnsPoly
from .sampling import sample_error, sample_ternary, sample_uniform


@dataclass
class SecretKey:
    """Ternary secret ``s``, stored in eval domain over the full Q*P basis."""

    poly: RnsPoly
    #: The raw ternary coefficients (needed to derive automorphism keys).
    coeffs: np.ndarray


@dataclass
class PublicKey:
    """Encryption key ``(b, a) = (-a*s + e, a)`` over the ciphertext basis."""

    b: RnsPoly
    a: RnsPoly


@dataclass
class KeySwitchKey:
    """Hybrid switching key: one RLWE pair per digit over the Q*P basis."""

    pairs: List[Tuple[RnsPoly, RnsPoly]]  # [(b_j, a_j)]
    digits: List[List[int]]
    #: Per-level cache of the stacked (b, a) evk row tensors the batched
    #: key-switch consumes (built lazily by ``ks_common.stacked_key_rows``).
    _row_cache: Dict[int, tuple] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def dnum(self) -> int:
        return len(self.pairs)


@dataclass
class KeySet:
    """Everything a computation needs: public, relinearization and rotation
    keys (the latter generated on demand)."""

    secret: SecretKey
    public: PublicKey
    relin: KeySwitchKey
    rotation: Dict[int, KeySwitchKey] = field(default_factory=dict)
    conjugation: KeySwitchKey = None


class KeyGenerator:
    """Generates all key material for one parameter set."""

    def __init__(self, params: CkksParams, rng: np.random.Generator = None,
                 *, error_scale: int = 1):
        """``error_scale`` multiplies every key-material error polynomial;
        BGV passes its plaintext modulus ``t`` here so key-switching noise
        stays ≡ 0 (mod t)."""
        self.params = params
        self.rng = rng if rng is not None else np.random.default_rng()
        self.error_scale = error_scale
        chain = params.chain()
        self.q_moduli = tuple(chain.moduli)
        self.p_moduli = tuple(chain.special_primes)
        self.qp_moduli = self.q_moduli + self.p_moduli
        self.p_product = chain.p_product()
        self._q_basis = RNSBasis(self.q_moduli)

    # -- top level ---------------------------------------------------------------

    def generate(self, *, rotations: List[int] = None,
                 conjugation: bool = False) -> KeySet:
        """Generate a full key set; ``rotations`` lists slot offsets to
        pre-generate HROTATE keys for.

        Duplicate and zero steps are skipped — callers merging rotation
        demands from several transforms (e.g. the bootstrap stages) can
        pass the raw concatenation without paying for a key twice.
        """
        secret = self.generate_secret()
        keys = KeySet(
            secret=secret,
            public=self.generate_public(secret),
            relin=self.generate_relin(secret),
        )
        for step in rotations or []:
            if step and step not in keys.rotation:
                keys.rotation[step] = self.generate_rotation(secret, step)
        if conjugation:
            keys.conjugation = self.generate_conjugation(secret)
        return keys

    # -- individual keys -----------------------------------------------------------

    def generate_secret(self) -> SecretKey:
        coeffs = sample_ternary(
            self.params.n, self.rng,
            hamming_weight=self.params.secret_hamming_weight,
        )
        poly = RnsPoly.from_signed(coeffs, self.qp_moduli).to_eval()
        return SecretKey(poly=poly, coeffs=coeffs)

    def generate_public(self, secret: SecretKey) -> PublicKey:
        """Fresh RLWE sample under ``s`` over the ciphertext basis Q."""
        basis = self._q_basis
        a = RnsPoly(
            sample_uniform(basis, self.params.n, self.rng),
            self.q_moduli, EVAL,
        )
        e = RnsPoly.from_signed(
            sample_error(self.params.n, self.rng, std=self.params.error_std)
            * self.error_scale,
            self.q_moduli,
        ).to_eval()
        s_q = secret.poly.take_primes(range(len(self.q_moduli)))
        b = e - a * s_q
        return PublicKey(b=b, a=a)

    def generate_relin(self, secret: SecretKey) -> KeySwitchKey:
        """Switching key for ``s^2`` (HMULT relinearization)."""
        s_sq = secret.poly * secret.poly
        return self._switching_key(secret, s_sq)

    def generate_rotation(self, secret: SecretKey, step: int) -> KeySwitchKey:
        """Switching key for the slot-rotation automorphism ``5^step``."""
        exponent = pow(5, step, 2 * self.params.n)
        return self.generate_galois(secret, exponent)

    def generate_conjugation(self, secret: SecretKey) -> KeySwitchKey:
        return self.generate_galois(secret, 2 * self.params.n - 1)

    def generate_galois(self, secret: SecretKey,
                        exponent: int) -> KeySwitchKey:
        """Switching key for an arbitrary Galois automorphism exponent."""
        s_coeff = RnsPoly.from_signed(secret.coeffs, self.qp_moduli)
        s_rot = s_coeff.automorphism(exponent).to_eval()
        return self._switching_key(secret, s_rot)

    # -- hybrid gadget construction ---------------------------------------------------

    def _switching_key(self, secret: SecretKey,
                       source: RnsPoly) -> KeySwitchKey:
        """Encrypt ``P * T_j * source`` per digit under ``secret``.

        ``source`` must be in eval domain over the full Q*P basis.
        """
        num_q = len(self.q_moduli)
        digits = digit_partition(num_q, self.params.dnum)
        q_product = 1
        for q in self.q_moduli:
            q_product *= q
        # Noise sanity: hybrid key-switching keeps noise small only when the
        # special-prime product P covers each digit product (Han-Ki [26]).
        max_digit_bits = max(
            sum(self.q_moduli[i].bit_length() for i in digit)
            for digit in digits
        )
        p_bits = self.p_product.bit_length()
        if max_digit_bits > p_bits + 2:
            raise ValueError(
                f"digit product ({max_digit_bits} bits) exceeds the special "
                f"prime product P ({p_bits} bits); increase num_special or "
                "dnum"
            )
        pairs: List[Tuple[RnsPoly, RnsPoly]] = []
        qp_basis = RNSBasis(self.qp_moduli)
        for digit in digits:
            d_product = 1
            for i in digit:
                d_product *= self.q_moduli[i]
            q_hat = q_product // d_product
            t_j = q_hat * modinv(q_hat % d_product, d_product)
            payload = source.mul_scalar(self.p_product * t_j)
            a = RnsPoly(
                sample_uniform(qp_basis, self.params.n, self.rng),
                self.qp_moduli, EVAL,
            )
            e = RnsPoly.from_signed(
                sample_error(self.params.n, self.rng,
                             std=self.params.error_std)
                * self.error_scale,
                self.qp_moduli,
            ).to_eval()
            b = e - a * secret.poly + payload
            pairs.append((b, a))
        return KeySwitchKey(pairs=pairs, digits=digits)
