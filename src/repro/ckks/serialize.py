"""Binary serialization of ciphertexts, plaintexts and public material.

Wire format: a small JSON header (magic, version, kind, moduli, domain,
level, scale) followed by the raw little-endian uint64 residue matrix.
Stable across platforms; secret keys are deliberately *not* serializable
through this module (a deployment would wrap them in a KMS — refusing is
the safe library default).
"""

from __future__ import annotations

import json
import struct
from typing import Tuple

import numpy as np

from .ciphertext import Ciphertext, Plaintext
from .poly import RnsPoly

_MAGIC = b"WDRP"
_VERSION = 1


def _pack(kind: str, header_extra: dict, arrays) -> bytes:
    header = {
        "version": _VERSION,
        "kind": kind,
        "arrays": [
            {"shape": list(a.shape)} for a in arrays
        ],
        **header_extra,
    }
    blob = json.dumps(header, sort_keys=True).encode()
    out = bytearray()
    out += _MAGIC
    out += struct.pack("<I", len(blob))
    out += blob
    for a in arrays:
        out += np.ascontiguousarray(a, dtype="<u8").tobytes()
    return bytes(out)


def _unpack(data: bytes, expect_kind: str) -> Tuple[dict, list]:
    if data[:4] != _MAGIC:
        raise ValueError("not a WarpDrive-repro serialized object")
    (hlen,) = struct.unpack("<I", data[4:8])
    header = json.loads(data[8: 8 + hlen].decode())
    if header.get("version") != _VERSION:
        raise ValueError(f"unsupported version {header.get('version')}")
    if header.get("kind") != expect_kind:
        raise ValueError(
            f"expected a {expect_kind}, found {header.get('kind')}"
        )
    arrays = []
    offset = 8 + hlen
    for meta in header["arrays"]:
        shape = tuple(meta["shape"])
        count = int(np.prod(shape))
        raw = data[offset: offset + 8 * count]
        if len(raw) != 8 * count:
            raise ValueError("truncated payload")
        arrays.append(
            np.frombuffer(raw, dtype="<u8").reshape(shape).astype(np.uint64)
        )
        offset += 8 * count
    return header, arrays


def _poly_header(poly: RnsPoly) -> dict:
    return {"moduli": [int(q) for q in poly.moduli], "domain": poly.domain}


def serialize_ciphertext(ct: Ciphertext) -> bytes:
    """Ciphertext -> bytes (header + two residue matrices)."""
    return _pack(
        "ciphertext",
        {
            "level": ct.level,
            "scale": ct.scale,
            **_poly_header(ct.c0),
        },
        [ct.c0.data, ct.c1.data],
    )


def deserialize_ciphertext(data: bytes) -> Ciphertext:
    header, arrays = _unpack(data, "ciphertext")
    moduli = tuple(header["moduli"])
    domain = header["domain"]
    return Ciphertext(
        c0=RnsPoly(arrays[0], moduli, domain),
        c1=RnsPoly(arrays[1], moduli, domain),
        level=int(header["level"]),
        scale=float(header["scale"]),
    )


def serialize_plaintext(pt: Plaintext) -> bytes:
    return _pack(
        "plaintext",
        {"level": pt.level, "scale": pt.scale, **_poly_header(pt.poly)},
        [pt.poly.data],
    )


def deserialize_plaintext(data: bytes) -> Plaintext:
    header, arrays = _unpack(data, "plaintext")
    return Plaintext(
        poly=RnsPoly(arrays[0], tuple(header["moduli"]), header["domain"]),
        scale=float(header["scale"]),
        level=int(header["level"]),
    )
