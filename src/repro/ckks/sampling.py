"""Randomness for RLWE: secrets, errors, uniform polynomials.

Distributions follow standard CKKS practice: ternary secrets (optionally
sparse with fixed Hamming weight), centered discrete Gaussian errors with
sigma = 3.2, and per-prime uniform masks. Sampling is deterministic given a
``numpy`` Generator so tests are reproducible.
"""

from __future__ import annotations

import numpy as np

from ..numtheory.rns import RNSBasis


def sample_ternary(n: int, rng: np.random.Generator, *,
                   hamming_weight: int = 0) -> np.ndarray:
    """Ternary secret coefficients in {-1, 0, 1} as int64.

    With ``hamming_weight > 0`` exactly that many coefficients are nonzero
    (sparse secrets, as used by bootstrapping-oriented parameter sets).
    """
    if hamming_weight:
        if hamming_weight > n:
            raise ValueError("Hamming weight exceeds ring degree")
        coeffs = np.zeros(n, dtype=np.int64)
        support = rng.choice(n, size=hamming_weight, replace=False)
        coeffs[support] = rng.choice([-1, 1], size=hamming_weight)
        return coeffs
    return rng.integers(-1, 2, size=n, dtype=np.int64)


def sample_error(n: int, rng: np.random.Generator, *,
                 std: float = 3.2) -> np.ndarray:
    """Centered discrete Gaussian error coefficients as int64."""
    return np.rint(rng.normal(0.0, std, size=n)).astype(np.int64)


def sample_uniform(basis: RNSBasis, n: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Uniform residue matrix over the basis — the RLWE mask ``a``."""
    return basis.random(n, rng)
