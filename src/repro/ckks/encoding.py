"""CKKS canonical-embedding encoder/decoder.

Messages are vectors of ``N/2`` complex slots. Encoding maps slots to a
*real* polynomial via the canonical embedding — evaluation at the primitive
``2N``-th roots of unity indexed by powers of 5 — scaled by Delta and
rounded to integers.

Implementation: with ``zeta = exp(i*pi/N)``, evaluating at ``zeta^(2t+1)``
for all ``t`` equals ``N * ifft(m_k * zeta^k)``, so encode/decode are one
numpy FFT plus a twist and the 5^j slot permutation — O(N log N), exact to
float64 precision.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .params import CkksParams


@lru_cache(maxsize=64)
def _embedding_indices(n: int) -> np.ndarray:
    """``t_j = (5^j - 1)/2 mod N`` — the FFT bin holding slot ``j``."""
    slots = n // 2
    idx = np.empty(slots, dtype=np.int64)
    power = 1
    for j in range(slots):
        idx[j] = (power - 1) // 2 % n
        power = (power * 5) % (2 * n)
    return idx


@lru_cache(maxsize=64)
def _zeta_twist(n: int) -> np.ndarray:
    """``zeta^k`` for ``k < N`` with ``zeta = exp(i*pi/N)``."""
    k = np.arange(n)
    return np.exp(1j * np.pi * k / n)


class Encoder:
    """Encoder/decoder bound to one parameter set."""

    def __init__(self, params: CkksParams):
        self.params = params
        self.n = params.n
        self.slots = params.slots

    # -- public API ------------------------------------------------------------

    def encode(self, values, scale: float = None) -> np.ndarray:
        """Encode up to ``slots`` numbers into scaled integer coefficients.

        Returns int64 coefficients (centered); values shorter than the slot
        count are zero-padded. Raises if the scaled coefficients would
        overflow int64 — pick a smaller scale or fewer levels' worth of
        headroom instead.
        """
        scale = self.params.scale if scale is None else scale
        scaled = self.embed(values) * scale
        limit = float(np.max(np.abs(scaled))) if self.n else 0.0
        if limit >= 2**62:
            raise ValueError(
                "scaled coefficients overflow 62 bits; reduce the scale"
            )
        return np.rint(scaled).astype(np.int64)

    def embed(self, values) -> np.ndarray:
        """The canonical embedding as unrounded float coefficients
        (scale 1) — the exact linear map behind :meth:`encode`."""
        z = np.zeros(self.slots, dtype=np.complex128)
        values = np.asarray(values, dtype=np.complex128).ravel()
        if len(values) > self.slots:
            raise ValueError(
                f"{len(values)} values exceed the {self.slots} slots"
            )
        z[: len(values)] = values

        idx = _embedding_indices(self.n)
        spectrum = np.zeros(self.n, dtype=np.complex128)
        spectrum[idx] = z
        spectrum[self.n - 1 - idx] = np.conj(z)
        # m_k * zeta^k = fft(spectrum) / N  (see module docstring).
        twisted = np.fft.fft(spectrum) / self.n
        return np.real(twisted / _zeta_twist(self.n))

    def embed_many(self, rows) -> np.ndarray:
        """Batched :meth:`embed`: one FFT pass over a ``(D, slots)`` slot
        matrix, returning ``(D, n)`` float coefficients.

        The per-row operation sequence (spectrum scatter, FFT, twist) is
        the same as :meth:`embed`, so a row here equals embedding that row
        alone — this is what the linear-transform compiler uses to encode
        a whole diagonal stack without a per-diagonal Python loop.
        """
        rows = np.asarray(rows, dtype=np.complex128)
        if rows.ndim != 2:
            raise ValueError("embed_many expects a (D, slots) matrix")
        if rows.shape[1] > self.slots:
            raise ValueError(
                f"{rows.shape[1]} values exceed the {self.slots} slots"
            )
        z = np.zeros((rows.shape[0], self.slots), dtype=np.complex128)
        z[:, : rows.shape[1]] = rows

        idx = _embedding_indices(self.n)
        spectrum = np.zeros((rows.shape[0], self.n), dtype=np.complex128)
        spectrum[:, idx] = z
        spectrum[:, self.n - 1 - idx] = np.conj(z)
        twisted = np.fft.fft(spectrum, axis=1) / self.n
        return np.real(twisted / _zeta_twist(self.n)[None, :])

    def encode_many(self, rows, scale: float = None) -> np.ndarray:
        """Batched :meth:`encode`: ``(D, slots)`` slot rows to ``(D, n)``
        int64 coefficient rows in one vectorized pass."""
        scale = self.params.scale if scale is None else scale
        scaled = self.embed_many(rows) * scale
        limit = float(np.max(np.abs(scaled))) if scaled.size else 0.0
        if limit >= 2**62:
            raise ValueError(
                "scaled coefficients overflow 62 bits; reduce the scale"
            )
        return np.rint(scaled).astype(np.int64)

    def decode(self, coeffs, scale: float = None) -> np.ndarray:
        """Decode (possibly big-int) centered coefficients back to slots."""
        scale = self.params.scale if scale is None else scale
        arr = np.asarray(coeffs, dtype=np.float64)
        if arr.shape != (self.n,):
            raise ValueError(f"expected {self.n} coefficients")
        twisted = arr * _zeta_twist(self.n)
        spectrum = self.n * np.fft.ifft(twisted)
        return spectrum[_embedding_indices(self.n)] / scale

    def decode_real(self, coeffs, scale: float = None) -> np.ndarray:
        """Decode and drop imaginary parts (for real-valued messages)."""
        return np.real(self.decode(coeffs, scale))

    # -- round-trip error helper -------------------------------------------------

    def roundtrip_error(self, values, scale: float = None) -> float:
        """Max absolute error of encode-decode on ``values`` (diagnostics)."""
        values = np.asarray(values, dtype=np.complex128)
        decoded = self.decode(
            self.encode(values, scale).astype(np.float64), scale
        )
        return float(np.max(np.abs(decoded[: len(values)] - values)))
