"""Homomorphic linear transforms on slots (diagonal method + BSGS).

``slots -> M @ slots`` for an arbitrary complex matrix M is the backbone
of CoeffToSlot/SlotToCoeff, packed convolutions and encrypted
matrix-vector products. Two strategies:

* **diagonal method** — one rotation per non-zero diagonal:
  ``sum_d diag_d(M) * rot(ct, d)``;
* **BSGS** — ``O(sqrt(s))`` *distinct* rotations: write ``d = g*b_step +
  b`` and hoist the baby rotations, rotating the giant partial sums:
  ``sum_g rot( sum_b diag'_{g,b} * rot(ct, b), g*b_step )`` where the
  giant-step rotation is folded into the diagonals
  (``diag'_{g,b} = rot(diag_{g*b_step+b}, -g*b_step)``).

The baby rotations are computed with Halevi-Shoup hoisting
(:mod:`repro.ckks.hoisting`), so the dominant ModUp cost is paid once.

Application is a **plan/compile** pipeline: :meth:`LinearTransform.compile`
extracts the non-zero (shifted) diagonals once, encodes them per level
into a cached **eval-form diagonal stack** — a read-only
``(num_primes, num_diags, N)`` NTT-domain tensor built with one batched
embedding (:meth:`~repro.ckks.encoding.Encoder.encode_many`) and one
stacked NTT — and :meth:`apply` then runs every baby-step PMULT +
accumulation of a giant group as a single wide-accumulator pass
(:func:`~repro.ckks.ks_common.wide_dot`) over that stack.  Giant groups
whose shifted diagonals are all structurally zero are pruned at plan
time (lossless — they contribute nothing to the sum).

:meth:`apply_looped` preserves the per-diagonal pipeline as the
bit-exactness oracle; it shares the compiled plaintext stack (so repeated
applies never re-encode — the historical behaviour re-encoded every
diagonal on *every* call) and accumulates with
:meth:`~repro.ckks.poly.RnsPoly.fma_`, both of which are bit-identical
substitutions.  ``apply`` == ``apply_looped`` bit-exactly.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from ..analysis.annotations import frozen, returns_view
from ..trace.recorder import emit as _temit, span as _tspan
from ..ntt.stacked import get_shoup_stack, stacked_negacyclic_ntt
from .ciphertext import Ciphertext, Plaintext
from .context import CkksContext
from .hoisting import hoisted_rotations
from .keys import KeySet
from .poly import EVAL, RnsPoly
from .ks_common import wide_dot
from .rns_context import get_rns_context

#: Magnitude below which a diagonal is treated as structurally zero.
_DIAG_EPSILON = 1e-12


@frozen
class _LevelPlan:
    """One compiled level of a transform: the eval-form diagonal stack.

    ``stack`` is the ``(num_primes, num_diags, N)`` uint64 NTT-domain
    plaintext tensor (read-only; conceptually ``num_diags`` residue
    matrices side by side).  ``groups`` lists, per giant step, the
    rotation to apply after the inner sum, the positions of its baby
    rotations inside ``babies``, and its slice of the stack.
    """

    __slots__ = ("level", "moduli", "pt_scale", "babies", "groups", "stack")

    def __init__(self, level: int, moduli: Tuple[int, ...], pt_scale: float,
                 babies: List[int],
                 groups: List[Tuple[int, np.ndarray, np.ndarray]],
                 stack: np.ndarray):
        self.level = level
        self.moduli = moduli
        self.pt_scale = pt_scale
        self.babies = babies
        self.groups = groups
        self.stack = stack

    @property
    def num_diags(self) -> int:
        return self.stack.shape[1]


class LinearTransform:
    """One precompiled ``slots x slots`` transform."""

    def __init__(self, ctx: CkksContext, matrix: np.ndarray, *,
                 bsgs: bool = True):
        s = ctx.slots
        matrix = np.asarray(matrix, dtype=np.complex128)
        if matrix.shape != (s, s):
            raise ValueError(f"matrix must be {s}x{s}, got {matrix.shape}")
        self.ctx = ctx
        self.matrix = matrix
        self.bsgs = bsgs
        self.slots = s
        self.baby = max(1, int(math.isqrt(s))) if bsgs else s
        self._diagonals = self._extract_diagonals()
        # {giant_rotation: {baby_step: already-shifted diagonal}} — the
        # diagonal method is the single group with giant rotation 0.
        self._groups = self._build_groups()
        self._plans: Dict[int, _LevelPlan] = {}

    # -- construction -------------------------------------------------------------

    def _extract_diagonals(self) -> Dict[int, np.ndarray]:
        s = self.slots
        j = np.arange(s)
        out: Dict[int, np.ndarray] = {}
        for d in range(s):
            diag = self.matrix[j, (j + d) % s]
            if np.any(np.abs(diag) > _DIAG_EPSILON):
                out[d] = diag
        if not out:
            raise ValueError("transform matrix is identically zero")
        return out

    def _build_groups(self) -> Dict[int, Dict[int, np.ndarray]]:
        groups: Dict[int, Dict[int, np.ndarray]] = {}
        if not self.bsgs:
            groups[0] = dict(self._diagonals)
            return groups
        for d, diag in self._diagonals.items():
            g, b = divmod(d, self.baby)
            # Pre-rotate the diagonal so the giant rotation can be applied
            # after the inner sum.
            groups.setdefault(g * self.baby, {})[b] = np.roll(
                diag, g * self.baby
            )
        return groups

    @property
    def num_giant_groups(self) -> int:
        """Giant-step groups that survived zero-diagonal pruning."""
        return len(self._groups)

    @property
    def pruned_giant_steps(self) -> List[int]:
        """Giant rotations skipped because every diagonal of the group is
        structurally zero (below ``_DIAG_EPSILON``) — the skip is lossless
        since those diagonals contribute nothing to the sum."""
        if not self.bsgs:
            return []
        num_groups = -(-self.slots // self.baby)
        return sorted(
            g * self.baby for g in range(num_groups)
            if g * self.baby not in self._groups
        )

    def required_rotations(self) -> List[int]:
        """Rotation keys the application must generate (sorted, unique)."""
        steps = set()
        for g_rot, grp in self._groups.items():
            if g_rot:
                steps.add(g_rot)
            steps.update(b for b in grp if b)
        return sorted(steps)

    # -- plan compilation ----------------------------------------------------------

    def compile(self, level: int) -> _LevelPlan:
        """Encode every (shifted) diagonal at ``level`` into the cached
        eval-form stack; idempotent per level."""
        plan = self._plans.get(level)
        if plan is not None:
            return plan
        moduli = self.ctx.evaluator.moduli_at(level)
        n = self.ctx.params.n
        scale = self.ctx.params.scale

        babies = sorted({b for grp in self._groups.values() for b in grp})
        baby_pos = {b: i for i, b in enumerate(babies)}
        ordered: List[Tuple[int, List[int], List[np.ndarray]]] = []
        for g_rot in sorted(self._groups):
            grp = self._groups[g_rot]
            bs = sorted(grp)
            ordered.append((g_rot, bs, [grp[b] for b in bs]))

        # One batched embedding + one stacked NTT for the whole transform.
        values = np.stack([v for _, _, vals in ordered for v in vals])
        coeffs = self.ctx.encoder.encode_many(values, scale)  # (D, n)
        q_col = np.array(moduli, dtype=np.int64)[:, None, None]
        residues = np.mod(coeffs[None, :, :], q_col).astype(np.uint64)
        stack = stacked_negacyclic_ntt(
            residues, get_shoup_stack(tuple(moduli), n)
        )  # (P, D, N), canonical
        stack.setflags(write=False)

        groups: List[Tuple[int, np.ndarray, np.ndarray]] = []
        offset = 0
        for g_rot, bs, _ in ordered:
            idx = np.array([baby_pos[b] for b in bs], dtype=np.intp)
            groups.append(
                (g_rot, idx, stack[:, offset:offset + len(bs), :])
            )
            offset += len(bs)

        plan = _LevelPlan(level, tuple(moduli), scale, babies, groups, stack)
        self._plans[level] = plan
        return plan

    @returns_view
    def _plain_slice(self, plan: _LevelPlan, group: int,
                     member: int) -> Plaintext:
        """The memoized plaintext of one diagonal (a read-only view into
        the compiled stack) — the fallback path re-encodes nothing."""
        _, _, sub = plan.groups[group]
        return Plaintext(
            poly=RnsPoly(sub[:, member, :], plan.moduli, EVAL),
            scale=plan.pt_scale, level=plan.level,
        )

    # -- application ------------------------------------------------------------------

    def apply(self, ct: Ciphertext, keys: KeySet) -> Ciphertext:
        """Return a ciphertext whose slots are ``matrix @ slots(ct)``.

        Batched: all baby-step PMULTs and accumulations of a giant group
        run as one :func:`wide_dot` pass over the cached eval-form stack.
        Bit-identical to :meth:`apply_looped`.
        """
        plan = self.compile(ct.level)
        ev = self.ctx.evaluator
        with _tspan("linear_transform", level=ct.level):
            rotated = hoisted_rotations(ev, ct, plan.babies, keys)
            # The rotated components as (P, B, N) stacks; ciphertext data
            # is canonical, i.e. valid lazy wide_dot input.
            rot0 = np.stack(
                [rotated[b].c0.data for b in plan.babies], axis=1
            )
            rot1 = np.stack(
                [rotated[b].c1.data for b in plan.babies], axis=1
            )
            reducer = get_rns_context(plan.moduli, ct.n).barrett
            rot_cts = tuple(rotated[b] for b in plan.babies)

            acc = None
            for g_rot, idx, stack in plan.groups:
                inner = Ciphertext(
                    RnsPoly(wide_dot(rot0[:, idx], stack, reducer),
                            plan.moduli, EVAL),
                    RnsPoly(wide_dot(rot1[:, idx], stack, reducer),
                            plan.moduli, EVAL),
                    ct.level, ct.scale * plan.pt_scale,
                )
                # One wide-accumulator pass per giant group: the group's
                # baby-step PMULTs and additions fused over the diagonal
                # stack, for both ciphertext components.
                _temit("inner_product", primes=ct.level + 1,
                       digits=len(idx), accumulators=2, reads=rot_cts,
                       writes=(inner,), scale=inner.scale)
                if self.bsgs:
                    inner = ev.rescale(inner)
                    if g_rot:
                        inner = ev.hrotate(inner, g_rot, keys)
                acc = inner if acc is None else ev.hadd_matched(acc, inner)
            return acc if self.bsgs else ev.rescale(acc)

    def apply_looped(self, ct: Ciphertext, keys: KeySet) -> Ciphertext:
        """The per-diagonal reference pipeline (bit-exactness oracle).

        One PMULT/FMA per diagonal, like the historical implementation,
        but reading the memoized plaintext stack instead of re-encoding
        every diagonal on every call.
        """
        plan = self.compile(ct.level)
        ev = self.ctx.evaluator
        rotated = hoisted_rotations(ev, ct, plan.babies, keys)

        acc = None
        for g_idx, (g_rot, _, _) in enumerate(plan.groups):
            bs = sorted(self._groups[g_rot])
            inner = None
            for m_idx, b in enumerate(bs):
                pt = self._plain_slice(plan, g_idx, m_idx)
                if inner is None:
                    inner = ev.pmult(rotated[b], pt)
                else:
                    # In-place fused multiply-accumulate: one reduction
                    # pass per diagonal instead of mul + add.
                    m = pt.poly.to_eval()
                    inner.c0.fma_(rotated[b].c0, m)
                    inner.c1.fma_(rotated[b].c1, m)
            if self.bsgs:
                inner = ev.rescale(inner)
                if g_rot:
                    inner = ev.hrotate(inner, g_rot, keys)
            acc = inner if acc is None else ev.hadd_matched(acc, inner)
        return acc if self.bsgs else ev.rescale(acc)
