"""Homomorphic linear transforms on slots (diagonal method + BSGS).

``slots -> M @ slots`` for an arbitrary complex matrix M is the backbone
of CoeffToSlot/SlotToCoeff, packed convolutions and encrypted
matrix-vector products. Two strategies:

* **diagonal method** — one rotation per non-zero diagonal:
  ``sum_d diag_d(M) * rot(ct, d)``;
* **BSGS** — ``O(sqrt(s))`` *distinct* rotations: write ``d = g*b_step +
  b`` and hoist the baby rotations, rotating the giant partial sums:
  ``sum_g rot( sum_b diag'_{g,b} * rot(ct, b), g*b_step )`` where the
  giant-step rotation is folded into the diagonals
  (``diag'_{g,b} = rot(diag_{g*b_step+b}, -g*b_step)``).

The baby rotations are computed with Halevi-Shoup hoisting
(:mod:`repro.ckks.hoisting`), so the dominant ModUp cost is paid once.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from .ciphertext import Ciphertext
from .context import CkksContext
from .hoisting import hoisted_rotations
from .keys import KeySet

#: Magnitude below which a diagonal is treated as structurally zero.
_DIAG_EPSILON = 1e-12


class LinearTransform:
    """One precompiled ``slots x slots`` transform."""

    def __init__(self, ctx: CkksContext, matrix: np.ndarray, *,
                 bsgs: bool = True):
        s = ctx.slots
        matrix = np.asarray(matrix, dtype=np.complex128)
        if matrix.shape != (s, s):
            raise ValueError(f"matrix must be {s}x{s}, got {matrix.shape}")
        self.ctx = ctx
        self.matrix = matrix
        self.bsgs = bsgs
        self.slots = s
        self.baby = max(1, int(math.isqrt(s))) if bsgs else s
        self._diagonals = self._extract_diagonals()

    # -- construction -------------------------------------------------------------

    def _extract_diagonals(self) -> Dict[int, np.ndarray]:
        s = self.slots
        j = np.arange(s)
        out: Dict[int, np.ndarray] = {}
        for d in range(s):
            diag = self.matrix[j, (j + d) % s]
            if np.any(np.abs(diag) > _DIAG_EPSILON):
                out[d] = diag
        if not out:
            raise ValueError("transform matrix is identically zero")
        return out

    def required_rotations(self) -> List[int]:
        """Rotation keys the application must generate."""
        if not self.bsgs:
            return sorted(d for d in self._diagonals if d)
        steps = set()
        for d in self._diagonals:
            g, b = divmod(d, self.baby)
            if b:
                steps.add(b)
            if g:
                steps.add(g * self.baby)
        return sorted(steps)

    # -- application ------------------------------------------------------------------

    def apply(self, ct: Ciphertext, keys: KeySet) -> Ciphertext:
        """Return a ciphertext whose slots are ``matrix @ slots(ct)``."""
        return (self._apply_bsgs if self.bsgs else self._apply_diagonal)(
            ct, keys
        )

    def _apply_diagonal(self, ct: Ciphertext, keys: KeySet) -> Ciphertext:
        ev = self.ctx.evaluator
        steps = [d for d in self._diagonals if d]
        rotated = hoisted_rotations(ev, ct, steps, keys)
        rotated[0] = ct
        acc = None
        for d, diag in self._diagonals.items():
            pt = self.ctx.encode(diag, level=rotated[d].level)
            term = ev.pmult(rotated[d], pt)
            acc = term if acc is None else ev.hadd_matched(acc, term)
        return ev.rescale(acc)

    def _apply_bsgs(self, ct: Ciphertext, keys: KeySet) -> Ciphertext:
        ev = self.ctx.evaluator
        baby = self.baby
        # Group diagonals by giant step.
        groups: Dict[int, Dict[int, np.ndarray]] = {}
        for d, diag in self._diagonals.items():
            g, b = divmod(d, baby)
            groups.setdefault(g, {})[b] = diag

        baby_steps = sorted(
            {b for grp in groups.values() for b in grp if b}
        )
        rotated = hoisted_rotations(ev, ct, baby_steps, keys)
        rotated[0] = ct

        acc = None
        for g, grp in sorted(groups.items()):
            inner = None
            for b, diag in grp.items():
                # Pre-rotate the diagonal so the giant rotation can be
                # applied after the inner sum.
                shifted = np.roll(diag, g * baby)
                pt = self.ctx.encode(shifted, level=rotated[b].level)
                term = ev.pmult(rotated[b], pt)
                inner = term if inner is None else ev.hadd_matched(
                    inner, term
                )
            inner = ev.rescale(inner)
            if g:
                inner = ev.hrotate(inner, g * baby, keys)
            acc = inner if acc is None else ev.hadd_matched(acc, inner)
        return acc
