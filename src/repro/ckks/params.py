"""CKKS parameter sets, including every set the paper evaluates.

Table VI defines SET-A..E (NTT / homomorphic-operation benchmarks) and
Table XIII the workload parameter sets (ResNet, HELR, Boot, AES). All use
the 32-bit word size of §V-A: every RNS prime fits one GPU word.

Functional tests and examples use the ``toy``/``small`` sets — same code
paths, laptop-sized rings. The timing simulator accepts the full-size sets
directly (it prices operation counts, not live data).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict

from ..numtheory import PrimeChain, build_prime_chain


@dataclass(frozen=True)
class CkksParams:
    """Static parameters of one CKKS instantiation.

    Attributes
    ----------
    n:
        Ring degree N (power of two). Messages hold ``n / 2`` complex slots.
    max_level:
        L — number of rescaling primes (fresh ciphertexts sit at this level).
    num_special:
        K — special primes for hybrid key-switching.
    dnum:
        Decomposition number of hybrid key-switching [26].
    scale_bits:
        log2 of the encoding scale Delta.
    base_bits / special_bits:
        Bit sizes of the base and special primes.
    rescale_primes:
        Primes dropped per RESCALE: 1 (standard) or 2 (the double-prime
        rescaling of [5], [33] the paper adopts for 32-bit words).
    """

    n: int
    max_level: int
    num_special: int = 1
    dnum: int = 3
    scale_bits: int = 28
    base_bits: int = 31
    special_bits: int = 31
    rescale_primes: int = 1
    #: Standard deviation of the RLWE error distribution.
    error_std: float = 3.2
    #: Hamming weight of the ternary secret (0 = dense ternary).
    secret_hamming_weight: int = 0
    name: str = ""

    def __post_init__(self):
        if self.n < 8 or self.n & (self.n - 1):
            raise ValueError(f"ring degree must be a power of two >= 8: {self.n}")
        if self.max_level < 1:
            raise ValueError("need at least one rescaling prime")
        if self.num_special < 1:
            raise ValueError("hybrid key-switching needs >= 1 special prime")
        if self.rescale_primes not in (1, 2):
            raise ValueError("rescale_primes must be 1 or 2")
        if not 1 <= self.dnum <= self.max_level + 1:
            raise ValueError(
                f"dnum must be in [1, L+1] = [1, {self.max_level + 1}]"
            )

    @property
    def slots(self) -> int:
        return self.n // 2

    @property
    def scale(self) -> float:
        return float(2 ** self.effective_scale_bits)

    @property
    def effective_scale_bits(self) -> int:
        """Delta matches what one RESCALE divides out: one prime's bits for
        standard rescaling, two primes' for double-prime rescaling."""
        return self.scale_bits * self.rescale_primes

    @property
    def num_primes(self) -> int:
        """Ciphertext-chain primes: base + L scale primes."""
        return self.max_level + 1

    @property
    def total_primes(self) -> int:
        return self.num_primes + self.num_special

    def chain(self) -> PrimeChain:
        return _chain_for(
            self.n, self.max_level, self.num_special, self.base_bits,
            self.scale_bits, self.special_bits,
        )

    @property
    def log_qp(self) -> int:
        """Total modulus bits (the Table VI / XIII `log qp` column)."""
        return self.chain().log_qp

    def ciphertext_bytes(self, level: int = None, *, word_bytes: int = 4
                         ) -> int:
        """Size of a (c0, c1) ciphertext at ``level`` in GPU words."""
        level = self.max_level if level is None else level
        return 2 * (level + 1) * self.n * word_bytes


@lru_cache(maxsize=64)
def _chain_for(n, max_level, num_special, base_bits, scale_bits,
               special_bits) -> PrimeChain:
    return build_prime_chain(
        n, num_levels=max_level, num_special=num_special,
        base_bits=base_bits, scale_bits=scale_bits,
        special_bits=special_bits,
    )


class ParameterSets:
    """Named parameter sets from the paper plus functional test sets."""

    # --- Table VI: NTT / homomorphic-operation evaluation sets -------------

    @staticmethod
    def set_a() -> CkksParams:
        return CkksParams(n=2**12, max_level=2, num_special=1, dnum=3,
                          name="SET-A")

    @staticmethod
    def set_b() -> CkksParams:
        return CkksParams(n=2**13, max_level=6, num_special=1, dnum=7,
                          name="SET-B")

    @staticmethod
    def set_c() -> CkksParams:
        return CkksParams(n=2**14, max_level=14, num_special=1, dnum=15,
                          name="SET-C")

    @staticmethod
    def set_d() -> CkksParams:
        return CkksParams(n=2**15, max_level=24, num_special=1, dnum=25,
                          name="SET-D")

    @staticmethod
    def set_e() -> CkksParams:
        return CkksParams(n=2**16, max_level=34, num_special=1, dnum=35,
                          name="SET-E")

    # --- Table XIII: FHE workload sets --------------------------------------

    @staticmethod
    def resnet() -> CkksParams:
        return CkksParams(n=2**16, max_level=37, num_special=13, dnum=3,
                          name="ResNet")

    @staticmethod
    def helr() -> CkksParams:
        return CkksParams(n=2**16, max_level=37, num_special=13, dnum=3,
                          name="HELR")

    @staticmethod
    def boot() -> CkksParams:
        return CkksParams(n=2**16, max_level=34, num_special=12, dnum=3,
                          name="Boot")

    @staticmethod
    def aes() -> CkksParams:
        return CkksParams(n=2**16, max_level=46, num_special=10, dnum=5,
                          name="AES")

    # --- Functional sets (same code paths, test-sized rings) ----------------

    @staticmethod
    def toy() -> CkksParams:
        """Tiny instance for unit tests: N=64, 3 levels.

        ``num_special=2`` keeps the special-prime product above the 2-prime
        key-switching digits (the Han-Ki noise condition).
        """
        return CkksParams(n=64, max_level=3, num_special=2, dnum=2,
                          scale_bits=26, name="toy")

    @staticmethod
    def small() -> CkksParams:
        """Example-sized instance: N=2048, 8 levels."""
        return CkksParams(n=2048, max_level=8, num_special=3, dnum=3,
                          scale_bits=28, name="small")

    @staticmethod
    def double_rescale_toy() -> CkksParams:
        """Toy instance exercising the double-prime rescaling path [5]."""
        return CkksParams(n=64, max_level=6, num_special=2, dnum=4,
                          scale_bits=16, rescale_primes=2,
                          name="toy-2rescale")

    #: Lookup by name for CLI-ish call sites.
    BY_NAME: Dict[str, str] = {
        "SET-A": "set_a", "SET-B": "set_b", "SET-C": "set_c",
        "SET-D": "set_d", "SET-E": "set_e",
        "ResNet": "resnet", "HELR": "helr", "Boot": "boot", "AES": "aes",
        "toy": "toy", "small": "small",
    }

    @classmethod
    def by_name(cls, name: str) -> CkksParams:
        try:
            return getattr(cls, cls.BY_NAME[name])()
        except KeyError:
            raise ValueError(
                f"unknown parameter set {name!r}; known: "
                f"{sorted(cls.BY_NAME)}"
            ) from None

    @classmethod
    def table_vi(cls) -> Dict[str, CkksParams]:
        """The five Table VI sets in order."""
        return {
            "SET-A": cls.set_a(), "SET-B": cls.set_b(),
            "SET-C": cls.set_c(), "SET-D": cls.set_d(),
            "SET-E": cls.set_e(),
        }


# -- declared tuning knobs (DESIGN.md §14) ----------------------------------
#
# The parameter layer owns the choice of named set and the hybrid
# key-switching decomposition number.  ``ckks.dnum = None`` keeps the
# chosen set's own ``dnum``; an explicit value is validated against
# ``[1, L+1]`` by ``CkksParams.__post_init__`` when ``build_pipeline``
# materializes the set — out-of-domain assignments raise at build time.

from ..tuning.knobs import (  # noqa: E402  (registry import is dep-free)
    Choice, IntRange, KnobSpec, register_knob,
)

register_knob(KnobSpec(
    name="params.set", layer="ckks",
    domain=Choice(tuple(ParameterSets.BY_NAME)),
    default="SET-C",
    doc="Named CKKS parameter set (Table VI / Table XIII / functional).",
    observe=lambda pipe: pipe.params.name,
))

register_knob(KnobSpec(
    name="ckks.dnum", layer="ckks",
    domain=IntRange(1, 64, optional=True, grid=(1, 2, 3, 5, 15)),
    default=None,
    doc="Hybrid key-switching decomposition number; None inherits the "
        "chosen set's own dnum.",
    observe=lambda pipe: pipe.params.dnum,
))
