"""RESCALE: dropping primes to manage scale growth.

Standard RNS-CKKS rescaling divides by the last prime of the chain. With
32-bit words a single prime cannot absorb a large scale, so the paper also
adopts *double-prime rescaling* [5], [33]: one RESCALE drops two primes
whose product plays the role of Delta. Both flavours are implemented; the
parameter set's ``rescale_primes`` chooses between them.

Each dropped prime is divided out of *all* remaining residue rows in one
batched pass (:func:`repro.numtheory.rns.rescale_rows`); the INTT feeding
it is likewise a single vectorized transform of the residue matrix.
"""

from __future__ import annotations

from typing import Tuple

from ..numtheory.rns import RNSBasis, rescale_rows
from ..trace.recorder import emit as _temit
from .poly import EVAL, RnsPoly


def rescale_poly(poly: RnsPoly, *, primes: int = 1) -> Tuple[RnsPoly, int]:
    """Drop the last ``primes`` moduli, dividing the represented value.

    Returns the rescaled polynomial (coefficient domain) and the integer
    divisor (product of the dropped primes) for scale bookkeeping.
    """
    if primes < 1:
        raise ValueError("must drop at least one prime")
    if poly.num_primes <= primes:
        raise ValueError(
            f"cannot drop {primes} prime(s) from a {poly.num_primes}-prime "
            "polynomial — the ciphertext is already at the lowest level"
        )
    was_eval = poly.domain == EVAL
    coeff = poly.to_coeff()
    if was_eval:
        _temit("intt", rows=poly.num_primes, reads=(poly,), writes=(coeff,))
    divisor = 1
    data = coeff.data
    moduli = list(coeff.moduli)
    for _ in range(primes):
        basis = RNSBasis(tuple(moduli))
        data = rescale_rows(data, basis)
        divisor *= moduli[-1]
        moduli = moduli[:-1]
    out = RnsPoly(data, tuple(moduli), coeff.domain)
    _temit("divide", rows=out.num_primes, drop=primes, reads=(coeff,),
           writes=(out, data))
    return out, divisor
