"""The CKKS evaluator: encryption and every homomorphic operation.

Implements the operation set of §II-A: HADD, HSUB, PMULT, HMULT (with
hybrid-key relinearization), HROTATE, conjugation and RESCALE (single- or
double-prime). Operations are functional mirrors of the GPU kernels the
paper optimizes — the simulator prices them, this module proves them
correct.

All polynomial arithmetic below runs on the batched RNS engine: each
HADD/HSUB/PMULT line is one vectorized pass over the ``(num_primes, N)``
residue matrix, and every NTT/INTT transforms the full matrix at once —
the functional mirror of the paper's dense limb batching (§IV-A/B).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..numtheory import CRTReconstructor
from ..trace.recorder import emit as _temit, span as _tspan
from .ciphertext import Ciphertext, Plaintext
from .keys import KeySet, KeySwitchKey, PublicKey, SecretKey
from .keyswitch import keyswitch
from .params import CkksParams
from .poly import RnsPoly
from .rescale import rescale_poly
from .sampling import sample_error, sample_ternary

#: Relative scale mismatch tolerated when adding ciphertexts.
_SCALE_RTOL = 1e-9


class Evaluator:
    """Homomorphic operations bound to one parameter set."""

    def __init__(self, params: CkksParams, rng: np.random.Generator = None):
        self.params = params
        self.rng = rng if rng is not None else np.random.default_rng()
        chain = params.chain()
        self.q_moduli = tuple(chain.moduli)
        self.p_moduli = tuple(chain.special_primes)

    # -- level helpers -----------------------------------------------------------

    def moduli_at(self, level: int):
        return self.q_moduli[: level + 1]

    # -- encryption / decryption ---------------------------------------------------

    def encrypt(self, plaintext: Plaintext, public: PublicKey) -> Ciphertext:
        """Standard RLWE public-key encryption at the plaintext's level."""
        level = plaintext.level
        moduli = self.moduli_at(level)
        n = self.params.n
        v = RnsPoly.from_signed(
            sample_ternary(n, self.rng), moduli
        ).to_eval()
        e0 = RnsPoly.from_signed(
            sample_error(n, self.rng, std=self.params.error_std), moduli
        ).to_eval()
        e1 = RnsPoly.from_signed(
            sample_error(n, self.rng, std=self.params.error_std), moduli
        ).to_eval()
        pk_b = public.b.take_primes(range(level + 1))
        pk_a = public.a.take_primes(range(level + 1))
        m = plaintext.poly.to_eval()
        c0 = pk_b * v + e0 + m
        c1 = pk_a * v + e1
        return Ciphertext(c0, c1, level, plaintext.scale)

    def decrypt(self, ct: Ciphertext, secret: SecretKey) -> Plaintext:
        """Return the noisy plaintext polynomial ``c0 + c1*s``."""
        s = secret.poly.take_primes(range(ct.level + 1))
        m = (ct.c0 + ct.c1 * s).to_coeff()
        return Plaintext(poly=m, scale=ct.scale, level=ct.level)

    def decrypt_coefficients(self, ct: Ciphertext,
                             secret: SecretKey) -> Sequence[int]:
        """Decrypt to signed big-integer coefficients (CRT reconstruction)."""
        pt = self.decrypt(ct, secret)
        crt = CRTReconstructor(list(pt.poly.moduli))
        return crt.reconstruct_array(pt.poly.data, signed=True)

    # -- additive operations ----------------------------------------------------------

    def hadd(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        a, b = self._align(a, b)
        with _tspan("hadd", level=a.level):
            out = Ciphertext(a.c0 + b.c0, a.c1 + b.c1, a.level, a.scale)
            _temit("modadd", rows=2 * (a.level + 1), reads=(a, b),
                   writes=(out,), scale=out.scale)
        return out

    def hsub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        a, b = self._align(a, b)
        with _tspan("hsub", level=a.level):
            out = Ciphertext(a.c0 - b.c0, a.c1 - b.c1, a.level, a.scale)
            _temit("modadd", rows=2 * (a.level + 1), reads=(a, b),
                   writes=(out,), scale=out.scale)
        return out

    def add_plain(self, ct: Ciphertext, pt: Plaintext) -> Ciphertext:
        if not math.isclose(ct.scale, pt.scale, rel_tol=_SCALE_RTOL):
            raise ValueError(
                f"scale mismatch: ct {ct.scale:g} vs pt {pt.scale:g}"
            )
        m = self._plain_at_level(pt, ct.level)
        with _tspan("add_plain", level=ct.level):
            out = Ciphertext(ct.c0 + m, ct.c1.copy(), ct.level, ct.scale)
            _temit("modadd", rows=ct.level + 1, reads=(ct, m), writes=(out,),
                   scale=out.scale)
        return out

    def negate(self, ct: Ciphertext) -> Ciphertext:
        return Ciphertext(-ct.c0, -ct.c1, ct.level, ct.scale)

    # -- multiplicative operations -------------------------------------------------------

    def pmult(self, ct: Ciphertext, pt: Plaintext) -> Ciphertext:
        """Plaintext-ciphertext product; scales multiply."""
        m = self._plain_at_level(pt, ct.level)
        with _tspan("pmult", level=ct.level):
            out = Ciphertext(
                ct.c0 * m, ct.c1 * m, ct.level, ct.scale * pt.scale
            )
            _temit("modmul", rows=2 * (ct.level + 1), reads=(ct, m),
                   writes=(out,), scale=out.scale)
        return out

    def hmult(self, a: Ciphertext, b: Ciphertext, keys: KeySet, *,
              rescale: bool = True) -> Ciphertext:
        """Ciphertext product with relinearization (and optional RESCALE)."""
        a, b = self._align(a, b, match_scale=False)
        with _tspan("hmult", level=a.level):
            d0 = a.c0 * b.c0
            d1 = (a.c0 * b.c1).fma_(a.c1, b.c0)
            d2 = a.c1 * b.c1
            _temit("tensor_product", rows=a.level + 1, reads=(a, b),
                   writes=(d0, d1, d2), scale=a.scale * b.scale)
            ks0, ks1 = keyswitch(d2, keys.relin, self.p_moduli)
            c0 = d0 + ks0
            c1 = d1 + ks1
            _temit("modadd", rows=a.level + 1, reads=(d0, ks0), writes=(c0,),
                   scale=a.scale * b.scale)
            _temit("modadd", rows=a.level + 1, reads=(d1, ks1), writes=(c1,),
                   scale=a.scale * b.scale)
            ct = Ciphertext(c0, c1, a.level, a.scale * b.scale)
            return self.rescale(ct) if rescale else ct

    def square(self, ct: Ciphertext, keys: KeySet, *,
               rescale: bool = True) -> Ciphertext:
        return self.hmult(ct, ct, keys, rescale=rescale)

    def rescale(self, ct: Ciphertext) -> Ciphertext:
        """Drop ``rescale_primes`` primes, dividing scale accordingly."""
        k = self.params.rescale_primes
        with _tspan("rescale", level=ct.level):
            new_c0, divisor = rescale_poly(ct.c0, primes=k)
            new_c1, _ = rescale_poly(ct.c1, primes=k)
            out_c0 = new_c0.to_eval()
            out_c1 = new_c1.to_eval()
            _temit("ntt", rows=2 * (ct.level + 1 - k), panes=2,
                   reads=(new_c0, new_c1), writes=(out_c0, out_c1),
                   scale=ct.scale / divisor)
            return Ciphertext(
                out_c0, out_c1, ct.level - k, ct.scale / divisor,
            )

    # -- scale management (used heavily by polynomial evaluation) -------------------

    def pmult_scalar(self, ct: Ciphertext, value: float, *,
                     scale: float = None) -> Ciphertext:
        """Multiply every slot by a scalar constant.

        The constant is folded into the constant coefficient of a plaintext
        at the given ``scale`` (default: the parameter scale); no level is
        consumed until a later rescale.
        """
        scale = self.params.scale if scale is None else scale
        moduli = self.moduli_at(ct.level)
        scaled = value * scale
        if abs(scaled) >= 2**62:
            raise ValueError("scalar too large for the chosen scale")
        coeffs = np.zeros(self.params.n, dtype=np.int64)
        coeffs[0] = int(round(scaled))
        m = RnsPoly.from_signed(coeffs, moduli).to_eval()
        with _tspan("pmult_scalar", level=ct.level):
            out = Ciphertext(
                ct.c0 * m, ct.c1 * m, ct.level, ct.scale * scale
            )
            _temit("modmul", rows=2 * (ct.level + 1), reads=(ct, m),
                   writes=(out,), scale=out.scale)
        return out

    def add_scalar(self, ct: Ciphertext, value: float) -> Ciphertext:
        """Add a scalar constant to every slot (no level consumed)."""
        moduli = self.moduli_at(ct.level)
        coeffs = np.zeros(self.params.n, dtype=np.int64)
        coeffs[0] = int(round(value * ct.scale))
        m = RnsPoly.from_signed(coeffs, moduli).to_eval()
        with _tspan("add_scalar", level=ct.level):
            out = Ciphertext(ct.c0 + m, ct.c1.copy(), ct.level, ct.scale)
            _temit("modadd", rows=ct.level + 1, reads=(ct, m), writes=(out,),
                   scale=out.scale)
        return out

    def match_scale(self, ct: Ciphertext, target: float) -> Ciphertext:
        """Raise ``ct``'s scale to ``target`` by multiplying by 1.

        ``target`` must be >= the current scale; the ratio is folded into a
        constant-1 plaintext so slot values are unchanged.
        """
        if math.isclose(ct.scale, target, rel_tol=_SCALE_RTOL):
            return ct
        ratio = target / ct.scale
        if ratio < 1.0:
            raise ValueError(
                f"cannot lower a scale by matching ({ct.scale:g} -> "
                f"{target:g}); match the other operand instead"
            )
        return self.pmult_scalar(ct, 1.0, scale=ratio)

    def hadd_matched(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """HADD with automatic level alignment and scale matching."""
        if a.scale < b.scale:
            a = self.match_scale(a, b.scale)
        else:
            b = self.match_scale(b, a.scale)
        return self.hadd(a, b)

    def hsub_matched(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        if a.scale < b.scale:
            a = self.match_scale(a, b.scale)
        else:
            b = self.match_scale(b, a.scale)
        return self.hsub(a, b)

    # -- rotations ------------------------------------------------------------------

    def hrotate(self, ct: Ciphertext, steps: int, keys: KeySet) -> Ciphertext:
        """Rotate message slots left by ``steps`` (HROTATE)."""
        key = keys.rotation.get(steps)
        if key is None:
            raise KeyError(
                f"no rotation key for step {steps}; pass rotations=[{steps}] "
                "to KeyGenerator.generate"
            )
        exponent = pow(5, steps, 2 * self.params.n)
        return self._apply_galois(ct, exponent, key, op="hrotate",
                                  step=steps)

    def hrotate_composed(self, ct: Ciphertext, steps: int,
                         keys: KeySet) -> Ciphertext:
        """Rotate by an arbitrary step using only power-of-two keys.

        Decomposes ``steps`` into its binary expansion and chains the
        power-of-two rotations — the standard trick for supporting every
        rotation with ``log2(slots)`` keys instead of ``slots`` keys, at
        the cost of one key-switch per set bit (popcount noise/latency).
        """
        slots = self.params.slots
        steps %= slots
        if steps == 0:
            return ct
        out = ct
        bit = 1
        remaining = steps
        while remaining:
            if remaining & 1:
                out = self.hrotate(out, bit, keys)
            remaining >>= 1
            bit <<= 1
        return out

    @staticmethod
    def power_of_two_rotations(slots: int):
        """The key set :meth:`hrotate_composed` requires."""
        steps = []
        bit = 1
        while bit < slots:
            steps.append(bit)
            bit <<= 1
        return steps

    def conjugate(self, ct: Ciphertext, keys: KeySet) -> Ciphertext:
        if keys.conjugation is None:
            raise KeyError("no conjugation key; generate with conjugation=True")
        return self._apply_galois(
            ct, 2 * self.params.n - 1, keys.conjugation, op="conjugate",
            step=-1,
        )

    def _apply_galois(self, ct: Ciphertext, exponent: int,
                      key: KeySwitchKey, op: str = "hrotate",
                      step: int = 0) -> Ciphertext:
        with _tspan(op, level=ct.level):
            rot0 = ct.c0.to_coeff().automorphism(exponent).to_eval()
            rot1 = ct.c1.to_coeff().automorphism(exponent).to_eval()
            # One gather event for both polynomials: the coefficient-domain
            # round trip above is a functional-layer artifact (a negacyclic
            # automorphism permutes either domain), so the trace records
            # what a GPU launches — the in-place eval-domain permutation.
            # ``args`` carries the slot step (-1 = conjugation) so the
            # optimizer and key audits know *which* rotation this was.
            _temit("automorphism", primes=ct.level + 1, polys=2,
                   reads=(ct,), writes=(rot0, rot1), args=(step,),
                   scale=ct.scale)
            ks0, ks1 = keyswitch(rot1, key, self.p_moduli)
            c0 = rot0 + ks0
            _temit("modadd", rows=ct.level + 1, reads=(rot0, ks0),
                   writes=(c0,), scale=ct.scale)
            return Ciphertext(c0, ks1, ct.level, ct.scale)

    # -- internals --------------------------------------------------------------------

    def _align(self, a: Ciphertext, b: Ciphertext, *,
               match_scale: bool = True):
        """Bring two ciphertexts to a common (the lower) level."""
        if a.level > b.level:
            a = self.level_down(a, b.level)
        elif b.level > a.level:
            b = self.level_down(b, a.level)
        if match_scale and not math.isclose(
            a.scale, b.scale, rel_tol=_SCALE_RTOL
        ):
            raise ValueError(
                f"scale mismatch: {a.scale:g} vs {b.scale:g}; rescale first"
            )
        return a, b

    def level_down(self, ct: Ciphertext, level: int) -> Ciphertext:
        """Drop to a lower level without dividing (modulus reduction)."""
        if level > ct.level:
            raise ValueError("cannot raise a ciphertext's level")
        drop = ct.level - level
        if drop == 0:
            return ct
        return Ciphertext(
            ct.c0.drop_last_primes(drop), ct.c1.drop_last_primes(drop),
            level, ct.scale,
        )

    def _plain_at_level(self, pt: Plaintext, level: int) -> RnsPoly:
        poly = pt.poly
        if poly.num_primes < level + 1:
            raise ValueError("plaintext encoded at a lower level than needed")
        if poly.num_primes > level + 1:
            poly = poly.take_primes(range(level + 1))
        return poly.to_eval()
