"""RnsContext: the batched-arithmetic state shared by every RnsPoly.

One context serves one ``(moduli, N)`` pair and owns the row-wise Barrett
reducer (element-wise ciphertext arithmetic, §IV-A-4) plus the lazily
built :class:`~repro.ntt.TwiddleStack` (domain conversions). This mirrors
the paper's initialization phase (§IV-D-1): constants for the whole chain
are precomputed once and every subsequent operation is a single dense pass
over the ``(num_primes, N)`` residue matrix.

The twiddle stack is lazy because arithmetic never needs it and not every
basis is NTT-friendly — BFV's auxiliary bases, for instance, add and
subtract in the coefficient domain only.

Contexts are cached with the same unified sizing as the twiddle tables
(:data:`repro.ntt.tables.TABLE_CACHE_SIZE`) so a deep chain cannot evict
one half of an operation's precompute while keeping the other.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

from ..analysis.annotations import bounded
from ..ntt.stacked import ShoupStack, get_shoup_stack
from ..ntt.tables import TABLE_CACHE_SIZE
from ..ntt.twiddles import TwiddleStack, get_twiddle_stack
from ..numtheory import BatchBarrettReducer


class RnsContext:
    """Batched constants for one RNS basis at one ring degree."""

    def __init__(self, moduli: Tuple[int, ...], n: int):
        self.moduli = tuple(moduli)
        self.n = n
        self.barrett = BatchBarrettReducer(self.moduli)
        #: (num_primes, 1) modulus column for broadcast arithmetic.
        self.q_col = self.barrett.q_col(2)
        self._twiddles: Optional[TwiddleStack] = None
        self._shoup: Optional[ShoupStack] = None

    @property
    def twiddles(self) -> TwiddleStack:
        """The stacked NTT tables (built on first domain conversion)."""
        if self._twiddles is None:
            self._twiddles = get_twiddle_stack(self.moduli, self.n)
        return self._twiddles

    @property
    def shoup(self) -> ShoupStack:
        """The Shoup-multiplication twiddle stack the backend NTT kernels
        consume (built on first domain conversion; shares the global
        stack cache with the key-switch pipeline)."""
        if self._shoup is None:
            self._shoup = get_shoup_stack(self.moduli, self.n)
        return self._shoup

    @bounded(out_q=1)
    def reduce_scalar(self, value: int) -> np.ndarray:
        """``value mod q_i`` per row, as a broadcastable column."""
        return self.barrett.reduce_scalar(value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RnsContext(L={len(self.moduli)}, N={self.n})"


@lru_cache(maxsize=TABLE_CACHE_SIZE)
def get_rns_context(moduli: Tuple[int, ...], n: int) -> RnsContext:
    """Shared, cached context lookup (unified cache sizing)."""
    return RnsContext(moduli, n)


def rns_context_cache_stats() -> dict:
    """Hit/miss counters of the context cache."""
    info = get_rns_context.cache_info()
    return {
        "hits": info.hits,
        "misses": info.misses,
        "maxsize": info.maxsize,
        "currsize": info.currsize,
    }


def all_cache_stats() -> dict:
    """Counters for every precompute cache the hot paths rely on.

    Keys: ``tables`` (per-prime NTT tables), ``reducers`` (per-prime
    Barrett reducers), ``twiddle_stacks`` (batched tables), ``contexts``
    (batched contexts). A homomorphic operation run twice must not
    increase any ``misses`` on its second run — that is the zero
    mid-op-recomputation invariant the cache-sizing fix restores.
    """
    from ..ntt.tables import table_cache_stats
    from ..ntt.twiddles import twiddle_stack_cache_stats
    from .poly import reducer_cache_stats

    return {
        "tables": table_cache_stats(),
        "reducers": reducer_cache_stats(),
        "twiddle_stacks": twiddle_stack_cache_stats(),
        "contexts": rns_context_cache_stats(),
    }
