"""CKKS noise tracking: estimated budgets and measured noise.

A production FHE library must tell users how much circuit depth remains.
This module provides both views:

* :class:`NoiseEstimator` — a standard heuristic noise tracker (canonical
  embedding norm, central-limit style estimates) updated per operation;
* :func:`measured_noise_bits` — the ground truth: decrypt and compare
  against the expected message, reporting the actual noise magnitude in
  bits. Tests keep the estimator honest against the measurement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .ciphertext import Ciphertext
from .keys import SecretKey
from .ops import Evaluator
from .params import CkksParams


@dataclass
class NoiseState:
    """Estimated noise standard deviation (absolute, coefficient domain)
    carried alongside a ciphertext."""

    std: float
    level: int
    scale: float

    @property
    def noise_bits(self) -> float:
        """log2 of the ~6-sigma noise bound."""
        return math.log2(max(2.0, 6.0 * self.std))

    def budget_bits(self, params: CkksParams) -> float:
        """Remaining bits between the noise and the current modulus."""
        chain = params.chain()
        q = chain.q_product(self.level)
        return math.log2(q) - self.noise_bits


class NoiseEstimator:
    """Heuristic per-operation noise propagation.

    Standard estimates (e.g. [15], [26]): fresh encryption noise
    ``sigma * sqrt(2N)``-ish; addition adds variances; multiplication
    scales each operand's noise by the other's message magnitude; the
    rescale divides by the dropped prime and adds rounding noise
    ``O(sqrt(N))``; key-switching adds ``O(dnum * sqrt(N) * sigma)``
    after the ModDown division.
    """

    def __init__(self, params: CkksParams):
        self.params = params
        self.sigma = params.error_std
        self.sqrt_n = math.sqrt(params.n)

    def fresh(self) -> NoiseState:
        # v*e_pk + e0 + e1*s: three error terms, two scaled by sparse
        # ternary vectors of weight ~N/2 -> std ~ sigma * sqrt(N).
        return NoiseState(
            std=self.sigma * self.sqrt_n,
            level=self.params.max_level,
            scale=self.params.scale,
        )

    def add(self, a: NoiseState, b: NoiseState) -> NoiseState:
        level = min(a.level, b.level)
        return NoiseState(
            std=math.hypot(a.std, b.std), level=level, scale=a.scale
        )

    def mult(self, a: NoiseState, b: NoiseState, *,
             message_bound: float = 1.0) -> NoiseState:
        """After HMULT + relinearization, before rescale."""
        level = min(a.level, b.level)
        m_a = message_bound * a.scale
        m_b = message_bound * b.scale
        cross = math.hypot(a.std * m_b, b.std * m_a)
        product_noise = a.std * b.std * self.sqrt_n
        ks_noise = self.keyswitch_noise()
        return NoiseState(
            std=math.sqrt(cross**2 + product_noise**2 + ks_noise**2),
            level=level,
            scale=a.scale * b.scale,
        )

    def rescale(self, state: NoiseState) -> NoiseState:
        drop = self.params.rescale_primes
        chain = self.params.chain()
        divisor = 1.0
        for i in range(drop):
            divisor *= chain.moduli[state.level - i]
        rounding = 0.5 * self.sqrt_n  # exact-division remainder term
        return NoiseState(
            std=math.hypot(state.std / divisor, rounding),
            level=state.level - drop,
            scale=state.scale / divisor,
        )

    def keyswitch_noise(self) -> float:
        """Noise added by one hybrid key-switch (post ModDown)."""
        chain = self.params.chain()
        p = float(chain.p_product())
        alpha = -(-self.params.num_primes // self.params.dnum)
        digit_bound = float(
            max(chain.moduli) ** alpha
        )
        return (
            self.params.dnum * digit_bound * self.sigma * self.sqrt_n / p
            + 0.5 * self.sqrt_n  # ModDown rounding
        )

    def rotate(self, state: NoiseState) -> NoiseState:
        return NoiseState(
            std=math.hypot(state.std, self.keyswitch_noise()),
            level=state.level, scale=state.scale,
        )


def measured_noise_bits(ev: Evaluator, ct: Ciphertext, secret: SecretKey,
                        expected_slots: np.ndarray) -> float:
    """Ground-truth noise: log2 of the max coefficient-domain error.

    Re-encodes ``expected_slots`` at the ciphertext's scale and measures
    the distance to the decrypted coefficients.
    """
    from .encoding import Encoder

    coeffs = ev.decrypt_coefficients(ct, secret)
    encoder = Encoder(ev.params)
    expected_scaled = encoder.embed(expected_slots) * ct.scale
    err = float(np.max(np.abs(
        np.array([float(c) for c in coeffs]) - expected_scaled
    )))
    return math.log2(max(2.0, err))
