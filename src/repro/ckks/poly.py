"""RNS polynomials — the data type every homomorphic operation acts on.

An :class:`RnsPoly` is a ``(num_primes, N)`` uint64 residue matrix plus its
modulus list and a domain tag: ``coeff`` (coefficient representation) or
``eval`` (negacyclic NTT representation). Multiplication requires ``eval``;
automorphisms and basis conversions require ``coeff`` — exactly the
conversions whose cost the paper's KeySwitch kernel breakdown (NTT, ModUp,
INTT, ModDown, InProd) accounts for.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence, Tuple

import numpy as np

from ..ntt import negacyclic_intt, negacyclic_ntt
from ..ntt.negacyclic import apply_automorphism
from ..ntt.tables import get_tables
from ..numtheory import BarrettReducer

COEFF = "coeff"
EVAL = "eval"


@lru_cache(maxsize=512)
def get_reducer(modulus: int) -> BarrettReducer:
    """Shared Barrett reducer per modulus (paper: Barrett outside the NTT)."""
    return BarrettReducer(modulus)


@dataclass
class RnsPoly:
    """A polynomial in RNS representation.

    The residue rows are aligned with ``moduli``; ``domain`` records whether
    rows hold coefficients or NTT evaluations.
    """

    data: np.ndarray
    moduli: Tuple[int, ...]
    domain: str = COEFF

    def __post_init__(self):
        self.moduli = tuple(self.moduli)
        if self.data.ndim != 2:
            raise ValueError("RnsPoly data must be 2-D (primes x N)")
        if self.data.shape[0] != len(self.moduli):
            raise ValueError(
                f"{self.data.shape[0]} residue rows for "
                f"{len(self.moduli)} moduli"
            )
        if self.domain not in (COEFF, EVAL):
            raise ValueError(f"unknown domain {self.domain!r}")
        if self.data.dtype != np.uint64:
            self.data = self.data.astype(np.uint64)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def zero(cls, moduli: Sequence[int], n: int, domain: str = COEFF
             ) -> "RnsPoly":
        return cls(np.zeros((len(moduli), n), dtype=np.uint64),
                   tuple(moduli), domain)

    @classmethod
    def from_signed(cls, coeffs: np.ndarray, moduli: Sequence[int]
                    ) -> "RnsPoly":
        """Lift signed int64 coefficients into RNS (coefficient domain)."""
        rows = [
            np.mod(coeffs.astype(np.int64), q).astype(np.uint64)
            for q in moduli
        ]
        return cls(np.stack(rows), tuple(moduli), COEFF)

    @classmethod
    def from_bigint(cls, coeffs: Sequence[int], moduli: Sequence[int]
                    ) -> "RnsPoly":
        """Lift arbitrary-precision integer coefficients into RNS."""
        rows = [
            np.array([int(c) % q for c in coeffs], dtype=np.uint64)
            for q in moduli
        ]
        return cls(np.stack(rows), tuple(moduli), COEFF)

    # -- shape ---------------------------------------------------------------

    @property
    def n(self) -> int:
        return self.data.shape[1]

    @property
    def num_primes(self) -> int:
        return len(self.moduli)

    def copy(self) -> "RnsPoly":
        return RnsPoly(self.data.copy(), self.moduli, self.domain)

    # -- domain conversion -----------------------------------------------------

    def to_eval(self) -> "RnsPoly":
        """Forward NTT every residue row (no-op when already in eval)."""
        if self.domain == EVAL:
            return self
        rows = [
            negacyclic_ntt(self.data[i], get_tables(q, self.n))
            for i, q in enumerate(self.moduli)
        ]
        return RnsPoly(np.stack(rows), self.moduli, EVAL)

    def to_coeff(self) -> "RnsPoly":
        """Inverse NTT every residue row (no-op when already in coeff)."""
        if self.domain == COEFF:
            return self
        rows = [
            negacyclic_intt(self.data[i], get_tables(q, self.n))
            for i, q in enumerate(self.moduli)
        ]
        return RnsPoly(np.stack(rows), self.moduli, COEFF)

    # -- arithmetic -------------------------------------------------------------

    def _check_compatible(self, other: "RnsPoly") -> None:
        if self.moduli != other.moduli:
            raise ValueError("operands live in different RNS bases")
        if self.domain != other.domain:
            raise ValueError(
                f"operands in different domains: {self.domain} vs "
                f"{other.domain}"
            )

    def __add__(self, other: "RnsPoly") -> "RnsPoly":
        self._check_compatible(other)
        out = np.empty_like(self.data)
        for i, q in enumerate(self.moduli):
            out[i] = get_reducer(q).add_vec(self.data[i], other.data[i])
        return RnsPoly(out, self.moduli, self.domain)

    def __sub__(self, other: "RnsPoly") -> "RnsPoly":
        self._check_compatible(other)
        out = np.empty_like(self.data)
        for i, q in enumerate(self.moduli):
            out[i] = get_reducer(q).sub_vec(self.data[i], other.data[i])
        return RnsPoly(out, self.moduli, self.domain)

    def __neg__(self) -> "RnsPoly":
        out = np.empty_like(self.data)
        for i, q in enumerate(self.moduli):
            q64 = np.uint64(q)
            row = self.data[i]
            out[i] = np.where(row == 0, row, q64 - row)
        return RnsPoly(out, self.moduli, self.domain)

    def __mul__(self, other: "RnsPoly") -> "RnsPoly":
        """Pointwise product — only meaningful in the eval domain."""
        self._check_compatible(other)
        if self.domain != EVAL:
            raise ValueError(
                "polynomial products require the eval domain; call "
                ".to_eval() first (this is the NTT the paper accelerates)"
            )
        out = np.empty_like(self.data)
        for i, q in enumerate(self.moduli):
            out[i] = get_reducer(q).mul_vec(self.data[i], other.data[i])
        return RnsPoly(out, self.moduli, EVAL)

    def mul_scalar(self, scalar: int) -> "RnsPoly":
        """Multiply by an integer scalar (any domain)."""
        out = np.empty_like(self.data)
        for i, q in enumerate(self.moduli):
            out[i] = get_reducer(q).mul_vec(
                self.data[i], np.uint64(scalar % q)
            )
        return RnsPoly(out, self.moduli, self.domain)

    # -- structure -----------------------------------------------------------

    def drop_last_primes(self, count: int) -> "RnsPoly":
        """Restrict to the first ``num_primes - count`` rows (same values
        mod the remaining primes — *not* a rescale)."""
        if not 0 <= count < self.num_primes:
            raise ValueError("cannot drop that many primes")
        if count == 0:
            return self
        return RnsPoly(
            self.data[:-count].copy(), self.moduli[:-count], self.domain
        )

    def take_primes(self, indices: Sequence[int]) -> "RnsPoly":
        """Select a subset of residue rows (digit extraction)."""
        return RnsPoly(
            self.data[list(indices)].copy(),
            tuple(self.moduli[i] for i in indices),
            self.domain,
        )

    def automorphism(self, exponent: int) -> "RnsPoly":
        """Apply ``X -> X^exponent`` (requires coefficient domain)."""
        if self.domain != COEFF:
            raise ValueError("automorphisms act on the coefficient domain")
        rows = [
            apply_automorphism(self.data[i], exponent, q)
            for i, q in enumerate(self.moduli)
        ]
        return RnsPoly(np.stack(rows), self.moduli, COEFF)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, RnsPoly)
            and self.moduli == other.moduli
            and self.domain == other.domain
            and np.array_equal(self.data, other.data)
        )
