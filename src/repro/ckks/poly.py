"""RNS polynomials — the data type every homomorphic operation acts on.

An :class:`RnsPoly` is a ``(num_primes, N)`` uint64 residue matrix plus its
modulus list and a domain tag: ``coeff`` (coefficient representation) or
``eval`` (negacyclic NTT representation). Multiplication requires ``eval``;
automorphisms and basis conversions require ``coeff`` — exactly the
conversions whose cost the paper's KeySwitch kernel breakdown (NTT, ModUp,
INTT, ModDown, InProd) accounts for.

All arithmetic and both domain conversions run through the **batched RNS
engine**: one :class:`~repro.ckks.rns_context.RnsContext` per
``(moduli, N)`` pair holds broadcastable per-row Barrett/Montgomery
constants and a stacked twiddle table, so every hot path is a single
vectorized numpy expression over the whole residue matrix — no Python loop
over primes, matching how WarpDrive's kernels consume the limb dimension
as one dense batch (§IV-A, §IV-B). The batched path is bit-identical to
the historical per-row loop (regression-tested against it and against the
O(N^2) reference transforms).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence, Tuple

import numpy as np

from ..analysis.annotations import bounded, coeff_form, eval_form, takes_form
from ..ntt.stacked import stacked_negacyclic_intt, stacked_negacyclic_ntt
from ..ntt.tables import TABLE_CACHE_SIZE
from ..numtheory import BarrettReducer
from .rns_context import RnsContext, get_rns_context

COEFF = "coeff"
EVAL = "eval"


@lru_cache(maxsize=TABLE_CACHE_SIZE)
def get_reducer(modulus: int) -> BarrettReducer:
    """Shared Barrett reducer per modulus (paper: Barrett outside the NTT).

    Sized in lockstep with the twiddle-table cache — the two used to
    disagree (512 vs 256), letting deep chains evict tables mid-operation
    while their reducers stayed warm.
    """
    return BarrettReducer(modulus)


def reducer_cache_stats() -> dict:
    """Hit/miss counters of the per-modulus reducer cache."""
    info = get_reducer.cache_info()
    return {
        "hits": info.hits,
        "misses": info.misses,
        "maxsize": info.maxsize,
        "currsize": info.currsize,
    }


@dataclass
class RnsPoly:
    """A polynomial in RNS representation.

    The residue rows are aligned with ``moduli``; ``domain`` records whether
    rows hold coefficients or NTT evaluations.
    """

    data: np.ndarray
    moduli: Tuple[int, ...]
    domain: str = COEFF

    def __post_init__(self):
        self.moduli = tuple(self.moduli)
        if self.data.ndim != 2:
            raise ValueError("RnsPoly data must be 2-D (primes x N)")
        if self.data.shape[0] != len(self.moduli):
            raise ValueError(
                f"{self.data.shape[0]} residue rows for "
                f"{len(self.moduli)} moduli"
            )
        if self.domain not in (COEFF, EVAL):
            raise ValueError(f"unknown domain {self.domain!r}")
        if self.data.dtype != np.uint64:
            self.data = self.data.astype(np.uint64)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def zero(cls, moduli: Sequence[int], n: int, domain: str = COEFF
             ) -> "RnsPoly":
        return cls(np.zeros((len(moduli), n), dtype=np.uint64),
                   tuple(moduli), domain)

    @classmethod
    @coeff_form
    def from_signed(cls, coeffs: np.ndarray, moduli: Sequence[int]
                    ) -> "RnsPoly":
        """Lift signed int64 coefficients into RNS (coefficient domain)."""
        q_col = np.array(moduli, dtype=np.int64)[:, None]
        rows = np.mod(coeffs.astype(np.int64)[None, :], q_col)
        return cls(rows.astype(np.uint64), tuple(moduli), COEFF)

    @classmethod
    @coeff_form
    def from_bigint(cls, coeffs: Sequence[int], moduli: Sequence[int]
                    ) -> "RnsPoly":
        """Lift arbitrary-precision integer coefficients into RNS."""
        rows = [
            np.array([int(c) % q for c in coeffs], dtype=np.uint64)
            for q in moduli
        ]
        return cls(np.stack(rows), tuple(moduli), COEFF)

    # -- shape ---------------------------------------------------------------

    @property
    def n(self) -> int:
        return self.data.shape[1]

    @property
    def num_primes(self) -> int:
        return len(self.moduli)

    @property
    def context(self) -> RnsContext:
        """The shared batched-arithmetic context for this basis."""
        return get_rns_context(self.moduli, self.data.shape[1])

    def copy(self) -> "RnsPoly":
        return RnsPoly(self.data.copy(), self.moduli, self.domain)

    # -- domain conversion -----------------------------------------------------

    @eval_form
    def to_eval(self) -> "RnsPoly":
        """Forward NTT every residue row in one batched pass.

        Always returns a fresh value: when the polynomial is already in
        the eval domain the residue matrix is *copied*, never aliased —
        two RnsPoly values must never share a mutable buffer (an in-place
        write through one would silently corrupt the other).
        """
        if self.domain == EVAL:
            return self.copy()
        ctx = self.context
        return RnsPoly(
            stacked_negacyclic_ntt(self.data, ctx.shoup),
            self.moduli, EVAL,
        )

    @coeff_form
    def to_coeff(self) -> "RnsPoly":
        """Inverse NTT every residue row in one batched pass.

        Returns a copy (never ``self``) when already in the coefficient
        domain — see :meth:`to_eval`.
        """
        if self.domain == COEFF:
            return self.copy()
        ctx = self.context
        return RnsPoly(
            stacked_negacyclic_intt(self.data, ctx.shoup),
            self.moduli, COEFF,
        )

    # -- arithmetic -------------------------------------------------------------

    def _check_compatible(self, other: "RnsPoly") -> None:
        if self.moduli != other.moduli:
            raise ValueError("operands live in different RNS bases")
        if self.domain != other.domain:
            raise ValueError(
                f"operands in different domains: {self.domain} vs "
                f"{other.domain}"
            )

    @bounded(params={"self.data": {"q": 1}, "other.data": {"q": 1}})
    def __add__(self, other: "RnsPoly") -> "RnsPoly":
        self._check_compatible(other)
        out = self.context.barrett.add_mat(self.data, other.data)
        return RnsPoly(out, self.moduli, self.domain)

    @bounded(params={"self.data": {"q": 1}, "other.data": {"q": 1}})
    def __sub__(self, other: "RnsPoly") -> "RnsPoly":
        self._check_compatible(other)
        out = self.context.barrett.sub_mat(self.data, other.data)
        return RnsPoly(out, self.moduli, self.domain)

    @bounded(params={"self.data": {"q": 1}})
    def __neg__(self) -> "RnsPoly":
        out = self.context.barrett.neg_mat(self.data)
        return RnsPoly(out, self.moduli, self.domain)

    @eval_form
    @takes_form(self="eval", other="eval")
    @bounded(params={"self.data": {"q": 1}, "other.data": {"q": 1}})
    def __mul__(self, other: "RnsPoly") -> "RnsPoly":
        """Pointwise product — only meaningful in the eval domain."""
        self._check_compatible(other)
        if self.domain != EVAL:
            raise ValueError(
                "polynomial products require the eval domain; call "
                ".to_eval() first (this is the NTT the paper accelerates)"
            )
        out = self.context.barrett.mul_mat(self.data, other.data)
        return RnsPoly(out, self.moduli, EVAL)

    @eval_form
    @takes_form(self="eval", a="eval", b="eval")
    @bounded(params={"self.data": {"q": 1}, "a.data": {"q": 1},
                     "b.data": {"q": 1}})
    def fma_(self, a: "RnsPoly", b: "RnsPoly") -> "RnsPoly":
        """In-place fused multiply-accumulate: ``self += a * b``.

        One reduction pass instead of two and no intermediate product
        polynomial — the accumulation discipline of the paper's PE MAC
        kernels (§IV-C). Requires the eval domain (like ``*``); the raw
        product plus the accumulator stays below ``2**62 + 2**31``, inside
        the Barrett reducer's input range. Bit-identical to
        ``self + a * b``; returns ``self`` for chaining.
        """
        a._check_compatible(b)
        self._check_compatible(a)
        if self.domain != EVAL:
            raise ValueError(
                "fused multiply-accumulate requires the eval domain; call "
                ".to_eval() first (this is the NTT the paper accelerates)"
            )
        prod = a.data * b.data
        prod += self.data
        self.data = self.context.barrett.reduce_mat(prod)
        return self

    @bounded(params={"self.data": {"q": 1}})
    def mul_scalar(self, scalar: int) -> "RnsPoly":
        """Multiply by an integer scalar (any domain)."""
        ctx = self.context
        out = ctx.barrett.mul_mat(self.data, ctx.reduce_scalar(scalar))
        return RnsPoly(out, self.moduli, self.domain)

    # -- structure -----------------------------------------------------------

    def drop_last_primes(self, count: int) -> "RnsPoly":
        """Restrict to the first ``num_primes - count`` rows (same values
        mod the remaining primes — *not* a rescale)."""
        if not 0 <= count < self.num_primes:
            raise ValueError("cannot drop that many primes")
        if count == 0:
            return self
        return RnsPoly(
            self.data[:-count].copy(), self.moduli[:-count], self.domain
        )

    def take_primes(self, indices: Sequence[int]) -> "RnsPoly":
        """Select a subset of residue rows (digit extraction)."""
        return RnsPoly(
            self.data[list(indices)].copy(),
            tuple(self.moduli[i] for i in indices),
            self.domain,
        )

    @coeff_form
    @takes_form(self="coeff")
    @bounded(params={"self.data": {"q": 1}})
    def automorphism(self, exponent: int) -> "RnsPoly":
        """Apply ``X -> X^exponent`` (requires coefficient domain).

        The index map is modulus-independent, so all rows permute in one
        fancy-indexing pass; only the negacyclic sign flip needs the
        per-row modulus column.
        """
        if self.domain != COEFF:
            raise ValueError("automorphisms act on the coefficient domain")
        n = self.n
        if exponent % 2 == 0:
            raise ValueError("automorphism exponent must be odd")
        j = np.arange(n)
        targets = (j * exponent) % (2 * n)
        dest = targets % n
        flip = targets >= n
        q_col = self.context.q_col
        vals = self.data
        negated = np.where(vals == 0, vals, q_col - vals)
        out = np.zeros_like(vals)
        out[:, dest] = np.where(flip[None, :], negated, vals)
        return RnsPoly(out, self.moduli, COEFF)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, RnsPoly)
            and self.moduli == other.moduli
            and self.domain == other.domain
            and np.array_equal(self.data, other.data)
        )
