"""Dependency-free SVG fitness plots for gym trajectories.

The container deliberately carries no plotting stack, so the CI smoke
job's artifact is hand-assembled SVG: one polyline per trajectory of
best-so-far reward against evaluation index, with the baseline reward
as a dashed reference line.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .search import SearchResult

__all__ = ["fitness_svg", "write_fitness_svg"]

_COLORS = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e")
_W, _H = 640, 360
_ML, _MR, _MT, _MB = 70, 20, 30, 45


def _scale(values: Sequence[float], lo: float, hi: float,
           out_lo: float, out_hi: float) -> List[float]:
    span = (hi - lo) or 1.0
    return [out_lo + (v - lo) / span * (out_hi - out_lo) for v in values]


def fitness_svg(results: Sequence[SearchResult], *,
                title: str = "gym best-so-far reward") -> str:
    """Render search results as one standalone SVG document."""
    curves: Dict[str, List[float]] = {
        f"{r.searcher} (seed {r.seed})": r.trajectory.best_curve()
        for r in results
    }
    ys = [v for curve in curves.values() for v in curve]
    ys += [r.baseline_reward for r in results]
    y_lo, y_hi = (min(ys), max(ys)) if ys else (0.0, 1.0)
    if y_lo == y_hi:
        y_lo, y_hi = y_lo - 1.0, y_hi + 1.0
    x_hi = max((len(c) for c in curves.values()), default=1) - 1 or 1

    def sx(x: float) -> float:
        return _ML + x / x_hi * (_W - _ML - _MR)

    def sy(y: float) -> float:
        return _H - _MB - (y - y_lo) / (y_hi - y_lo) * (_H - _MT - _MB)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_W}" '
        f'height="{_H}" viewBox="0 0 {_W} {_H}">',
        f'<rect width="{_W}" height="{_H}" fill="white"/>',
        f'<text x="{_W / 2}" y="18" text-anchor="middle" '
        f'font-family="monospace" font-size="13">{title}</text>',
        # axes
        f'<line x1="{_ML}" y1="{_MT}" x2="{_ML}" y2="{_H - _MB}" '
        'stroke="black"/>',
        f'<line x1="{_ML}" y1="{_H - _MB}" x2="{_W - _MR}" '
        f'y2="{_H - _MB}" stroke="black"/>',
        f'<text x="{_W / 2}" y="{_H - 10}" text-anchor="middle" '
        'font-family="monospace" font-size="11">evaluation</text>',
        f'<text x="14" y="{_H / 2}" text-anchor="middle" '
        f'font-family="monospace" font-size="11" '
        f'transform="rotate(-90 14 {_H / 2})">best reward</text>',
        f'<text x="{_ML - 6}" y="{sy(y_hi) + 4}" text-anchor="end" '
        f'font-family="monospace" font-size="10">{y_hi:.3g}</text>',
        f'<text x="{_ML - 6}" y="{sy(y_lo) + 4}" text-anchor="end" '
        f'font-family="monospace" font-size="10">{y_lo:.3g}</text>',
    ]
    if results:
        by = sy(results[0].baseline_reward)
        parts.append(
            f'<line x1="{_ML}" y1="{by:.1f}" x2="{_W - _MR}" '
            f'y2="{by:.1f}" stroke="#888" stroke-dasharray="6 4"/>'
        )
        parts.append(
            f'<text x="{_W - _MR}" y="{by - 5:.1f}" text-anchor="end" '
            'font-family="monospace" font-size="10" '
            'fill="#666">baseline</text>'
        )
    for i, (label, curve) in enumerate(curves.items()):
        color = _COLORS[i % len(_COLORS)]
        pts = " ".join(
            f"{sx(x):.1f},{sy(y):.1f}" for x, y in enumerate(curve)
        )
        parts.append(
            f'<polyline points="{pts}" fill="none" stroke="{color}" '
            'stroke-width="1.8"/>'
        )
        parts.append(
            f'<text x="{_W - _MR - 6}" y="{_MT + 14 + 14 * i}" '
            f'text-anchor="end" font-family="monospace" font-size="11" '
            f'fill="{color}">{label}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def write_fitness_svg(results: Sequence[SearchResult], path: str, *,
                      title: str = "gym best-so-far reward") -> str:
    """Write the SVG to ``path`` and return the path."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(fitness_svg(results, title=title))
    return path
