"""Gym-style design-space exploration over the declared knob registry.

:class:`TuningEnv` is the single evaluation surface: an *action* is a
flat knob assignment (a subset of the declared names), ``step()`` builds
the configured stack through :func:`~repro.tuning.build_pipeline`,
prices the chosen workload on the analytic GPU simulator, and returns a
scalar reward.  Everything is deterministic — the simulator is analytic
and recordings are cached — so the same episode replays bit-identically,
and every evaluation lands in a per-env cache keyed by the canonical
assignment (searchers revisit points for free).

Rewards (maximized):

* ``latency`` — negative simulated wall-clock microseconds.
* ``throughput_per_gb`` — priced operations per second per GB of the
  recording's peak live ciphertext pool (the serving layer's admission
  currency), i.e. throughput normalized by HBM working-set.

Workloads:

* ``boot`` — the recorded slim bootstrap on the Table XIII Boot chain
  (the co-design point ``benchmarks/bench_gym.py`` searches against the
  hand-picked :data:`~repro.workloads.recorded.RECORDED_BOOT_CONFIG`).
* ``helr`` / ``resnet`` — recorded HELR iteration / ResNet block.
* ``op:<name>`` — one homomorphic operation (``op:hmult``, ...) priced
  straight from the scheduler; cheap enough for unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..tuning.config import Pipeline, TuningConfig, build_pipeline
from ..tuning.knobs import all_knobs, knob

__all__ = ["TuningEnv", "Trajectory", "TrajectoryPoint",
           "DEFAULT_SEARCH_KNOBS"]

#: The semantics-preserving co-design knobs searched by default: they
#: change *how* the bootstrap is computed and priced, never the message
#: precision it delivers (searching ``boot.sine_degree`` down would
#: "win" by doing less numerical work — not a legal trade).
DEFAULT_SEARCH_KNOBS: Tuple[str, ...] = (
    "recorded.fuse",
    "ntt.variant",
    "geometry.threads_per_block",
    "dagopt.optimize",
)

#: Bytes per residue word at lowering (matches repro.core.kernels).
_WORD_BYTES = 4

#: Canonical Table XIII parameter set per recorded workload — the chain
#: must carry enough levels for the workload's own bootstrap, which the
#: registry's SET-C default does not.
_WORKLOAD_SETS = {"boot": "Boot", "helr": "HELR", "resnet": "ResNet"}


@dataclass(frozen=True)
class TrajectoryPoint:
    """One priced evaluation inside an episode."""

    step: int
    assignment: Dict[str, Any]
    reward: float
    latency_us: float
    hbm_gb: float
    cached: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "step": self.step, "assignment": dict(self.assignment),
            "reward": self.reward, "latency_us": self.latency_us,
            "hbm_gb": self.hbm_gb, "cached": self.cached,
        }


@dataclass
class Trajectory:
    """Full episode log: every evaluation plus the running best.

    ``base`` snapshots the effective unsearched-knob assignment the
    episode ran under (parameter set, backend, machine model, ...), so
    a logged trajectory is replayable without guessing defaults.
    """

    workload: str
    objective: str
    seed: Optional[int] = None
    base: Dict[str, Any] = field(default_factory=dict)
    points: List[TrajectoryPoint] = field(default_factory=list)

    @property
    def best(self) -> Optional[TrajectoryPoint]:
        return max(self.points, key=lambda p: p.reward, default=None)

    def best_curve(self) -> List[float]:
        """Best-so-far reward after each step (the plotted fitness)."""
        curve, best = [], float("-inf")
        for p in self.points:
            best = max(best, p.reward)
            curve.append(best)
        return curve

    def to_dict(self) -> Dict[str, Any]:
        best = self.best
        return {
            "workload": self.workload, "objective": self.objective,
            "seed": self.seed, "base": dict(self.base),
            "points": [p.to_dict() for p in self.points],
            "best": best.to_dict() if best else None,
        }


class TuningEnv:
    """Deterministic pricing environment over the knob registry.

    Parameters
    ----------
    workload:
        ``boot`` | ``helr`` | ``resnet`` | ``op:<name>``.
    objective:
        ``latency`` | ``throughput_per_gb``.
    knobs:
        Names the environment exposes as its action space (default:
        :data:`DEFAULT_SEARCH_KNOBS`).  Actions may assign any subset.
    base:
        Config every action is overlaid on (default: all-defaults, which
        for ``boot`` is exactly the hand-picked recording).
    """

    def __init__(self, workload: str = "boot", *,
                 objective: str = "latency",
                 knobs: Optional[Tuple[str, ...]] = None,
                 base: Optional[TuningConfig] = None):
        if objective not in ("latency", "throughput_per_gb"):
            raise ValueError(
                f"unknown objective {objective!r}; "
                "one of ('latency', 'throughput_per_gb')"
            )
        if not (workload in ("boot", "helr", "resnet")
                or workload.startswith("op:")):
            raise ValueError(
                f"unknown workload {workload!r}; "
                "'boot' | 'helr' | 'resnet' | 'op:<name>'"
            )
        self.workload = workload
        self.objective = objective
        self.knob_names: Tuple[str, ...] = tuple(
            knobs if knobs is not None else DEFAULT_SEARCH_KNOBS
        )
        for name in self.knob_names:
            knob(name)  # raise UnknownKnob early
        if base is not None:
            self.base = base
        else:
            params_set = _WORKLOAD_SETS.get(workload)
            self.base = (TuningConfig({"params.set": params_set})
                         if params_set else TuningConfig())
        self._cache: Dict[Tuple[Tuple[str, Any], ...],
                          Tuple[float, float]] = {}
        self.trajectory = Trajectory(workload, objective,
                                     base=self._base_snapshot())
        self._step = 0

    def _base_snapshot(self) -> Dict[str, Any]:
        """Effective value of every *unsearched* knob (incl. the
        ``backend`` knob, so logs show what the episode ran under)."""
        return {name: value
                for name, value in self.base.effective().items()
                if name not in self.knob_names}

    # -- gym surface -------------------------------------------------------

    def space(self) -> Dict[str, Tuple[Any, ...]]:
        """Action space: searched knob name -> finite candidate grid."""
        specs = all_knobs()
        return {name: specs[name].domain.points()
                for name in self.knob_names}

    def default_assignment(self) -> Dict[str, Any]:
        """The baseline action: every searched knob at its registry
        default (for ``boot`` this *is* the hand-picked recording)."""
        specs = all_knobs()
        return {name: specs[name].resolve_default()
                for name in self.knob_names}

    def reset(self, seed: Optional[int] = None) -> Dict[str, Any]:
        """Start a fresh episode (the evaluation cache survives — the
        simulator is deterministic, so cached points stay valid)."""
        self.trajectory = Trajectory(self.workload, self.objective,
                                     seed=seed,
                                     base=self._base_snapshot())
        self._step = 0
        return self.default_assignment()

    def step(self, assignment: Dict[str, Any]
             ) -> Tuple[Dict[str, Any], float, Dict[str, Any]]:
        """Price one knob assignment.

        Returns ``(assignment, reward, info)`` gym-style; ``info``
        carries ``latency_us``, ``hbm_gb`` and ``cached``.  The episode
        never terminates — budget is the searcher's concern.
        """
        cfg = self.base.replace(**assignment)
        key = cfg.key()
        cached = key in self._cache
        if cached:
            latency_us, hbm_gb = self._cache[key]
        else:
            latency_us, hbm_gb = self._evaluate(cfg)
            self._cache[key] = (latency_us, hbm_gb)
        reward = self._reward(cfg, latency_us, hbm_gb)
        point = TrajectoryPoint(
            step=self._step, assignment=dict(assignment), reward=reward,
            latency_us=latency_us, hbm_gb=hbm_gb, cached=cached,
        )
        self.trajectory.points.append(point)
        self._step += 1
        info = {"latency_us": latency_us, "hbm_gb": hbm_gb,
                "cached": cached}
        return dict(assignment), reward, info

    # -- pricing -----------------------------------------------------------

    def _reward(self, cfg: TuningConfig, latency_us: float,
                hbm_gb: float) -> float:
        if self.objective == "latency":
            return -latency_us
        ops_per_s = cfg["serving.batch"] / (latency_us * 1e-6)
        return ops_per_s / max(hbm_gb, 1e-9)

    def _evaluate(self, cfg: TuningConfig) -> Tuple[float, float]:
        pipe = build_pipeline(cfg)
        if self.workload.startswith("op:"):
            return self._evaluate_op(pipe)
        return self._evaluate_recorded(pipe)

    def _evaluate_op(self, pipe: Pipeline) -> Tuple[float, float]:
        op = self.workload[len("op:"):]
        result = pipe.scheduler.simulate(op, batch=pipe.batch)
        # Working set of one op: batch (c0, c1) ciphertexts at top level.
        hbm_gb = (pipe.batch
                  * pipe.params.ciphertext_bytes()) / 1e9
        return result.elapsed_us, hbm_gb

    def _evaluate_recorded(self, pipe: Pipeline) -> Tuple[float, float]:
        from ..trace.opt import trace_pool_peak_rows
        from ..workloads import recorded

        cfg = pipe.config
        if self.workload == "boot":
            trace = recorded.record_bootstrap_trace(
                pipe.params,
                proxy_log2n=cfg["recorded.proxy_log2n"],
                fuse=cfg["recorded.fuse"],
                sine_degree=cfg["recorded.sine_degree"],
            )
        elif self.workload == "helr":
            trace = recorded.record_helr_iteration_trace(pipe.params)
        else:
            trace = recorded.record_resnet_block_trace(pipe.params)
        dag = recorded._lower_for(
            trace, pipe.scheduler, style=pipe.style, batch=pipe.batch,
            optimize=pipe.optimize, search=pipe.search,
        )
        latency_us = dag.run(pipe.device).elapsed_us
        hbm_gb = (trace_pool_peak_rows(trace) * pipe.params.n
                  * pipe.batch * _WORD_BYTES) / 1e9
        return latency_us, hbm_gb
