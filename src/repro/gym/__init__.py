"""Design-space exploration gym over the declared tuning knobs.

``repro.gym`` closes ROADMAP item 3: an ArchGym-style loop where the
*action space* is the knob registry of :mod:`repro.tuning`, the
*environment* prices recorded workload DAGs on the analytic GPU
simulator, and classic searchers (random / hill-climb / evolutionary)
explore the space with seeded determinism and full trajectory logs.

Quick start::

    from repro.gym import TuningEnv, hill_climb

    env = TuningEnv("boot", objective="latency")
    result = hill_climb(env, steps=12, seed=0)
    print(result.best_assignment, result.best_latency_us)

CLI: ``python -m repro.gym --workload boot --searcher hill``.
"""

from .env import DEFAULT_SEARCH_KNOBS, Trajectory, TrajectoryPoint, TuningEnv
from .plot import fitness_svg, write_fitness_svg
from .search import (
    SEARCHERS,
    SearchResult,
    evolutionary_search,
    hill_climb,
    random_search,
    run_searcher,
)

__all__ = [
    "DEFAULT_SEARCH_KNOBS",
    "SEARCHERS",
    "SearchResult",
    "Trajectory",
    "TrajectoryPoint",
    "TuningEnv",
    "evolutionary_search",
    "fitness_svg",
    "hill_climb",
    "random_search",
    "run_searcher",
    "write_fitness_svg",
]
